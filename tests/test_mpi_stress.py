"""Stress: many ranks, deep collective sequences, large payloads."""

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET, World


class TestManyRanks:
    def test_32_ranks_collectives(self):
        def fn(comm):
            total = comm.allsum(comm.rank)
            comm.barrier()
            gathered = comm.allgather(comm.rank)
            return total, len(gathered)

        result = World(32).run(fn)
        expected = sum(range(32))
        assert all(r == (expected, 32) for r in result.returns)

    def test_deep_collective_sequence(self):
        def fn(comm):
            acc = 0
            for i in range(200):
                acc = comm.allreduce(acc + 1) % 100003
            return acc

        result = World(8).run(fn)
        assert len(set(result.returns)) == 1

    def test_large_alltoallv_payloads(self):
        def fn(comm):
            sends = [bytes([comm.rank]) * 50_000
                     for _ in range(comm.size)]
            received = comm.alltoallv(sends)
            return [len(part) for part in received]

        result = World(4).run(fn)
        assert all(lengths == [50_000] * 4 for lengths in result.returns)

    def test_wordcount_on_32_ranks(self):
        cluster = Cluster(COMET, nprocs=32, memory_limit=None)
        cluster.pfs.store("t.txt", b"x y z w " * 500)
        config = MimirConfig(page_size=2048, comm_buffer_size=4096,
                             input_chunk_size=256)

        def job(env):
            mimir = Mimir(env, config)
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            out = mimir.partial_reduce(
                kvs, lambda k, a, b: pack_u64(unpack_u64(a) +
                                              unpack_u64(b)))
            total = sum(unpack_u64(v) for _, v in out.records())
            out.free()
            return total

        result = cluster.run(job)
        assert sum(result.returns) == 2000

    def test_repeated_worlds_do_not_leak(self):
        # Thirty consecutive worlds: threads and engines must clean up.
        import threading

        before = threading.active_count()
        for _ in range(30):
            World(4).run(lambda comm: comm.allsum(1))
        after = threading.active_count()
        assert after <= before + 2
