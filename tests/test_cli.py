"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_platforms_defaults(self):
        args = build_parser().parse_args(["platforms"])
        assert args.shift == 3

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "wc_uniform", "--size", "2G", "--framework", "mrmpi",
             "--page", "512M", "--platform", "mira", "--hint"])
        assert args.app == "wc_uniform"
        assert args.framework == "mrmpi"
        assert args.page == "512M"
        assert args.hint and not args.pr

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sorting"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_platforms_output(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "comet" in out and "mira" in out
        assert "write penalty" in out

    def test_run_mimir_small(self, capsys):
        code = main(["run", "wc_uniform", "--size", "128M", "--shift", "6",
                     "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "peak memory" in out
        assert "virtual time" in out

    def test_run_mrmpi_with_options(self, capsys):
        code = main(["run", "wc_uniform", "--size", "128M", "--shift", "6",
                     "--nprocs", "4", "--framework", "mrmpi",
                     "--page", "512M"])
        assert code == 0
        assert "mrmpi" in capsys.readouterr().out

    def test_run_count_sized_app(self, capsys):
        code = main(["run", "bfs", "--size", "2^18", "--shift", "6",
                     "--nprocs", "4"])
        assert code == 0

    def test_run_oom_exit_code(self, capsys):
        code = main(["run", "wc_uniform", "--size", "1T", "--shift", "6",
                     "--nprocs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "OUT OF MEMORY" in out

    def test_compare_table(self, capsys):
        code = main(["compare", "wc_uniform", "--size", "256M",
                     "--shift", "6", "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mimir" in out and "MR-MPI (64M)" in out
        assert "max in-mem" in out


class TestServeParser:
    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 0 and args.lease_ttl == 60.0
        assert args.platform == "comet"

    def test_serve_quota_specs(self):
        args = build_parser().parse_args(
            ["serve", "--quota", "alice=4:2", "--quota", "bob=1:1",
             "--port", "8123"])
        assert args.quota == ["alice=4:2", "bob=1:1"]

    def test_submit_options(self):
        args = build_parser().parse_args(
            ["submit", "pagerank", "demo/graph.bin",
             "--param", "iterations=3", "--tenant", "bob", "--wait"])
        assert args.app == "pagerank"
        assert args.param == ["iterations=3"]
        assert args.tenant == "bob" and args.wait

    def test_client_commands_share_url_and_tenant(self):
        for argv in (["status"], ["cancel", "job-0001"],
                     ["fetch", "job-0001"], ["put", "x", "f"]):
            args = build_parser().parse_args(argv)
            assert args.url.startswith("http://")
            assert args.tenant == "default"


class TestServeCommands:
    @pytest.fixture()
    def service(self):
        from repro.cluster import Cluster
        from repro.mpi import COMET
        from repro.sched.demo import stage_inputs
        from repro.serve.daemon import ServeDaemon

        cluster = Cluster(COMET, nprocs=4)
        stage_inputs(cluster)
        daemon = ServeDaemon(cluster)
        port = daemon.start()
        yield f"--url=http://127.0.0.1:{port}"
        daemon.stop()

    def test_put_submit_status_fetch_roundtrip(self, service, capsys,
                                               tmp_path):
        import json

        infile = tmp_path / "words.txt"
        infile.write_bytes(b"cli cli cli test\n")
        assert main(["put", "words.txt", str(infile), service,
                     "--tenant", "alice"]) == 0
        assert main(["submit", "wordcount", "words.txt", service,
                     "--tenant", "alice", "--wait"]) == 0
        capsys.readouterr()
        assert main(["status", service, "--tenant", "alice"]) == 0
        jobs = json.loads(capsys.readouterr().out)
        assert jobs and jobs[0]["state"] == "done"
        job_id = jobs[0]["job_id"]

        outfile = tmp_path / "out.tsv"
        assert main(["fetch", job_id, "-o", str(outfile), service,
                     "--tenant", "alice"]) == 0
        assert outfile.read_bytes() == b"cli\t3\ntest\t1\n"
        assert main(["fetch", job_id, "--log", service,
                     "--tenant", "alice"]) == 0
        assert "submitted by alice" in capsys.readouterr().out

    def test_cancel_command(self, service, capsys):
        import json

        daemon_url = service
        # Stall the queue so the job is still cancellable: submit with
        # an impossible footprint keeps it queued only briefly, so
        # instead cancel right after submitting without --wait.
        assert main(["submit", "wordcount", "demo/words.txt", daemon_url,
                     "--tenant", "bob"]) == 0
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        code = main(["cancel", job_id, daemon_url, "--tenant", "bob"])
        doc = json.loads(capsys.readouterr().out)
        # Raced the worker: either cancelled cleanly, or already done
        # and the CLI printed the structured 409 body with exit 1.
        if code == 0:
            assert doc["state"] == "cancelled"
        else:
            assert doc["status"] == 409

    def test_status_single_job(self, service, capsys):
        import json

        assert main(["submit", "wordcount", "demo/words.txt", service,
                     "--tenant", "carol", "--wait"]) == 0
        job_id = json.loads(capsys.readouterr().out)["job_id"]
        assert main(["status", job_id, service, "--tenant", "carol"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["state"] == "done"
        assert doc["summary"]["total"] > 0
