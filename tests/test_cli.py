"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_platforms_defaults(self):
        args = build_parser().parse_args(["platforms"])
        assert args.shift == 3

    def test_run_options(self):
        args = build_parser().parse_args(
            ["run", "wc_uniform", "--size", "2G", "--framework", "mrmpi",
             "--page", "512M", "--platform", "mira", "--hint"])
        assert args.app == "wc_uniform"
        assert args.framework == "mrmpi"
        assert args.page == "512M"
        assert args.hint and not args.pr

    def test_rejects_unknown_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "sorting"])

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_platforms_output(self, capsys):
        assert main(["platforms"]) == 0
        out = capsys.readouterr().out
        assert "comet" in out and "mira" in out
        assert "write penalty" in out

    def test_run_mimir_small(self, capsys):
        code = main(["run", "wc_uniform", "--size", "128M", "--shift", "6",
                     "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "peak memory" in out
        assert "virtual time" in out

    def test_run_mrmpi_with_options(self, capsys):
        code = main(["run", "wc_uniform", "--size", "128M", "--shift", "6",
                     "--nprocs", "4", "--framework", "mrmpi",
                     "--page", "512M"])
        assert code == 0
        assert "mrmpi" in capsys.readouterr().out

    def test_run_count_sized_app(self, capsys):
        code = main(["run", "bfs", "--size", "2^18", "--shift", "6",
                     "--nprocs", "4"])
        assert code == 0

    def test_run_oom_exit_code(self, capsys):
        code = main(["run", "wc_uniform", "--size", "1T", "--shift", "6",
                     "--nprocs", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "OUT OF MEMORY" in out

    def test_compare_table(self, capsys):
        code = main(["compare", "wc_uniform", "--size", "256M",
                     "--shift", "6", "--nprocs", "4"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Mimir" in out and "MR-MPI (64M)" in out
        assert "max in-mem" in out
