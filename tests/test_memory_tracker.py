"""MemoryTracker accounting, limits, and timeline."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import MemoryLimitExceeded, MemoryTracker


class TestBasicAccounting:
    def test_starts_empty(self):
        t = MemoryTracker()
        assert t.current == 0
        assert t.peak == 0

    def test_allocate_increases_current_and_peak(self):
        t = MemoryTracker()
        t.allocate(100, "a")
        assert t.current == 100
        assert t.peak == 100

    def test_free_decreases_current_not_peak(self):
        t = MemoryTracker()
        t.allocate(100, "a")
        t.free(40, "a")
        assert t.current == 60
        assert t.peak == 100

    def test_peak_tracks_high_watermark(self):
        t = MemoryTracker()
        t.allocate(100, "a")
        t.free(100, "a")
        t.allocate(50, "b")
        assert t.peak == 100
        t.allocate(80, "b")
        assert t.peak == 130

    def test_usage_by_tag(self):
        t = MemoryTracker()
        t.allocate(100, "pages")
        t.allocate(30, "comm")
        t.free(20, "pages")
        assert t.usage_by_tag() == {"pages": 80, "comm": 30}

    def test_tag_removed_when_fully_freed(self):
        t = MemoryTracker()
        t.allocate(10, "x")
        t.free(10, "x")
        assert "x" not in t.usage_by_tag()

    def test_zero_allocation_ok(self):
        t = MemoryTracker()
        t.allocate(0, "z")
        assert t.current == 0


class TestLimit:
    def test_limit_enforced(self):
        t = MemoryTracker(limit=100)
        t.allocate(80, "a")
        with pytest.raises(MemoryLimitExceeded):
            t.allocate(21, "b")

    def test_limit_boundary_exact_fit(self):
        t = MemoryTracker(limit=100)
        t.allocate(100, "a")  # exactly at the limit is fine
        assert t.current == 100

    def test_failed_allocation_changes_nothing(self):
        t = MemoryTracker(limit=100)
        t.allocate(90, "a")
        with pytest.raises(MemoryLimitExceeded):
            t.allocate(50, "b")
        assert t.current == 90
        assert t.usage_by_tag() == {"a": 90}

    def test_limit_parse_string(self):
        t = MemoryTracker(limit="1K")
        assert t.limit == 1024

    def test_exception_carries_context(self):
        t = MemoryTracker(limit=100)
        t.allocate(60, "pages")
        with pytest.raises(MemoryLimitExceeded) as exc_info:
            t.allocate(50, "bucket")
        err = exc_info.value
        assert err.tag == "bucket"
        assert err.requested == 50
        assert err.current == 60
        assert err.limit == 100
        assert err.by_tag == {"pages": 60}

    def test_would_fit(self):
        t = MemoryTracker(limit=100)
        t.allocate(60, "a")
        assert t.would_fit(40)
        assert not t.would_fit(41)

    def test_available(self):
        t = MemoryTracker(limit=100)
        t.allocate(30, "a")
        assert t.available == 70
        assert MemoryTracker().available is None


class TestErrors:
    def test_negative_allocate_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().allocate(-1, "a")

    def test_negative_free_rejected(self):
        with pytest.raises(ValueError):
            MemoryTracker().free(-1, "a")

    def test_overfree_rejected(self):
        t = MemoryTracker()
        t.allocate(10, "a")
        with pytest.raises(ValueError):
            t.free(11, "a")

    def test_free_wrong_tag_rejected(self):
        t = MemoryTracker()
        t.allocate(10, "a")
        with pytest.raises(ValueError):
            t.free(5, "b")


class TestTimeline:
    def test_timeline_disabled_by_default(self):
        t = MemoryTracker()
        t.allocate(10, "a")
        assert t.timeline == []

    def test_timeline_records_samples(self):
        t = MemoryTracker(keep_timeline=True)
        t.allocate(10, "a")
        t.free(4, "a")
        assert [(s.tag, s.delta, s.current) for s in t.timeline] == [
            ("a", 10, 10), ("a", -4, 6)]

    def test_reset_peak(self):
        t = MemoryTracker()
        t.allocate(100, "a")
        t.free(80, "a")
        t.reset_peak()
        assert t.peak == 20


@given(st.lists(st.integers(min_value=0, max_value=1000), max_size=50))
def test_property_alloc_free_balances(sizes):
    t = MemoryTracker()
    for n in sizes:
        t.allocate(n, "t")
    assert t.current == sum(sizes)
    assert t.peak == sum(sizes)
    for n in sizes:
        t.free(n, "t")
    assert t.current == 0


@given(st.lists(st.tuples(st.sampled_from(["a", "b", "c"]),
                          st.integers(min_value=0, max_value=100)),
                max_size=60))
def test_property_peak_is_max_of_prefix_sums(events):
    t = MemoryTracker()
    running, best = 0, 0
    for tag, n in events:
        t.allocate(n, tag)
        running += n
        best = max(best, running)
    assert t.peak == best
    assert t.current == running
