"""WordCount app: Mimir and MR-MPI agree with each other and the truth."""

from collections import Counter

import pytest

from repro.apps.wordcount import (
    WC_HINT_LAYOUT,
    wordcount_mimir,
    wordcount_mrmpi,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import uniform_text, zipf_text
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

MIMIR_CFG = MimirConfig(page_size=4096, comm_buffer_size=4096,
                        input_chunk_size=2048)
MRMPI_CFG = MRMPIConfig(page_size=64 * 1024, input_chunk_size=2048)


def cluster_with_text(text, nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("wc.txt", text)
    return cluster


@pytest.fixture(scope="module")
def corpus():
    return uniform_text(20_000, vocab_size=300, seed=11)


class TestAgainstGroundTruth:
    def run_and_merge(self, text, runner, nprocs=4, **kwargs):
        cluster = cluster_with_text(text, nprocs)
        result = cluster.run(
            lambda env: runner(env, "wc.txt", collect=True, **kwargs))
        merged: Counter = Counter()
        for part in result.returns:
            for word, count in part.counts.items():
                assert word not in merged
                merged[word] = count
        return merged, result

    def test_mimir_matches_truth(self, corpus):
        merged, _ = self.run_and_merge(corpus, wordcount_mimir,
                                       config=MIMIR_CFG)
        assert merged == Counter(corpus.split())

    def test_mrmpi_matches_truth(self, corpus):
        merged, _ = self.run_and_merge(corpus, wordcount_mrmpi,
                                       config=MRMPI_CFG)
        assert merged == Counter(corpus.split())

    @pytest.mark.parametrize("opts", [
        {"hint": True},
        {"compress": True},
        {"partial": True},
        {"hint": True, "compress": True, "partial": True},
    ])
    def test_mimir_optimizations_preserve_answer(self, corpus, opts):
        merged, _ = self.run_and_merge(corpus, wordcount_mimir,
                                       config=MIMIR_CFG, **opts)
        assert merged == Counter(corpus.split())

    def test_mrmpi_compress_preserves_answer(self, corpus):
        merged, _ = self.run_and_merge(corpus, wordcount_mrmpi,
                                       config=MRMPI_CFG, compress=True)
        assert merged == Counter(corpus.split())

    def test_zipf_corpus(self):
        text = zipf_text(15_000, vocab_size=500, seed=3)
        mimir_counts, _ = self.run_and_merge(text, wordcount_mimir,
                                             config=MIMIR_CFG)
        mrmpi_counts, _ = self.run_and_merge(text, wordcount_mrmpi,
                                             config=MRMPI_CFG)
        assert mimir_counts == mrmpi_counts == Counter(text.split())


class TestSummaries:
    def test_totals_sum_across_ranks(self, corpus):
        cluster = cluster_with_text(corpus)
        result = cluster.run(
            lambda env: wordcount_mimir(env, "wc.txt", MIMIR_CFG))
        total = sum(r.total_words for r in result.returns)
        unique = sum(r.unique_words for r in result.returns)
        truth = Counter(corpus.split())
        assert total == sum(truth.values())
        assert unique == len(truth)

    def test_counts_omitted_unless_requested(self, corpus):
        cluster = cluster_with_text(corpus, nprocs=2)
        result = cluster.run(
            lambda env: wordcount_mimir(env, "wc.txt", MIMIR_CFG))
        assert all(r.counts is None for r in result.returns)


class TestMemoryShape:
    """The paper's qualitative single-node memory relations."""

    def test_mimir_uses_less_memory_than_mrmpi(self, corpus):
        cluster = cluster_with_text(corpus)
        mimir = cluster.run(
            lambda env: wordcount_mimir(env, "wc.txt", MIMIR_CFG))
        cluster2 = cluster_with_text(corpus)
        mrmpi = cluster2.run(
            lambda env: wordcount_mrmpi(env, "wc.txt", MRMPI_CFG))
        # Paper: at least 25% less for in-memory datasets.
        assert mimir.node_peak_bytes < 0.75 * mrmpi.node_peak_bytes

    def test_hint_layout_shape(self):
        # WordCount's hint: NUL-terminated key + fixed 8-byte value.
        assert WC_HINT_LAYOUT.header_size == 0
        assert WC_HINT_LAYOUT.encoded_size(b"hello", b"x" * 8) == 5 + 1 + 8
