"""Stage cache: hits, pinning, LRU spill/reload, lineage recompute."""

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET
from repro.sched import Plan, PlanRunner, StageCache

CFG = MimirConfig(page_size=1024, comm_buffer_size=1024,
                  input_chunk_size=256)
TEXT = b"oak elm ash fir oak elm oak yew ash oak " * 40


def emit_n(n, tag):
    def fn(ctx, _item):
        for i in range(n):
            ctx.emit(tag + pack_u64(i), pack_u64(i))
    return fn


def make_entry(env, cache, key, *, n=64, tag=b"k"):
    kvs = Mimir(env, CFG).map_items([None], emit_n(n, tag))
    cache.put(key, kvs, name=key, job="test")
    return sorted(kvs.records())


def run_single(fn, memory_limit=None):
    cluster = Cluster(COMET, nprocs=1, memory_limit=memory_limit)
    cluster.pfs.store("t.txt", TEXT)
    return cluster.run(fn)


class TestBasics:
    def test_put_get_and_stats(self):
        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            records = make_entry(env, cache, "a")
            got = cache.get("a")
            assert sorted(got.records()) == records
            with pytest.raises(KeyError):
                cache.get("missing")
            assert cache.has("a") and not cache.has("missing")
            assert cache.stats.hits == 1 and cache.stats.misses == 1
            assert cache.resident_bytes > 0

        run_single(job)

    def test_attach_rejects_wrong_rank(self):
        def job(env):
            with pytest.raises(ValueError, match="rank"):
                StageCache(3).attach(env)

        run_single(job)


class TestSpillReload:
    def test_lru_spills_to_pfs_and_reloads(self):
        events = []

        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            cache.on_event = lambda kind, label, **d: \
                events.append((kind, label))
            old = make_entry(env, cache, "old", tag=b"o")
            new = make_entry(env, cache, "new", tag=b"n")
            cache.get("new")  # "old" becomes the LRU victim
            freed = cache.ensure_room(env.tracker.limit)
            assert freed > 0
            assert not cache.entries["old"].resident
            assert cache.stats.evictions >= 1
            spill_path = "spill/cache_old.0"
            assert env.pfs.exists(spill_path)
            spilled_before = env.pfs.spilled_bytes
            assert spilled_before > 0  # costed through the spill path
            # Reload restores the records bit for bit and cleans up.
            assert sorted(cache.get("old").records()) == old
            assert cache.stats.reloads == 1
            assert not env.pfs.exists(spill_path)
            assert sorted(cache.get("new").records()) == new

        run_single(job, memory_limit="64K")
        kinds = {kind for kind, _ in events}
        assert "evict" in kinds
        assert any(label.endswith(":spilled") for _, label in events)

    def test_pinned_entry_survives_pressure(self):
        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            make_entry(env, cache, "pinned", tag=b"p")
            make_entry(env, cache, "loose", tag=b"l")
            cache.get("loose")  # "pinned" is LRU, but...
            cache.get("pinned").pin()
            try:
                cache.ensure_room(env.tracker.limit)
                assert cache.entries["pinned"].resident
                assert not cache.entries["loose"].resident
            finally:
                cache.entries["pinned"].kvc.unpin()

        run_single(job, memory_limit="64K")

    def test_no_limit_means_no_eviction(self):
        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            make_entry(env, cache, "a")
            assert cache.ensure_room(1 << 30) == 0
            assert cache.entries["a"].resident

        run_single(job)


class TestDropAndRecompute:
    def test_drop_recomputes_bit_identical_from_lineage(self):
        caches = [StageCache(rank) for rank in range(3)]
        events = []

        def wc_map(ctx, chunk):
            for word in chunk.split():
                ctx.emit(word, pack_u64(1))

        def wc_reduce(ctx, key, values):
            ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))

        def job(env):
            cache = caches[env.comm.rank]
            cache.on_event = lambda kind, label, **d: \
                events.append((kind, label))
            plan = Plan("wc", CFG)
            counts = plan.read_text("t.txt", name="input") \
                .map(wc_map, name="count") \
                .reduce(wc_reduce, name="sum").cache()
            runner = PlanRunner(env, plan, cache=cache)
            first = sorted(runner.stream(counts))
            # Every rank drops together (a recompute runs collectives).
            cache.drop(counts.key)
            second = sorted(runner.stream(counts))
            assert second == first
            assert runner.stage_counts["sum"] == 2
            return first

        cluster = Cluster(COMET, nprocs=3, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)
        cluster.run(job)
        assert any(label == "sum:dropped" for _, label in events)
        assert all(c.stats.drops == 1 for c in caches)

    def test_clear_drops_everything(self):
        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            make_entry(env, cache, "a", tag=b"a")
            make_entry(env, cache, "b", tag=b"b")
            cache.clear()
            assert not cache.entries
            assert cache.stats.drops == 2

        run_single(job)
