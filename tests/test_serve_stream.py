"""Serve-side streaming surfaces: incremental log fetch, the
``--follow`` client loop, autoscaling in the worker loop, and the
``stream_wordcount`` catalog app."""

import pytest

from repro.cluster import Cluster
from repro.ft.elastic import ScalingPolicy
from repro.mpi import COMET
from repro.serve.api import ServeClient
from repro.serve.catalog import merge_output, run_direct
from repro.serve.daemon import ServeDaemon, ServeError

NPROCS = 2
WORDS = (b"the quick brown fox\njumps over the lazy dog\n"
         b"the fox again\n" * 3)


def make_daemon(**kwargs):
    cluster = Cluster(COMET, nprocs=NPROCS)
    return cluster, ServeDaemon(cluster, **kwargs)


def drain(daemon, limit=64):
    for _ in range(limit):
        busy = daemon.scheduler.queue_depth or any(
            j.state == "running" for j in daemon.jobs.values())
        if not busy:
            return
        daemon.tick()
    raise AssertionError("daemon did not drain")


class TestIncrementalLogFetch:
    def test_offset_cursor_walks_the_log(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        job = daemon.submit("t1", "wordcount", "words")

        first = daemon.job_log_since(job.job_id, 0, "t1")
        assert first["lines"] and first["state"] == "queued"
        cursor = first["next_offset"]

        drain(daemon)
        second = daemon.job_log_since(job.job_id, cursor, "t1")
        assert second["state"] == "done"
        assert second["next_offset"] > cursor
        # No overlap: the two fetches concatenate to the full log.
        full = daemon.job_log(job.job_id, "t1")
        assert "\n".join(first["lines"] + second["lines"]) + "\n" == full
        # A drained cursor returns no lines and stands still.
        third = daemon.job_log_since(job.job_id, second["next_offset"], "t1")
        assert third["lines"] == []
        assert third["next_offset"] == second["next_offset"]

    def test_offset_clamps_and_counts_fetches(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        job = daemon.submit("t1", "wordcount", "words")
        doc = daemon.job_log_since(job.job_id, 9999, "t1")
        assert doc["lines"] == []
        assert daemon.job_log_since(job.job_id, -5, "t1")["lines"]
        assert daemon.cluster.metrics.totals()["serve.log.fetches"] == 2

    def test_foreign_tenant_cannot_read_log(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        job = daemon.submit("t1", "wordcount", "words")
        with pytest.raises(ServeError):
            daemon.job_log_since(job.job_id, 0, "t2")


class TestFollowOverHTTP:
    @pytest.fixture()
    def service(self):
        cluster, daemon = make_daemon()
        port = daemon.start()
        yield daemon, f"http://127.0.0.1:{port}"
        daemon.stop()

    def test_follow_streams_every_line_once(self, service):
        daemon, url = service
        client = ServeClient(url, tenant="t1")
        client.put_input("words", WORDS)
        job_id = client.submit("wordcount", "words")["job_id"]
        lines = list(client.follow_log(job_id, timeout=60.0))
        assert lines == client.job_log(job_id).splitlines()
        assert any(line.startswith("done") for line in lines)

    def test_bad_offset_is_a_400(self, service):
        from repro.serve.api import ServeAPIError

        daemon, url = service
        client = ServeClient(url, tenant="t1")
        client.put_input("words", WORDS)
        job_id = client.submit("wordcount", "words")["job_id"]
        with pytest.raises(ServeAPIError) as err:
            client._json("GET", f"/jobs/{job_id}/log?offset=nope")
        assert err.value.status == 400


class TestAutoscaling:
    def test_deep_queue_scales_the_gang_and_counts_events(self):
        cluster, daemon = make_daemon(
            scaling=ScalingPolicy(max_ranks=8, jobs_per_rank=1.0))
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        for _ in range(6):
            daemon.submit("t1", "wordcount", "words")
        drain(daemon)
        assert daemon.scheduler.scale_events, "policy never consulted"
        totals = daemon.cluster.metrics.totals()
        assert totals["serve.autoscale.events"] == \
            len(daemon.scheduler.scale_events)
        assert all(j.state == "done" for j in daemon.jobs.values())

    def test_no_policy_means_no_events(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        daemon.submit("t1", "wordcount", "words")
        drain(daemon)
        assert "serve.autoscale.events" not in daemon.cluster.metrics.totals()


class TestStreamWordCountApp:
    def test_streamed_app_matches_batch_app_bit_for_bit(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        streamed = daemon.submit("t1", "stream_wordcount", "words",
                                 params={"window": 10, "nbatches": 3})
        batch = daemon.submit("t1", "wordcount", "words")
        drain(daemon)
        assert daemon.jobs[streamed.job_id].state == "done"
        out_stream = cluster.pfs.fetch(
            daemon.jobs[streamed.job_id].output_path)
        out_batch = cluster.pfs.fetch(daemon.jobs[batch.job_id].output_path)
        assert out_stream == out_batch
        summary = daemon.jobs[streamed.job_id].summary
        assert summary["windows"] >= 1

    def test_direct_run_matches_scheduled_run(self):
        # The recovery path (run_direct) must reproduce the scheduler
        # path byte for byte - same stages, no ctx services.
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        job = daemon.submit("t1", "stream_wordcount", "words",
                            params={"window": 10, "nbatches": 3})
        drain(daemon)
        served = cluster.pfs.fetch(daemon.jobs[job.job_id].output_path)

        ref_cluster = Cluster(COMET, nprocs=NPROCS)
        ref_cluster.pfs.store("words", WORDS)
        result = ref_cluster.run(lambda env: run_direct(
            "stream_wordcount", env, "words",
            {"window": 10, "nbatches": 3}))
        assert merge_output("stream_wordcount", result.returns) == served

    def test_unknown_param_rejected(self):
        cluster, daemon = make_daemon()
        daemon.recover()
        daemon.put_input("t1", "words", WORDS)
        with pytest.raises(ValueError):
            daemon.submit("t1", "stream_wordcount", "words",
                          params={"bogus": 1})
