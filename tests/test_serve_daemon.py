"""The serve daemon: HTTP e2e, quotas over the wire, crash replay,
leases/GC, and cancellation."""

import pytest

from repro.cluster import Cluster
from repro.mpi import COMET
from repro.sched.demo import stage_inputs
from repro.serve.api import ServeAPIError, ServeClient
from repro.serve.catalog import merge_output, run_direct
from repro.serve.daemon import ServeConfig, ServeDaemon, ServeError
from repro.serve.tenants import TenantManager, TenantQuota

NPROCS = 4
WORDS = b"to be or not to be that is the question to be\n"


def make_cluster():
    cluster = Cluster(COMET, nprocs=NPROCS)
    stage_inputs(cluster, seed=0)
    return cluster


def reference_output(app, path, params, *, extra_inputs=()):
    """What a direct ``Cluster.run`` of the same job produces."""
    cluster = make_cluster()
    for name, data in extra_inputs:
        cluster.pfs.store(name, data)
    result = cluster.run(lambda env: run_direct(app, env, path, params))
    return merge_output(app, result.returns)


def drain(daemon, limit=64):
    for _ in range(limit):
        busy = daemon.scheduler.queue_depth or any(
            j.state == "running" for j in daemon.jobs.values())
        if not busy:
            return
        daemon.tick()
    raise AssertionError("daemon did not drain")


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestHTTPEndToEnd:
    @pytest.fixture()
    def service(self):
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        port = daemon.start()
        yield daemon, f"http://127.0.0.1:{port}"
        daemon.stop()

    def test_three_tenants_mixed_apps_match_direct_runs(self, service):
        """The tentpole e2e: three tenants submit mixed wordcount /
        pagerank jobs over HTTP; every output is bit-identical to the
        same job run directly on a fresh cluster."""
        daemon, url = service
        jobs = []
        for tenant, app, inp, params, extra in [
            ("alice", "wordcount", "words.txt", {},
             [("serve/in/alice/words.txt", WORDS)]),
            ("bob", "pagerank", "demo/graph.bin", {"iterations": 3}, []),
            ("carol", "wordcount", "demo/words.txt", {"partial": False},
             []),
            ("alice", "pagerank", "demo/graph.bin", {"iterations": 2}, []),
            ("carol", "wordcount", "demo/words.txt", {}, []),
        ]:
            client = ServeClient(url, tenant=tenant)
            if extra:
                client.put_input("words.txt", WORDS)
            sub = client.submit(app, inp, params=params)
            jobs.append((client, sub["job_id"], app, params, extra))

        for client, job_id, app, params, extra in jobs:
            doc = client.wait(job_id, timeout=60.0)
            assert doc["state"] == "done", doc
            served = client.output(job_id)
            path = doc["input"]
            assert served == reference_output(app, path, params,
                                              extra_inputs=extra)

    def test_quota_exceeding_tenant_gets_structured_429(self, service):
        daemon, url = service
        daemon.tenants.quotas["greedy"] = TenantQuota(max_queued=1)
        # Stall admission so the queue cannot drain between submits.
        daemon.scheduler.admission_filter = lambda job, batch: False
        client = ServeClient(url, tenant="greedy")
        client.submit("wordcount", "demo/words.txt")
        with pytest.raises(ServeAPIError) as exc:
            client.submit("wordcount", "demo/words.txt")
        assert exc.value.status == 429
        assert exc.value.body["error"] == "quota-exceeded"
        assert exc.value.body["tenant"] == "greedy"
        assert exc.value.body["quota"] == "max_queued"

    def test_foreign_tenant_cannot_read_jobs(self, service):
        daemon, url = service
        owner = ServeClient(url, tenant="alice")
        thief = ServeClient(url, tenant="mallory")
        sub = owner.submit("wordcount", "demo/words.txt")
        owner.wait(sub["job_id"])
        with pytest.raises(ServeAPIError) as exc:
            thief.status(sub["job_id"])
        assert exc.value.status == 403
        with pytest.raises(ServeAPIError) as exc:
            thief.output(sub["job_id"])
        assert exc.value.status == 403

    def test_unknown_app_and_params_rejected_400(self, service):
        _daemon, url = service
        client = ServeClient(url, tenant="alice")
        with pytest.raises(ServeAPIError) as exc:
            client.submit("sort", "demo/words.txt")
        assert exc.value.status == 400
        with pytest.raises(ServeAPIError) as exc:
            client.submit("wordcount", "demo/words.txt",
                          params={"bogus": 1})
        assert exc.value.status == 400

    def test_missing_input_rejected_404(self, service):
        _daemon, url = service
        client = ServeClient(url, tenant="alice")
        with pytest.raises(ServeAPIError) as exc:
            client.submit("wordcount", "no-such-input")
        assert exc.value.status == 404

    def test_health_and_metrics_endpoints(self, service):
        _daemon, url = service
        client = ServeClient(url, tenant="alice")
        sub = client.submit("wordcount", "demo/words.txt")
        client.wait(sub["job_id"])
        health = client.health()
        assert health["status"] == "ok"
        metrics = client.metrics()
        assert metrics["serve.submissions"] >= 1
        assert metrics["serve.completions"] >= 1
        log = client.job_log(sub["job_id"])
        assert "submitted by alice" in log
        assert "done" in log


class TestCrashReplay:
    def submit_batch(self, daemon, n=4):
        daemon.put_input("alice", "words.txt", WORDS)
        ids = []
        for i in range(n):
            app = "wordcount" if i % 2 == 0 else "pagerank"
            inp = "words.txt" if i % 2 == 0 else "demo/graph.bin"
            params = {} if i % 2 == 0 else {"iterations": 2}
            ids.append(daemon.submit("alice", app, inp,
                                     params=params).job_id)
        return ids

    def finish_and_collect(self, cluster, daemon, ids):
        drain(daemon)
        outputs = {}
        for job_id in ids:
            job = daemon.jobs[job_id]
            assert job.state == "done", (job_id, job.state, job.error)
            outputs[job_id] = daemon.output(job_id)
        return outputs

    def test_kill_before_any_round_replays_full_queue(self):
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        ids = self.submit_batch(daemon)
        daemon.kill()  # nothing ever ran

        successor = ServeDaemon(cluster)
        interrupted = successor.recover()
        assert interrupted == []
        assert successor.scheduler.queue_depth == len(ids)
        outputs = self.finish_and_collect(cluster, successor, ids)

        # No duplicated or lost jobs: ids survive exactly once.
        assert sorted(successor.jobs) == sorted(ids)
        reference = ServeDaemon(make_cluster())
        reference.recover()
        ref_ids = self.submit_batch(reference)
        ref_outputs = self.finish_and_collect(None, reference, ref_ids)
        assert list(outputs.values()) == list(ref_outputs.values())

    def test_kill_mid_queue_resumes_without_rerunning_done_work(self):
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        ids = self.submit_batch(daemon, n=6)
        daemon.tick()  # one round: some jobs finish, some still queued
        done_before = {j for j in ids if daemon.jobs[j].state == "done"}
        assert done_before and len(done_before) < len(ids)
        outputs_before = {j: daemon.output(j) for j in done_before}
        daemon.kill()

        successor = ServeDaemon(cluster)
        successor.recover()
        for job_id in done_before:
            assert successor.jobs[job_id].state == "done"
        self.finish_and_collect(cluster, successor, ids)
        for job_id, blob in outputs_before.items():
            # Finished work was not recomputed: artifacts untouched.
            assert successor.output(job_id) == blob

    @pytest.mark.parametrize("cut", [1, 9, 33, 101])
    def test_journal_truncated_at_arbitrary_offset_replays(self, cut):
        """Chop ``cut`` bytes off the journal tail (a crash mid-append
        at any offset) - the successor replays the valid prefix and
        completes every job it still knows about."""
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        ids = self.submit_batch(daemon)
        daemon.kill()

        blob = cluster.pfs.fetch("serve/journal")
        cluster.pfs.store("serve/journal", blob[:-cut])

        successor = ServeDaemon(cluster)
        successor.recover()
        known = [j for j in ids if j in successor.jobs]
        # A torn tail loses whole submit records from the end only.
        assert known == ids[:len(known)]
        self.finish_and_collect(cluster, successor, known)

    def test_mid_run_kill_readmits_through_recovery_driver(self):
        """A job journaled as started but never finished is re-run via
        run_with_recovery at boot, and its output matches the direct
        reference."""
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        daemon.put_input("alice", "words.txt", WORDS)
        job = daemon.submit("alice", "wordcount", "words.txt")
        # Simulate dying inside the round: journal the admission by
        # hand, then kill before any outcome lands.
        daemon.journal.append({"type": "start", "job_id": job.job_id,
                               "round": 1, "start_clock": 0.0})
        daemon.kill()

        successor = ServeDaemon(cluster)
        interrupted = successor.recover()
        assert interrupted == [job.job_id]
        recovered = successor.jobs[job.job_id]
        assert recovered.state == "done"
        assert successor.output(job.job_id) == reference_output(
            "wordcount", "serve/in/alice/words.txt", {},
            extra_inputs=[("serve/in/alice/words.txt", WORDS)])


class TestLeasesAndGC:
    def make(self, ttl=10.0):
        clock = FakeClock()
        cluster = make_cluster()
        daemon = ServeDaemon(cluster, clock=clock,
                             config=ServeConfig(lease_ttl=ttl))
        daemon.recover()
        return daemon, clock

    def test_polling_keeps_the_lease_alive(self):
        daemon, clock = self.make(ttl=10.0)
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        drain(daemon)
        for _ in range(5):
            clock.now += 8.0
            daemon.status(job.job_id)  # poll = implicit renew
            daemon.tick()
        assert daemon.jobs[job.job_id].state == "done"
        assert daemon.output(job.job_id)

    def test_lapsed_lease_garbage_collects_output(self):
        daemon, clock = self.make(ttl=10.0)
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        drain(daemon)
        output_path = daemon.jobs[job.job_id].output_path
        assert daemon.cluster.pfs.exists(output_path)

        clock.now = 100.0  # client walked away
        daemon.tick()
        assert daemon.jobs[job.job_id].state == "expired"
        assert not daemon.cluster.pfs.exists(output_path)
        with pytest.raises(ServeError) as exc:
            daemon.output(job.job_id)
        assert exc.value.status == 410
        # Status still answers (job metadata outlives the artifact).
        assert daemon.status(job.job_id)["state"] == "expired"

    def test_explicit_renew_extends_and_gone_after_expiry(self):
        daemon, clock = self.make(ttl=10.0)
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        drain(daemon)
        clock.now = 8.0
        assert daemon.renew(job.job_id)["lease_remaining"] == \
            pytest.approx(10.0)
        clock.now = 50.0
        daemon.tick()
        with pytest.raises(ServeError) as exc:
            daemon.renew(job.job_id)
        assert exc.value.status == 410

    def test_job_finishing_after_lease_death_is_collected_at_once(self):
        daemon, clock = self.make(ttl=5.0)
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        clock.now = 100.0  # lease dies while the job still queues
        drain(daemon)
        assert daemon.jobs[job.job_id].state == "expired"
        assert not daemon.cluster.pfs.exists(
            f"serve/out/{job.job_id}")


class TestCancellation:
    def make(self):
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        return daemon

    def test_cancel_queued_job(self):
        daemon = self.make()
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        doc = daemon.cancel(job.job_id)
        assert doc["state"] == "cancelled"
        assert daemon.scheduler.queue_depth == 0
        drain(daemon)
        assert daemon.jobs[job.job_id].state == "cancelled"

    def test_cancel_done_job_conflicts(self):
        daemon = self.make()
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        drain(daemon)
        with pytest.raises(ServeError) as exc:
            daemon.cancel(job.job_id)
        assert exc.value.status == 409

    def test_cancelled_job_stays_cancelled_across_restart(self):
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        keep = daemon.submit("alice", "wordcount", "demo/words.txt")
        drop = daemon.submit("alice", "wordcount", "demo/words.txt")
        daemon.cancel(drop.job_id)
        daemon.kill()

        successor = ServeDaemon(cluster)
        successor.recover()
        assert successor.jobs[drop.job_id].state == "cancelled"
        assert successor.scheduler.queue_depth == 1
        drain(successor)
        assert successor.jobs[keep.job_id].state == "done"
        assert successor.jobs[drop.job_id].state == "cancelled"


class TestFairShare:
    def test_one_tenant_cannot_fill_a_round(self):
        cluster = make_cluster()
        daemon = ServeDaemon(
            cluster,
            tenants=TenantManager(
                {"hog": TenantQuota(max_queued=16, max_concurrent=1)}))
        daemon.recover()
        hog_ids = [daemon.submit("hog", "wordcount",
                                 "demo/words.txt").job_id
                   for _ in range(4)]
        other = daemon.submit("other", "wordcount", "demo/words.txt")
        daemon.tick()
        ran = [j for j in daemon.jobs.values() if j.state == "done"]
        hog_ran = [j for j in ran if j.tenant == "hog"]
        assert len(hog_ran) <= 1          # concurrency quota held
        assert daemon.jobs[other.job_id].state == "done"
        drain(daemon)
        assert all(daemon.jobs[j].state == "done" for j in hog_ids)

    def test_aging_eventually_admits_low_priority_work(self):
        cluster = make_cluster()
        daemon = ServeDaemon(
            cluster, tenants=TenantManager(aging_rate=5.0))
        daemon.recover()
        low = daemon.submit("slow", "wordcount", "demo/words.txt",
                            priority=-10)
        for _ in range(6):
            daemon.submit("fast", "wordcount", "demo/words.txt",
                          priority=10)
            daemon.tick()
        drain(daemon)
        assert daemon.jobs[low.job_id].state == "done"
