"""Platform constants must keep the relationships the figures rely on."""

import pytest

from repro.mpi.platforms import (
    COMET,
    COMET_LOCAL_SSD,
    MIRA,
    PLATFORMS,
    SCALE,
    scaled,
)


class TestPaperQuotedValues:
    def test_node_shapes(self):
        assert COMET.procs_per_node == 24       # 2 x 12-core Xeon
        assert MIRA.procs_per_node == 16        # 16 A2 cores
        assert COMET.node_memory == scaled("128G")
        assert MIRA.node_memory == scaled("16G")

    def test_page_sizes(self):
        for platform in PLATFORMS.values():
            assert platform.default_page_size == scaled("64M")
        assert COMET.max_page_size == scaled("512M")
        assert MIRA.max_page_size == scaled("128M")

    def test_max_page_complement_fits_per_proc(self):
        # The paper's "maximum possible page sizes": 7 pages of the max
        # page must fit in one process's share of the node.
        for platform in (COMET, MIRA):
            assert 7 * platform.max_page_size <= platform.memory_per_proc
        # ...and one page size up would not (which is why it's the max).
        for platform in (COMET, MIRA):
            assert 7 * platform.max_page_size * 2 > platform.memory_per_proc


class TestRateRelationships:
    def test_network_beats_pfs_everywhere(self):
        for platform in (COMET, MIRA):
            assert platform.network.bandwidth > \
                platform.pfs.effective_bandwidth

    def test_spill_writes_are_the_bottleneck(self):
        for platform in (COMET, MIRA):
            assert platform.pfs.effective_write_bandwidth < \
                platform.pfs.effective_bandwidth

    def test_mira_slower_than_comet(self):
        assert MIRA.compute_rate < COMET.compute_rate
        assert MIRA.network.bandwidth < COMET.network.bandwidth
        assert MIRA.pfs.effective_bandwidth < COMET.pfs.effective_bandwidth

    def test_ssd_variant_differs_only_in_storage(self):
        assert COMET_LOCAL_SSD.procs_per_node == COMET.procs_per_node
        assert COMET_LOCAL_SSD.node_memory == COMET.node_memory
        assert COMET_LOCAL_SSD.network == COMET.network
        assert COMET_LOCAL_SSD.pfs.write_penalty < COMET.pfs.write_penalty
        assert COMET_LOCAL_SSD.pfs.latency < COMET.pfs.latency


class TestRescaling:
    @pytest.mark.parametrize("shift", [0, 1, 4])
    def test_ratios_invariant(self, shift):
        for base in (COMET, MIRA):
            p = base.rescaled(shift)
            assert p.node_memory * (1 << shift) == base.node_memory
            # Memory-to-page ratio preserved exactly.
            assert p.node_memory // p.default_page_size == \
                base.node_memory // base.default_page_size
            # Rate ratios preserved (to float precision).
            assert p.compute_rate / p.pfs.effective_bandwidth == \
                pytest.approx(base.compute_rate /
                              base.pfs.effective_bandwidth)
            assert p.network.bandwidth / p.compute_rate == \
                pytest.approx(base.network.bandwidth / base.compute_rate)

    def test_shift_zero_is_identity(self):
        assert COMET.rescaled(0) is COMET

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            COMET.rescaled(-1)

    def test_global_scale_is_1024(self):
        assert SCALE == 1024
        assert scaled("1M") == 1024
