"""Skew-tolerant folding: hot-key detection, correctness, balance."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.skew import find_hot_keys, fold_by_key
from repro.io.readers import iter_text_chunks
from repro.mpi import COMET
from repro.tools import ImbalanceReport

CFG = MimirConfig(page_size=2048, comm_buffer_size=4096,
                  input_chunk_size=512)

#: 70 % of all occurrences are one word - brutal skew.
SKEWED = (b"hot " * 70 + b"c%02d " % 0 + b"".join(
    b"c%02d " % (i % 30) for i in range(29))) * 40
EXPECTED = Counter(SKEWED.split())


def wc_fold(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def make_feed(env):
    def feed(emit):
        for chunk in iter_text_chunks(env, "t.txt", CFG.input_chunk_size):
            for word in chunk.split():
                emit(word, pack_u64(1))

    return feed


def run_skew_fold(nprocs=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", SKEWED)

    def job(env):
        out = fold_by_key(env, CFG, make_feed(env), wc_fold, **kwargs)
        counts = {k: unpack_u64(v) for k, v in out.records()}
        kv_peak = env.tracker.peak
        out.free()
        return counts, kv_peak

    result = cluster.run(job)
    merged: Counter = Counter()
    for counts, _ in result.returns:
        for word, count in counts.items():
            assert word not in merged
            merged[word] = count
    peaks = [peak for _, peak in result.returns]
    return merged, peaks


class TestHotKeyDetection:
    def test_detects_dominant_key(self):
        cluster = Cluster(COMET, nprocs=3, memory_limit=None)

        def job(env):
            sample = [(b"hot", 700), (b"a", 10), (b"b", 12)]
            return find_hot_keys(env, sample, hot_fraction=0.05)

        result = cluster.run(job)
        assert all(hot == {b"hot"} for hot in result.returns)

    def test_all_ranks_agree(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)

        def job(env):
            # Different per-rank samples, same global decision.
            sample = [(b"hot", 100 + env.comm.rank),
                      (b"r%d" % env.comm.rank, 5)]
            return sorted(find_hot_keys(env, sample, hot_fraction=0.2))

        result = cluster.run(job)
        assert len({tuple(part) for part in result.returns}) == 1

    def test_no_hot_keys_when_uniform(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)

        def job(env):
            sample = [(b"k%03d" % i, 1) for i in range(100)]
            return find_hot_keys(env, sample, hot_fraction=0.05)

        assert cluster.run(job).returns == [set(), set()]

    def test_empty_sample(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        assert cluster.run(
            lambda env: find_hot_keys(env, [])).returns == [set(), set()]

    def test_max_hot_caps_result(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            sample = [(b"h%d" % i, 100) for i in range(10)]
            return find_hot_keys(env, sample, max_hot=3, hot_fraction=0.01)

        assert len(cluster.run(job).returns[0]) == 3


class TestSkewTolerantFold:
    def test_counts_correct(self):
        merged, _ = run_skew_fold()
        assert merged == EXPECTED

    def test_counts_correct_with_explicit_hot_keys(self):
        merged, _ = run_skew_fold(hot_keys={b"hot"})
        assert merged == EXPECTED

    def test_no_hot_keys_still_correct(self):
        merged, _ = run_skew_fold(hot_keys=set())
        assert merged == EXPECTED

    def test_serial(self):
        merged, _ = run_skew_fold(nprocs=1)
        assert merged == EXPECTED

    def test_balances_peak_memory(self):
        # Plain partial-reduce pipeline: the hot word's owner rank
        # carries ~70 % of all records.
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("t.txt", SKEWED)

        def plain_job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            out = mimir.partial_reduce(kvs, wc_fold)
            out.free()
            return env.tracker.peak

        plain_peaks = cluster.run(plain_job).returns
        _, salted_peaks = run_skew_fold(hot_keys={b"hot"})

        plain = ImbalanceReport.from_values(plain_peaks)
        salted = ImbalanceReport.from_values(salted_peaks)
        # Salting spreads the hot key: the straggler shrinks both in
        # absolute terms and relative to the mean.
        assert salted.maximum < plain.maximum
        assert salted.imbalance_factor < plain.imbalance_factor
