"""Network and PFS cost model sanity."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mpi import NetworkModel, PFSModel
from repro.mpi.platforms import COMET, MIRA, SCALE, scaled


@pytest.fixture
def net():
    return NetworkModel(latency=1e-6, bandwidth=1e9)


class TestNetworkModel:
    def test_single_proc_collectives_free(self, net):
        assert net.barrier_cost(1) == 0.0
        assert net.allreduce_cost(1, 100) == 0.0
        assert net.alltoallv_cost(1, 100) == 0.0
        assert net.bcast_cost(1, 8) == 0.0
        assert net.allgather_cost(1, 8) == 0.0

    def test_barrier_grows_logarithmically(self, net):
        assert net.barrier_cost(2) < net.barrier_cost(16)
        assert net.barrier_cost(16) == pytest.approx(4 * net.latency)

    def test_ptp_includes_latency_and_bandwidth(self, net):
        cost = net.ptp_cost(1_000_000)
        assert cost == pytest.approx(1e-6 + 1e-3)

    def test_alltoallv_scales_with_payload(self, net):
        small = net.alltoallv_cost(8, 1024)
        large = net.alltoallv_cost(8, 1024 * 1024)
        assert large > small

    def test_alltoallv_more_procs_more_steps(self, net):
        # Same total payload per rank, more exchange steps.
        assert net.alltoallv_cost(16, 4096) > net.alltoallv_cost(2, 4096)

    def test_allgather_linear_in_procs(self, net):
        assert net.allgather_cost(8, 64) == pytest.approx(
            7 * (net.latency + 64 / net.bandwidth))


class TestPFSModel:
    def test_access_cost_latency_plus_transfer(self):
        pfs = PFSModel(latency=1e-3, bandwidth=1e8)
        assert pfs.access_cost(1e8) == pytest.approx(1e-3 + 1.0)

    def test_io_ratio_divides_bandwidth(self):
        base = PFSModel(latency=0.0, bandwidth=1e8)
        forwarded = PFSModel(latency=0.0, bandwidth=1e8, io_ratio=128)
        assert forwarded.access_cost(1e8) == pytest.approx(
            128 * base.access_cost(1e8))

    def test_pfs_much_slower_than_network_on_platforms(self):
        # The core premise of Fig. 1: spilling a page costs far more
        # than shuffling the same bytes.
        for platform in (COMET, MIRA):
            page = platform.default_page_size
            spill = platform.pfs.access_cost(page)
            shuffle = platform.network.alltoallv_cost(
                platform.procs_per_node, page)
            assert spill > 5 * shuffle


class TestPlatforms:
    def test_scaled_divides_by_1024(self):
        assert scaled("64M") == 64 * 1024
        assert SCALE == 1024

    def test_comet_shape(self):
        assert COMET.procs_per_node == 24
        assert COMET.node_memory == scaled("128G")
        assert COMET.default_page_size == scaled("64M")
        assert COMET.max_page_size == scaled("512M")

    def test_mira_shape(self):
        assert MIRA.procs_per_node == 16
        assert MIRA.node_memory == scaled("16G")
        assert MIRA.max_page_size == scaled("128M")

    def test_memory_per_proc(self):
        assert COMET.memory_per_proc == COMET.node_memory // 24
        # Mira/rank must hold at least 7 pages of the max page size
        # (the paper states 128M is usable there).
        assert MIRA.memory_per_proc >= 7 * MIRA.max_page_size

    def test_mira_io_forwarding_slower(self):
        nbytes = scaled("64M")
        assert MIRA.pfs.access_cost(nbytes) > COMET.pfs.access_cost(nbytes)


class TestTopologyAwareness:
    def test_default_is_flat(self, net):
        assert net.alltoallv_cost(8, 4096, 1) == net.alltoallv_cost(8, 4096, 8)

    def test_single_node_cheaper_with_speedup(self):
        fast = NetworkModel(latency=1e-6, bandwidth=1e9, intra_speedup=10)
        one_node = fast.alltoallv_cost(8, 1 << 20, 1)
        many_nodes = fast.alltoallv_cost(8, 1 << 20, 8)
        assert one_node < many_nodes
        # All traffic on-node: within ~10x of the all-remote cost.
        assert one_node < many_nodes / 2

    def test_blend_monotone_in_nodes(self):
        fast = NetworkModel(latency=1e-6, bandwidth=1e9, intra_speedup=8)
        costs = [fast.alltoallv_cost(16, 1 << 18, n) for n in (1, 2, 4, 16)]
        assert costs == sorted(costs)

    def test_barrier_latency_blended(self):
        fast = NetworkModel(latency=1e-5, bandwidth=1e9, intra_speedup=100)
        assert fast.barrier_cost(16, 1) < fast.barrier_cost(16, 16)

    def test_cluster_passes_single_node_topology(self):
        from repro.cluster import Cluster
        from repro.mpi.platforms import COMET

        # Default platforms are flat, so times are unchanged; the
        # plumbing is exercised end to end regardless.
        cluster = Cluster(COMET, nprocs=4, nodes=1)
        result = cluster.run(lambda env: env.comm.allsum(1))
        assert result.returns == [4] * 4


@given(st.integers(min_value=2, max_value=1024),
       st.integers(min_value=0, max_value=1 << 30))
def test_property_costs_nonnegative_and_monotone(p, nbytes):
    net = NetworkModel(latency=1e-6, bandwidth=1e9)
    assert net.alltoallv_cost(p, nbytes) >= 0
    assert net.alltoallv_cost(p, nbytes + 1024) >= net.alltoallv_cost(p, nbytes)
    assert net.allreduce_cost(p, 8) >= 0
