"""Graph500 validation checks, and certification of our BFS results."""

import numpy as np
import pytest

from repro.apps.bfs import bfs_mimir, bfs_mrmpi
from repro.apps.bfs_validate import validate_bfs
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

PATH_EDGES = np.array([[0, 1], [1, 2], [2, 3]], dtype="<u8")


class TestValidatorDetectsErrors:
    def test_accepts_correct_tree(self):
        report = validate_bfs(PATH_EDGES, 0, {0: 0, 1: 0, 2: 1, 3: 2})
        assert report.valid, report.violations
        assert report.levels == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_rejects_bad_root(self):
        report = validate_bfs(PATH_EDGES, 0, {0: 1, 1: 0})
        assert not report.valid

    def test_rejects_cycle(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]], dtype="<u8")
        report = validate_bfs(edges, 0, {0: 0, 1: 2, 2: 1})
        assert not report.valid
        assert any("cycle" in v for v in report.violations)

    def test_rejects_phantom_tree_edge(self):
        report = validate_bfs(PATH_EDGES, 0, {0: 0, 1: 0, 2: 1, 3: 1})
        assert not report.valid  # (3, 1) is not a graph edge

    def test_rejects_level_skip(self):
        edges = np.array([[0, 1], [0, 2], [1, 3], [2, 3], [3, 4]],
                         dtype="<u8")
        # Claim 4 hangs off 0 via a fake short chain: (4,3) valid edge
        # but 3's level is wrong.
        report = validate_bfs(edges, 0, {0: 0, 1: 0, 2: 0, 3: 1, 4: 3})
        assert report.valid  # this one is actually a correct BFS tree
        report = validate_bfs(edges, 0, {0: 0, 1: 0, 2: 0, 3: 0, 4: 3})
        assert not report.valid  # (3, 0) is not a graph edge

    def test_rejects_incomplete_coverage(self):
        report = validate_bfs(PATH_EDGES, 0, {0: 0, 1: 0, 2: 1})
        assert not report.valid
        assert any("reachable" in v for v in report.violations)

    def test_rejects_foreign_vertices(self):
        edges = np.array([[0, 1], [5, 6]], dtype="<u8")
        report = validate_bfs(edges, 0, {0: 0, 1: 0, 5: 0})
        assert not report.valid

    def test_rejects_frontier_crossing(self):
        edges = np.array([[0, 1], [1, 2]], dtype="<u8")
        # 2 unvisited but adjacent to visited 1 -> frontier violation
        # (also an incomplete-coverage violation).
        report = validate_bfs(edges, 0, {0: 0, 1: 0})
        assert not report.valid
        assert any("frontier" in v for v in report.violations)


class TestCertifyOurBFS:
    @pytest.fixture(scope="class")
    def edges(self):
        return kronecker_edges(scale=7, edgefactor=8, seed=13)

    def _run(self, edges, runner, config, **kwargs):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("edges.bin", edges_to_bytes(edges))
        result = cluster.run(
            lambda env: runner(env, "edges.bin", config,
                               keep_parents=True, **kwargs))
        parents = {}
        for r in result.returns:
            parents.update(r.parents)
        return result.returns[0].root, parents

    def test_mimir_bfs_is_graph500_valid(self, edges):
        config = MimirConfig(page_size=8192, comm_buffer_size=8192)
        root, parents = self._run(edges, bfs_mimir, config)
        report = validate_bfs(edges, root, parents)
        assert report.valid, report.violations

    def test_mimir_bfs_with_optimizations_valid(self, edges):
        config = MimirConfig(page_size=8192, comm_buffer_size=8192)
        root, parents = self._run(edges, bfs_mimir, config,
                                  hint=True, compress=True)
        report = validate_bfs(edges, root, parents)
        assert report.valid, report.violations

    def test_mrmpi_bfs_is_graph500_valid(self, edges):
        config = MRMPIConfig(page_size=128 * 1024)
        root, parents = self._run(edges, bfs_mrmpi, config)
        report = validate_bfs(edges, root, parents)
        assert report.valid, report.violations
