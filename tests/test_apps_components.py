"""Connected components: agreement with networkx, convergence."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.components import CC_HINT_LAYOUT, cc_combine, components_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig, pack_u64, unpack_u64
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET

CFG = MimirConfig(page_size=8192, comm_buffer_size=8192,
                  input_chunk_size=4096)


def run_components(edges, nprocs=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("edges.bin", edges_to_bytes(edges))
    result = cluster.run(
        lambda env: components_mimir(env, "edges.bin", CFG, **kwargs))
    labels = {}
    for r in result.returns:
        for v, label in r.labels.items():
            assert v not in labels
            labels[v] = label
    return labels, max(r.iterations for r in result.returns)


def reference_components(edges):
    graph = nx.Graph(e for e in edges.tolist() if e[0] != e[1])
    return {min(comp): set(comp) for comp in nx.connected_components(graph)}


class TestCorrectness:
    def test_matches_networkx(self):
        edges = kronecker_edges(scale=6, edgefactor=2, seed=3)
        labels, _ = run_components(edges)
        reference = reference_components(edges)
        # Every component labelled by its minimum vertex id.
        for root, members in reference.items():
            for v in members:
                assert labels[v] == root

    def test_two_components(self):
        edges = np.array([[0, 1], [1, 2], [5, 6], [6, 7]], dtype="<u8")
        labels, _ = run_components(edges, nprocs=3)
        assert labels == {0: 0, 1: 0, 2: 0, 5: 5, 6: 5, 7: 5}

    def test_chain_converges(self):
        # Worst case for label propagation: a long path.
        n = 40
        edges = np.array([[i, i + 1] for i in range(n)], dtype="<u8")
        labels, iterations = run_components(edges, nprocs=4)
        assert all(label == 0 for label in labels.values())
        assert iterations <= n + 2

    def test_serial_equals_parallel(self):
        edges = kronecker_edges(scale=5, edgefactor=4, seed=9)
        serial, _ = run_components(edges, nprocs=1)
        parallel, _ = run_components(edges, nprocs=8)
        assert serial == parallel

    def test_optimizations_preserve_labels(self):
        edges = kronecker_edges(scale=6, edgefactor=4, seed=7)
        plain, _ = run_components(edges)
        opt, _ = run_components(edges, hint=True, compress=True)
        assert plain == opt

    def test_self_loops_ignored(self):
        edges = np.array([[3, 3], [3, 4]], dtype="<u8")
        labels, _ = run_components(edges, nprocs=2)
        assert labels == {3: 3, 4: 3}


class TestHelpers:
    def test_combine_keeps_minimum(self):
        small, big = pack_u64(3), pack_u64(500)
        assert unpack_u64(cc_combine(b"k", small, big)) == 3
        assert unpack_u64(cc_combine(b"k", big, small)) == 3

    def test_combine_compares_numerically_not_bytewise(self):
        # 256 < 511 numerically but b"\x00\x01.." vs b"\xff\x01.."
        # would compare the other way bytewise.
        a, b = pack_u64(256), pack_u64(511)
        assert unpack_u64(cc_combine(b"k", a, b)) == 256

    def test_hint_layout_fixed(self):
        assert CC_HINT_LAYOUT.key_len == 8
        assert CC_HINT_LAYOUT.val_len == 8
