"""Mimir convenience operations: local sort and gather."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"pear apple mango apple kiwi pear fig apple date kiwi " * 15


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def make_cluster(nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)
    return cluster


class TestSortLocal:
    def test_sorted_by_key(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.sort_local(kvs)
            keys = [k for k, _ in out.records()]
            out.free()
            return keys

        for keys in make_cluster(3).run(job).returns:
            assert keys == sorted(keys)

    def test_sorted_by_value(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_items(
                range(env.comm.rank, 30, env.comm.size),
                lambda ctx, i: ctx.emit(pack_u64(i), bytes([255 - i % 7])))
            out = mimir.sort_local(kvs, by_value=True)
            values = [v for _, v in out.records()]
            out.free()
            return values

        for values in make_cluster(2).run(job).returns:
            assert values == sorted(values)

    def test_multiset_preserved(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            before = Counter(k for k, _ in kvs.records())
            out = mimir.sort_local(kvs)
            after = Counter(k for k, _ in out.records())
            out.free()
            return before == after

        assert all(make_cluster(2).run(job).returns)

    def test_input_consumed_and_freed(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.sort_local(kvs)
            out.free()
            return env.tracker.current

        assert make_cluster(2).run(job).returns == [0, 0]


class TestGather:
    def test_gather_to_one(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.gather(kvs, 1)
            n = len(out)
            out.free()
            return n

        counts = make_cluster(4).run(job).returns
        assert sorted(counts)[:3] == [0, 0, 0]
        assert sum(counts) == len(TEXT.split())

    def test_gather_preserves_records(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.gather(kvs, 2)
            records = Counter(k for k, _ in out.records())
            out.free()
            return records

        merged = Counter()
        for part in make_cluster(4).run(job).returns:
            merged.update(part)
        assert merged == Counter(TEXT.split())

    def test_gather_invalid_nranks(self):
        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            mimir.gather(kvs, 0)

        with pytest.raises(RankFailedError):
            make_cluster(2).run(job)
