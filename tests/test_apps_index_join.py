"""Inverted index and reduce-side join."""

from collections import Counter

import pytest

from repro.apps.inverted_index import (
    inverted_index_mimir,
    merge_postings,
    pack_postings,
    unpack_postings,
)
from repro.apps.join import JoinResult, join_mimir, tag_value, untag_value
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=4096, comm_buffer_size=4096,
                  input_chunk_size=512)

DOCS = {
    "docs/a.txt": b"the cat sat on the mat",
    "docs/b.txt": b"the dog chased the cat",
    "docs/c.txt": b"a bird watched the dog and the cat",
    "docs/d.txt": b"mat and bird and dog",
    "docs/e.txt": b"quiet afternoon",
}


def brute_force_index():
    paths = sorted(DOCS)
    expected: dict[bytes, list[int]] = {}
    for doc_id, path in enumerate(paths):
        for word in set(DOCS[path].split()):
            expected.setdefault(word, []).append(doc_id)
    return {w: sorted(ids) for w, ids in expected.items()}


def run_index(nprocs=3, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    for path, data in DOCS.items():
        cluster.pfs.store(path, data)
    result = cluster.run(
        lambda env: inverted_index_mimir(env, "docs/", CFG, **kwargs))
    merged: dict[bytes, list[int]] = {}
    for part in result.returns:
        for word, postings in part.index.items():
            assert word not in merged
            merged[word] = postings
    return merged, result.returns[0].documents


class TestInvertedIndex:
    def test_matches_brute_force(self):
        merged, _ = run_index()
        assert merged == brute_force_index()

    def test_doc_table_consistent(self):
        _, documents = run_index()
        assert sorted(documents.values()) == sorted(DOCS)

    def test_with_compression(self):
        merged, _ = run_index(compress=True)
        assert merged == brute_force_index()

    def test_serial_equals_parallel(self):
        serial, _ = run_index(nprocs=1)
        parallel, _ = run_index(nprocs=6)
        assert serial == parallel

    def test_postings_sorted_unique(self):
        merged, _ = run_index()
        for postings in merged.values():
            assert postings == sorted(set(postings))

    def test_empty_prefix_raises(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: inverted_index_mimir(env, "none/", CFG))

    def test_postings_codec(self):
        ids = [0, 3, 17, 2 ** 31]
        assert unpack_postings(pack_postings(ids)) == ids
        merged = merge_postings(b"w", pack_postings([1, 3]),
                                pack_postings([2, 3]))
        assert unpack_postings(merged) == [1, 2, 3]


LEFT = [(b"k1", b"a1"), (b"k2", b"a2"), (b"k2", b"a3"), (b"k4", b"a4")]
RIGHT = [(b"k1", b"b1"), (b"k2", b"b2"), (b"k3", b"b3"), (b"k1", b"b4")]


def brute_force_join():
    rows = []
    for lk, lv in LEFT:
        for rk, rv in RIGHT:
            if lk == rk:
                rows.append((lk, lv, rv))
    return sorted(rows)


class TestJoin:
    def run_join(self, nprocs=3):
        cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)

        def job(env):
            rank, size = env.comm.rank, env.comm.size
            return join_mimir(env, LEFT[rank::size], RIGHT[rank::size],
                              CFG).rows

        result = cluster.run(job)
        return sorted(row for part in result.returns for row in part)

    def test_matches_brute_force(self):
        assert self.run_join() == brute_force_join()

    def test_serial_equals_parallel(self):
        assert self.run_join(nprocs=1) == self.run_join(nprocs=5)

    def test_unmatched_keys_dropped(self):
        rows = self.run_join()
        keys = {k for k, _, _ in rows}
        assert b"k3" not in keys  # right-only
        assert b"k4" not in keys  # left-only

    def test_many_to_many(self):
        rows = self.run_join()
        k2_rows = [r for r in rows if r[0] == b"k2"]
        assert len(k2_rows) == 2  # two lefts x one right
        k1_rows = [r for r in rows if r[0] == b"k1"]
        assert len(k1_rows) == 2  # one left x two rights

    def test_tagging_roundtrip(self):
        side, payload = untag_value(tag_value(b"L", b"data"))
        assert (side, payload) == (b"L", b"data")
