"""Golden ports: every Plan-API app matches its direct-driver twin."""

import numpy as np
import pytest

from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets.graph500 import edges_to_bytes, kronecker_edges
from repro.datasets.points import normal_points, points_to_bytes
from repro.datasets.words import uniform_text
from repro.mpi import COMET
from repro.sched import StageCache

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)


def make_cluster(nprocs=3):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("words.txt", uniform_text(1 << 12, seed=0))
    cluster.pfs.store("graph.bin", edges_to_bytes(
        kronecker_edges(5, edgefactor=8, seed=0)))
    cluster.pfs.store("points.bin", points_to_bytes(
        normal_points(256, seed=0)))
    return cluster


def run_pair(cluster, direct, planned):
    """Run both lowerings on identical fresh state; return both."""
    caches = [StageCache(rank) for rank in range(cluster.nprocs)]
    a = cluster.run(direct).returns
    b = cluster.run(lambda env: planned(env, caches)).returns
    return a, b


class TestWordCount:
    @pytest.mark.parametrize("opts", [
        {}, {"hint": True}, {"hint": True, "partial": True},
        {"hint": True, "partial": True, "compress": True},
    ])
    def test_counts_identical(self, opts):
        from repro.apps.wordcount import wordcount_mimir, wordcount_plan

        cluster = make_cluster()
        direct, planned = run_pair(
            cluster,
            lambda env: wordcount_mimir(env, "words.txt", CFG,
                                        collect=True, **opts),
            lambda env, caches: wordcount_plan(env, "words.txt", CFG,
                                               collect=True, **opts))
        for d, p in zip(direct, planned):
            assert p.counts == d.counts
            assert (p.unique_words, p.total_words) == \
                (d.unique_words, d.total_words)
            assert p.kv_bytes == d.kv_bytes


class TestPageRank:
    @pytest.mark.parametrize("opts", [
        {}, {"hint": True}, {"hint": True, "compress": True},
    ])
    @pytest.mark.parametrize("reuse", [True, False])
    def test_scores_bitwise_identical(self, opts, reuse):
        from repro.apps.pagerank import pagerank_mimir, pagerank_plan

        cluster = make_cluster()
        direct, planned = run_pair(
            cluster,
            lambda env: pagerank_mimir(env, "graph.bin", CFG,
                                       iterations=3, **opts),
            lambda env, caches: pagerank_plan(
                env, "graph.bin", CFG, iterations=3, reuse=reuse,
                cache=caches[env.comm.rank] if reuse else None, **opts))
        for d, p in zip(direct, planned):
            assert p.ranks == d.ranks  # exact float equality
            assert p.iterations == d.iterations
            assert p.final_delta == d.final_delta


class TestBFS:
    @pytest.mark.parametrize("opts", [
        {}, {"hint": True, "compress": True}, {"keep_parents": True},
    ])
    @pytest.mark.parametrize("reuse", [True, False])
    def test_traversal_identical(self, opts, reuse):
        from repro.apps.bfs import bfs_mimir, bfs_plan

        cluster = make_cluster()
        direct, planned = run_pair(
            cluster,
            lambda env: bfs_mimir(env, "graph.bin", CFG, **opts),
            lambda env, caches: bfs_plan(
                env, "graph.bin", CFG, reuse=reuse,
                cache=caches[env.comm.rank] if reuse else None, **opts))
        for d, p in zip(direct, planned):
            assert (p.root, p.levels, p.visited_local) == \
                (d.root, d.levels, d.visited_local)
            assert p.parents == d.parents


class TestKMeans:
    def test_clustering_identical(self):
        from repro.apps.kmeans import kmeans_mimir, kmeans_plan

        cluster = make_cluster()
        direct, planned = run_pair(
            cluster,
            lambda env: kmeans_mimir(env, "points.bin", 4, CFG,
                                     max_iterations=5),
            lambda env, caches: kmeans_plan(env, "points.bin", 4, CFG,
                                            max_iterations=5))
        for d, p in zip(direct, planned):
            assert np.array_equal(p.centroids, d.centroids)
            assert p.iterations == d.iterations
            assert p.sizes == d.sizes
            assert p.inertia == d.inertia


class TestInSitu:
    def test_density_summaries_identical(self):
        from repro.insitu.pipeline import InSituAnalytics
        from repro.insitu.simulation import ParticleSimulation

        def analyse(use_plan):
            def job(env):
                sim = ParticleSimulation(env, 256, seed=2)
                analytics = InSituAnalytics(env, sim, config=CFG,
                                            use_plan=use_plan)
                return [analytics.analyse_step().dense_octants
                        for _ in range(3)]

            return Cluster(COMET, nprocs=3,
                           memory_limit=None).run(job).returns

        assert analyse(True) == analyse(False)
