"""Cluster harness: env wiring, OOM capture, metrics."""

import pytest

from repro.cluster import Cluster, ClusterResult, RankEnv
from repro.memory import MemoryLimitExceeded
from repro.mpi import COMET, MIRA, RankFailedError


class TestClusterBasics:
    def test_default_nprocs_is_full_node(self):
        assert Cluster(COMET).nprocs == 24
        assert Cluster(MIRA).nprocs == 16

    def test_memory_limit_auto(self):
        cluster = Cluster(COMET)
        assert cluster.memory_limit_per_rank == COMET.memory_per_proc

    def test_memory_limit_auto_splits_node_among_ranks(self):
        cluster = Cluster(MIRA, nprocs=2)
        assert cluster.memory_limit_per_rank == MIRA.node_memory // 2

    def test_multi_node_pfs_not_contended(self):
        # One rank per node: each rank gets the full node PFS share.
        single = Cluster(COMET, nprocs=8, nodes=1)
        multi = Cluster(COMET, nprocs=8, nodes=8)
        assert single.pfs.sharers == 8
        assert multi.pfs.sharers == 1

    def test_memory_limit_override(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit="1K")
        assert cluster.memory_limit_per_rank == 1024

    def test_memory_limit_none_unbounded(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        assert cluster.memory_limit_per_rank is None

    def test_run_returns_per_rank_values(self):
        cluster = Cluster(COMET, nprocs=4)
        result = cluster.run(lambda env: env.comm.rank * 2)
        assert result.returns == [0, 2, 4, 6]

    def test_env_has_all_parts(self):
        cluster = Cluster(MIRA, nprocs=2)

        def fn(env):
            assert env.platform is MIRA
            assert env.tracker.limit == MIRA.node_memory // 2
            assert env.pfs is cluster.pfs
            return env.comm.size

        assert cluster.run(fn).returns == [2, 2]

    def test_extra_args_passed(self):
        cluster = Cluster(COMET, nprocs=2)
        result = cluster.run(lambda env, a, b: a + b, 3, 4)
        assert result.returns == [7, 7]


class TestMetrics:
    def test_peak_bytes_per_rank(self):
        cluster = Cluster(COMET, nprocs=3)

        def fn(env):
            env.tracker.allocate(100 * (env.comm.rank + 1), "buf")
            env.tracker.free(100 * (env.comm.rank + 1), "buf")

        result = cluster.run(fn)
        assert result.peak_bytes == [100, 200, 300]
        assert result.node_peak_bytes == 600
        assert result.max_rank_peak_bytes == 300

    def test_elapsed_from_clocks(self):
        cluster = Cluster(COMET, nprocs=2)

        def fn(env):
            env.comm.advance(1.5 if env.comm.rank else 0.1)

        assert cluster.run(fn).elapsed == pytest.approx(1.5)

    def test_charge_compute_uses_platform_rate(self):
        cluster = Cluster(COMET, nprocs=1)

        def fn(env):
            env.charge_compute(int(COMET.compute_rate))  # exactly 1 second
            return env.comm.clock.time

        assert cluster.run(fn).returns[0] == pytest.approx(1.0, rel=0.01)

    def test_spilled_bytes_surface(self):
        cluster = Cluster(COMET, nprocs=1)

        def fn(env):
            env.pfs.append(env.comm, "spill/x.0", b"z" * 123)

        assert cluster.run(fn).spilled_bytes == 123


class TestOOMHandling:
    def _oom_fn(self, env):
        env.tracker.allocate(10, "small")
        if env.comm.rank == 1:
            env.tracker.allocate(10 ** 12, "huge")
        env.comm.barrier()

    def test_oom_raises_by_default(self):
        cluster = Cluster(COMET, nprocs=2)
        with pytest.raises(RankFailedError) as exc_info:
            cluster.run(self._oom_fn)
        assert isinstance(exc_info.value.original, MemoryLimitExceeded)

    def test_allow_oom_returns_result(self):
        cluster = Cluster(COMET, nprocs=2)
        result = cluster.run(self._oom_fn, allow_oom=True)
        assert result.ran_out_of_memory
        assert result.oom_rank == 1
        assert result.oom.tag == "huge"
        assert result.peak_bytes[0] >= 10

    def test_non_oom_error_still_raises_with_allow_oom(self):
        cluster = Cluster(COMET, nprocs=2)

        def fn(env):
            raise RuntimeError("unrelated")

        with pytest.raises(RankFailedError):
            cluster.run(fn, allow_oom=True)

    def test_successful_run_not_flagged(self):
        cluster = Cluster(COMET, nprocs=2)
        result = cluster.run(lambda env: None, allow_oom=True)
        assert not result.ran_out_of_memory
        assert result.oom is None
