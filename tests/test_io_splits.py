"""Input splitting across ranks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.io import split_blocks, split_range, split_text


class TestSplitRange:
    def test_even_split(self):
        assert [split_range(12, r, 4) for r in range(4)] == [
            (0, 3), (3, 6), (6, 9), (9, 12)]

    def test_remainder_to_low_ranks(self):
        spans = [split_range(10, r, 4) for r in range(4)]
        assert spans == [(0, 3), (3, 6), (6, 8), (8, 10)]

    def test_more_ranks_than_items(self):
        spans = [split_range(2, r, 4) for r in range(4)]
        assert spans == [(0, 1), (1, 2), (2, 2), (2, 2)]

    def test_zero_items(self):
        assert split_range(0, 0, 3) == (0, 0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            split_range(10, 0, 0)
        with pytest.raises(ValueError):
            split_range(10, 5, 4)
        with pytest.raises(ValueError):
            split_range(-1, 0, 1)


class TestSplitText:
    def test_words_not_broken(self):
        data = b"alpha beta gamma delta epsilon zeta"
        words = []
        for r in range(3):
            start, end = split_text(data, r, 3)
            words.extend(data[start:end].split())
        assert words == data.split()

    def test_single_rank_gets_everything(self):
        data = b"one two three"
        assert split_text(data, 0, 1) == (0, len(data))

    def test_disjoint_and_covering(self):
        data = b"the quick brown fox jumps over the lazy dog " * 5
        spans = [split_text(data, r, 4) for r in range(4)]
        assert spans[0][0] == 0
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert e0 == s1  # contiguous
        assert spans[-1][1] == len(data)

    def test_empty_input(self):
        assert split_text(b"", 0, 2) == (0, 0)
        assert split_text(b"", 1, 2) == (0, 0)

    def test_one_giant_word(self):
        data = b"x" * 100
        collected = []
        for r in range(4):
            s, e = split_text(data, r, 4)
            collected.append(data[s:e])
        # The single word must appear exactly once in total.
        assert b"".join(collected) == data


class TestSplitBlocks:
    def test_block_aligned(self):
        spans = [split_blocks(100, 10, r, 3) for r in range(3)]
        assert spans == [(0, 40), (40, 70), (70, 100)]
        for s, e in spans:
            assert s % 10 == 0 and e % 10 == 0

    def test_rejects_misaligned_total(self):
        with pytest.raises(ValueError):
            split_blocks(101, 10, 0, 2)

    def test_rejects_bad_block_size(self):
        with pytest.raises(ValueError):
            split_blocks(100, 0, 0, 2)


@given(st.integers(min_value=0, max_value=10_000),
       st.integers(min_value=1, max_value=64))
def test_property_range_partition(total, size):
    spans = [split_range(total, r, size) for r in range(size)]
    assert spans[0][0] == 0
    assert spans[-1][1] == total
    for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
        assert e0 == s1
        assert s0 <= e0


@given(st.text(alphabet="abc \n", min_size=0, max_size=300),
       st.integers(min_value=1, max_value=8))
def test_property_text_split_preserves_words(text, size):
    data = text.encode()
    words = []
    prev_end = 0
    for r in range(size):
        s, e = split_text(data, r, size)
        assert s == prev_end  # contiguous coverage
        prev_end = e
        words.extend(data[s:e].split())
    assert prev_end == len(data)
    assert words == data.split()
