"""Benchmark harness: scale, records, spec running."""

import pytest

from repro.bench import BenchScale, ExperimentSpec, RunRecord, Series, run_spec
from repro.bench.runner import stage_dataset
from repro.bench.tables import (
    render_memory_time_table,
    render_scaling_table,
    render_time_table,
)
from repro.mpi import COMET
from repro.mpi.platforms import SCALE_SHIFT


@pytest.fixture(scope="module")
def scale():
    return BenchScale(extra_shift=6)  # tiny for tests


@pytest.fixture(scope="module")
def platform(scale):
    return scale.platform(COMET)


class TestBenchScale:
    def test_total_shift(self, scale):
        assert scale.total_shift == SCALE_SHIFT + 6

    def test_size_scaling(self, scale):
        assert scale.size("64M") == (64 << 20) >> scale.total_shift

    def test_count_scaling(self, scale):
        assert scale.count(1 << 30) == 1 << (30 - scale.total_shift)

    def test_minimum_one(self, scale):
        assert scale.size(1) == 1
        assert scale.count(1) == 1

    def test_platform_rescaled(self, scale, platform):
        assert platform.node_memory == COMET.node_memory // 64
        assert platform.default_page_size == COMET.default_page_size // 64
        assert platform.compute_rate == pytest.approx(COMET.compute_rate / 64)
        assert platform.pfs.write_penalty == COMET.pfs.write_penalty

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHIFT", "2")
        assert BenchScale().extra_shift == 2

    def test_env_rejects_negative(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SHIFT", "-1")
        with pytest.raises(ValueError):
            BenchScale()

    def test_describe(self, scale):
        assert "1/65536" in scale.describe()


class TestRunRecord:
    def test_in_memory_flag(self):
        assert RunRecord("1G", "Mimir").in_memory
        assert not RunRecord("1G", "Mimir", oom=True).in_memory
        assert not RunRecord("1G", "Mimir", spilled=True).in_memory

    def test_cells(self):
        r = RunRecord("1G", "Mimir", peak_bytes=1 << 20, elapsed=1.5)
        assert r.memory_cell() == "1.0M"
        assert r.time_cell() == "1.50s"
        assert RunRecord("1G", "x", oom=True).memory_cell() == "OOM"
        assert RunRecord("1G", "x", spilled=True,
                         elapsed=2.0).time_cell().endswith("*")


class TestSeries:
    def make(self):
        s = Series("t")
        s.add(RunRecord("1G", "A", peak_bytes=1, elapsed=1))
        s.add(RunRecord("1G", "B", peak_bytes=2, elapsed=2))
        s.add(RunRecord("2G", "A", peak_bytes=3, elapsed=3, spilled=True))
        s.add(RunRecord("2G", "B", oom=True))
        return s

    def test_configs_and_labels_ordered(self):
        s = self.make()
        assert s.configs == ["A", "B"]
        assert s.labels == ["1G", "2G"]

    def test_get(self):
        s = self.make()
        assert s.get("A", "2G").spilled
        assert s.get("C", "1G") is None

    def test_max_in_memory_label(self):
        s = self.make()
        assert s.max_in_memory_label("A") == "1G"
        assert s.max_in_memory_label("B") == "1G"
        s2 = Series("u")
        s2.add(RunRecord("1G", "A", oom=True))
        assert s2.max_in_memory_label("A") is None

    def test_tables_render(self):
        s = self.make()
        for renderer in (render_memory_time_table, render_scaling_table,
                         render_time_table):
            text = renderer(s)
            assert "1G" in text and "A" in text and "OOM" in text


class TestStageDataset:
    def make_spec(self, platform, app, size, **kw):
        return ExperimentSpec(label="x", config_name="c", platform=platform,
                              nprocs=2, app=app, framework="mimir",
                              size=size, **kw)

    def test_wc_uniform_cached(self, platform):
        spec = self.make_spec(platform, "wc_uniform", 5000)
        path1, data1 = stage_dataset(spec)
        path2, data2 = stage_dataset(spec)
        assert path1 == path2
        assert data1 is data2  # cache hit

    def test_wc_wiki_different_from_uniform(self, platform):
        u = stage_dataset(self.make_spec(platform, "wc_uniform", 5000))[1]
        w = stage_dataset(self.make_spec(platform, "wc_wiki", 5000))[1]
        assert u != w

    def test_oc_size_in_points(self, platform):
        path, data = stage_dataset(self.make_spec(platform, "oc", 100))
        assert len(data) == 100 * 12

    def test_bfs_size_rounds_to_power_of_two(self, platform):
        path, data = stage_dataset(
            self.make_spec(platform, "bfs", 64, edgefactor=4))
        assert len(data) == 64 * 4 * 16

    def test_invalid_app_rejected(self, platform):
        with pytest.raises(ValueError):
            self.make_spec(platform, "nope", 10)

    def test_invalid_framework_rejected(self, platform):
        with pytest.raises(ValueError):
            ExperimentSpec(label="x", config_name="c", platform=platform,
                           nprocs=2, app="oc", framework="hadoop", size=10)


class TestRunSpec:
    def test_wordcount_end_to_end(self, platform):
        spec = ExperimentSpec(label="64M", config_name="Mimir",
                              platform=platform, nprocs=4,
                              app="wc_uniform", framework="mimir",
                              size=4096)
        record = run_spec(spec)
        assert record.label == "64M"
        assert record.config == "Mimir"
        assert record.peak_bytes > 0
        assert record.elapsed > 0
        assert not record.oom

    def test_mrmpi_end_to_end(self, platform):
        spec = ExperimentSpec(label="64M", config_name="MR-MPI",
                              platform=platform, nprocs=4, app="wc_uniform",
                              framework="mrmpi", size=4096,
                              mrmpi_page=32 * 1024)
        record = run_spec(spec)
        assert record.peak_bytes >= 4 * 7 * 32 * 1024  # 7 pages x 4 ranks

    def test_oom_captured_as_record(self, platform):
        spec = ExperimentSpec(label="big", config_name="Mimir",
                              platform=platform, nprocs=2, app="wc_uniform",
                              framework="mimir", size=200_000,
                              memory_limit=20_000)
        record = run_spec(spec)
        assert record.oom
        assert not record.in_memory
