"""End-to-end Mimir jobs on a simulated cluster."""

import operator
from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import (
    CSTRING,
    KVLayout,
    Mimir,
    MimirConfig,
    pack_u64,
    unpack_u64,
)
from repro.mpi import COMET

TEXT = (b"the quick brown fox jumps over the lazy dog "
        b"the fox and the dog became friends the end ") * 7
EXPECTED = Counter(TEXT.split())

SMALL = MimirConfig(page_size=1024, comm_buffer_size=1024,
                    input_chunk_size=256)


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_reduce(ctx, key, values):
    total = sum(unpack_u64(v) for v in values)
    ctx.emit(key, pack_u64(total))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def run_wordcount(nprocs, config=SMALL, combine=False, partial=False,
                  layout=None):
    return run_memtext(nprocs, TEXT, config=config, combine=combine,
                       partial=partial, layout=layout)


def run_memtext(nprocs, text, config=SMALL, combine=False, partial=False,
                layout=None):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("input.txt", text)
    if layout is not None:
        config = config.with_layout(layout)

    def job(env):
        mimir = Mimir(env, config)
        kvs = mimir.map_text_file("input.txt", wc_map,
                                  combine_fn=wc_combine if combine else None)
        if partial:
            out = mimir.partial_reduce(kvs, wc_combine)
        else:
            out = mimir.reduce(kvs, wc_reduce)
        return {k: unpack_u64(v) for k, v in out.records()}

    result = cluster.run(job)
    merged: Counter = Counter()
    for rank_counts in result.returns:
        for word, count in rank_counts.items():
            assert word not in merged, "word reduced on two ranks"
            merged[word] = count
    return merged, result


class TestWordCountCorrectness:
    def test_serial(self):
        merged, _ = run_wordcount(1)
        assert merged == EXPECTED

    def test_parallel(self):
        merged, _ = run_wordcount(4)
        assert merged == EXPECTED

    def test_many_ranks(self):
        merged, _ = run_wordcount(8)
        assert merged == EXPECTED

    def test_with_combiner(self):
        merged, _ = run_wordcount(4, combine=True)
        assert merged == EXPECTED

    def test_with_partial_reduce(self):
        merged, _ = run_wordcount(4, partial=True)
        assert merged == EXPECTED

    def test_with_kv_hint(self):
        merged, _ = run_wordcount(4, layout=KVLayout(key_len=CSTRING,
                                                     val_len=8))
        assert merged == EXPECTED

    def test_hint_plus_combine_plus_partial(self):
        merged, _ = run_wordcount(
            4, combine=True, partial=True,
            layout=KVLayout(key_len=CSTRING, val_len=8))
        assert merged == EXPECTED

    def test_tiny_buffers_force_many_rounds(self):
        config = MimirConfig(page_size=512, comm_buffer_size=256,
                             input_chunk_size=64)
        merged, _ = run_wordcount(4, config=config)
        assert merged == EXPECTED


class TestMemoryBehaviour:
    def test_all_buffers_released_at_end(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("input.txt", TEXT)

        def job(env):
            mimir = Mimir(env, SMALL)
            kvs = mimir.map_text_file("input.txt", wc_map)
            out = mimir.reduce(kvs, wc_reduce)
            out.free()
            return env.tracker.current

        result = cluster.run(job)
        assert result.returns == [0, 0]

    # Fine-grained pages (sub-page savings visible) over a corpus whose
    # per-key multiplicity stays small enough for 512-byte KMV records.
    MEMCFG = MimirConfig(page_size=512, comm_buffer_size=2048,
                         input_chunk_size=512)
    MEMTEXT = " ".join(f"word{i % 100:03d}" for i in range(3000)).encode()

    def _run_mem(self, **kwargs):
        return run_memtext(4, self.MEMTEXT, config=self.MEMCFG, **kwargs)

    def test_kv_hint_reduces_peak_memory(self):
        _, plain = self._run_mem()
        _, hinted = self._run_mem(layout=KVLayout(key_len=CSTRING, val_len=8))
        assert hinted.node_peak_bytes < plain.node_peak_bytes

    def test_partial_reduce_reduces_peak_memory(self):
        _, full = self._run_mem()
        _, partial = self._run_mem(partial=True)
        assert partial.node_peak_bytes < full.node_peak_bytes

    def test_elapsed_positive(self):
        _, result = run_wordcount(4)
        assert result.elapsed > 0


class TestOtherSources:
    def test_map_items(self):
        cluster = Cluster(COMET, nprocs=3, memory_limit=None)

        def job(env):
            items = range(env.comm.rank, 30, env.comm.size)

            def map_fn(ctx, i):
                ctx.emit(b"%d" % (i % 5), pack_u64(i))

            mimir = Mimir(env, SMALL)
            kvs = mimir.map_items(items, map_fn)
            out = mimir.reduce(
                kvs, lambda ctx, k, vs: ctx.emit(k, pack_u64(
                    sum(unpack_u64(v) for v in vs))))
            return {k: unpack_u64(v) for k, v in out.records()}

        result = cluster.run(job)
        merged = {}
        for part in result.returns:
            merged.update(part)
        expected = {}
        for i in range(30):
            key = b"%d" % (i % 5)
            expected[key] = expected.get(key, 0) + i
        assert merged == expected

    def test_map_binary_file(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        records = b"".join(pack_u64(i) for i in range(100))
        cluster.pfs.store("data.bin", records)

        def job(env):
            def map_fn(ctx, chunk):
                assert len(chunk) % 8 == 0
                for off in range(0, len(chunk), 8):
                    v = unpack_u64(chunk[off : off + 8])
                    ctx.emit(b"even" if v % 2 == 0 else b"odd", pack_u64(v))

            mimir = Mimir(env, SMALL)
            kvs = mimir.map_binary_file("data.bin", 8, map_fn)
            out = mimir.reduce(
                kvs, lambda ctx, k, vs: ctx.emit(k, pack_u64(len(vs))))
            return {k: unpack_u64(v) for k, v in out.records()}

        result = cluster.run(job)
        merged = {}
        for part in result.returns:
            merged.update(part)
        assert merged == {b"even": 50, b"odd": 50}

    def test_map_kvs_multistage(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("input.txt", TEXT)

        def job(env):
            mimir = Mimir(env, SMALL)
            kvs = mimir.map_text_file("input.txt", wc_map)
            counts = mimir.reduce(kvs, wc_reduce)

            # Stage 2: histogram of counts (count -> how many words).
            def map2(ctx, key, value):
                ctx.emit(value, pack_u64(1))

            stage2 = mimir.map_kvs(counts, map2)
            out = mimir.reduce(
                stage2, lambda ctx, k, vs: ctx.emit(k, pack_u64(
                    sum(unpack_u64(v) for v in vs))))
            return {unpack_u64(k): unpack_u64(v) for k, v in out.records()}

        result = cluster.run(job)
        merged = {}
        for part in result.returns:
            merged.update(part)
        expected = Counter(EXPECTED.values())
        assert merged == dict(expected)

    def test_custom_partitioner(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)

        def job(env):
            def map_fn(ctx, i):
                ctx.emit(b"%04d" % i, pack_u64(i))

            mimir = Mimir(env, SMALL)
            items = range(env.comm.rank, 40, env.comm.size)
            kvs = mimir.map_items(
                items, map_fn,
                partitioner=lambda key, p: int(key) % p)
            # Every key must land on the rank its number selects.
            return sorted(int(k) % env.comm.size == env.comm.rank
                          for k, _ in kvs.records())

        result = cluster.run(job)
        for flags in result.returns:
            assert all(flags)

    def test_write_output(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("input.txt", b"a b a")

        def job(env):
            mimir = Mimir(env, SMALL)
            kvs = mimir.map_text_file("input.txt", wc_map)
            out = mimir.reduce(kvs, wc_reduce)
            mimir.write_output(out, "out/wc",
                               render=lambda k, v: k + b" %d\n" % unpack_u64(v))

        cluster.run(job)
        combined = b"".join(cluster.pfs.fetch(p)
                            for p in cluster.pfs.listdir("out/"))
        lines = sorted(combined.splitlines())
        assert lines == [b"a 2", b"b 1"]


class TestShuffleBalance:
    def test_same_key_lands_on_one_rank(self):
        cluster = Cluster(COMET, nprocs=5, memory_limit=None)
        cluster.pfs.store("input.txt", TEXT)

        def job(env):
            mimir = Mimir(env, SMALL)
            kvs = mimir.map_text_file("input.txt", wc_map)
            return sorted({k for k, _ in kvs.records()})

        result = cluster.run(job)
        seen = {}
        for rank, keys in enumerate(result.returns):
            for key in keys:
                assert key not in seen, (
                    f"{key!r} on ranks {seen[key]} and {rank}")
                seen[key] = rank
        assert set(seen) == set(EXPECTED)
