"""Chaos tests: the daemon dies mid-submit and mid-run, and the
journal replay restores queue state and completes every job
bit-identically."""

import pytest

from repro.cluster import Cluster
from repro.ft.faults import SimulatedRankFailure
from repro.ft.injection import ChaosPlan
from repro.mpi import COMET, RankFailedError
from repro.sched.demo import stage_inputs
from repro.serve.catalog import merge_output, run_direct
from repro.serve.daemon import ServeDaemon

NPROCS = 4
WORDS = b"chaos monkey eats the cluster chaos wins chaos\n"


def make_cluster():
    cluster = Cluster(COMET, nprocs=NPROCS)
    stage_inputs(cluster, seed=0)
    return cluster


def reference(app, path, params, extra_inputs=()):
    cluster = make_cluster()
    for name, data in extra_inputs:
        cluster.pfs.store(name, data)
    result = cluster.run(lambda env: run_direct(app, env, path, params))
    return merge_output(app, result.returns)


def drain(daemon, limit=64):
    for _ in range(limit):
        busy = daemon.scheduler.queue_depth or any(
            j.state == "running" for j in daemon.jobs.values())
        if not busy:
            return
        daemon.tick()
    raise AssertionError("daemon did not drain")


class TestMidSubmitKill:
    def test_kill_between_journal_append_and_enqueue(self):
        """The mid-submit crash window: the submit record is durable
        but the scheduler never heard of the job.  Replay must requeue
        and complete it - journal-first means the journal wins."""
        chaos = ChaosPlan(seed=3).fail_at("serve:submit:job-0002", -1)
        cluster = make_cluster()
        daemon = ServeDaemon(cluster, chaos=chaos)
        daemon.recover()
        daemon.put_input("alice", "words.txt", WORDS)
        first = daemon.submit("alice", "wordcount", "words.txt")
        with pytest.raises(SimulatedRankFailure):
            daemon.submit("alice", "pagerank", "demo/graph.bin",
                          params={"iterations": 2})
        # The daemon is dead; the journaled-but-unqueued job exists in
        # the table yet never reached the scheduler.
        assert "job-0002" in daemon.jobs
        assert daemon.scheduler.queue_depth == 1
        daemon.kill()

        successor = ServeDaemon(cluster)
        assert successor.recover() == []
        assert successor.scheduler.queue_depth == 2
        drain(successor)
        assert successor.jobs[first.job_id].state == "done"
        assert successor.jobs["job-0002"].state == "done"
        assert successor.output(first.job_id) == reference(
            "wordcount", "serve/in/alice/words.txt", {},
            [("serve/in/alice/words.txt", WORDS)])
        assert successor.output("job-0002") == reference(
            "pagerank", "demo/graph.bin", {"iterations": 2})

    def test_torn_submit_record_never_resurrects(self):
        """If the crash tears the submit record itself, the client got
        an error, so replay must *not* recreate the job - no duplicated
        and no ghost work."""
        chaos = ChaosPlan(seed=5, torn_write_rate=1.0,
                          corruptible_prefix="serve/")
        cluster = make_cluster()
        daemon = ServeDaemon(cluster)
        daemon.recover()
        ok = daemon.submit("alice", "wordcount", "demo/words.txt")
        # Arm chaos only now so the earlier submit landed cleanly.
        daemon.journal.chaos = chaos
        with pytest.raises(SimulatedRankFailure):
            daemon.submit("alice", "wordcount", "demo/words.txt")
        daemon.kill()

        successor = ServeDaemon(cluster)
        successor.recover()
        assert sorted(successor.jobs) == [ok.job_id]
        drain(successor)
        assert successor.jobs[ok.job_id].state == "done"
        # The seq of the torn submission is reusable: resubmitting
        # yields a fresh id with no collision.
        again = successor.submit("alice", "wordcount", "demo/words.txt")
        drain(successor)
        assert successor.jobs[again.job_id].state == "done"


class TestMidRunKill:
    def test_rank_death_mid_round_recovers_on_restart(self):
        """A rank dies inside an admitted round (the daemon 'process'
        crashes with it).  The successor finds the started-but-
        unfinished job in the journal and re-admits it through
        run_with_recovery; the final artifact matches the direct
        reference bit for bit."""
        cluster = make_cluster()
        victim_tag = "serve:job:job-0001"
        chaos = ChaosPlan(seed=11).fail_at(victim_tag, 2)
        daemon = ServeDaemon(cluster, chaos=chaos)
        daemon.recover()
        daemon.put_input("alice", "words.txt", WORDS)
        job = daemon.submit("alice", "wordcount", "words.txt")
        with pytest.raises(RankFailedError):
            drain(daemon)
        assert daemon.jobs[job.job_id].state == "running"
        daemon.kill()

        # Same chaos plan rides along: the scheduled death already
        # fired, so recovery completes.
        successor = ServeDaemon(cluster, chaos=chaos)
        interrupted = successor.recover()
        assert interrupted == [job.job_id]
        recovered = successor.jobs[job.job_id]
        assert recovered.state == "done"
        assert "run_with_recovery" in "\n".join(recovered.log)
        assert successor.output(job.job_id) == reference(
            "wordcount", "serve/in/alice/words.txt", {},
            [("serve/in/alice/words.txt", WORDS)])

    def test_mixed_queue_survives_mid_run_kill(self):
        """Kill during job 2 of 4; the successor completes all four
        with no duplicated or lost jobs."""
        cluster = make_cluster()
        chaos = ChaosPlan(seed=13).fail_at("serve:job:job-0002", 1)
        daemon = ServeDaemon(cluster, chaos=chaos)
        daemon.recover()
        daemon.put_input("t", "words.txt", WORDS)
        specs = [("wordcount", "words.txt", {}),
                 ("pagerank", "demo/graph.bin", {"iterations": 2}),
                 ("wordcount", "demo/words.txt", {}),
                 ("pagerank", "demo/graph.bin", {"iterations": 3})]
        ids = [daemon.submit("t", app, inp, params=p).job_id
               for app, inp, p in specs]
        with pytest.raises(RankFailedError):
            drain(daemon)
        daemon.kill()

        successor = ServeDaemon(cluster, chaos=chaos)
        successor.recover()
        drain(successor)
        assert sorted(successor.jobs) == sorted(ids)
        for (app, inp, p), job_id in zip(specs, ids):
            assert successor.jobs[job_id].state == "done", \
                (job_id, successor.jobs[job_id].error)
            path = successor.jobs[job_id].input
            assert successor.output(job_id) == reference(
                app, path, p, [("serve/in/t/words.txt", WORDS)])

    def test_worker_thread_records_crash(self):
        """Through the real worker loop: the daemon marks itself
        crashed instead of hanging or swallowing the failure."""
        import time

        cluster = make_cluster()
        chaos = ChaosPlan(seed=17).fail_at("serve:job:job-0001", 0)
        daemon = ServeDaemon(cluster, chaos=chaos)
        daemon.start()
        try:
            daemon.submit("alice", "wordcount", "demo/words.txt")
            deadline = time.monotonic() + 30.0
            while not daemon.crashed and time.monotonic() < deadline:
                time.sleep(0.01)
            assert daemon.crashed
            assert isinstance(daemon.crash_error, RankFailedError)
            assert daemon.health()["status"] == "crashed"
        finally:
            daemon.stop()
