"""Fault tolerance: checkpoints, injection, and restart recovery."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.ft import (
    CheckpointManager,
    FaultPlan,
    SimulatedRankFailure,
    run_with_recovery,
)
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"oak elm ash fir oak elm oak yew ash oak " * 30
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def checkpointed_wordcount(env, ckpt, faults):
    """WordCount in two checkpointed phases: shuffle, then reduce."""
    mimir = Mimir(env, CFG)
    faults.check("start", env.comm.rank)

    if ckpt.has("shuffle"):
        kvs = ckpt.load_kvc("shuffle", CFG.layout, CFG.page_size)
    else:
        kvs = mimir.map_text_file("t.txt", wc_map)
        ckpt.save_kvc("shuffle", kvs)
    faults.check("after_shuffle", env.comm.rank)

    out = mimir.partial_reduce(kvs, wc_combine)
    faults.check("after_reduce", env.comm.rank)
    counts = {k: unpack_u64(v) for k, v in out.records()}
    out.free()
    return counts


def make_cluster(nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)
    return cluster


def merge(result):
    merged: Counter = Counter()
    for part in result.returns:
        merged.update(part)
    return merged


class TestFaultPlan:
    def test_fires_once(self):
        plan = FaultPlan().fail_at("x", 0)
        with pytest.raises(SimulatedRankFailure):
            plan.check("x", 0)
        plan.check("x", 0)  # second call: no raise
        assert plan.fired == {("x", 0)}
        assert plan.pending == set()

    def test_other_points_unaffected(self):
        plan = FaultPlan().fail_at("x", 1)
        plan.check("x", 0)
        plan.check("y", 1)
        assert plan.pending == {("x", 1)}


class TestCheckpointManager:
    def test_kvc_roundtrip(self):
        cluster = make_cluster(2)

        def job(env):
            ckpt = CheckpointManager(env, "t1")
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            before = list(kvs.records())
            ckpt.save_kvc("phase", kvs)
            assert ckpt.has("phase")
            restored = ckpt.load_kvc("phase", CFG.layout, CFG.page_size)
            after = list(restored.records())
            kvs.free()
            restored.free()
            return before == after

        assert all(cluster.run(job).returns)

    def test_state_roundtrip(self):
        cluster = make_cluster(2)

        def job(env):
            ckpt = CheckpointManager(env, "t2")
            ckpt.save_state("iter", {"level": 3, "rank": env.comm.rank})
            return ckpt.load_state("iter")

        result = cluster.run(job)
        assert result.returns[1] == {"level": 3, "rank": 1}

    def test_missing_checkpoint_raises(self):
        cluster = make_cluster(1)

        def job(env):
            ckpt = CheckpointManager(env, "t3")
            assert not ckpt.has("nope")
            with pytest.raises(KeyError):
                ckpt.load_kvc("nope")

        cluster.run(job)

    def test_clear_removes_all(self):
        cluster = make_cluster(1)

        def job(env):
            ckpt = CheckpointManager(env, "t4")
            ckpt.save_state("a", 1)
            ckpt.clear()
            return ckpt.has("a")

        assert cluster.run(job).returns == [False]

    def test_checkpoint_io_charges_time(self):
        cluster = make_cluster(1)

        def job(env):
            ckpt = CheckpointManager(env, "t5")
            t0 = env.comm.clock.time
            ckpt.save_state("a", list(range(1000)))
            return env.comm.clock.time - t0

        assert cluster.run(job).returns[0] > 0


class TestRecovery:
    def test_no_fault_single_attempt(self):
        cluster = make_cluster(4)
        ft = run_with_recovery(cluster, checkpointed_wordcount)
        assert ft.attempts == 1
        assert ft.restarts == 0
        assert merge(ft.result) == EXPECTED

    def test_recovers_from_failure_after_shuffle(self):
        cluster = make_cluster(4)
        plan = FaultPlan().fail_at("after_shuffle", 2)
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        assert ft.attempts == 2
        assert merge(ft.result) == EXPECTED
        assert plan.pending == set()

    def test_recovers_from_failure_at_start(self):
        cluster = make_cluster(4)
        plan = FaultPlan().fail_at("start", 0)
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        assert ft.attempts == 2
        assert merge(ft.result) == EXPECTED

    def test_multiple_failures_multiple_restarts(self):
        cluster = make_cluster(4)
        plan = (FaultPlan()
                .fail_at("start", 1)
                .fail_at("after_shuffle", 3)
                .fail_at("after_reduce", 0))
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        assert ft.attempts == 4
        assert merge(ft.result) == EXPECTED
        assert len(ft.failures) == 3

    def test_restart_skips_completed_phase(self):
        cluster = make_cluster(4)
        plan = FaultPlan().fail_at("after_shuffle", 2)
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        # The restarted attempt loaded the shuffle checkpoint instead of
        # re-reading and re-shuffling the input: the checkpoint data
        # files were read back at least once.
        reads = [p for p in cluster.pfs.listdir("ckpt/job/")
                 if not p.split("/")[-1].startswith("shuffle.done")]
        assert reads  # data files exist
        assert ft.total_elapsed > ft.result.elapsed  # lost time counted

    def test_sequential_failures_on_one_rank(self):
        # Same rank fails at successive points: one restart per fault.
        cluster = make_cluster(2)
        plan = (FaultPlan()
                .fail_at("start", 0)
                .fail_at("after_shuffle", 0)
                .fail_at("after_reduce", 0))
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan,
                               max_restarts=8)
        assert ft.attempts == 4
        assert merge(ft.result) == EXPECTED

    def test_budget_zero_reraises(self):
        cluster = make_cluster(2)
        plan = FaultPlan().fail_at("start", 0)
        with pytest.raises(RankFailedError):
            run_with_recovery(cluster, checkpointed_wordcount, faults=plan,
                              max_restarts=0)

    def test_non_injected_errors_propagate(self):
        cluster = make_cluster(2)

        def bad_job(env, ckpt, faults):
            raise ValueError("real bug")

        with pytest.raises(RankFailedError) as exc_info:
            run_with_recovery(cluster, bad_job)
        assert isinstance(exc_info.value.original, ValueError)
