"""BFS: traversal correctness against networkx, framework agreement."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.bfs import (
    BFS_HINT_LAYOUT,
    bfs_mimir,
    bfs_mrmpi,
    vertex_partitioner,
)
from repro.cluster import Cluster
from repro.core import MimirConfig, pack_u64
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

MIMIR_CFG = MimirConfig(page_size=8192, comm_buffer_size=8192,
                        input_chunk_size=4096)
MRMPI_CFG = MRMPIConfig(page_size=128 * 1024, input_chunk_size=4096)


def reference_bfs(edges):
    """networkx ground truth: root, reachable count, eccentricity."""
    graph = nx.Graph()
    for u, v in edges.tolist():
        if u != v:
            graph.add_edge(u, v)
    root = min(graph.nodes)
    lengths = nx.single_source_shortest_path_length(graph, root)
    return root, len(lengths), max(lengths.values())


def run_bfs(runner, edges, nprocs=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("edges.bin", edges_to_bytes(edges))
    result = cluster.run(
        lambda env: runner(env, "edges.bin", keep_parents=True, **kwargs))
    roots = {r.root for r in result.returns}
    levels = {r.levels for r in result.returns}
    assert len(roots) == 1 and len(levels) == 1
    parents = {}
    for r in result.returns:
        for vertex, parent in r.parents.items():
            assert vertex not in parents
            parents[vertex] = parent
    return roots.pop(), levels.pop(), parents, result


@pytest.fixture(scope="module")
def edges():
    return kronecker_edges(scale=7, edgefactor=8, seed=5)


class TestTraversalCorrectness:
    def test_mimir_visits_entire_component(self, edges):
        ref_root, ref_visited, ref_depth = reference_bfs(edges)
        root, levels, parents, _ = run_bfs(bfs_mimir, edges,
                                           config=MIMIR_CFG)
        assert root == ref_root
        assert len(parents) == ref_visited
        # Frontier rounds beyond the eccentricity do nothing.
        assert levels == ref_depth + 1 or levels == ref_depth

    def test_mrmpi_matches_mimir(self, edges):
        _, _, mimir_parents, _ = run_bfs(bfs_mimir, edges, config=MIMIR_CFG)
        _, _, mrmpi_parents, _ = run_bfs(bfs_mrmpi, edges, config=MRMPI_CFG)
        assert set(mimir_parents) == set(mrmpi_parents)

    def test_parents_form_a_tree(self, edges):
        graph = nx.Graph()
        for u, v in edges.tolist():
            if u != v:
                graph.add_edge(u, v)
        root, _, parents, _ = run_bfs(bfs_mimir, edges, config=MIMIR_CFG)
        assert parents[root] == root
        for vertex, parent in parents.items():
            if vertex != root:
                assert graph.has_edge(vertex, parent)
                assert parent in parents  # parent was visited first

    @pytest.mark.parametrize("opts", [
        {"hint": True},
        {"compress": True},
        {"hint": True, "compress": True},
    ])
    def test_mimir_optimizations_preserve_reachability(self, edges, opts):
        _, ref_visited, _ = reference_bfs(edges)[0], \
            reference_bfs(edges)[1], reference_bfs(edges)[2]
        _, _, parents, _ = run_bfs(bfs_mimir, edges, config=MIMIR_CFG, **opts)
        assert len(parents) == reference_bfs(edges)[1]

    def test_mrmpi_compress_preserves_reachability(self, edges):
        _, _, parents, _ = run_bfs(bfs_mrmpi, edges, config=MRMPI_CFG,
                                   compress=True)
        assert len(parents) == reference_bfs(edges)[1]

    def test_serial_equals_parallel(self, edges):
        _, _, p1, _ = run_bfs(bfs_mimir, edges, nprocs=1, config=MIMIR_CFG)
        _, _, p8, _ = run_bfs(bfs_mimir, edges, nprocs=8, config=MIMIR_CFG)
        assert set(p1) == set(p8)


class TestSmallGraphs:
    def test_path_graph(self):
        edges = np.array([[0, 1], [1, 2], [2, 3]], dtype="<u8")
        root, levels, parents, _ = run_bfs(bfs_mimir, edges, nprocs=2,
                                           config=MIMIR_CFG)
        assert root == 0
        assert len(parents) == 4
        assert levels >= 3

    def test_two_components_only_roots_component(self):
        edges = np.array([[0, 1], [2, 3]], dtype="<u8")
        _, _, parents, _ = run_bfs(bfs_mimir, edges, nprocs=2,
                                   config=MIMIR_CFG)
        assert set(parents) == {0, 1}

    def test_self_loops_ignored(self):
        edges = np.array([[0, 0], [0, 1]], dtype="<u8")
        _, _, parents, _ = run_bfs(bfs_mimir, edges, nprocs=2,
                                   config=MIMIR_CFG)
        assert set(parents) == {0, 1}

    def test_edgeless_graph_raises(self):
        edges = np.array([[5, 5]], dtype="<u8")  # only a self-loop
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("edges.bin", edges_to_bytes(edges))
        from repro.mpi import RankFailedError
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: bfs_mimir(env, "edges.bin",
                                              config=MIMIR_CFG))


class TestPartitioner:
    def test_owner_is_mod(self):
        assert vertex_partitioner(pack_u64(10), 4) == 2
        assert vertex_partitioner(pack_u64(7), 4) == 3

    def test_hint_layout(self):
        assert BFS_HINT_LAYOUT.key_len == 8
        assert BFS_HINT_LAYOUT.val_len == 8
        assert BFS_HINT_LAYOUT.header_size == 0


class TestMemoryShape:
    def test_peak_is_in_partition_phase_not_traversal(self, edges):
        """Paper: BFS peak memory occurs during graph partitioning, so
        compression (which only shrinks traversal traffic) cannot help."""
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("edges.bin", edges_to_bytes(edges))

        def job(env):
            peak_before = env.tracker.peak  # ~0
            result = bfs_mimir(env, "edges.bin", MIMIR_CFG)
            return peak_before, env.tracker.peak, result.visited_local

        plain = cluster.run(job)

        cluster2 = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster2.pfs.store("edges.bin", edges_to_bytes(edges))
        compressed = cluster2.run(
            lambda env: bfs_mimir(env, "edges.bin", MIMIR_CFG,
                                  compress=True) and env.tracker.peak)
        # Paper: "Mimir has the same memory usage with and without
        # compression" for BFS - the peak is in the partition phase,
        # which compression does not touch.
        plain_peak = sum(plain.peak_bytes)
        cps_peak = sum(compressed.peak_bytes)
        assert abs(plain_peak - cps_peak) <= 0.25 * plain_peak
