"""TeraSort: global order, validation, scan/write_at plumbing."""

import pytest

from repro.apps.terasort import (
    RECORD_SIZE,
    checksum,
    generate_records,
    terasort_mimir,
    validate_output,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.mpi import COMET, World

CFG = MimirConfig(page_size=4096, comm_buffer_size=4096,
                  input_chunk_size=2048)


def run_terasort(nrecords, nprocs=4, seed=1):
    data = generate_records(nrecords, seed=seed)
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("tera/in.bin", data)
    result = cluster.run(
        lambda env: terasort_mimir(env, "tera/in.bin", "tera/out.bin", CFG))
    return data, cluster.pfs.fetch("tera/out.bin"), result


class TestScanCollective:
    def test_inclusive_scan(self):
        result = World(4).run(lambda comm: comm.scan(comm.rank + 1))
        assert result.returns == [1, 3, 6, 10]

    def test_exclusive_scan(self):
        result = World(4).run(lambda comm: comm.exscan(comm.rank + 1))
        assert result.returns == [0, 1, 3, 6]

    def test_scan_custom_op(self):
        result = World(3).run(lambda comm: comm.scan(comm.rank + 2,
                                                     op=lambda a, b: a * b))
        assert result.returns == [2, 6, 24]

    def test_serial(self):
        assert World(1).run(lambda comm: comm.scan(5)).returns == [5]
        assert World(1).run(lambda comm: comm.exscan(5)).returns == [0]


class TestWriteAt:
    def test_disjoint_regions_compose(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)

        def job(env):
            piece = bytes([65 + env.comm.rank]) * 3
            env.pfs.write_at(env.comm, "shared.bin",
                             env.comm.rank * 3, piece)
            env.comm.barrier()

        cluster.run(job)
        assert cluster.pfs.fetch("shared.bin") == b"AAABBBCCCDDD"

    def test_gaps_read_as_zero(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        cluster.run(lambda env: env.pfs.write_at(env.comm, "g.bin", 4,
                                                 b"xy"))
        assert cluster.pfs.fetch("g.bin") == b"\0\0\0\0xy"

    def test_negative_offset_rejected(self):
        from repro.mpi import RankFailedError

        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: env.pfs.write_at(env.comm, "g", -1,
                                                     b"x"))


class TestTeraSort:
    def test_output_valid(self):
        input_data, output_data, _ = run_terasort(400)
        assert validate_output(input_data, output_data) == []

    def test_record_counts_partition(self):
        _, _, result = run_terasort(300)
        assert sum(r.records_local for r in result.returns) == 300

    def test_serial(self):
        input_data, output_data, _ = run_terasort(100, nprocs=1)
        assert validate_output(input_data, output_data) == []

    def test_output_is_rank_ordered(self):
        # Keys in the shared file are globally nondecreasing - the
        # offset writes composed the per-rank slices correctly.
        _, output_data, _ = run_terasort(500, nprocs=6)
        keys = [output_data[off : off + 4]
                for off in range(0, len(output_data), RECORD_SIZE)]
        assert keys == sorted(keys)

    def test_empty_input(self):
        input_data, output_data, _ = run_terasort(0)
        assert output_data == b""
        assert validate_output(input_data, output_data) == []


class TestValidator:
    def test_detects_disorder(self):
        # Build two definitely out-of-order records by hand.
        big = b"\xff\xff\xff\xff" + b"p" * 12
        small = b"\x00\x00\x00\x00" + b"q" * 12
        data = small + big          # the "input" (order irrelevant)
        disordered = big + small    # an unsorted "output"
        problems = validate_output(data, disordered)
        assert any("order" in p for p in problems)

    def test_detects_size_mismatch(self):
        data = generate_records(10)
        assert validate_output(data, data[:-RECORD_SIZE])

    def test_detects_content_change(self):
        data = generate_records(10, seed=3)
        # Sort the records so order passes, then corrupt one payload.
        records = sorted(data[off : off + RECORD_SIZE]
                         for off in range(0, len(data), RECORD_SIZE))
        good = b"".join(records)
        bad = bytearray(good)
        bad[5] ^= 0xFF
        assert validate_output(data, bytes(bad))