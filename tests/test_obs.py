"""Observability subsystem: registry, spans, Chrome export, reports."""

import json

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET
from repro.obs.chrome import to_chrome_trace, validate_chrome_trace
from repro.obs.registry import (
    METRICS,
    Histogram,
    MetricShard,
    MetricsRegistry,
    UnknownMetricError,
    aggregate,
    reduce_metrics,
    register,
)
from repro.tools.trace import Trace

CFG = MimirConfig(page_size=1024, comm_buffer_size=1024,
                  input_chunk_size=256)
TEXT = b"ash oak elm fir pine ash oak " * 40


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def run_wordcount(nprocs=3, trace=None):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)

    def job(env):
        mimir = Mimir(env, CFG, trace=trace)
        kvs = mimir.map_text_file("t.txt", wc_map)
        out = mimir.reduce(kvs, wc_reduce)
        n = len(out)
        out.free()
        return n

    cluster.run(job)
    return cluster


# ----------------------------------------------------------- registry

class TestRegistry:
    def test_every_registered_name_has_full_spec(self):
        for name, spec in METRICS.items():
            assert spec.name == name
            assert spec.kind in ("counter", "gauge", "histogram")
            assert spec.unit and spec.module and spec.description

    def test_register_idempotent(self):
        spec = METRICS["core.map.records"]
        again = register(spec.name, spec.kind, spec.unit, spec.module,
                         spec.description)
        assert again == spec

    def test_register_conflict_rejected(self):
        with pytest.raises(ValueError):
            register("core.map.records", "gauge", "records",
                     "repro.core.job", "different")

    def test_unknown_metric_rejected(self):
        shard = MetricShard()
        with pytest.raises(UnknownMetricError):
            shard.inc("no.such.metric")
        with pytest.raises(UnknownMetricError):
            shard.value("no.such.metric")

    def test_kind_mismatch_rejected(self):
        shard = MetricShard()
        with pytest.raises(UnknownMetricError):
            shard.observe("core.map.records", 1.0)  # registered counter

    def test_counter_and_value(self):
        shard = MetricShard(rank=2)
        shard.inc("core.map.records", 5)
        shard.inc("core.map.records")
        assert shard.value("core.map.records") == 6
        assert shard.value("core.reduce.keys") == 0  # never emitted

    def test_histogram_observe_and_summary(self):
        shard = MetricShard()
        shard.observe("core.phase.seconds", 0.5)
        shard.observe("core.phase.seconds", 1.5)
        summary = shard.value("core.phase.seconds")
        assert summary["count"] == 2
        assert summary["min"] == 0.5 and summary["max"] == 1.5
        assert summary["mean"] == pytest.approx(1.0)

    def test_aggregate_counters_sum_histograms_merge(self):
        a, b = MetricShard(0), MetricShard(1)
        a.inc("core.map.records", 10)
        b.inc("core.map.records", 4)
        a.observe("core.phase.seconds", 1.0)
        b.observe("core.phase.seconds", 3.0)
        totals = aggregate([a.snapshot(), b.snapshot()])
        assert totals["core.map.records"] == 14
        assert totals["core.phase.seconds"]["count"] == 2
        assert totals["core.phase.seconds"]["max"] == 3.0

    def test_histogram_bucket_overflow(self):
        h = Histogram()
        h.observe(1e9)  # beyond the last decade bound
        assert h.buckets[-1] == 1 and h.count == 1

    def test_registry_render_empty(self):
        assert MetricsRegistry().render() == "(no metrics emitted)"


# ------------------------------------------------------------- wiring

class TestWiring:
    def test_core_and_mpi_and_io_metrics_emitted(self):
        cluster = run_wordcount(nprocs=3)
        totals = cluster.metrics.totals()
        assert totals["core.map.records"] == len(TEXT.split())
        assert totals["core.map.kv_bytes"] > 0
        assert totals["core.reduce.keys"] > 0
        assert totals["mpi.alltoallv.rounds"] >= 3   # one per rank
        assert totals["mpi.alltoallv.bytes"] > 0
        assert totals["mpi.collectives"] > 0
        assert totals["io.pfs.reads"] >= 3  # >= one chunk read per rank
        assert totals["io.pfs.bytes_read"] > 0
        assert totals["core.phase.seconds"]["count"] == 6  # 2 phases x 3

    def test_by_rank_breakdown(self):
        cluster = run_wordcount(nprocs=2)
        by_rank = cluster.metrics.by_rank("core.map.records")
        assert set(by_rank) == {0, 1}
        assert sum(by_rank.values()) == len(TEXT.split())

    def test_render_lists_catalog_names(self):
        cluster = run_wordcount(nprocs=2)
        text = cluster.metrics.render()
        assert "core.map.records" in text
        assert "mpi.alltoallv.rounds" in text

    def test_reduce_metrics_collective_identical_totals(self):
        cluster = Cluster(COMET, nprocs=3, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)

        def job(env):
            mimir = Mimir(env, CFG)
            mimir.map_text_file("t.txt", wc_map).free()
            return reduce_metrics(env.comm, env.metrics)

        result = cluster.run(job)
        first = result.returns[0]
        assert all(r == first for r in result.returns)
        assert first["core.map.records"] == len(TEXT.split())

    def test_combiner_metrics(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)

        def job(env):
            mimir = Mimir(env, CFG)
            mimir.map_text_file(
                "t.txt", wc_map,
                combine_fn=lambda k, a, b: pack_u64(
                    unpack_u64(a) + unpack_u64(b))).free()

        cluster.run(job)
        totals = cluster.metrics.totals()
        assert totals["core.combine.records_in"] == len(TEXT.split())
        assert totals["core.combine.merged"] > 0

    def test_checkpoint_and_retry_metrics(self):
        from repro.ft.checkpoint import CheckpointManager
        from repro.ft.injection import ChaosPlan

        # Rate 1.0 + max_faults=1: exactly the first PFS op fails once,
        # and all checkpoint I/O sits behind the retry wrapper, so the
        # fault is absorbed (same shape as the ft chaos tests).
        chaos = ChaosPlan(seed=1, io_error_rate=1.0, max_faults=1)
        cluster = Cluster(COMET, nprocs=2, memory_limit=None, chaos=chaos)

        def job(env):
            ckpt = CheckpointManager(env, "obs-job", faults=chaos)
            ckpt.save_state("phase", {"round": env.comm.rank})
            return ckpt.load_state("phase")

        cluster.run(job)
        totals = cluster.metrics.totals()
        assert totals["ft.checkpoint.saves"] == 2
        assert totals["ft.checkpoint.restores"] == 2
        assert totals["ft.faults.injected"] == 1
        # Every injected transient error was absorbed by a retry.
        assert totals["io.pfs.retries"] >= totals["ft.faults.injected"]
        assert totals["io.pfs.writes"] >= 4  # data + marker per rank

    def test_restart_metric(self):
        from repro.ft.faults import FaultPlan
        from repro.ft.runner import run_with_recovery

        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)
        plan = FaultPlan().fail_at("mid", 1)

        def job(env, ckpt, faults):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            faults.check("mid", env.comm.rank)
            n = len(kvs)
            kvs.free()
            return n

        ft = run_with_recovery(cluster, job, faults=plan)
        assert ft.restarts == 1
        assert cluster.metrics.totals()["ft.restarts"] == 1

    def test_sched_metrics(self):
        from repro.sched.demo import make_job, stage_inputs
        from repro.sched.scheduler import Scheduler

        cluster = Cluster(COMET, 4, memory_limit="512K")
        paths = stage_inputs(cluster)
        scheduler = Scheduler(cluster)
        scheduler.submit(make_job("wordcount", paths, priority=2))
        scheduler.submit(make_job("pagerank", paths, priority=1))
        report = scheduler.run()
        assert all(o.completed for o in report.outcomes)
        totals = cluster.metrics.totals()
        assert totals["sched.admissions"] == 2
        assert totals["sched.stages.executed"] > 0
        assert totals["sched.cache.hits"] > 0  # PageRank reuses its graph


# -------------------------------------------------------------- spans

class TestSpans:
    def test_span_nesting_and_balance(self):
        trace = Trace()
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)

        def job(env):
            with trace.span(env, "outer", job="t"):
                env.comm.advance(0.1)
                with trace.span(env, "inner"):
                    env.comm.advance(0.2)

        cluster.run(job)
        spans = trace.of_kind("span")
        assert len(spans) == 8  # 2 ranks x 2 spans x B+E
        for rank in (0, 1):
            labels = [(e.label, e.data["ph"]) for e in spans
                      if e.rank == rank]
            assert labels == [("outer", "B"), ("inner", "B"),
                              ("inner", "E"), ("outer", "E")]

    def test_span_closes_on_exception(self):
        trace = Trace()
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            try:
                with trace.span(env, "risky"):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass

        cluster.run(job)
        phs = [e.data["ph"] for e in trace.of_kind("span")]
        assert phs == ["B", "E"]

    def test_trace_json_roundtrip_preserves_spans(self):
        trace = Trace()
        trace.begin_abs(0.0, -1, "drain")
        trace.emit_abs(0.5, -1, "submit", "wc", job="wc")
        trace.end_abs(1.0, -1, "drain")
        again = Trace.from_json(trace.to_json())
        assert [e.label for e in again.merged()] == \
            [e.label for e in trace.merged()]
        assert again.of_kind("span")[0].data["ph"] == "B"


# ------------------------------------------------------- chrome export

class TestChromeExport:
    def check(self, data):
        validate_chrome_trace(data)
        return data["traceEvents"]

    def test_real_run_exports_valid(self):
        trace = Trace()
        run_wordcount(nprocs=3, trace=trace)
        events = self.check(to_chrome_trace(trace))
        assert all("ph" in e and "ts" in e and "pid" in e and "tid" in e
                   for e in events)
        names = {e["name"] for e in events if e["ph"] == "B"}
        assert "map+aggregate" in names
        assert "convert+reduce" in names

    def test_phase_pairs_balanced_per_thread(self):
        trace = Trace()
        run_wordcount(nprocs=2, trace=trace)
        events = self.check(to_chrome_trace(trace))
        for tid in (0, 1):
            depth = 0
            for e in events:
                if e["ph"] == "M" or e["tid"] != tid or e["pid"] != 0:
                    continue
                if e["ph"] == "B":
                    depth += 1
                elif e["ph"] == "E":
                    depth -= 1
                    assert depth >= 0
            assert depth == 0

    def test_timestamps_monotone_per_thread(self):
        trace = Trace()
        run_wordcount(nprocs=3, trace=trace)
        events = self.check(to_chrome_trace(trace))
        last = {}
        for e in events:
            if e["ph"] == "M":
                continue
            key = (e["pid"], e["tid"])
            assert e["ts"] >= last.get(key, 0.0)
            last[key] = e["ts"]

    def test_instant_events_carry_scope(self):
        trace = Trace()
        trace.emit_abs(0.1, 0, "custom", "marker", detail=1)
        events = self.check(to_chrome_trace(trace))
        instants = [e for e in events if e["ph"] == "i"]
        assert instants and instants[0]["s"] == "t"
        assert instants[0]["args"]["detail"] == 1

    def test_dangling_begin_is_closed(self):
        trace = Trace()
        trace.begin_abs(0.0, 0, "outer")
        trace.begin_abs(1.0, 0, "inner")   # neither ever ends
        self.check(to_chrome_trace(trace))

    def test_stray_end_is_dropped(self):
        trace = Trace()
        trace.end_abs(1.0, 0, "phantom")
        events = self.check(to_chrome_trace(trace))
        assert not [e for e in events if e["ph"] == "E"]

    def test_scheduler_events_get_own_process(self):
        trace = Trace()
        trace.emit_abs(0.0, -1, "submit", "wc", job="wc")
        trace.emit_abs(0.1, 2, "custom", "rank-side")
        events = to_chrome_trace(trace)["traceEvents"]
        pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert pids == {0, 1}

    def test_microsecond_conversion(self):
        trace = Trace()
        trace.emit_abs(0.5, 0, "custom", "tick")
        events = to_chrome_trace(trace)["traceEvents"]
        tick = [e for e in events if e.get("name") == "tick"][0]
        assert tick["ts"] == pytest.approx(5e5)

    def test_validator_catches_unbalanced(self):
        bad = {"traceEvents": [
            {"name": "x", "ph": "B", "ts": 0, "pid": 0, "tid": 0}]}
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)

    def test_validator_catches_missing_fields(self):
        with pytest.raises(ValueError):
            validate_chrome_trace({"traceEvents": [{"ph": "i", "ts": 0}]})

    def test_validator_catches_time_travel(self):
        bad = {"traceEvents": [
            {"name": "a", "ph": "i", "ts": 5, "pid": 0, "tid": 0, "s": "t"},
            {"name": "b", "ph": "i", "ts": 1, "pid": 0, "tid": 0, "s": "t"},
        ]}
        with pytest.raises(ValueError):
            validate_chrome_trace(bad)


# ------------------------------------------------------------- reports

class TestReports:
    def test_wordcount_report_sections(self):
        from repro.obs.report import run_wordcount_report

        report = run_wordcount_report(nprocs=2, input_bytes=1 << 12)
        text = report.render()
        assert "-- phases --" in text
        assert "map+aggregate" in text and "convert+reduce" in text
        assert "-- memory --" in text and "send_buffer" in text
        assert "-- metrics --" in text and "core.map.records" in text
        assert report.lanes is None
        validate_chrome_trace(to_chrome_trace(report.trace))

    def test_pipeline_report_sections(self):
        from repro.obs.report import run_pipeline_report

        report = run_pipeline_report(nprocs=2)
        text = report.render()
        assert "-- phases --" in text and "map+aggregate" in text
        assert "-- job lanes --" in text
        assert "wordcount" in text and "pagerank" in text
        assert report.metric_totals["sched.admissions"] == 2
        validate_chrome_trace(to_chrome_trace(report.trace))

    def test_load_trace_report(self, tmp_path):
        trace = Trace()
        trace.emit_abs(0.0, -1, "submit", "wc", job="wc")
        trace.emit_abs(0.1, 0, "phase", "map+aggregate:start")
        trace.emit_abs(0.4, 0, "phase", "map+aggregate:end")
        path = tmp_path / "trace.json"
        path.write_text(trace.to_json())

        from repro.obs.report import load_trace_report

        report = load_trace_report(str(path))
        assert report.lanes is not None
        [row] = report.phases
        assert row.name == "map+aggregate"
        assert row.total == pytest.approx(0.3)

    def test_phase_rows_ignore_unpaired_events(self):
        from repro.obs.report import phase_rows_from_trace

        trace = Trace()
        trace.emit_abs(0.1, 0, "phase", "map+aggregate:end")  # no start
        assert phase_rows_from_trace(trace) == []


# ----------------------------------------------------------------- cli

class TestReportCli:
    def test_report_wordcount_writes_valid_trace(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "wc.json"
        assert main(["report", "wordcount", "--nprocs", "2",
                     "--trace-out", str(out)]) == 0
        printed = capsys.readouterr().out
        assert "-- metrics --" in printed
        validate_chrome_trace(json.loads(out.read_text()))

    def test_report_from_trace(self, tmp_path, capsys):
        from repro.cli import main

        trace = Trace()
        trace.emit_abs(0.0, -1, "admit", "wc", job="wc")
        saved = tmp_path / "saved.json"
        saved.write_text(trace.to_json())
        assert main(["report", "--from-trace", str(saved)]) == 0
        assert "saved trace" in capsys.readouterr().out

    def test_report_from_chrome_export_fails_cleanly(self, tmp_path,
                                                     capsys):
        # Feeding the *other* file the CLI writes (the Perfetto export)
        # back to --from-trace must explain itself, not traceback.
        from repro.cli import main

        wrong = tmp_path / "chrome.json"
        wrong.write_text(json.dumps({"traceEvents": []}))
        assert main(["report", "--from-trace", str(wrong)]) == 1
        assert "Chrome/Perfetto export" in capsys.readouterr().out

    def test_report_default_app_is_wordcount(self, tmp_path, capsys):
        from repro.cli import build_parser

        args = build_parser().parse_args(["report"])
        assert args.app == "wordcount" and args.fn is not None
