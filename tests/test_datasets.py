"""Dataset generators: determinism, sizes, distribution shape."""

import numpy as np
import pytest

from repro.datasets import (
    EDGE_RECORD_SIZE,
    POINT_RECORD_SIZE,
    edges_to_bytes,
    kronecker_edges,
    normal_points,
    points_to_bytes,
    uniform_text,
    zipf_text,
)
from repro.datasets.graph500 import bytes_to_edges
from repro.datasets.points import bytes_to_points


class TestUniformText:
    def test_size_close_to_requested(self):
        data = uniform_text(10_000, vocab_size=256, seed=1)
        assert 0.9 * 10_000 <= len(data) <= 10_000

    def test_deterministic(self):
        assert uniform_text(5000, seed=7) == uniform_text(5000, seed=7)

    def test_seed_changes_output(self):
        assert uniform_text(5000, seed=1) != uniform_text(5000, seed=2)

    def test_words_have_fixed_length(self):
        data = uniform_text(5000, word_len=6, vocab_size=128, seed=0)
        words = data.split()
        assert words
        assert all(len(w) == 6 for w in words)

    def test_vocab_bounded(self):
        data = uniform_text(50_000, vocab_size=64, seed=0)
        assert len(set(data.split())) <= 64

    def test_roughly_uniform(self):
        data = uniform_text(200_000, vocab_size=32, word_len=6, seed=3)
        words = data.split()
        counts = np.array([words.count(w) for w in set(words)])
        assert counts.max() < 2.0 * counts.min()

    def test_zero_bytes(self):
        assert uniform_text(0) == b""

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            uniform_text(100, vocab_size=0)
        with pytest.raises(ValueError):
            uniform_text(100, word_len=0)


class TestZipfText:
    def test_size_close_to_requested(self):
        data = zipf_text(20_000, vocab_size=512, seed=1)
        assert 0.8 * 20_000 <= len(data) <= 20_000

    def test_deterministic(self):
        assert zipf_text(5000, seed=9) == zipf_text(5000, seed=9)

    def test_skewed_distribution(self):
        data = zipf_text(100_000, vocab_size=1024, seed=2)
        words = data.split()
        unique, counts = np.unique(np.array(words, dtype=object),
                                   return_counts=True)
        counts = np.sort(counts)[::-1]
        # Top word dominates: far above the median (heavy head).
        assert counts[0] > 10 * np.median(counts)

    def test_variable_word_lengths(self):
        data = zipf_text(50_000, vocab_size=1024, seed=2)
        lengths = {len(w) for w in data.split()}
        assert len(lengths) >= 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            zipf_text(100, vocab_size=0)
        with pytest.raises(ValueError):
            zipf_text(100, min_len=5, max_len=3)


class TestPoints:
    def test_shape_and_dtype(self):
        pts = normal_points(1000, seed=0)
        assert pts.shape == (1000, 3)
        assert pts.dtype == np.dtype("<f4")

    def test_within_unit_cube(self):
        pts = normal_points(5000, seed=1)
        assert pts.min() >= 0.0
        assert pts.max() < 1.0

    def test_distribution_center(self):
        pts = normal_points(20_000, seed=2)
        assert abs(float(pts.mean()) - 0.5) < 0.05

    def test_deterministic(self):
        assert np.array_equal(normal_points(100, seed=5),
                              normal_points(100, seed=5))

    def test_serialisation_roundtrip(self):
        pts = normal_points(257, seed=3)
        data = points_to_bytes(pts)
        assert len(data) == 257 * POINT_RECORD_SIZE
        assert np.array_equal(bytes_to_points(data), pts)

    def test_zero_points(self):
        assert normal_points(0).shape == (0, 3)

    def test_invalid(self):
        with pytest.raises(ValueError):
            normal_points(-1)
        with pytest.raises(ValueError):
            bytes_to_points(b"x" * 13)


class TestKronecker:
    def test_edge_count(self):
        edges = kronecker_edges(scale=8, edgefactor=32, seed=0)
        assert edges.shape == (32 * 256, 2)

    def test_vertex_ids_in_range(self):
        edges = kronecker_edges(scale=7, seed=1)
        assert edges.max() < 128

    def test_deterministic(self):
        assert np.array_equal(kronecker_edges(6, seed=4),
                              kronecker_edges(6, seed=4))

    def test_skewed_degrees(self):
        edges = kronecker_edges(scale=10, edgefactor=32, seed=2)
        degrees = np.bincount(edges.reshape(-1).astype(np.int64),
                              minlength=1024)
        connected = degrees[degrees > 0]
        # Scale-free: max degree far above the median degree.
        assert connected.max() > 8 * np.median(connected)

    def test_average_degree_32(self):
        scale = 9
        edges = kronecker_edges(scale=scale, edgefactor=32, seed=3)
        assert len(edges) / (1 << scale) == 32

    def test_serialisation_roundtrip(self):
        edges = kronecker_edges(5, seed=6)
        data = edges_to_bytes(edges)
        assert len(data) == len(edges) * EDGE_RECORD_SIZE
        assert np.array_equal(bytes_to_edges(data), edges)

    def test_invalid(self):
        with pytest.raises(ValueError):
            kronecker_edges(-1)
        with pytest.raises(ValueError):
            kronecker_edges(4, edgefactor=0)
        with pytest.raises(ValueError):
            kronecker_edges(4, a=0.6, b=0.3, c=0.2)
