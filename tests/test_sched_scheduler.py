"""Multi-job scheduler: admission, gangs, degradation, OOM recovery."""

import pytest

from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.mpi import COMET
from repro.sched import FootprintEstimator, SchedJob, Scheduler
from repro.sched.demo import make_job, stage_inputs
from repro.tools import SCHED_EVENT_KINDS, Trace, render_job_lanes

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)


def alloc_job(nbytes, *, check_degraded=None):
    """A job that transiently allocates ``nbytes`` on every rank."""

    def fn(env, ctx):
        if check_degraded is not None:
            assert ctx.degraded is check_degraded
            assert ctx.config.out_of_core is check_degraded
        env.tracker.allocate(nbytes, "work")
        env.comm.barrier()
        env.tracker.free(nbytes, "work")
        return env.comm.rank

    return fn


def make_scheduler(memory_limit="512K", nprocs=2, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=memory_limit)
    trace = Trace()
    return Scheduler(cluster, trace=trace, **kwargs), trace


class TestAdmission:
    def test_oversubscribed_jobs_serialize(self):
        # Budget: 512K * 0.9 = 460.8K; two 300K jobs cannot share it.
        sched, trace = make_scheduler()
        sched.submit(SchedJob("a", alloc_job(100_000), priority=1,
                              footprint="300K", config=CFG))
        sched.submit(SchedJob("b", alloc_job(100_000),
                              footprint="300K", config=CFG))
        report = sched.run()
        assert report.rounds == 2 and report.ooms == 0
        assert report.outcome("a").round == 1
        assert report.outcome("b").round == 2
        assert report.outcome("b").queued_rounds == 1
        queued = trace.of_kind("queue")
        assert [e.data["job"] for e in queued] == ["b"]

    def test_fitting_jobs_gang_into_one_round(self):
        sched, trace = make_scheduler()
        sched.submit(SchedJob("a", alloc_job(50_000),
                              footprint="100K", config=CFG))
        sched.submit(SchedJob("b", alloc_job(50_000),
                              footprint="100K", config=CFG))
        report = sched.run()
        assert report.rounds == 1 and report.ooms == 0
        assert report.outcome("a").round == report.outcome("b").round == 1
        assert not trace.of_kind("queue")

    def test_priority_beats_submission_order(self):
        sched, _ = make_scheduler()
        sched.submit(SchedJob("late", alloc_job(1000), priority=0,
                              footprint="300K", config=CFG))
        sched.submit(SchedJob("urgent", alloc_job(1000), priority=5,
                              footprint="300K", config=CFG))
        report = sched.run()
        assert report.outcome("urgent").round == 1
        assert report.outcome("late").round == 2

    def test_oversized_job_degrades_to_out_of_core(self):
        sched, _ = make_scheduler()
        sched.submit(SchedJob("huge", alloc_job(1000, check_degraded=True),
                              footprint="600K", config=CFG))
        report = sched.run()
        outcome = report.outcome("huge")
        assert outcome.completed and outcome.degraded
        assert report.ooms == 0

    def test_non_degradable_oversized_job_runs_plain(self):
        sched, _ = make_scheduler()
        sched.submit(SchedJob("huge", alloc_job(1000, check_degraded=False),
                              footprint="600K", degradable=False,
                              config=CFG))
        report = sched.run()
        assert report.outcome("huge").completed
        assert not report.outcome("huge").degraded

    def test_unlimited_memory_admits_everything(self):
        sched, _ = make_scheduler(memory_limit=None)
        for i in range(4):
            sched.submit(SchedJob(f"j{i}", alloc_job(1000),
                                  footprint="10M", config=CFG))
        report = sched.run()
        assert report.rounds == 1
        assert all(o.completed for o in report.outcomes)


class TestEstimator:
    def test_seeded_then_learned(self):
        est = FootprintEstimator(nprocs=4)
        job = SchedJob("j", alloc_job(0), input_bytes=40_000)
        seeded = est.estimate(job, CFG)
        assert seeded == 2 * CFG.comm_buffer_size + 4 * CFG.page_size \
            + int(40_000 / 4 * FootprintEstimator.EXPANSION)
        est.observe("j", 80_000)
        assert est.estimate(job, CFG) == int(80_000 * 1.25)
        est.observe("j", 50_000)  # never forgets a higher peak
        assert est.estimate(job, CFG) == int(80_000 * 1.25)
        declared = SchedJob("d", alloc_job(0), footprint="64K")
        assert est.estimate(declared, CFG) == 64 * 1024

    def test_scheduler_refines_from_observed_peak(self):
        sched, _ = make_scheduler()
        sched.submit(SchedJob("j", alloc_job(150_000), config=CFG))
        report = sched.run()
        first = report.outcome("j")
        assert first.completed
        assert sched.estimator.observed["j"] >= 150_000
        # Resubmission is admitted on the learned peak, not the seed.
        sched.submit(SchedJob("j", alloc_job(150_000), config=CFG))
        again = sched.run().outcome("j")
        assert again.estimate == int(sched.estimator.observed["j"] * 1.25) \
            or again.estimate >= 150_000


class TestOOMRecovery:
    def test_blown_estimate_is_absorbed_then_failed(self):
        # Declares 10K, allocates 300K on a 256K rank: every attempt
        # OOMs; the scheduler must absorb each one and finally give up
        # without crashing the run.
        sched, trace = make_scheduler(memory_limit="256K")
        sched.submit(SchedJob("liar", alloc_job(300_000),
                              footprint="10K", config=CFG))
        sched.submit(SchedJob("honest", alloc_job(1000),
                              footprint="10K", config=CFG))
        report = sched.run()
        liar = report.outcome("liar")
        assert liar.failed and not liar.completed
        assert "out of memory" in liar.error
        assert report.ooms >= 1
        assert trace.of_kind("oom")
        # Estimates were bumped after the blown round.
        assert sched.estimator.observed["liar"] >= 20 * 1024
        # The honest co-scheduled job still completes eventually.
        assert report.outcome("honest").completed
        # Post-OOM state is clean: fresh trackers, empty caches.
        assert all(t.current == 0 for t in sched.trackers)
        assert all(not c.entries for c in sched.caches)


class TestPipelines:
    def test_concurrent_wordcount_pagerank_zero_oom(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit="1M")
        paths = stage_inputs(cluster, text_bytes=1 << 12, graph_scale=5)
        trace = Trace()
        sched = Scheduler(cluster, trace=trace)
        sched.submit(make_job("wordcount", paths, priority=2,
                              footprint="256K"))
        sched.submit(make_job("pagerank", paths, priority=1,
                              footprint="288K", iterations=2))
        report = sched.run()
        assert report.ooms == 0
        wc, pr = report.outcome("wordcount"), report.outcome("pagerank")
        assert wc.completed and pr.completed
        assert wc.round == pr.round == 1  # truly co-scheduled
        lanes = render_job_lanes(trace)
        assert "wordcount" in lanes and "pagerank" in lanes
        assert all(e.kind in SCHED_EVENT_KINDS
                   for e in trace.events
                   if e.kind not in ("phase", "exchange", "spill"))

    def test_cache_shared_across_jobs_and_runs(self):
        # Two PageRank submissions - one per run() drain - build the
        # same adjacency stage; the second must reuse the cached
        # container instead of re-shuffling the edge list.
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        paths = stage_inputs(cluster, graph_scale=5)
        trace = Trace()
        sched = Scheduler(cluster, trace=trace)

        def pr(env, ctx):
            from repro.apps.pagerank import pagerank_plan

            return pagerank_plan(env, paths["pagerank"], ctx=ctx,
                                 hint=True, iterations=2).ranks

        sched.submit(SchedJob("pr1", pr))
        first = sched.run()
        sched.submit(SchedJob("pr2", pr))
        second = sched.run()
        assert first.outcome("pr1").completed
        assert second.outcome("pr2").completed
        r1 = {v: s for part in first.outcome("pr1").returns
              for v, s in part.items()}
        r2 = {v: s for part in second.outcome("pr2").returns
              for v, s in part.items()}
        assert r1 == r2
        built = [e for e in trace.of_kind("stage-done")
                 if e.data.get("stage") == "adjacency-sorted"]
        # Executed once per rank, by pr1 only; pr2 hit the cache.
        assert len(built) == cluster.nprocs
        assert {e.data["job"] for e in built} == {"pr1"}
        assert all(c.stats.hits > 0 for c in sched.caches)


class TestSubmission:
    def test_submit_plain_function(self):
        sched, trace = make_scheduler(memory_limit=None)
        sched.submit(lambda env, ctx: 42, name="answer")
        report = sched.run()
        assert report.outcome("answer").returns == [42, 42]
        assert [e.data["job"] for e in trace.of_kind("submit")] \
            == ["answer"]
        with pytest.raises(KeyError):
            report.outcome("nope")

    def test_render_log_lists_every_job(self):
        sched, _ = make_scheduler(memory_limit=None)
        sched.submit(lambda env, ctx: None, name="alpha")
        sched.submit(lambda env, ctx: None, name="beta")
        log = sched.run().render_log()
        assert "alpha" in log and "beta" in log and "round" in log

    def test_bad_reserve_rejected(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit="1M")
        with pytest.raises(ValueError, match="reserve"):
            Scheduler(cluster, reserve=1.0)
