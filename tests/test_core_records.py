"""KV record codec: default, fixed-length, and CSTRING layouts."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CSTRING, VARIABLE, KVLayout, pack_u64, unpack_u64


class TestDefaultLayout:
    def test_roundtrip(self):
        layout = KVLayout()
        buf = layout.encode(b"word", b"value")
        key, value, offset = layout.decode(buf)
        assert (key, value) == (b"word", b"value")
        assert offset == len(buf)

    def test_header_is_8_bytes(self):
        layout = KVLayout()
        assert layout.header_size == 8
        assert layout.encoded_size(b"abc", b"de") == 8 + 3 + 2

    def test_empty_fields(self):
        layout = KVLayout()
        buf = layout.encode(b"", b"")
        assert layout.decode(buf)[:2] == (b"", b"")

    def test_multiple_records(self):
        layout = KVLayout()
        buf = layout.encode(b"a", b"1") + layout.encode(b"bb", b"22")
        assert list(layout.iter_records(buf)) == [(b"a", b"1"), (b"bb", b"22")]

    def test_count_records(self):
        layout = KVLayout()
        buf = b"".join(layout.encode(bytes([65 + i]), b"x") for i in range(5))
        assert layout.count_records(buf) == 5

    def test_truncated_buffer_rejected(self):
        layout = KVLayout()
        buf = layout.encode(b"abcdef", b"ghi")
        with pytest.raises(ValueError):
            layout.decode(buf[:-1] if False else buf[:6])

    def test_binary_safe(self):
        layout = KVLayout()
        key, value = bytes(range(256)), b"\0\0\xff"
        k, v, _ = layout.decode(layout.encode(key, value))
        assert (k, v) == (key, value)


class TestFixedLayout:
    def test_fixed_value_no_header(self):
        layout = KVLayout(val_len=8)
        assert layout.header_size == 4
        buf = layout.encode(b"word", pack_u64(7))
        assert len(buf) == 4 + 4 + 8
        key, value, _ = layout.decode(buf)
        assert key == b"word"
        assert unpack_u64(value) == 7

    def test_fixed_key_and_value(self):
        layout = KVLayout(key_len=8, val_len=16)
        assert layout.header_size == 0
        buf = layout.encode(b"k" * 8, b"v" * 16)
        assert len(buf) == 24
        assert layout.decode(buf)[:2] == (b"k" * 8, b"v" * 16)

    def test_wrong_length_rejected(self):
        layout = KVLayout(key_len=8)
        with pytest.raises(ValueError):
            layout.encode(b"short", b"v")

    def test_hint_saves_bytes(self):
        plain = KVLayout()
        hinted = KVLayout(key_len=CSTRING, val_len=8)
        key, value = b"country", pack_u64(1)
        assert hinted.encoded_size(key, value) < plain.encoded_size(key, value)
        # 8-byte header replaced by a single NUL: saves 7 bytes.
        assert plain.encoded_size(key, value) - \
            hinted.encoded_size(key, value) == 7


class TestCStringLayout:
    def test_roundtrip(self):
        layout = KVLayout(key_len=CSTRING, val_len=8)
        buf = layout.encode(b"hello", pack_u64(42))
        key, value, offset = layout.decode(buf)
        assert key == b"hello"
        assert unpack_u64(value) == 42
        assert offset == len(buf)

    def test_nul_in_cstring_rejected(self):
        layout = KVLayout(key_len=CSTRING)
        with pytest.raises(ValueError):
            layout.encode(b"he\0llo", b"v")

    def test_empty_cstring(self):
        layout = KVLayout(key_len=CSTRING, val_len=1)
        buf = layout.encode(b"", b"x")
        assert layout.decode(buf)[:2] == (b"", b"x")

    def test_unterminated_rejected(self):
        layout = KVLayout(key_len=CSTRING, val_len=1)
        with pytest.raises(ValueError):
            layout.decode(b"nonul")

    def test_value_cstring(self):
        layout = KVLayout(key_len=4, val_len=CSTRING)
        buf = layout.encode(b"keyy", b"text")
        assert layout.decode(buf)[:2] == (b"keyy", b"text")


class TestValidation:
    def test_bad_hints_rejected(self):
        with pytest.raises(ValueError):
            KVLayout(key_len=0)
        with pytest.raises(ValueError):
            KVLayout(val_len=-2)
        with pytest.raises(ValueError):
            KVLayout(key_len=True)

    def test_layout_hashable_and_frozen(self):
        a, b = KVLayout(val_len=8), KVLayout(val_len=8)
        assert a == b
        assert hash(a) == hash(b)


class TestU64:
    def test_roundtrip(self):
        assert unpack_u64(pack_u64(0)) == 0
        assert unpack_u64(pack_u64(2 ** 64 - 1)) == 2 ** 64 - 1

    def test_fixed_width(self):
        assert len(pack_u64(1)) == 8


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_default_roundtrip(key, value):
    layout = KVLayout()
    buf = layout.encode(key, value)
    assert len(buf) == layout.encoded_size(key, value)
    k, v, off = layout.decode(buf)
    assert (k, v, off) == (key, value, len(buf))


@given(st.lists(st.tuples(st.binary(max_size=16), st.binary(max_size=16)),
                max_size=30))
def test_property_stream_roundtrip(pairs):
    layout = KVLayout()
    buf = b"".join(layout.encode(k, v) for k, v in pairs)
    assert list(layout.iter_records(buf)) == pairs


@given(st.text(alphabet=st.characters(min_codepoint=1, max_codepoint=127),
               max_size=20),
       st.integers(min_value=0, max_value=2 ** 64 - 1))
def test_property_cstring_u64_roundtrip(word, count):
    layout = KVLayout(key_len=CSTRING, val_len=8)
    buf = layout.encode(word.encode(), pack_u64(count))
    k, v, _ = layout.decode(buf)
    assert k == word.encode()
    assert unpack_u64(v) == count
