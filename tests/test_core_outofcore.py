"""Out-of-core Mimir: spill-backed KV containers."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.kvcontainer import KVContainer
from repro.memory import MemoryLimitExceeded, MemoryTracker
from repro.mpi import COMET, RankFailedError

TEXT = (b"maple birch cedar maple alder birch maple spruce cedar pine ") * 60
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


class TestSpillBackedKVC:
    def make_env(self, limit=None):
        cluster = Cluster(COMET, nprocs=1, memory_limit=limit)
        envs = []
        cluster.run(lambda env: envs.append(env))
        return envs[0], cluster

    def test_budget_spills_oldest_pages(self):
        env, _ = self.make_env()
        kvc = KVContainer(env.tracker, page_size=128, tag="t",
                          spill_env=env, resident_page_budget=2)
        pairs = [(b"key%03d" % i, b"val%03d" % i) for i in range(40)]
        for k, v in pairs:
            kvc.add(k, v)
        assert kvc.npages <= 2
        assert kvc.spilled
        assert kvc.spilled_bytes > 0
        # Order preserved: spilled prefix, then resident suffix.
        assert list(kvc.records()) == pairs
        assert list(kvc.consume()) == pairs
        assert env.tracker.current == 0

    def test_memory_limit_triggers_spill(self):
        env, cluster = self.make_env(limit=1024)
        kvc = KVContainer(env.tracker, page_size=256, tag="t",
                          spill_env=env)
        for i in range(60):
            kvc.add(b"k%04d" % i, b"x" * 20)
        # Never exceeded the limit...
        assert env.tracker.peak <= 1024
        # ...by spilling the overflow.
        assert kvc.spilled
        assert len(list(kvc.records())) == 60
        kvc.free()
        assert not cluster.pfs.listdir("spill/")

    def test_without_spill_env_raises(self):
        tracker = MemoryTracker(limit=512)
        kvc = KVContainer(tracker, page_size=256, tag="t")
        with pytest.raises(MemoryLimitExceeded):
            for i in range(60):
                kvc.add(b"k%04d" % i, b"x" * 20)

    def test_records_readable_twice_before_consume(self):
        env, _ = self.make_env()
        kvc = KVContainer(env.tracker, page_size=128, tag="t",
                          spill_env=env, resident_page_budget=1)
        for i in range(20):
            kvc.add(b"%02d" % i, b"v")
        first = list(kvc.records())
        second = list(kvc.records())
        assert first == second
        kvc.free()

    def test_spill_charges_io_time(self):
        env, _ = self.make_env()
        t0 = env.comm.clock.time
        kvc = KVContainer(env.tracker, page_size=128, tag="t",
                          spill_env=env, resident_page_budget=1)
        for i in range(30):
            kvc.add(b"k%03d" % i, b"y" * 16)
        assert env.comm.clock.time > t0
        kvc.free()


class TestOutOfCoreJobs:
    #: A budget too small for the in-memory job, enough for ooc.
    LIMIT = 24 * 1024

    def run_wc(self, out_of_core, partial=True, nprocs=4):
        config = MimirConfig(page_size=2048, comm_buffer_size=4096,
                             input_chunk_size=512, out_of_core=out_of_core)
        cluster = Cluster(COMET, nprocs=nprocs, memory_limit=self.LIMIT)
        cluster.pfs.store("t.txt", TEXT * 4)

        def job(env):
            mimir = Mimir(env, config)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.partial_reduce(kvs, wc_combine)
            counts = {k: unpack_u64(v) for k, v in out.records()}
            out.free()
            return counts

        return cluster.run(job, allow_oom=True)

    def test_in_memory_job_ooms_at_this_budget(self):
        result = self.run_wc(out_of_core=False)
        assert result.ran_out_of_memory

    def test_out_of_core_job_completes_correctly(self):
        result = self.run_wc(out_of_core=True)
        assert not result.ran_out_of_memory
        merged: Counter = Counter()
        for part in result.returns:
            merged.update(part)
        expected = Counter()
        for word, count in EXPECTED.items():
            expected[word] = count * 4
        assert merged == expected
        assert result.spilled_bytes > 0

    def test_out_of_core_respects_budget(self):
        result = self.run_wc(out_of_core=True)
        assert result.max_rank_peak_bytes <= self.LIMIT

    def test_out_of_core_costs_time(self):
        # Same job with an ample budget: no spill, faster.
        config = MimirConfig(page_size=2048, comm_buffer_size=4096,
                             input_chunk_size=512)
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT * 4)

        def job(env):
            mimir = Mimir(env, config)
            kvs = mimir.map_text_file("t.txt", wc_map)
            out = mimir.partial_reduce(kvs, wc_combine)
            out.free()

        fast = cluster.run(job)
        slow = self.run_wc(out_of_core=True)
        assert slow.elapsed > fast.elapsed
