"""Per-phase profiling."""

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.metrics import PhaseProfile
from repro.mpi import COMET

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"ash oak elm ash fir oak ash yew " * 25


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def run_profiled(partial=False):
    cluster = Cluster(COMET, nprocs=2, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)

    def job(env):
        profile = PhaseProfile(env)
        mimir = Mimir(env, CFG, profile=profile)
        kvs = mimir.map_text_file("t.txt", wc_map)
        if partial:
            out = mimir.partial_reduce(kvs, wc_combine)
        else:
            out = mimir.reduce(kvs, wc_reduce)
        out.free()
        return [(r.name, r.duration, r.mem_delta, r.peak_so_far)
                for r in profile.records], profile.by_name(), \
            profile.dominant_phase(), profile.render()

    return cluster.run(job).returns


class TestPhaseProfile:
    def test_full_pipeline_phases(self):
        records, by_name, dominant, rendered = run_profiled()[0]
        assert [name for name, *_ in records] == \
            ["map+aggregate", "convert+reduce"]
        assert set(by_name) == {"map+aggregate", "convert+reduce"}
        assert dominant in by_name

    def test_partial_reduce_phase(self):
        records, by_name, _, _ = run_profiled(partial=True)[0]
        assert [name for name, *_ in records] == \
            ["map+aggregate", "partial_reduce"]

    def test_durations_nonnegative_and_sum(self):
        records, by_name, _, _ = run_profiled()[0]
        for _, duration, _, _ in records:
            assert duration >= 0
        total = sum(d for _, d, _, _ in records)
        assert total == pytest.approx(sum(by_name.values()))

    def test_memory_deltas_tracked(self):
        records, _, _, _ = run_profiled()[0]
        deltas = {name: delta for name, _, delta, _ in records}
        # map+aggregate leaves the shuffled KVC resident (positive
        # delta); convert swaps KVC for KMVC; reduce leaves output.
        assert deltas["map+aggregate"] > 0

    def test_peak_monotone(self):
        records, _, _, _ = run_profiled()[0]
        peaks = [peak for *_, peak in records]
        assert peaks == sorted(peaks)

    def test_render_contains_phases(self):
        *_, rendered = run_profiled()[0]
        assert "map+aggregate" in rendered
        assert "convert" in rendered

    def test_empty_profile(self):
        cluster = Cluster(COMET, nprocs=1)

        def job(env):
            profile = PhaseProfile(env)
            return profile.total_time(), profile.dominant_phase()

        assert cluster.run(job).returns[0] == (0.0, None)

    def test_phase_records_on_exception(self):
        cluster = Cluster(COMET, nprocs=1)

        def job(env):
            profile = PhaseProfile(env)
            try:
                with profile.phase("doomed"):
                    raise ValueError("x")
            except ValueError:
                pass
            return [r.name for r in profile.records]

        assert cluster.run(job).returns[0] == ["doomed"]
