"""End-to-end differential property tests.

Hypothesis drives randomly generated inputs through complete jobs and
checks the frameworks against each other and against independent
reference implementations - the strongest correctness evidence in the
suite.
"""

from collections import Counter

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.components import components_mimir
from repro.apps.wordcount import wordcount_mimir, wordcount_mrmpi
from repro.cluster import Cluster
from repro.core import CSTRING, KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets import edges_to_bytes
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

MIMIR_CFG = MimirConfig(page_size=1024, comm_buffer_size=1024,
                        input_chunk_size=128)
MRMPI_CFG = MRMPIConfig(page_size=8192, input_chunk_size=128)

words = st.text(alphabet="abcdef", min_size=1, max_size=5)
corpora = st.lists(words, min_size=0, max_size=80).map(
    lambda ws: " ".join(ws).encode())


def _merge_counts(parts):
    merged: Counter = Counter()
    for part in parts:
        for word, count in part.counts.items():
            assert word not in merged
            merged[word] = count
    return merged


@settings(max_examples=20, deadline=None)
@given(corpora, st.integers(min_value=1, max_value=4))
def test_wordcount_frameworks_agree_with_truth(corpus, nprocs):
    truth = Counter(corpus.split())

    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("c.txt", corpus)
    mimir_counts = _merge_counts(cluster.run(
        lambda env: wordcount_mimir(env, "c.txt", MIMIR_CFG,
                                    collect=True)).returns)

    cluster2 = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster2.pfs.store("c.txt", corpus)
    mrmpi_counts = _merge_counts(cluster2.run(
        lambda env: wordcount_mrmpi(env, "c.txt", MRMPI_CFG,
                                    collect=True)).returns)

    assert mimir_counts == truth
    assert mrmpi_counts == truth


@settings(max_examples=20, deadline=None)
@given(corpora)
def test_wordcount_optimizations_agree(corpus):
    truth = Counter(corpus.split())
    layout = KVLayout(key_len=CSTRING, val_len=8)
    for opts in ({"hint": True}, {"compress": True}, {"partial": True},
                 {"hint": True, "compress": True, "partial": True}):
        cluster = Cluster(COMET, nprocs=3, memory_limit=None)
        cluster.pfs.store("c.txt", corpus)
        counts = _merge_counts(cluster.run(
            lambda env: wordcount_mimir(env, "c.txt", MIMIR_CFG,
                                        collect=True, **opts)).returns)
        assert counts == truth, opts


edge_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=15),
              st.integers(min_value=0, max_value=15)),
    min_size=1, max_size=30)


@settings(max_examples=20, deadline=None)
@given(edge_lists, st.integers(min_value=1, max_value=4))
def test_components_match_networkx(pairs, nprocs):
    edges = np.array(pairs, dtype="<u8")
    simple = [e for e in pairs if e[0] != e[1]]
    if not simple:
        return  # only self-loops: no propagation to verify

    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("e.bin", edges_to_bytes(edges))
    result = cluster.run(
        lambda env: components_mimir(env, "e.bin", MIMIR_CFG))
    labels = {}
    for r in result.returns:
        labels.update(r.labels)

    graph = nx.Graph(simple)
    for component in nx.connected_components(graph):
        root = min(component)
        for vertex in component:
            assert labels[vertex] == root


kv_pairs = st.lists(
    st.tuples(st.binary(min_size=1, max_size=6),
              st.integers(min_value=0, max_value=2 ** 32)),
    min_size=0, max_size=50)


@settings(max_examples=20, deadline=None)
@given(kv_pairs, st.integers(min_value=1, max_value=4))
def test_shuffle_reduce_equals_groupby(pairs, nprocs):
    """Full map/shuffle/convert/reduce == a dict groupby."""
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)

    def job(env):
        mimir = Mimir(env, MIMIR_CFG)
        mine = pairs[env.comm.rank :: env.comm.size]
        kvs = mimir.map_items(
            mine, lambda ctx, kv: ctx.emit(kv[0], pack_u64(kv[1])))
        out = mimir.reduce(
            kvs, lambda ctx, k, vs: ctx.emit(
                k, pack_u64(sum(unpack_u64(v) for v in vs) % (1 << 64))))
        result = {k: unpack_u64(v) for k, v in out.records()}
        out.free()
        return result

    merged = {}
    for part in cluster.run(job).returns:
        for key, value in part.items():
            assert key not in merged
            merged[key] = value

    expected: dict[bytes, int] = {}
    for key, value in pairs:
        expected[key] = expected.get(key, 0) + value
    assert merged == {k: v % (1 << 64) for k, v in expected.items()}
