"""Kitchen-sink integration: a multi-stage analytics pipeline.

Chains most of the public surface in one job - multi-file input,
compression, checkpointing, a second MapReduce stage over the first's
output, global sort, and a single shared output file - and checks the
final artefact byte-for-byte against an independently computed one.
"""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.ft import CheckpointManager, FaultPlan, run_with_recovery
from repro.mpi import COMET

CFG = MimirConfig(page_size=4096, comm_buffer_size=4096,
                  input_chunk_size=512)

PARTS = {
    f"corpus/doc{i}": (b"alpha beta gamma delta epsilon zeta "
                       b"alpha beta alpha ") * (4 + i)
    for i in range(5)
}


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def fold(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def pipeline(env, ckpt: CheckpointManager, faults: FaultPlan):
    mimir = Mimir(env, CFG)

    # Stage 1: word counts over the document directory (compressed),
    # checkpointed so a failure does not redo the shuffle.
    if ckpt.has("counts"):
        counts = ckpt.load_kvc("counts", CFG.layout, CFG.page_size)
    else:
        kvs = mimir.map_text_files("corpus/", wc_map, combine_fn=fold)
        counts = mimir.partial_reduce(kvs, fold)
        ckpt.save_kvc("counts", counts)
    faults.check("after_stage1", env.comm.rank)

    # Stage 2: histogram of count values (count -> number of words).
    stage2 = mimir.map_kvs(counts,
                           lambda ctx, k, v: ctx.emit(v, pack_u64(1)))
    histogram = mimir.partial_reduce(stage2, fold)

    # Stage 3: globally sorted single-file report.
    ordered = mimir.global_sort(histogram)
    mimir.write_output_global(
        ordered, "out/histogram.txt",
        render=lambda k, v: b"%d %d\n" % (unpack_u64(k), unpack_u64(v)))
    ordered.free()
    return True


def expected_report() -> bytes:
    words = Counter()
    for data in PARTS.values():
        words.update(data.split())
    histogram = Counter(words.values())
    return b"".join(b"%d %d\n" % (count, nwords)
                    for count, nwords in sorted(histogram.items()))


@pytest.mark.parametrize("nprocs", [1, 4, 7])
def test_pipeline_end_to_end(nprocs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    for path, data in PARTS.items():
        cluster.pfs.store(path, data)
    ft = run_with_recovery(cluster, pipeline)
    assert ft.attempts == 1
    assert cluster.pfs.fetch("out/histogram.txt") == expected_report()


def test_pipeline_survives_mid_job_failure():
    cluster = Cluster(COMET, nprocs=4, memory_limit=None)
    for path, data in PARTS.items():
        cluster.pfs.store(path, data)
    plan = FaultPlan().fail_at("after_stage1", 2)
    ft = run_with_recovery(cluster, pipeline, faults=plan)
    assert ft.attempts == 2
    assert cluster.pfs.fetch("out/histogram.txt") == expected_report()


def test_pipeline_leaves_no_memory_behind():
    cluster = Cluster(COMET, nprocs=3, memory_limit=None)
    for path, data in PARTS.items():
        cluster.pfs.store(path, data)

    def job(env):
        pipeline(env, CheckpointManager(env, "leak"), FaultPlan())
        return env.tracker.current

    assert cluster.run(job).returns == [0, 0, 0]
