"""Chaos injection, checksummed checkpoints, retrying I/O, classification."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.ft import (
    ChaosPlan,
    CheckpointManager,
    CheckpointNotFoundError,
    FaultPlan,
    TornWriteFailure,
    classify_failure,
    run_with_recovery,
)
from repro.ft.chaos import (
    chaos_wordcount,
    make_wordcount_cluster,
    run_chaos_sweep,
)
from repro.ft.checkpoint import (
    CheckpointCorruptError,
    CheckpointStaleError,
    frame,
    unframe,
)
from repro.ft.faults import SimulatedRankFailure
from repro.io.errors import (
    PFSFileNotFoundError,
    RetriesExhaustedError,
    TransientIOError,
    retrying,
)
from repro.io.pfs import ParallelFileSystem
from repro.memory.tracker import MemoryLimitExceeded
from repro.mpi import COMET, PFSModel, RankFailedError
from repro.mpi.comm import SimComm

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"oak elm ash fir oak elm oak yew ash oak " * 30
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def checkpointed_wordcount(env, ckpt, faults):
    mimir = Mimir(env, CFG)
    faults.check("start", env.comm.rank)
    if ckpt.has("shuffle"):
        kvs = ckpt.load_kvc("shuffle", CFG.layout, CFG.page_size)
    else:
        kvs = mimir.map_text_file("t.txt", wc_map)
        ckpt.save_kvc("shuffle", kvs)
    faults.check("after_shuffle", env.comm.rank)
    out = mimir.partial_reduce(kvs, wc_combine)
    counts = {k: unpack_u64(v) for k, v in out.records()}
    out.free()
    return counts


def make_cluster(nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)
    return cluster


def merge(result):
    merged = Counter()
    for part in result.returns:
        merged.update(part)
    return merged


# ---------------------------------------------------------------- PFS errors


class TestPFSFileNotFound:
    def test_read_carries_path(self):
        pfs = ParallelFileSystem()
        with pytest.raises(PFSFileNotFoundError) as exc_info:
            pfs.read(SimComm(0, 1), "ckpt/job/missing.0")
        assert exc_info.value.path == "ckpt/job/missing.0"
        assert "ckpt/job/missing.0" in str(exc_info.value)

    def test_fetch_and_size_raise_descriptive(self):
        pfs = ParallelFileSystem()
        pfs.store("ckpt/job/phase.0", b"x")
        for call in (lambda: pfs.fetch("ckpt/job/phase.1"),
                     lambda: pfs.size("ckpt/job/phase.1")):
            with pytest.raises(PFSFileNotFoundError) as exc_info:
                call()
            assert "sibling" in str(exc_info.value)

    def test_still_a_keyerror(self):
        pfs = ParallelFileSystem()
        with pytest.raises(KeyError):
            pfs.fetch("nope")


# ------------------------------------------------------------------ retrying


class TestRetrying:
    def test_absorbs_and_charges_backoff(self):
        comm = SimComm(0, 1)
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientIOError("read", "f", 0)
            return "ok"

        seen = []
        value = retrying(comm, flaky, base_delay=0.5, factor=2.0,
                         on_retry=lambda n, e: seen.append(n))
        assert value == "ok"
        assert seen == [1, 2]
        # Backoff 0.5 + 1.0 charged to the virtual clock.
        assert comm.clock.time == pytest.approx(1.5)

    def test_exhaustion_escalates(self):
        comm = SimComm(0, 1)

        def always():
            raise TransientIOError("write", "f", 0)

        with pytest.raises(RetriesExhaustedError) as exc_info:
            retrying(comm, always, attempts=3)
        assert exc_info.value.attempts == 3
        # Not a TransientIOError: an outer retry must not swallow it.
        assert not isinstance(exc_info.value, TransientIOError)

    def test_only_transient_is_retried(self):
        comm = SimComm(0, 1)

        def broken():
            raise ValueError("bug")

        with pytest.raises(ValueError):
            retrying(comm, broken)


# ------------------------------------------------------------ frame/unframe


class TestCheckpointFraming:
    def test_roundtrip(self):
        blob = frame(b"payload bytes", "run-1")
        assert unframe(blob, "run-1") == b"payload bytes"

    def test_torn_prefix_detected(self):
        blob = frame(b"x" * 1000, "n")
        for cut in (0, 3, len(blob) // 2, len(blob) - 1):
            with pytest.raises(CheckpointCorruptError):
                unframe(blob[:cut], "n")

    def test_bitflip_detected(self):
        blob = bytearray(frame(b"y" * 100, "n"))
        blob[-5] ^= 0x10  # flip one payload bit
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            unframe(bytes(blob), "n")

    def test_wrong_nonce_is_stale(self):
        blob = frame(b"data", "run-1")
        with pytest.raises(CheckpointStaleError):
            unframe(blob, "run-2")

    def test_bad_magic_and_version(self):
        blob = frame(b"d", "n")
        with pytest.raises(CheckpointCorruptError, match="magic"):
            unframe(b"XXXX" + blob[4:], "n")
        with pytest.raises(CheckpointCorruptError, match="version"):
            unframe(blob[:4] + b"\xff\x7f" + blob[6:], "n")


# --------------------------------------------------- checkpoint validation


class TestCheckpointIntegrity:
    def test_corrupt_checkpoint_never_silently_loaded(self):
        cluster = make_cluster(1)

        def job(env):
            ckpt = CheckpointManager(env, "c1")
            ckpt.save_state("phase", {"x": 1})
            assert ckpt.has("phase")
            # Flip a bit in the stored data file behind the manager's back.
            path = "ckpt/c1/phase.0"
            blob = bytearray(env.pfs.fetch(path))
            blob[-1] ^= 0x01
            env.pfs.store(path, bytes(blob))
            assert not ckpt.has("phase")  # detected, not trusted
            with pytest.raises(CheckpointNotFoundError):
                ckpt.load_state("phase")
            kinds = [r.kind for r in ckpt.failure_log]
            assert "ckpt-invalid" in kinds
            return True

        assert cluster.run(job).returns == [True]

    def test_torn_data_file_detected(self):
        cluster = make_cluster(1)

        def job(env):
            ckpt = CheckpointManager(env, "c2")
            ckpt.save_state("phase", list(range(100)))
            path = "ckpt/c2/phase.0"
            blob = env.pfs.fetch(path)
            env.pfs.store(path, blob[: len(blob) // 2])
            return ckpt.has("phase")

        assert cluster.run(job).returns == [False]

    def test_stale_nonce_invalidated(self):
        cluster = make_cluster(1)

        def job(env):
            old = CheckpointManager(env, "c3", nonce="previous-run")
            old.save_state("phase", "old state")
            new = CheckpointManager(env, "c3", nonce="current-run")
            assert not new.has("phase")
            kinds = [r.kind for r in new.failure_log]
            assert "ckpt-stale" in kinds
            # The original owner still restores its own data.
            assert old.load_state("phase") == "old state"
            return True

        assert cluster.run(job).returns == [True]

    def test_reused_job_id_across_recovery_runs_recomputes(self):
        cluster = make_cluster(2)
        loaded = []

        def job(env, ckpt, faults):
            loaded.append(ckpt.has("shuffle"))
            return checkpointed_wordcount(env, ckpt, faults)

        first = run_with_recovery(cluster, job, job_id="same-id")
        assert merge(first.result) == EXPECTED
        # Checkpoints from the first run are still on the PFS...
        assert cluster.pfs.listdir("ckpt/same-id/")
        second = run_with_recovery(cluster, job, job_id="same-id")
        # ...but the new run's nonce invalidates them: never restored.
        assert merge(second.result) == EXPECTED
        assert not any(loaded)

    def test_clear_is_collective(self):
        cluster = make_cluster(4)

        def job(env):
            ckpt = CheckpointManager(env, "c4")
            ckpt.save_state("a", env.comm.rank)
            ckpt.save_state("b", env.comm.rank)
            ckpt.clear()  # every rank calls; rank 0 deletes
            return env.pfs.listdir("ckpt/c4/")

        result = cluster.run(job)
        assert all(listing == [] for listing in result.returns)


# ----------------------------------------------------- mid-commit crashes


class TestMidCommitCrash:
    @pytest.mark.parametrize("nprocs,victim", [(1, 0), (4, 2)])
    def test_crash_between_data_and_marker(self, nprocs, victim):
        """Satellite: a fault between the data write and the marker
        write must leave ``has()`` false on restart -> recompute."""
        cluster = make_cluster(nprocs)
        plan = FaultPlan().fail_at("ckpt:shuffle:precommit", victim)
        seen = []

        def job(env, ckpt, faults):
            complete = ckpt.has("shuffle")  # collective: all ranks call
            if env.comm.rank == 0:
                seen.append(complete)
            return checkpointed_wordcount(env, ckpt, faults)

        ft = run_with_recovery(cluster, job, faults=plan)
        assert ft.attempts == 2
        assert plan.pending == set()
        # Attempt 1 and the restart both saw no completed checkpoint:
        # the half-committed save was not trusted.
        assert seen == [False, False]
        assert merge(ft.result) == EXPECTED

    def test_torn_write_classified_and_recovered(self):
        cluster = make_cluster(4)
        plan = ChaosPlan(seed=7, torn_write_rate=1.0, max_faults=1)
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        assert merge(ft.result) == EXPECTED
        assert ft.restarts == 1
        assert [r.kind for r in ft.failure_log if r.attempt] == ["torn-write"]
        assert plan.counts() == {"torn-write": 1}


# ------------------------------------------------------------ classification


class TestClassification:
    def test_kinds(self):
        assert classify_failure(SimulatedRankFailure("t", 0)) == "rank-death"
        assert classify_failure(
            TornWriteFailure("p", 0, 1, 2)) == "torn-write"
        assert classify_failure(
            TransientIOError("read", "f")) == "transient-io"
        assert classify_failure(
            RetriesExhaustedError(3, TransientIOError("w", "f"))
        ) == "transient-io"
        assert classify_failure(
            MemoryLimitExceeded("kv", 1, 2, 3, {})) == "oom"
        assert classify_failure(ValueError("x")) == "unknown"

    def test_transient_escalates_to_classified_restart(self):
        cluster = make_cluster(2)
        fired = []

        def job(env, ckpt, faults):
            if env.comm.rank == 0 and not fired:
                fired.append(True)
                raise TransientIOError("read", "input/t.txt", 0)
            return checkpointed_wordcount(env, ckpt, faults)

        ft = run_with_recovery(cluster, job)
        assert ft.attempts == 2
        assert [r.kind for r in ft.failure_log] == ["transient-io"]
        assert merge(ft.result) == EXPECTED

    def test_oom_gets_one_restart(self):
        cluster = make_cluster(2)
        fired = []

        def job(env, ckpt, faults):
            if env.comm.rank == 1 and not fired:
                fired.append(True)
                raise MemoryLimitExceeded("kv", 10, 20, 16, {})
            return checkpointed_wordcount(env, ckpt, faults)

        ft = run_with_recovery(cluster, job)
        assert ft.attempts == 2
        assert [r.kind for r in ft.failure_log] == ["oom"]

    def test_oom_cap_exhausted_reraises(self):
        cluster = make_cluster(2)

        def job(env, ckpt, faults):
            raise MemoryLimitExceeded("kv", 10, 20, 16, {})

        with pytest.raises(RankFailedError):
            run_with_recovery(cluster, job)

    def test_unknown_never_retried(self):
        cluster = make_cluster(2)
        calls = []

        def job(env, ckpt, faults):
            if env.comm.rank == 0:
                calls.append(1)
            raise ValueError("real bug")

        with pytest.raises(RankFailedError):
            run_with_recovery(cluster, job)
        assert len(calls) == 1


# ----------------------------------------------------------- chaos plumbing


class TestChaosPlan:
    def test_decisions_are_a_pure_function_of_seed(self):
        """Replaying the same op sequence hits the same faults (single
        rank, so no abort race can perturb the sequence)."""

        def realized(plan):
            comm = SimComm(0, 1)
            hits = []
            for n in range(200):
                try:
                    plan.on_access(comm, "read", f"spill/f.{n}")
                except TransientIOError:
                    hits.append(n)
            return hits

        runs = [realized(ChaosPlan(seed=9, io_error_rate=0.05,
                                   max_faults=100))
                for _ in range(2)]
        assert runs[0] == runs[1]
        assert runs[0]  # the rate actually fired somewhere

    def test_same_seed_same_answer(self):
        outputs = []
        for _ in range(2):
            plan = ChaosPlan.random(3, 4,
                                    tags=("start", "after_shuffle"))
            ft = run_with_recovery(make_cluster(4), checkpointed_wordcount,
                                   faults=plan, max_restarts=12)
            outputs.append(sorted(merge(ft.result).items()))
        assert outputs[0] == outputs[1]

    def test_transient_retry_charges_virtual_time(self):
        """A transient fault absorbed by the checkpoint retry wrapper
        shows up as increased elapsed, not as a failure."""
        def run(chaos):
            cluster = Cluster(COMET, nprocs=1, memory_limit=None,
                              chaos=chaos)

            def job(env):
                ckpt = CheckpointManager(env, "t")
                ckpt.save_state("phase", list(range(50)))
                return [r.kind for r in ckpt.failure_log]

            return cluster.run(job)

        clean = run(None)
        # Rate 1.0 + max_faults=1: exactly the first PFS op (the data
        # write) fails once, the retry succeeds.
        chaotic = run(ChaosPlan(seed=1, io_error_rate=1.0, max_faults=1))
        assert chaotic.returns[0] == ["retry"]
        assert chaotic.elapsed > clean.elapsed

    def test_straggler_slows_local_clock(self):
        comm = SimComm(0, 1)
        comm.advance(1.0)
        comm.slowdown = 3.0
        comm.advance(1.0)
        assert comm.clock.time == pytest.approx(4.0)

    def test_straggler_increases_job_elapsed(self):
        pfs_model = PFSModel(latency=1e-4, bandwidth=1e6)

        def run(chaos):
            cluster = Cluster(COMET, nprocs=2, memory_limit=None,
                              pfs=ParallelFileSystem(pfs_model),
                              chaos=chaos)
            cluster.pfs.store("t.txt", TEXT)
            return cluster.run(
                lambda env: checkpointed_wordcount(
                    env, CheckpointManager(env, "s"), FaultPlan()))

        clean = run(None)
        slow = run(ChaosPlan(seed=0, stragglers={1: 4.0}))
        assert slow.elapsed > clean.elapsed
        assert merge(slow) == merge(clean) == EXPECTED

    def test_corruption_detected_and_recomputed(self):
        cluster = make_cluster(2)
        plan = ChaosPlan(seed=5, corruption_rate=1.0, max_faults=1)
        # Force a restart after the (corrupted) checkpoint was written,
        # so the restarted attempt must validate and reject it.
        plan.fail_at("after_shuffle", 1)
        ft = run_with_recovery(cluster, checkpointed_wordcount, faults=plan)
        assert merge(ft.result) == EXPECTED
        kinds = ft.log_counts()
        assert kinds.get("ckpt-invalid", 0) >= 1
        assert plan.counts().get("corruption") == 1


# -------------------------------------------------------------- the sweep


class TestChaosSweep:
    def test_twenty_seeded_schedules_converge(self):
        """Acceptance: >= 20 seeded random schedules mixing every fault
        kind all converge to output bit-identical to the fault-free
        run, with the failure log accounting for the injected faults."""
        sweep = run_chaos_sweep(20, nprocs=4)
        assert len(sweep.records) == 20
        for record in sweep.records:
            assert record.identical, f"seed {record.seed} diverged"
            assert not record.problems, (record.seed, record.problems)
        # The sweep exercised every injected-fault kind.
        kinds = set()
        for record in sweep.records:
            kinds.update(record.plan.counts())
            if record.plan.stragglers:
                kinds.add("straggler")
        assert kinds >= {"rank-death", "transient-io", "torn-write",
                         "corruption", "straggler"}
        # And faults cost time: some chaotic run is slower than clean.
        assert any(sweep.overhead(r) > 0 for r in sweep.records)

    def test_harness_job_matches_reference(self):
        ft = run_with_recovery(make_wordcount_cluster(2), chaos_wordcount)
        counts = Counter()
        for part in ft.result.returns:
            counts.update(dict(part))
        from repro.ft.chaos import TEXT as CHAOS_TEXT
        assert counts == Counter(CHAOS_TEXT.split())
