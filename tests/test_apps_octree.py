"""Octree clustering: Morton codes, convergence, framework agreement."""

import numpy as np
import pytest

from repro.apps.octree import (
    OC_HINT_LAYOUT,
    make_key,
    morton_codes,
    octree_mimir,
    octree_mrmpi,
    parse_key,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import normal_points, points_to_bytes
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

MIMIR_CFG = MimirConfig(page_size=8192, comm_buffer_size=8192,
                        input_chunk_size=4096)
MRMPI_CFG = MRMPIConfig(page_size=64 * 1024, input_chunk_size=4096)


def brute_force_clusters(points, density, max_level):
    """Reference implementation: dense octants of the deepest dense level."""
    threshold = max(1, int(density * len(points)))
    dense_parents = None
    best = []
    for level in range(1, max_level + 1):
        codes = morton_codes(points, level)
        if dense_parents is not None:
            codes = codes[np.isin(codes >> np.uint64(3),
                                  np.fromiter(dense_parents, dtype=np.uint64))]
        uniq, counts = np.unique(codes, return_counts=True)
        dense = uniq[counts >= threshold]
        if len(dense) == 0:
            return level - 1, best
        best = sorted((level, int(c), int(n))
                      for c, n in zip(uniq, counts) if n >= threshold)
        dense_parents = set(int(c) for c in dense)
    return max_level, best


class TestMortonCodes:
    def test_level_one_octants(self):
        pts = np.array([[0.1, 0.1, 0.1], [0.9, 0.1, 0.1],
                        [0.1, 0.9, 0.1], [0.9, 0.9, 0.9]], dtype="<f4")
        codes = morton_codes(pts, 1)
        assert codes.tolist() == [0, 1, 2, 7]

    def test_parent_is_prefix(self):
        pts = normal_points(500, seed=1)
        child = morton_codes(pts, 3)
        parent = morton_codes(pts, 2)
        assert np.array_equal(child >> np.uint64(3), parent)

    def test_codes_in_range(self):
        pts = normal_points(1000, seed=2)
        for level in (1, 2, 5):
            codes = morton_codes(pts, level)
            assert codes.max() < (1 << (3 * level))

    def test_invalid_level(self):
        pts = normal_points(4, seed=0)
        with pytest.raises(ValueError):
            morton_codes(pts, 0)
        with pytest.raises(ValueError):
            morton_codes(pts, 22)

    def test_key_roundtrip(self):
        key = make_key(5, 123456)
        assert parse_key(key) == (5, 123456)
        assert len(key) == 9

    def test_hint_layout_matches_key(self):
        assert OC_HINT_LAYOUT.key_len == len(make_key(1, 0))
        assert OC_HINT_LAYOUT.val_len == 8


def run_octree(runner, points, nprocs=4, density=0.01, max_level=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("pts.bin", points_to_bytes(points))
    result = cluster.run(
        lambda env: runner(env, "pts.bin", density=density,
                           max_level=max_level, **kwargs))
    merged = sorted(c for r in result.returns for c in r.clusters)
    levels = {r.levels_run for r in result.returns}
    assert len(levels) == 1
    return merged, levels.pop(), result


@pytest.fixture(scope="module")
def points():
    return normal_points(4000, seed=42)


class TestClusteringCorrectness:
    def test_mimir_matches_brute_force(self, points):
        clusters, levels, _ = run_octree(octree_mimir, points,
                                         config=MIMIR_CFG)
        ref_levels, ref_clusters = brute_force_clusters(points, 0.01, 4)
        assert levels == ref_levels
        assert clusters == ref_clusters

    def test_mrmpi_matches_brute_force(self, points):
        clusters, levels, _ = run_octree(octree_mrmpi, points,
                                         config=MRMPI_CFG)
        ref_levels, ref_clusters = brute_force_clusters(points, 0.01, 4)
        assert levels == ref_levels
        assert clusters == ref_clusters

    @pytest.mark.parametrize("opts", [
        {"hint": True},
        {"compress": True},
        {"partial": True},
        {"hint": True, "compress": True, "partial": True},
    ])
    def test_mimir_optimizations_preserve_answer(self, points, opts):
        clusters, levels, _ = run_octree(octree_mimir, points,
                                         config=MIMIR_CFG, **opts)
        ref_levels, ref_clusters = brute_force_clusters(points, 0.01, 4)
        assert (levels, clusters) == (ref_levels, ref_clusters)

    def test_mrmpi_compress_preserves_answer(self, points):
        clusters, levels, _ = run_octree(octree_mrmpi, points,
                                         config=MRMPI_CFG, compress=True)
        ref_levels, ref_clusters = brute_force_clusters(points, 0.01, 4)
        assert (levels, clusters) == (ref_levels, ref_clusters)

    def test_serial_equals_parallel(self, points):
        serial, l1, _ = run_octree(octree_mimir, points, nprocs=1,
                                   config=MIMIR_CFG)
        parallel, l2, _ = run_octree(octree_mimir, points, nprocs=6,
                                     config=MIMIR_CFG)
        assert (l1, serial) == (l2, parallel)


class TestClusteringBehaviour:
    def test_uniform_points_have_no_dense_octants_at_depth(self):
        rng = np.random.default_rng(0)
        pts = rng.random((2000, 3)).astype("<f4")
        # With 0.05 density and uniform data, refinement stops early.
        clusters, levels, _ = run_octree(octree_mimir, pts, density=0.05,
                                         max_level=6, config=MIMIR_CFG)
        ref_levels, ref_clusters = brute_force_clusters(pts, 0.05, 6)
        assert levels == ref_levels
        assert clusters == ref_clusters

    def test_tight_cluster_refines_to_max_level(self):
        pts = (np.full((500, 3), 0.3) +
               np.random.default_rng(1).normal(0, 1e-4, (500, 3))
               ).astype("<f4")
        clusters, levels, _ = run_octree(octree_mimir, pts, density=0.5,
                                         max_level=3, config=MIMIR_CFG)
        assert levels == 3
        assert len(clusters) == 1
        level, code, count = clusters[0]
        assert level == 3
        assert count == 500
