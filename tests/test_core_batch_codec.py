"""Batch arenas, the shuffle/spill codec, and batch/per-record identity."""

import random
from dataclasses import replace

import pytest

from repro.cluster import Cluster
from repro.core import (
    CSTRING,
    ChainCodec,
    ConfigError,
    KVBatch,
    KVContainer,
    KVDedupCodec,
    KVLayout,
    Mimir,
    MimirConfig,
    VARIABLE,
    ZlibCodec,
    batch_kernel,
    get_codec,
    pack_u64,
    unpack_u64,
)
from repro.memory import MemoryTracker
from repro.mpi import COMET

LAYOUTS = [
    KVLayout(),                    # variable/variable
    KVLayout(8, 8),                # fixed/fixed
    KVLayout(CSTRING, VARIABLE),   # NUL-terminated key
    KVLayout(VARIABLE, 8),         # variable key, fixed value
]


def random_field(rng, hint, *, lo=0, hi=16):
    if hint is VARIABLE:
        return rng.randbytes(rng.randint(lo, hi))
    if hint == CSTRING:
        return bytes(rng.choice(range(1, 256))
                     for _ in range(rng.randint(lo, hi)))
    return rng.randbytes(hint)


def random_pairs(rng, layout, n):
    return [(random_field(rng, layout.key_len),
             random_field(rng, layout.val_len)) for _ in range(n)]


def make_env(nprocs=1, platform=COMET):
    cluster = Cluster(platform, nprocs=nprocs)
    envs = []
    cluster.run(lambda env: envs.append(env))
    return envs[0], cluster


# ------------------------------------------------------------------- scan

class TestScanColumns:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_columns_match_record_iteration(self, layout):
        rng = random.Random(11)
        pairs = random_pairs(rng, layout, 40)
        buf = b"".join(layout.encode(k, v) for k, v in pairs)
        roff, koff, kend, voff, vend = layout.scan(buf)
        assert len(roff) == len(pairs) + 1
        assert roff[-1] == len(buf)
        rebuilt = [(buf[koff[i]:kend[i]], buf[voff[i]:vend[i]])
                   for i in range(len(pairs))]
        assert rebuilt == pairs
        # Record slices tile the buffer with no gaps.
        assert [buf[roff[i]:roff[i + 1]] for i in range(len(pairs))] \
            == [layout.encode(k, v) for k, v in pairs]

    def test_scan_prefix_with_end(self):
        layout = KVLayout(4, 4)
        buf = b"aaaaBBBBccccDDDD"
        roff, koff, kend, _voff, _vend = layout.scan(buf, end=8)
        assert list(roff) == [0, 8]
        assert buf[koff[0]:kend[0]] == b"aaaa"

    def test_fixed_fixed_truncated_buffer_raises(self):
        with pytest.raises(ValueError):
            KVLayout(4, 4).scan(b"abcde")

    def test_scan_empty(self):
        for layout in LAYOUTS:
            roff, *_rest = layout.scan(b"")
            assert list(roff) == [0]


# ---------------------------------------------------------------- KVBatch

class TestKVBatch:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_batches_equal_records(self, layout):
        rng = random.Random(5)
        pairs = random_pairs(rng, layout, 200)
        kvc = KVContainer(MemoryTracker(), layout, page_size=256)
        for k, v in pairs:
            kvc.add(k, v)
        assert kvc.npages > 1
        via_batches = [(k, v) for batch in kvc.batches()
                       for k, v in batch.pairs_bytes()]
        assert via_batches == pairs
        assert list(kvc.records()) == pairs
        assert sum(len(b) for b in kvc.batches()) == len(pairs)

    def test_views_are_zero_copy(self):
        layout = KVLayout()
        kvc = KVContainer(MemoryTracker(), layout, page_size=256)
        kvc.add(b"key", b"value")
        batch = next(iter(kvc.batches()))
        key = next(batch.keys())
        assert isinstance(key, memoryview)
        assert bytes(key) == b"key"
        assert isinstance(batch.record(0), memoryview)
        assert batch.key_bytes(0) == b"key"
        assert batch.value_bytes(0) == b"value"
        assert batch.nbytes == layout.encoded_size(b"key", b"value")

    def test_extend_encoded_resplits_across_pages(self):
        rng = random.Random(7)
        layout = KVLayout()
        pairs = random_pairs(rng, layout, 120)
        src = KVContainer(MemoryTracker(), layout, page_size=512)
        for k, v in pairs:
            src.add(k, v)
        # Smaller target pages: records must re-split cleanly.
        dst = KVContainer(MemoryTracker(), layout, page_size=128)
        for batch in src.batches():
            dst.extend_encoded(batch.arena)
        assert list(dst.records()) == pairs
        assert dst.nbytes == src.nbytes


# ------------------------------------------------------- pinned make_room

class TestPinnedSpill:
    def test_pin_blocks_budget_spill(self):
        env, _cluster = make_env()
        kvc = KVContainer(env.tracker, page_size=128, tag="t",
                          spill_env=env, resident_page_budget=2)
        pairs = [(b"key%03d" % i, b"val%03d" % i) for i in range(60)]
        for k, v in pairs[:20]:
            kvc.add(k, v)
        assert kvc.spilled
        before = kvc.spilled_bytes
        kvc.pin()
        for k, v in pairs[20:40]:
            kvc.add(k, v)
        # Mid-iteration safety: a pinned container must not move pages
        # to the PFS even when the resident budget is blown.
        assert kvc.spilled_bytes == before
        assert kvc.npages > 2
        kvc.unpin()
        for k, v in pairs[40:]:
            kvc.add(k, v)
        assert kvc.spilled_bytes > before   # spilling resumes
        assert list(kvc.records()) == pairs
        assert list(kvc.consume()) == pairs


# ------------------------------------------------------------------ codec

class TestCodecFrames:
    def encoded_run(self, skew):
        rng = random.Random(3)
        layout = KVLayout()
        keys = [b"hot-key-%d" % (i % (3 if skew else 500))
                for i in range(400)]
        rng.shuffle(keys)
        return layout, b"".join(layout.encode(k, pack_u64(i))
                                for i, k in enumerate(keys))

    @pytest.mark.parametrize("spec", ["zlib", "dedup", "dedup+zlib"])
    def test_roundtrip(self, spec):
        layout, run = self.encoded_run(skew=True)
        codec = get_codec(spec, layout)
        frame = codec.encode_frame(run)
        assert codec.decode_frame(frame) == run
        assert len(frame) < len(run)       # skewed keys compress

    def test_incompressible_stays_raw(self):
        codec = ZlibCodec()
        data = random.Random(1).randbytes(64)
        frame = codec.encode_frame(data)
        assert frame[:1] == b"\x00"        # raw passthrough flag
        assert len(frame) == len(data) + 1
        assert codec.decode_frame(frame) == data

    def test_empty(self):
        codec = ChainCodec([KVDedupCodec(KVLayout()), ZlibCodec()])
        assert codec.decode_frame(codec.encode_frame(b"")) == b""

    def test_get_codec_specs(self):
        assert get_codec(None, KVLayout()) is None
        with pytest.raises(ConfigError):
            get_codec("lz77", KVLayout())
        with pytest.raises(ConfigError):
            MimirConfig(codec="lz77")

    def test_dedup_is_byte_exact(self):
        layout, run = self.encoded_run(skew=False)
        codec = KVDedupCodec(layout)
        assert codec.decode_frame(codec.encode_frame(run)) == run


class TestContainerCodec:
    def skewed_pairs(self, n=400):
        rng = random.Random(9)
        return [(b"popular-%d" % rng.randint(0, 4), pack_u64(i))
                for i in range(n)]

    def test_contents_identical_and_smaller(self):
        pairs = self.skewed_pairs()
        layout = KVLayout()
        env, _cluster = make_env()
        plain = KVContainer(env.tracker, layout, page_size=512, tag="p")
        packed = KVContainer(env.tracker, layout, page_size=512, tag="z",
                             codec=get_codec("dedup+zlib", layout),
                             codec_env=env)
        for k, v in pairs:
            plain.add(k, v)
            packed.add(k, v)
        assert list(packed.records()) == list(plain.records()) == pairs
        assert packed.memory_bytes < plain.memory_bytes
        assert list(packed.consume()) == pairs

    def test_codec_spill_roundtrip(self):
        pairs = self.skewed_pairs()
        layout = KVLayout()
        env, _cluster = make_env()
        kvc = KVContainer(env.tracker, layout, page_size=256, tag="oc",
                          spill_env=env, resident_page_budget=2,
                          codec=get_codec("dedup+zlib", layout))
        for k, v in pairs:
            kvc.add(k, v)
        assert kvc.spilled
        assert list(kvc.records()) == pairs
        assert list(kvc.consume()) == pairs
        assert env.tracker.current == 0


# ---------------------------------------------- batch/per-record identity

WC_TEXT_SEED = 21


def wc_text(nbytes=6000):
    from repro.datasets.words import zipf_text
    return zipf_text(nbytes, seed=WC_TEXT_SEED)


SWEEP = [(batch, codec, nprocs)
         for batch in (False, True)
         for codec in (None, "dedup+zlib")
         for nprocs in (1, 4)]


class TestAppEquivalence:
    def wordcount(self, batch, codec, nprocs):
        from repro.apps.wordcount import wordcount_mimir
        cluster = Cluster(COMET, nprocs=nprocs)
        cluster.pfs.store("eq/words.txt", wc_text())
        config = MimirConfig(page_size=2048, codec=codec)
        result = cluster.run(lambda env: wordcount_mimir(
            env, "eq/words.txt", config, batch=batch, collect=True))
        counts = {}
        for r in result.returns:
            counts.update(r.counts)
        return counts

    def test_wordcount_counts_identical(self):
        baseline = self.wordcount(False, None, 1)
        assert baseline
        for batch, codec, nprocs in SWEEP:
            assert self.wordcount(batch, codec, nprocs) == baseline, \
                (batch, codec, nprocs)

    def pagerank(self, batch, codec, nprocs):
        from repro.apps.pagerank import pagerank_mimir
        from repro.datasets import edges_to_bytes, kronecker_edges
        cluster = Cluster(COMET, nprocs=nprocs)
        edges = kronecker_edges(scale=4, edgefactor=6, seed=2)
        cluster.pfs.store("eq/graph.bin", edges_to_bytes(edges))
        config = MimirConfig(page_size=2048, codec=codec)
        result = cluster.run(lambda env: pagerank_mimir(
            env, "eq/graph.bin", config, iterations=2, batch=batch))
        scores = {}
        for r in result.returns:
            scores.update(r.ranks)
        return {v: s.hex() for v, s in scores.items()}   # exact bits

    @pytest.mark.parametrize("nprocs", [1, 4])
    def test_pagerank_scores_bitwise_identical(self, nprocs):
        # Partitioning changes float summation order, so the bitwise
        # guarantee is per rank count: every (batch, codec) cell must
        # match the per-record/raw run on the same cluster size.
        baseline = self.pagerank(False, None, nprocs)
        assert baseline
        for batch in (False, True):
            for codec in (None, "dedup+zlib"):
                assert self.pagerank(batch, codec, nprocs) == baseline, \
                    (batch, codec)

    def terasort(self, batch, codec, nprocs):
        from repro.apps.terasort import generate_records, terasort_mimir
        cluster = Cluster(COMET, nprocs=nprocs)
        cluster.pfs.store("eq/tera.in", generate_records(200, seed=4))
        config = MimirConfig(page_size=2048, codec=codec)
        cluster.run(lambda env: terasort_mimir(
            env, "eq/tera.in", "eq/tera.out", config, batch=batch))
        return cluster.pfs.fetch("eq/tera.out")

    def test_terasort_output_bytes_identical(self):
        baseline = self.terasort(False, None, 1)
        assert baseline
        for batch, codec, nprocs in SWEEP:
            assert self.terasort(batch, codec, nprocs) == baseline, \
                (batch, codec, nprocs)

    def shuffle_payload(self, batch, codec, nprocs):
        """Random KV stream through map_items: per-rank shuffled bytes."""
        rng = random.Random(17)
        pairs = [(rng.randbytes(rng.randint(1, 10)), pack_u64(i))
                 for i in range(300)]

        def per_record(ctx, item):
            for k, v in pairs:
                ctx.emit(k, v)

        @batch_kernel
        def batched(ctx, item):
            ctx.emit_pairs(iter(pairs))

        config = MimirConfig(page_size=1024, codec=codec)
        cluster = Cluster(COMET, nprocs=nprocs)

        def rank_fn(env):
            mimir = Mimir(env, config)
            kvs = mimir.map_items([None], batched if batch else per_record)
            return b"".join(kvs.layout.encode(k, v)
                            for k, v in kvs.consume())

        return cluster.run(rank_fn).returns

    @pytest.mark.parametrize("nprocs", [1, 4])
    def test_shuffle_payloads_byte_identical(self, nprocs):
        baseline = self.shuffle_payload(False, None, nprocs)
        for batch in (False, True):
            for codec in (None, "dedup+zlib"):
                assert self.shuffle_payload(batch, codec, nprocs) \
                    == baseline, (batch, codec)


# ------------------------------------------------------- streaming output

class TestStreamingOutput:
    def test_multi_page_output_matches_render(self):
        env, cluster = make_env()
        config = MimirConfig(page_size=256)
        mimir = Mimir(env, config)
        kvc = KVContainer(env.tracker, config.layout, page_size=256)
        pairs = [(b"k%04d" % i, b"v%04d" % i) for i in range(200)]
        for k, v in pairs:
            kvc.add(k, v)
        assert kvc.npages > 1
        render = lambda k, v: k + b"=" + v + b"\n"
        mimir.write_output(kvc, "out/stream", render)
        expected = b"".join(render(k, v) for k, v in pairs)
        assert cluster.pfs.fetch("out/stream.0") == expected

    def test_empty_output_written(self):
        env, cluster = make_env()
        mimir = Mimir(env, MimirConfig())
        kvc = KVContainer(env.tracker, None, page_size=256)
        mimir.write_output(kvc, "out/empty")
        assert cluster.pfs.fetch("out/empty.0") == b""


# ------------------------------------------------------- dispatch costing

class TestRecordOverhead:
    def elapsed(self, batch, platform):
        from repro.apps.wordcount import wordcount_mimir
        cluster = Cluster(platform, nprocs=2)
        cluster.pfs.store("rc/words.txt", wc_text(3000))
        config = MimirConfig(page_size=2048)
        result = cluster.run(lambda env: wordcount_mimir(
            env, "rc/words.txt", config, batch=batch))
        return result.elapsed

    def test_zero_overhead_keeps_times_identical(self):
        assert self.elapsed(False, COMET) == self.elapsed(True, COMET)

    def test_overhead_rewards_batch_dispatch(self):
        costed = replace(COMET, record_overhead=1e-4)
        per_record = self.elapsed(False, costed)
        batch = self.elapsed(True, costed)
        assert batch < per_record
        # The byte charges are identical; only dispatch count differs.
        assert self.elapsed(False, COMET) < batch < per_record

    def test_rescale_preserves_record_overhead(self):
        costed = replace(COMET, record_overhead=1e-4)
        assert costed.rescaled(3).record_overhead == 1e-4
