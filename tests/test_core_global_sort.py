"""Global sample sort: total order, coverage, splitter logic."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.sort import choose_splitters, range_partitioner
from repro.mpi import COMET

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=256)


def run_global_sort(items_per_rank, nprocs=4, by_value=False):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)

    def job(env):
        mimir = Mimir(env, CFG)
        items = items_per_rank(env.comm.rank)

        def map_fn(ctx, pair):
            ctx.emit(pair[0], pair[1])

        # map_items with identity partitioner just loads local data.
        kvs = mimir.map_items(items, map_fn,
                              partitioner=lambda k, p: env.comm.rank)
        out = mimir.global_sort(kvs, by_value=by_value)
        records = list(out.records())
        out.free()
        return records

    return cluster.run(job).returns


class TestGlobalSortKeys:
    def test_total_order_across_ranks(self):
        def items(rank):
            return [(b"%03d" % ((rank * 37 + i * 13) % 100), b"v")
                    for i in range(25)]

        per_rank = run_global_sort(items)
        # Locally sorted...
        for records in per_rank:
            keys = [k for k, _ in records]
            assert keys == sorted(keys)
        # ...and globally: concatenation is sorted.
        all_keys = [k for records in per_rank for k, _ in records]
        assert all_keys == sorted(all_keys)

    def test_no_records_lost(self):
        def items(rank):
            return [(b"%03d" % ((rank * 31 + i) % 50), pack_u64(i))
                    for i in range(20)]

        per_rank = run_global_sort(items)
        merged = Counter(k for records in per_rank for k, _ in records)
        expected = Counter()
        for rank in range(4):
            expected.update(k for k, _ in items(rank))
        assert merged == expected

    def test_empty_ranks_ok(self):
        def items(rank):
            return [(b"%d" % i, b"v") for i in range(10)] if rank == 0 \
                else []

        per_rank = run_global_sort(items)
        all_keys = [k for records in per_rank for k, _ in records]
        assert all_keys == sorted(all_keys)
        assert len(all_keys) == 10

    def test_all_identical_keys(self):
        per_rank = run_global_sort(lambda rank: [(b"same", b"%d" % rank)] * 5)
        total = sum(len(records) for records in per_rank)
        assert total == 20

    def test_serial(self):
        per_rank = run_global_sort(
            lambda rank: [(b"%02d" % (9 - i), b"v") for i in range(10)],
            nprocs=1)
        assert [k for k, _ in per_rank[0]] == [b"%02d" % i for i in range(10)]


class TestGlobalSortValues:
    def test_sorted_by_value(self):
        def items(rank):
            return [(b"k%d" % i, b"%03d" % ((rank * 17 + i * 7) % 60))
                    for i in range(15)]

        per_rank = run_global_sort(items, by_value=True)
        all_values = [v for records in per_rank for _, v in records]
        assert all_values == sorted(all_values)


class TestSplitters:
    def test_count(self):
        samples = [b"%02d" % i for i in range(40)]
        assert len(choose_splitters(samples, 4)) == 3
        assert choose_splitters(samples, 1) == []
        assert choose_splitters([], 4) == []

    def test_splitters_sorted(self):
        samples = [b"%02d" % ((i * 7) % 50) for i in range(50)]
        splitters = choose_splitters(samples, 8)
        assert splitters == sorted(splitters)

    def test_range_partitioner_monotone(self):
        partition = range_partitioner([b"b", b"d", b"f"])
        dests = [partition(k, 4) for k in (b"a", b"b", b"c", b"e", b"z")]
        assert dests == sorted(dests)
        assert dests[0] == 0
        assert dests[-1] == 3

    def test_range_partitioner_clamps(self):
        partition = range_partitioner([b"m"])
        assert partition(b"zzz", 2) == 1
        assert partition(b"a", 2) == 0


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=6), min_size=0, max_size=40),
       st.integers(min_value=1, max_value=4))
def test_property_global_sort_is_sorted_permutation(keys, nprocs):
    def items(rank):
        return [(k, b"v") for k in keys[rank::nprocs]]

    per_rank = run_global_sort(items, nprocs=nprocs)
    all_keys = [k for records in per_rank for k, _ in records]
    assert all_keys == sorted(keys)
