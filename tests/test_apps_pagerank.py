"""PageRank: convergence and agreement with networkx."""

import networkx as nx
import numpy as np
import pytest

from repro.apps.pagerank import (
    PR_HINT_LAYOUT,
    pack_f64,
    pagerank_mimir,
    pr_combine,
    unpack_f64,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET

CFG = MimirConfig(page_size=8192, comm_buffer_size=8192,
                  input_chunk_size=4096)


def run_pagerank(edges, nprocs=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("edges.bin", edges_to_bytes(edges))
    result = cluster.run(
        lambda env: pagerank_mimir(env, "edges.bin", CFG, **kwargs))
    merged = {}
    for r in result.returns:
        for v, score in r.ranks.items():
            assert v not in merged
            merged[v] = score
    return merged, result.returns[0].iterations


def reference_pagerank(edges, damping=0.85):
    graph = nx.DiGraph()
    graph.add_edges_from(edges.tolist())
    return nx.pagerank(graph, alpha=damping, tol=1e-12, max_iter=200)


@pytest.fixture(scope="module")
def edges():
    return kronecker_edges(scale=6, edgefactor=8, seed=11)


class TestAgainstNetworkx:
    def test_scores_match(self, edges):
        ours, _ = run_pagerank(edges, iterations=100, tolerance=1e-12)
        theirs = reference_pagerank(edges)
        assert set(ours) == set(theirs)
        for v in ours:
            assert ours[v] == pytest.approx(theirs[v], rel=1e-3, abs=1e-6)

    def test_scores_sum_to_one(self, edges):
        ours, _ = run_pagerank(edges, iterations=50)
        assert sum(ours.values()) == pytest.approx(1.0, abs=1e-6)

    def test_serial_equals_parallel(self, edges):
        serial, _ = run_pagerank(edges, nprocs=1, iterations=30)
        parallel, _ = run_pagerank(edges, nprocs=6, iterations=30)
        assert set(serial) == set(parallel)
        for v in serial:
            assert serial[v] == pytest.approx(parallel[v], rel=1e-9)

    def test_hint_and_compress_preserve_scores(self, edges):
        plain, _ = run_pagerank(edges, iterations=30)
        opt, _ = run_pagerank(edges, iterations=30, hint=True, compress=True)
        for v in plain:
            assert plain[v] == pytest.approx(opt[v], rel=1e-9)


class TestStructure:
    def test_dangling_mass_redistributed(self):
        # 0 -> 1, 1 is dangling: without dangling handling mass leaks.
        edges = np.array([[0, 1]], dtype="<u8")
        ours, _ = run_pagerank(edges, nprocs=2, iterations=100,
                               tolerance=1e-14)
        assert sum(ours.values()) == pytest.approx(1.0, abs=1e-9)
        assert ours[1] > ours[0]  # 1 receives from 0 plus base

    def test_cycle_is_uniform(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]], dtype="<u8")
        ours, _ = run_pagerank(edges, nprocs=3, iterations=100,
                               tolerance=1e-14)
        for score in ours.values():
            assert score == pytest.approx(1 / 3, abs=1e-9)

    def test_converges_early_on_tolerance(self, edges):
        _, iters = run_pagerank(edges, iterations=500, tolerance=1e-10)
        assert iters < 500

    def test_empty_graph_raises(self):
        from repro.mpi import RankFailedError

        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("edges.bin", b"")
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: pagerank_mimir(env, "edges.bin", CFG))


class TestHelpers:
    def test_f64_roundtrip(self):
        assert unpack_f64(pack_f64(0.123456789)) == pytest.approx(
            0.123456789, rel=1e-15)

    def test_combine_sums(self):
        assert unpack_f64(pr_combine(b"k", pack_f64(0.25),
                                     pack_f64(0.5))) == pytest.approx(0.75)

    def test_hint_layout(self):
        assert PR_HINT_LAYOUT.header_size == 0
