"""Effective-rate calibration: the orderings the figures depend on."""

import pytest

from repro.bench import BenchScale
from repro.bench.calibrate import calibrate
from repro.mpi import COMET, MIRA
from repro.mpi.platforms import COMET_LOCAL_SSD


@pytest.fixture(scope="module")
def scale():
    return BenchScale(extra_shift=3)


@pytest.fixture(scope="module")
def comet_report(scale):
    return calibrate(scale.platform(COMET))


@pytest.fixture(scope="module")
def mira_report(scale):
    return calibrate(scale.platform(MIRA))


class TestCalibration:
    def test_rates_positive_and_finite(self, comet_report):
        for rate in (comet_report.shuffle_throughput,
                     comet_report.spill_write_throughput,
                     comet_report.spill_read_throughput,
                     comet_report.wordcount_throughput):
            assert 0 < rate < float("inf")

    def test_spill_writes_slowest(self, comet_report):
        """Figure 1's premise: spilling is the worst thing a rank can do."""
        r = comet_report
        assert r.spill_write_throughput < r.spill_read_throughput
        assert r.spill_write_throughput < r.shuffle_throughput / 5

    def test_mira_slower_than_comet(self, comet_report, mira_report):
        """The BG/Q-like platform is slower across the board."""
        assert mira_report.wordcount_throughput < \
            comet_report.wordcount_throughput
        assert mira_report.shuffle_throughput < \
            comet_report.shuffle_throughput

    def test_local_ssd_heals_spill_writes(self, scale, comet_report):
        ssd = calibrate(scale.platform(COMET_LOCAL_SSD))
        assert ssd.spill_write_throughput > \
            2 * comet_report.spill_write_throughput

    def test_render(self, comet_report):
        text = comet_report.render()
        assert "shuffle" in text and "spill write" in text
