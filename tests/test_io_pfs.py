"""Simulated parallel file system."""

import pytest

from repro.io import ParallelFileSystem
from repro.mpi import PFSModel, World
from repro.mpi.comm import SimComm


@pytest.fixture
def comm():
    return SimComm(0, 1)


@pytest.fixture
def pfs():
    return ParallelFileSystem(PFSModel(latency=1e-3, bandwidth=1e6))


class TestStaging:
    def test_store_fetch_roundtrip(self, pfs):
        pfs.store("input/a.txt", b"hello world")
        assert pfs.fetch("input/a.txt") == b"hello world"

    def test_store_is_costless(self, pfs, comm):
        pfs.store("x", b"data")
        assert comm.clock.time == 0.0
        assert pfs.stats.bytes_written == 0

    def test_exists_and_size(self, pfs):
        assert not pfs.exists("f")
        pfs.store("f", b"abc")
        assert pfs.exists("f")
        assert pfs.size("f") == 3

    def test_listdir_prefix(self, pfs):
        pfs.store("a/1", b"")
        pfs.store("a/2", b"")
        pfs.store("b/1", b"")
        assert pfs.listdir("a/") == ["a/1", "a/2"]

    def test_delete(self, pfs):
        pfs.store("f", b"x")
        pfs.delete("f")
        assert not pfs.exists("f")
        pfs.delete("f")  # idempotent

    def test_fetch_missing_raises(self, pfs):
        with pytest.raises(KeyError):
            pfs.fetch("nope")


class TestCostedIO:
    def test_read_charges_clock(self, pfs, comm):
        pfs.store("f", b"x" * 1_000_000)
        pfs.read(comm, "f")
        assert comm.clock.time == pytest.approx(1e-3 + 1.0)

    def test_partial_read(self, pfs, comm):
        pfs.store("f", b"abcdefgh")
        assert pfs.read(comm, "f", offset=2, size=3) == b"cde"

    def test_read_past_end_truncates(self, pfs, comm):
        pfs.store("f", b"abc")
        assert pfs.read(comm, "f", offset=1, size=100) == b"bc"

    def test_write_charges_clock_and_stats(self, pfs, comm):
        pfs.write(comm, "out", b"y" * 1000)
        assert pfs.stats.bytes_written == 1000
        assert pfs.stats.writes == 1
        assert comm.clock.time > 0

    def test_append_returns_offsets(self, pfs, comm):
        assert pfs.append(comm, "log", b"aa") == 0
        assert pfs.append(comm, "log", b"bbb") == 2
        assert pfs.fetch("log") == b"aabbb"

    def test_stats_by_prefix(self, pfs, comm):
        pfs.write(comm, "spill/f.0", b"x" * 100)
        pfs.write(comm, "output/f", b"y" * 50)
        assert pfs.spilled_bytes == 100
        assert pfs.stats.by_prefix["output"] == 50

    def test_default_model_is_free(self, comm):
        pfs = ParallelFileSystem()
        pfs.write(comm, "f", b"z" * 10_000)
        assert comm.clock.time == 0.0


class TestConcurrentAccess:
    def test_ranks_share_one_namespace(self):
        pfs = ParallelFileSystem()

        def fn(comm):
            pfs.write(comm, f"part/{comm.rank}", bytes([comm.rank]) * 4)
            comm.barrier()
            return sorted(pfs.listdir("part/"))

        result = World(4).run(fn)
        assert result.returns[0] == [f"part/{r}" for r in range(4)]

    def test_concurrent_appends_all_land(self):
        pfs = ParallelFileSystem()

        def fn(comm):
            for _ in range(50):
                pfs.append(comm, "shared", b"ab")

        World(4).run(fn)
        assert pfs.size("shared") == 4 * 50 * 2
