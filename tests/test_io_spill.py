"""Spill writer/reader streams."""

import pytest

from repro.io import ParallelFileSystem, SpillReader, SpillWriter
from repro.mpi import PFSModel
from repro.mpi.comm import SimComm


@pytest.fixture
def env():
    pfs = ParallelFileSystem(PFSModel(latency=1e-4, bandwidth=1e6))
    comm = SimComm(0, 1)
    return pfs, comm


class TestSpillRoundtrip:
    def test_chunks_come_back_in_order(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"first")
        w.write_chunk(b"second")
        w.write_chunk(b"third")
        assert list(w.reader()) == [b"first", b"second", b"third"]

    def test_empty_chunks_skipped(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"")
        w.write_chunk(b"data")
        assert w.nchunks == 1
        assert list(w.reader()) == [b"data"]

    def test_total_bytes(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"abc")
        w.write_chunk(b"de")
        assert w.total_bytes == 5

    def test_per_rank_paths(self):
        pfs = ParallelFileSystem()
        w0 = SpillWriter(pfs, SimComm(0, 1), "kv")
        assert w0.path == "spill/kv.0"

    def test_spill_counts_as_spilled_bytes(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"x" * 100)
        assert pfs.spilled_bytes == 100

    def test_write_and_read_charge_time(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"x" * 1000)
        t_after_write = comm.clock.time
        assert t_after_write > 0
        list(w.reader())
        assert comm.clock.time > t_after_write

    def test_reader_remaining(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"a")
        w.write_chunk(b"b")
        r = w.reader()
        assert r.remaining == 2
        next(r)
        assert r.remaining == 1

    def test_multiple_readers_independent(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"a")
        w.write_chunk(b"b")
        r1, r2 = w.reader(), w.reader()
        assert next(r1) == b"a"
        assert next(r2) == b"a"

    def test_discard_removes_file(self, env):
        pfs, comm = env
        w = SpillWriter(pfs, comm, "kv")
        w.write_chunk(b"abc")
        w.discard()
        assert not pfs.exists("spill/kv.0")
        assert w.nchunks == 0
