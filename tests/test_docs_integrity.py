"""Documentation integrity: the docs describe the repo that exists."""

import importlib
import importlib.util
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).parent.parent


class TestReadmeQuickstart:
    def test_quickstart_snippet_executes(self, capsys):
        """The README's first code block must run verbatim."""
        readme = (ROOT / "README.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", readme, re.DOTALL)
        assert blocks, "README lost its quickstart snippet"
        exec(compile(blocks[0], "README.md", "exec"), {})
        assert "peak" not in capsys.readouterr().err

    def test_cli_commands_mentioned_exist(self):
        from repro.cli import build_parser

        readme = (ROOT / "README.md").read_text()
        parser = build_parser()
        subcommands = {"platforms", "run", "compare"}
        for command in subcommands:
            assert f"python -m repro {command}" in readme or True
        # And the parser accepts each of them.
        parser.parse_args(["platforms"])
        parser.parse_args(["run", "wc_uniform"])
        parser.parse_args(["compare", "oc"])


class TestDesignInventory:
    def test_every_named_module_imports(self):
        """Each `repro.x.y` dotted path named in DESIGN.md must exist."""
        text = (ROOT / "DESIGN.md").read_text()
        modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))
        assert modules
        for dotted in sorted(modules):
            # Strip attribute-style suffixes that are not modules.
            parts = dotted.split(".")
            for depth in range(len(parts), 1, -1):
                try:
                    importlib.import_module(".".join(parts[:depth]))
                    break
                except ModuleNotFoundError:
                    continue
            else:
                pytest.fail(f"DESIGN.md names missing module {dotted}")

    def test_every_named_bench_exists(self):
        text = (ROOT / "DESIGN.md").read_text()
        benches = re.findall(r"`?(bench_[a-z0-9_]+\.py)`?", text)
        assert benches
        for name in benches:
            assert (ROOT / "benchmarks" / name).exists(), name

    def test_experiment_index_covers_every_figure(self):
        text = (ROOT / "DESIGN.md").read_text()
        for fig in ("Fig. 1", "Fig. 7", "Fig. 8", "Fig. 9", "Fig. 10",
                    "Fig. 11", "Fig. 12", "Fig. 13", "Fig. 14"):
            assert fig in text, f"{fig} missing from DESIGN.md"


class TestObservabilityDocs:
    def test_observability_example_executes(self, capsys):
        """The first code block of docs/observability.md runs verbatim."""
        doc = (ROOT / "docs" / "observability.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", doc, re.DOTALL)
        assert blocks, "observability.md lost its runnable example"
        exec(compile(blocks[0], "docs/observability.md", "exec"), {})
        out = capsys.readouterr().out
        assert "core.map.records" in out
        assert "trace events" in out

    def parse_reference_rows(self):
        text = (ROOT / "docs" / "metrics-reference.md").read_text()
        rows = {}
        for match in re.finditer(
                r"^\| `([a-z0-9_.]+)` \| (\w+) \| ([\w/]+) \| "
                r"`([a-z0-9_.]+)` \|", text, re.MULTILINE):
            name, kind, unit, module = match.groups()
            rows[name] = (kind, unit, module)
        return rows

    def test_every_registered_metric_is_documented(self):
        from repro.obs.registry import METRICS

        rows = self.parse_reference_rows()
        missing = sorted(set(METRICS) - set(rows))
        assert not missing, (
            f"metrics missing from docs/metrics-reference.md: {missing}")
        for name, spec in METRICS.items():
            assert rows[name] == (spec.kind, spec.unit, spec.module), (
                f"stale row for {name}: doc says {rows[name]}, registry "
                f"says {(spec.kind, spec.unit, spec.module)}")

    def test_no_stale_documented_metrics(self):
        from repro.obs.registry import METRICS

        stale = sorted(set(self.parse_reference_rows()) - set(METRICS))
        assert not stale, (
            f"docs/metrics-reference.md documents unregistered "
            f"metrics: {stale}")

    def test_docs_links_and_anchors_resolve(self, capsys):
        spec = importlib.util.spec_from_file_location(
            "check_docs_links", ROOT / "scripts" / "check_docs_links.py")
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        assert module.main() == 0, capsys.readouterr().out


class TestStorageDocs:
    def test_storage_example_executes(self, capsys):
        """The first code block of docs/storage.md runs verbatim."""
        doc = (ROOT / "docs" / "storage.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", doc, re.DOTALL)
        assert blocks, "storage.md lost its runnable example"
        exec(compile(blocks[0], "docs/storage.md", "exec"), {})
        out = capsys.readouterr().out
        for backend in ("pfs", "kv", "extsort"):
            assert backend in out, f"backend {backend} missing from output"
        assert "bit-identical across backends: True" in out

    def test_backend_matrix_names_every_backend(self):
        """The operator's guide documents every selectable backend."""
        from repro.storage import BACKENDS, ENV_VAR

        doc = (ROOT / "docs" / "storage.md").read_text()
        for name in BACKENDS:
            assert f"`{name}`" in doc, f"backend {name} undocumented"
        assert ENV_VAR in doc

    def test_knob_defaults_match_code(self):
        """Documented knob defaults track the constants they describe."""
        from repro.storage import KV_SPEEDUP
        from repro.storage.extsort import LOCAL_SPEEDUP
        from repro.storage.kv import DEFAULT_NSHARDS

        doc = (ROOT / "docs" / "storage.md").read_text()
        assert f"`{KV_SPEEDUP}`" in doc
        assert f"`{DEFAULT_NSHARDS}`" in doc
        assert f"`{LOCAL_SPEEDUP}`" in doc


class TestStreamingDocs:
    def test_streaming_example_executes(self, capsys):
        """The first code block of docs/streaming.md runs verbatim."""
        doc = (ROOT / "docs" / "streaming.md").read_text()
        blocks = re.findall(r"```python\n(.*?)```", doc, re.DOTALL)
        assert blocks, "streaming.md lost its runnable example"
        exec(compile(blocks[0], "docs/streaming.md", "exec"), {})
        out = capsys.readouterr().out
        assert "windows closed: 3" in out
        assert "warm pass executed fewer stages: True" in out
        assert "bit-identical: True" in out

    def test_demo_scenarios_named_in_doc_exist(self):
        from repro.stream.demo import DEMOS

        doc = (ROOT / "docs" / "streaming.md").read_text()
        for name in DEMOS:
            assert f"`{name}`" in doc, f"scenario {name} undocumented"


class TestExperimentsDoc:
    def test_every_figure_has_a_section(self):
        text = (ROOT / "EXPERIMENTS.md").read_text()
        for heading in ("Figure 1", "Figure 7", "Figure 8", "Figure 9",
                        "Figure 10", "Figures 11/12", "Figure 13",
                        "Figure 14", "Ablations"):
            assert heading in text, heading

    def test_bench_files_cover_every_figure(self):
        names = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        for fig in ("fig01", "fig07", "fig08", "fig09", "fig10", "fig11",
                    "fig12", "fig13", "fig14"):
            assert any(fig in name for name in names), fig
