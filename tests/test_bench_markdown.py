"""Markdown series rendering."""

from repro.bench import RunRecord, Series
from repro.bench.tables import render_markdown


def make_series():
    s = Series("Demo")
    s.add(RunRecord("1G", "Mimir", peak_bytes=1 << 20, elapsed=1.5))
    s.add(RunRecord("1G", "MR-MPI", peak_bytes=2 << 20, elapsed=2.0,
                    spilled=True))
    s.add(RunRecord("2G", "Mimir", oom=True))
    return s


class TestMarkdown:
    def test_structure(self):
        text = render_markdown(make_series())
        lines = text.splitlines()
        assert lines[0] == "**Demo**"
        assert lines[2] == "| size | Mimir | MR-MPI |"
        assert lines[3] == "|---|---|---|"

    def test_cells(self):
        text = render_markdown(make_series())
        assert "1.0M / 1.50s" in text
        assert "2.00s*" in text
        assert "OOM" in text
        assert "—" in text  # missing MR-MPI @ 2G

    def test_time_only(self):
        text = render_markdown(make_series(), time_only=True)
        assert "1.50s" in text
        assert "1.0M" not in text
