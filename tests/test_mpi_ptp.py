"""Point-to-point send/recv over the simulated MPI layer."""

import pytest

from repro.mpi import World, WorldAbortedError


class TestSendRecv:
    def test_simple_exchange(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send({"hello": 42}, dest=1)
                return None
            return comm.recv(source=0)

        result = World(2).run(fn)
        assert result.returns[1] == {"hello": 42}

    def test_message_order_preserved(self):
        def fn(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.send(i, dest=1)
                return None
            return [comm.recv(source=0) for _ in range(10)]

        assert World(2).run(fn).returns[1] == list(range(10))

    def test_tags_separate_channels(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            # Receive in the opposite tag order.
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return first, second

        assert World(2).run(fn).returns[1] == ("a", "b")

    def test_ring_pattern(self):
        def fn(comm):
            right = (comm.rank + 1) % comm.size
            left = (comm.rank - 1) % comm.size
            comm.send(comm.rank, dest=right)
            return comm.recv(source=left)

        result = World(4).run(fn)
        assert result.returns == [3, 0, 1, 2]

    def test_recv_charges_arrival_time(self):
        def fn(comm):
            if comm.rank == 0:
                comm.advance(5.0)
                comm.send(b"x" * 1000, dest=1)
                return comm.clock.time
            value = comm.recv(source=0)
            return comm.clock.time

        result = World(2).run(fn)
        # Receiver's clock advanced to at least the sender's send time.
        assert result.returns[1] >= 5.0

    def test_bytes_payload(self):
        def fn(comm):
            if comm.rank == 0:
                comm.send(b"\x00\xff" * 50, dest=1)
                return None
            return comm.recv(source=0)

        assert World(2).run(fn).returns[1] == b"\x00\xff" * 50

    def test_self_send_buffered(self):
        def fn(comm):
            comm.send("loop", dest=comm.rank, tag=7)
            return comm.recv(source=comm.rank, tag=7)

        assert World(2).run(fn).returns == ["loop", "loop"]

    def test_serial_self_send(self):
        assert World(1).run(
            lambda comm: (comm.send(3, 0), comm.recv(0))[1]).returns == [3]

    def test_invalid_dest(self):
        from repro.mpi import RankFailedError

        def fn(comm):
            comm.send(1, dest=9)

        with pytest.raises(RankFailedError):
            World(2).run(fn)

    def test_recv_unblocked_by_world_abort(self):
        from repro.mpi import RankFailedError

        def fn(comm):
            if comm.rank == 0:
                raise ValueError("dies before sending")
            return comm.recv(source=0)

        with pytest.raises(RankFailedError) as exc_info:
            World(2, join_timeout=30.0).run(fn)
        assert isinstance(exc_info.value.original, ValueError)

    def test_mixed_with_collectives(self):
        def fn(comm):
            total = comm.allsum(comm.rank)
            if comm.rank == 0:
                comm.send(total * 2, dest=comm.size - 1)
            comm.barrier()
            if comm.rank == comm.size - 1:
                return comm.recv(source=0)
            return total

        result = World(3).run(fn)
        assert result.returns[2] == 6
        assert result.returns[1] == 3
