"""The three streaming demo scenarios, validated against their twins.

Each demo's acceptance bar is *bit identity*: the streamed finals,
rendered, must equal the rendered output of a one-shot full-batch run
over the same total input - including when the stream saw late data
and repaired closed windows.
"""

from repro.stream.demo import (
    demo_pagerank,
    demo_sessionize,
    demo_wordcount,
)


class TestWordCountDemo:
    def test_stream_matches_batch_bit_for_bit(self):
        summary = demo_wordcount()
        assert summary["identical"]
        assert summary["runs"][0]["closed"] == 3
        assert summary["output"].endswith(b"\n")

    def test_different_seed_still_identical(self):
        assert demo_wordcount(seed=7)["identical"]


class TestPageRankDemo:
    def test_incremental_and_full_match_batch(self):
        summary = demo_pagerank()
        assert summary["identical"], "incremental stream diverged"
        assert summary["full_identical"], "uncached stream diverged"

    def test_incremental_recomputes_strictly_fewer_stages(self):
        summary = demo_pagerank()
        assert summary["stages_incremental"] < summary["stages_full"]
        assert summary["cache_hits"] > 0
        assert summary["update_speedup"] > 1.0

    def test_scores_parse_as_floats(self):
        summary = demo_pagerank(nbatches=4, iterations=1)
        total = 0.0
        for line in summary["output"].splitlines():
            _vertex, score = line.split(b"\t")
            total += float(score)
        assert abs(total - 1.0) < 1e-9  # scores are a distribution


class TestSessionizeDemo:
    def test_late_clicks_repair_and_match_batch(self):
        summary = demo_sessionize()
        assert summary["identical"]
        assert summary["late"] > 0, "demo stream lost its late clicks"
        assert summary["recomputed"] > 0, "no window was repaired"

    def test_sessions_cover_every_click(self):
        summary = demo_sessionize()
        clicks = sum(int(line.split(b"\t")[3])
                     for line in summary["output"].splitlines())
        # 6 batches x 10 clicks, every one sessionized exactly once.
        assert clicks == 60
