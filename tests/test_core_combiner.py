"""KV compression combiner: paper behaviour and bounded-bucket extension."""

from collections import Counter

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET

TEXT = (b"alpha beta gamma alpha beta alpha delta epsilon beta alpha ") * 40
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def run_wc(config, nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)

    def job(env):
        mimir = Mimir(env, config)
        kvs = mimir.map_text_file("t.txt", wc_map, combine_fn=wc_combine)
        stats = dict(mimir.last_map_stats)
        out = mimir.partial_reduce(kvs, wc_combine)
        counts = {k: unpack_u64(v) for k, v in out.records()}
        out.free()
        return counts, stats

    result = cluster.run(job)
    merged: Counter = Counter()
    for counts, _ in result.returns:
        merged.update(counts)
    return merged, result


BASE = MimirConfig(page_size=2048, comm_buffer_size=2048,
                   input_chunk_size=512)


class TestUnboundedCombiner:
    def test_correct_counts(self):
        merged, _ = run_wc(BASE)
        assert merged == EXPECTED

    def test_compression_shrinks_shuffle(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)

        def job(env, combine):
            mimir = Mimir(env, BASE)
            kvs = mimir.map_text_file(
                "t.txt", wc_map, combine_fn=wc_combine if combine else None)
            kvs.free()
            return mimir.last_map_stats["kv_bytes"]

        plain = sum(cluster.run(job, False).returns)
        cluster2 = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster2.pfs.store("t.txt", TEXT)
        compressed = sum(cluster2.run(job, True).returns)
        # 5 unique words, 400 occurrences: massive local compression.
        assert compressed < plain / 10


class TestBoundedBucket:
    BOUNDED = MimirConfig(page_size=2048, comm_buffer_size=2048,
                          input_chunk_size=512,
                          combiner_bucket_budget=256)

    def test_correct_counts_with_partial_flushes(self):
        merged, _ = run_wc(self.BOUNDED)
        assert merged == EXPECTED

    def test_bucket_memory_bounded(self):
        # With a large corpus of unique-ish keys the unbounded bucket
        # grows with the data; the bounded one caps near the budget.
        words = b" ".join(b"w%05d" % i for i in range(3000))
        budget = 1024

        def peak(config):
            cluster = Cluster(COMET, nprocs=2, memory_limit=None)
            cluster.pfs.store("u.txt", words)

            def job(env):
                mimir = Mimir(env, config)
                kvs = mimir.map_text_file("u.txt", wc_map,
                                          combine_fn=wc_combine)
                kvs.free()
                return max(s.current for s in [env.tracker]) and \
                    env.tracker.peak

            result = cluster.run(job)
            return result.node_peak_bytes

        unbounded = peak(MimirConfig(page_size=2048, comm_buffer_size=2048,
                                     input_chunk_size=512))
        bounded = peak(MimirConfig(page_size=2048, comm_buffer_size=2048,
                                   input_chunk_size=512,
                                   combiner_bucket_budget=budget))
        assert bounded < unbounded

    def test_flush_counter_reported(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        words = b" ".join(b"w%05d" % i for i in range(1000))
        cluster.pfs.store("u.txt", words)

        from repro.core.combiner import Combiner
        from repro.core.kvcontainer import KVContainer
        from repro.core.shuffle import Shuffler

        def job(env):
            config = self.BOUNDED
            out = KVContainer(env.tracker, config.layout, config.page_size)
            shuffler = Shuffler(env, config, out)
            combiner = Combiner(env, config, wc_combine, shuffler)
            for i in range(500):
                combiner.emit(b"key%04d" % (i + 500 * env.comm.rank),
                              pack_u64(1))
            combiner.finish()
            return combiner.partial_flushes

        result = cluster.run(job)
        assert all(f > 0 for f in result.returns)


class TestConfigValidation:
    def test_budget_parse_string(self):
        config = MimirConfig(combiner_bucket_budget="1K")
        assert config.combiner_bucket_budget == 1024

    def test_budget_rejects_nonpositive(self):
        import pytest

        from repro.core import ConfigError

        with pytest.raises(ConfigError):
            MimirConfig(combiner_bucket_budget=0)

    def test_default_is_paper_behaviour(self):
        assert MimirConfig().combiner_bucket_budget is None
