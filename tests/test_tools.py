"""Analysis tools: imbalance reports and memory timelines."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64
from repro.memory import MemoryTracker
from repro.mpi import COMET
from repro.tools import ImbalanceReport, composition_at_peak, render_timeline
from repro.tools.timeline import render_job_lanes
from repro.tools.trace import Trace


class TestImbalanceReport:
    def test_balanced(self):
        r = ImbalanceReport.from_values([10, 10, 10, 10])
        assert r.imbalance_factor == 1.0
        assert r.cv == 0.0
        assert r.headroom_lost == 0.0

    def test_hot_rank(self):
        r = ImbalanceReport.from_values([10, 10, 10, 70])
        assert r.imbalance_factor == pytest.approx(70 / 25)
        assert r.maximum == 70
        assert r.headroom_lost == pytest.approx(1 - 25 / 70)

    def test_single_rank(self):
        r = ImbalanceReport.from_values([5])
        assert r.nranks == 1
        assert r.imbalance_factor == 1.0

    def test_zero_values(self):
        r = ImbalanceReport.from_values([0, 0])
        assert r.imbalance_factor == 1.0
        assert r.headroom_lost == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ImbalanceReport.from_values([])

    def test_render(self):
        text = ImbalanceReport.from_values([1, 3]).render("kv_bytes")
        assert "kv_bytes" in text and "imbalance" in text

    def test_skewed_job_shows_imbalance(self):
        # A corpus dominated by one word concentrates its KVs on the
        # owner rank; the report must expose that.
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("t.txt", b"hot " * 400 + b"a b c d e f g h " * 5)

        def job(env):
            mimir = Mimir(env, MimirConfig(page_size=2048,
                                           comm_buffer_size=2048,
                                           input_chunk_size=256))
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            n = kvs.nbytes
            kvs.free()
            return n

        result = cluster.run(job)
        report = ImbalanceReport.from_values(result.returns)
        assert report.imbalance_factor > 2.0


@given(st.lists(st.floats(min_value=0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=50))
def test_property_imbalance_bounds(values):
    r = ImbalanceReport.from_values(values)
    # 1-ulp tolerance: the mean of identical values can round a hair
    # past them at extreme magnitudes.
    tol = 1e-9
    assert r.minimum <= r.mean * (1 + tol) + 1e-300
    assert r.mean <= r.maximum * (1 + tol) + 1e-300
    assert r.imbalance_factor >= 1.0 - tol or r.mean == 0
    assert 0.0 <= r.headroom_lost <= 1.0


class TestTimeline:
    def make_tracker(self):
        t = MemoryTracker(keep_timeline=True)
        t.allocate(100, "pages")
        t.allocate(50, "bucket")
        t.free(100, "pages")
        t.allocate(20, "pages")
        return t

    def test_composition_at_peak(self):
        t = self.make_tracker()
        assert composition_at_peak(t) == {"pages": 100, "bucket": 50}

    def test_peak_breakdown_sums_to_peak(self):
        t = self.make_tracker()
        assert sum(composition_at_peak(t).values()) == t.peak

    def test_requires_timeline(self):
        with pytest.raises(ValueError):
            composition_at_peak(MemoryTracker())
        with pytest.raises(ValueError):
            render_timeline(MemoryTracker())

    def test_render_contains_peak(self):
        text = render_timeline(self.make_tracker())
        assert "peak=150B" in text

    def test_render_empty(self):
        t = MemoryTracker(keep_timeline=True)
        assert render_timeline(t) == "(no allocations)"

    def test_render_downsamples(self):
        t = MemoryTracker(keep_timeline=True)
        for _ in range(500):
            t.allocate(1, "x")
        text = render_timeline(t, width=40)
        bars = text.split("  peak=")[0]
        assert len(bars) <= 41

    def test_lanes_empty_trace(self):
        assert render_job_lanes(Trace()) == "(no scheduler events)"

    def test_lanes_without_job_data_is_empty(self):
        trace = Trace()
        trace.emit_abs(0.1, -1, "admit", "anon")  # no job= payload
        assert render_job_lanes(trace) == "(no scheduler events)"

    def test_lanes_single_event(self):
        # One event means t0 == t1; the renderer must not divide by
        # the zero span.
        trace = Trace()
        trace.emit_abs(0.5, -1, "submit", "wc", job="wc")
        text = render_job_lanes(trace, width=20)
        assert "wc" in text and "S" in text

    def test_lanes_collision_oom_beats_queue(self):
        # Same cell, increasing precedence: X (oom) must overwrite q.
        trace = Trace()
        trace.emit_abs(1.0, -1, "queue", "wc", job="wc")
        trace.emit_abs(1.0, -1, "oom", "wc", job="wc")
        trace.emit_abs(2.0, -1, "stage-done", "wc:done", job="wc")
        lane = render_job_lanes(trace, width=10).splitlines()[0]
        assert "X" in lane and "q" not in lane

    def test_lanes_collision_admit_beats_stage_done(self):
        # Lower-precedence # must not overwrite an existing A.
        trace = Trace()
        trace.emit_abs(1.0, -1, "admit", "wc", job="wc")
        trace.emit_abs(1.0, 0, "stage-done", "wc:map", job="wc")
        trace.emit_abs(2.0, -1, "queue", "wc", job="wc")
        lane = render_job_lanes(trace, width=10).splitlines()[0]
        assert "A" in lane and "#" not in lane

    def test_lanes_one_row_per_job(self):
        trace = Trace()
        trace.emit_abs(0.0, -1, "submit", "a", job="a")
        trace.emit_abs(1.0, -1, "submit", "b", job="b")
        lines = render_job_lanes(trace, width=12).splitlines()
        assert len(lines) == 3  # two lanes + the legend
        assert lines[0].startswith("a ") and lines[1].startswith("b ")

    def test_end_to_end_with_cluster_timeline(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None,
                          keep_timeline=True)
        cluster.pfs.store("t.txt", b"x y z " * 100)

        def job(env):
            mimir = Mimir(env, MimirConfig(page_size=1024,
                                           comm_buffer_size=1024))
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            kvs.free()

        cluster.run(job)
        tracker = cluster.trackers[0]
        breakdown = composition_at_peak(tracker)
        assert sum(breakdown.values()) == tracker.peak
        assert "send_buffer" in breakdown
