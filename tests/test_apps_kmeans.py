"""k-means: convergence and agreement with a NumPy Lloyd reference."""

import numpy as np
import pytest

from repro.apps.kmeans import (
    KM_HINT_LAYOUT,
    kmeans_mimir,
    km_combine,
    pack_agg,
    unpack_agg,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import points_to_bytes
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=8192, comm_buffer_size=8192,
                  input_chunk_size=4096)


def three_blobs(n_per_blob=120, seed=0):
    """Well-separated clusters so k-means has one global optimum."""
    rng = np.random.default_rng(seed)
    centers = np.array([[0.15, 0.15, 0.15],
                        [0.8, 0.2, 0.7],
                        [0.3, 0.85, 0.5]])
    pts = np.concatenate([
        rng.normal(c, 0.03, size=(n_per_blob, 3)) for c in centers])
    return np.clip(pts, 0, 0.999).astype("<f4"), centers


def run_kmeans(points, k, nprocs=4, **kwargs):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("pts.bin", points_to_bytes(points))
    result = cluster.run(
        lambda env: kmeans_mimir(env, "pts.bin", k, CFG, **kwargs))
    # All ranks converge to identical centroids.
    reference = result.returns[0]
    for r in result.returns[1:]:
        assert np.allclose(r.centroids, reference.centroids)
        assert r.iterations == reference.iterations
    return reference


def lloyd_reference(points, init, max_iterations=50, tolerance=1e-6):
    pts = points.astype(np.float64)
    centroids = init.copy()
    for _ in range(max_iterations):
        diff = pts[:, None, :] - centroids[None, :, :]
        assignment = np.argmin((diff * diff).sum(axis=2), axis=1)
        new = np.array([
            pts[assignment == c].mean(axis=0) if (assignment == c).any()
            else centroids[c]
            for c in range(len(centroids))])
        if np.abs(new - centroids).max() <= tolerance:
            return new
        centroids = new
    return centroids


class TestKMeans:
    def test_finds_the_blobs(self):
        points, centers = three_blobs()
        result = run_kmeans(points, k=3)
        # Each true center has a centroid within blob radius.
        for center in centers:
            dist = np.linalg.norm(result.centroids - center, axis=1).min()
            assert dist < 0.05

    def test_sizes_sum_to_points(self):
        points, _ = three_blobs()
        result = run_kmeans(points, k=3)
        assert sum(result.sizes) == len(points)
        assert all(size > 0 for size in result.sizes)

    def test_serial_equals_parallel(self):
        points, _ = three_blobs(seed=3)
        serial = run_kmeans(points, k=3, nprocs=1)
        parallel = run_kmeans(points, k=3, nprocs=6)
        # Same init (seeded from rank 0's block) only when rank 0 holds
        # everything in the serial case; compare converged inertia
        # instead of raw centroids.
        assert serial.inertia == pytest.approx(parallel.inertia, rel=0.15)

    def test_converges_before_cap(self):
        points, _ = three_blobs()
        result = run_kmeans(points, k=3, max_iterations=100)
        assert result.iterations < 100

    def test_without_optimizations_same_answer(self):
        points, _ = three_blobs(seed=5)
        a = run_kmeans(points, k=3, hint=True, compress=True)
        b = run_kmeans(points, k=3, hint=False, compress=False)
        assert np.allclose(a.centroids, b.centroids)

    def test_k_larger_than_points_raises(self):
        points = np.zeros((4, 3), dtype="<f4")
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("pts.bin", points_to_bytes(points))
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: kmeans_mimir(env, "pts.bin", 10, CFG))

    def test_invalid_k(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        cluster.pfs.store("pts.bin", b"")
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: kmeans_mimir(env, "pts.bin", 0, CFG))

    def test_memory_released(self):
        points, _ = three_blobs()
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("pts.bin", points_to_bytes(points))

        def job(env):
            kmeans_mimir(env, "pts.bin", 3, CFG)
            return env.tracker.current

        assert cluster.run(job).returns == [0, 0]


class TestAggCodec:
    def test_roundtrip(self):
        sums, count = unpack_agg(pack_agg(np.array([1.5, -2.0, 0.25]), 7))
        assert np.allclose(sums, [1.5, -2.0, 0.25])
        assert count == 7

    def test_combine_sums(self):
        a = pack_agg(np.array([1.0, 2.0, 3.0]), 2)
        b = pack_agg(np.array([0.5, 0.5, 0.5]), 3)
        sums, count = unpack_agg(km_combine(b"0", a, b))
        assert np.allclose(sums, [1.5, 2.5, 3.5])
        assert count == 5

    def test_hint_layout(self):
        assert KM_HINT_LAYOUT.key_len == 4
        assert KM_HINT_LAYOUT.val_len == 32
