"""Fuzzing the collective engine with random operation programs."""

import operator

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import World

OPS = ["barrier", "allreduce", "allgather", "bcast", "alltoallv", "scan"]

programs = st.lists(st.sampled_from(OPS), min_size=1, max_size=12)
sizes = st.integers(min_value=1, max_value=5)


def run_program(comm, program):
    """Execute a random-but-symmetric collective sequence; return a
    digest every rank can be compared on."""
    digest = []
    for step, op in enumerate(program):
        if op == "barrier":
            comm.barrier()
            digest.append("b")
        elif op == "allreduce":
            digest.append(comm.allreduce(comm.rank + step))
        elif op == "allgather":
            digest.append(tuple(comm.allgather((comm.rank, step))))
        elif op == "bcast":
            digest.append(comm.bcast(step * 7, root=step % comm.size))
        elif op == "alltoallv":
            sends = [b"%d:%d" % (comm.rank, dest)
                     for dest in range(comm.size)]
            received = comm.alltoallv(sends)
            digest.append(b"|".join(received))
        elif op == "scan":
            digest.append(comm.scan(step + 1, op=operator.add))
    return digest


@settings(max_examples=30, deadline=None)
@given(programs, sizes)
def test_symmetric_programs_never_deadlock(program, size):
    result = World(size, join_timeout=60.0).run(run_program, program)
    assert len(result.returns) == size
    # Collective results that must be rank-independent are.
    for step, op in enumerate(program):
        values = [r[step] for r in result.returns]
        if op in ("barrier", "allreduce", "allgather", "bcast"):
            assert len(set(map(str, values))) == 1, (op, values)
        elif op == "alltoallv":
            # Rank d received "<src>:<d>" from every src.
            for dest, received in enumerate(values):
                parts = received.split(b"|")
                assert parts == [b"%d:%d" % (src, dest)
                                 for src in range(size)]
        elif op == "scan":
            # Prefix sum of identical contributions: rank r holds
            # (step+1) * (r+1).
            assert values == [(step + 1) * (r + 1) for r in range(size)]


@settings(max_examples=20, deadline=None)
@given(programs, st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=11))
def test_clocks_synchronised_after_any_program(program, size, skew_rank):
    def fn(comm, prog):
        if comm.rank == skew_rank % comm.size:
            comm.advance(3.0)  # one rank starts late
        run_program(comm, prog)
        comm.barrier()
        return comm.clock.time

    result = World(size, join_timeout=60.0).run(fn, program)
    # The trailing barrier equalises all clocks at >= the straggler's.
    assert len(set(result.returns)) == 1
    assert result.returns[0] >= 3.0


@settings(max_examples=15, deadline=None)
@given(programs, st.integers(min_value=2, max_value=4),
       st.integers(min_value=0, max_value=50))
def test_one_rank_failing_mid_program_always_unwinds(program, size, where):
    from repro.mpi import RankFailedError

    fail_step = where % (len(program) + 1)
    fail_rank = where % size

    def fn(comm, prog):
        for step, op in enumerate(prog):
            if step == fail_step and comm.rank == fail_rank:
                raise ValueError("injected")
            run_program(comm, [op])
        if fail_step == len(prog) and comm.rank == fail_rank:
            raise ValueError("injected")
        return True

    try:
        World(size, join_timeout=60.0).run(fn, program)
    except RankFailedError as failure:
        assert isinstance(failure.original, ValueError)
    # Either outcome is fine (a failure after the last collective on a
    # non-blocking path may still surface); the property under test is
    # simply: no deadlock, no hang, no crash of the harness.
