"""MR-MPI baseline: correctness, page discipline, spill modes."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import pack_u64, unpack_u64
from repro.mpi import COMET, RankFailedError
from repro.mrmpi import MRMPI, MRMPIConfig, OutOfCoreMode, PageOverflowError

TEXT = (b"apple banana cherry apple fig banana grape apple lime fig ") * 12
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def run_wc(nprocs, config, compress=False, allow_oom=False, text=TEXT):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("input.txt", text)

    def job(env):
        mr = MRMPI(env, config)
        mr.map_text_file("input.txt", wc_map)
        if compress:
            mr.compress(wc_combine)
        mr.aggregate()
        mr.convert()
        mr.reduce(wc_reduce)
        counts = {k: unpack_u64(v) for k, v in mr.collect()}
        stats = {"spilled": mr.any_spill,
                 "spilled_bytes": mr.total_spilled_bytes}
        mr.free()
        assert env.tracker.current == 0
        return counts, stats

    return cluster.run(job, allow_oom=allow_oom)


def merge(result):
    merged: Counter = Counter()
    for counts, _ in result.returns:
        for word, count in counts.items():
            assert word not in merged
            merged[word] = count
    return merged


BIG_PAGES = MRMPIConfig(page_size=64 * 1024, input_chunk_size=512)


class TestCorrectness:
    def test_serial(self):
        assert merge(run_wc(1, BIG_PAGES)) == EXPECTED

    def test_parallel(self):
        assert merge(run_wc(4, BIG_PAGES)) == EXPECTED

    def test_many_ranks(self):
        assert merge(run_wc(8, BIG_PAGES)) == EXPECTED

    def test_with_compress(self):
        assert merge(run_wc(4, BIG_PAGES, compress=True)) == EXPECTED

    def test_in_memory_no_spill(self):
        result = run_wc(4, BIG_PAGES)
        assert all(not stats["spilled"] for _, stats in result.returns)


class TestPageDiscipline:
    def test_peak_is_seven_pages_in_aggregate(self):
        config = MRMPIConfig(page_size=16 * 1024, input_chunk_size=512)
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("input.txt", TEXT)

        def job(env):
            mr = MRMPI(env, config)
            mr.map_text_file("input.txt", wc_map)
            after_map = env.tracker.peak
            mr.aggregate()
            after_agg = env.tracker.peak
            mr.convert()
            mr.reduce(wc_reduce)
            mr.free()
            return after_map, after_agg, env.tracker.peak

        result = cluster.run(job)
        for after_map, after_agg, final in result.returns:
            assert after_map == 1 * config.page_size
            assert after_agg == 7 * config.page_size
            assert final == 7 * config.page_size  # aggregate dominates

    def test_memory_flat_regardless_of_data(self):
        config = MRMPIConfig(page_size=32 * 1024, input_chunk_size=512)
        small = run_wc(2, config, text=TEXT)
        large = run_wc(2, config, text=TEXT * 4)
        # Fixed page complement: peak identical for 4x the data.
        assert small.peak_bytes == large.peak_bytes


class TestSpillModes:
    TINY = MRMPIConfig(page_size=512, input_chunk_size=256)

    def test_when_full_spills_and_stays_correct(self):
        result = run_wc(2, self.TINY)
        assert merge(result) == EXPECTED
        assert any(stats["spilled"] for _, stats in result.returns)
        assert sum(s["spilled_bytes"] for _, s in result.returns) > 0

    def test_spill_charges_time(self):
        fast = run_wc(2, BIG_PAGES)
        slow = run_wc(2, self.TINY)
        assert slow.elapsed > fast.elapsed

    def test_error_mode_raises(self):
        config = MRMPIConfig(page_size=512, mode=OutOfCoreMode.ERROR,
                             input_chunk_size=256)
        with pytest.raises(RankFailedError) as exc_info:
            run_wc(2, config)
        assert isinstance(exc_info.value.original, PageOverflowError)

    def test_error_mode_ok_when_fits(self):
        config = MRMPIConfig(page_size=64 * 1024, mode=OutOfCoreMode.ERROR,
                             input_chunk_size=512)
        assert merge(run_wc(2, config)) == EXPECTED

    def test_always_mode_spills_even_when_fits(self):
        config = MRMPIConfig(page_size=64 * 1024, mode=OutOfCoreMode.ALWAYS,
                             input_chunk_size=512)
        result = run_wc(2, config)
        assert merge(result) == EXPECTED
        assert all(stats["spilled"] for _, stats in result.returns)


class TestCompress:
    def test_compress_shrinks_shuffled_data_not_memory(self):
        config = MRMPIConfig(page_size=32 * 1024, input_chunk_size=512)

        def run(compress):
            cluster = Cluster(COMET, nprocs=2, memory_limit=None)
            cluster.pfs.store("input.txt", TEXT)

            def job(env):
                mr = MRMPI(env, config)
                mr.map_text_file("input.txt", wc_map)
                if compress:
                    mr.compress(wc_combine)
                pre_shuffle_bytes = mr.kv.nbytes
                mr.aggregate()
                mr.convert()
                mr.reduce(wc_reduce)
                mr.free()
                return pre_shuffle_bytes

            result = cluster.run(job)
            return sum(result.returns), result.node_peak_bytes

        plain_shuffled, plain_peak = run(False)
        cps_shuffled, cps_peak = run(True)
        assert cps_shuffled < plain_shuffled
        assert cps_peak >= plain_peak  # fixed pages: no memory win


class TestLifecycle:
    def test_map_twice_without_consume_rejected(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        cluster.pfs.store("input.txt", b"a b c")

        def job(env):
            mr = MRMPI(env, BIG_PAGES)
            mr.map_text_file("input.txt", wc_map)
            with pytest.raises(RuntimeError):
                mr.map_text_file("input.txt", wc_map)
            mr.free()

        cluster.run(job)

    def test_phase_order_enforced(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            mr = MRMPI(env, BIG_PAGES)
            with pytest.raises(RuntimeError):
                mr.aggregate()
            with pytest.raises(RuntimeError):
                mr.convert()
            with pytest.raises(RuntimeError):
                mr.reduce(wc_reduce)

        cluster.run(job)

    def test_map_kvs_multistage(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("input.txt", TEXT)

        def job(env):
            mr = MRMPI(env, BIG_PAGES)
            mr.map_text_file("input.txt", wc_map)
            mr.aggregate()
            mr.convert()
            mr.reduce(wc_reduce)
            # Second stage: histogram of counts.
            mr.map_kvs(lambda ctx, k, v: ctx.emit(v, pack_u64(1)))
            mr.aggregate()
            mr.convert()
            mr.reduce(wc_reduce)
            out = {unpack_u64(k): unpack_u64(v) for k, v in mr.collect()}
            mr.free()
            return out

        result = cluster.run(job)
        merged = {}
        for part in result.returns:
            merged.update(part)
        assert merged == dict(Counter(EXPECTED.values()))

    def test_collect_empty_when_no_kv(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        cluster.run(lambda env: MRMPI(env, BIG_PAGES).collect() == [])
