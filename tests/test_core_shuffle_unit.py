"""Shuffler in isolation: partitions, rounds, buffers, routing."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import KVContainer, MimirConfig, RecordTooLargeError
from repro.core.shuffle import Shuffler, default_partitioner
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=1024, comm_buffer_size=512)


def run_shuffle(nprocs, emit_fn, config=CFG, partitioner=None):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)

    def job(env):
        out = KVContainer(env.tracker, config.layout, config.page_size)
        shuffler = Shuffler(env, config, out, partitioner)
        emit_fn(env, shuffler)
        shuffler.finish()
        stats = (shuffler.rounds, shuffler.records_sent,
                 shuffler.bytes_sent, env.tracker.current)
        records = list(out.records())
        out.free()
        return records, stats

    return cluster.run(job).returns


class TestPartitionSizing:
    def test_partition_is_buffer_over_nprocs(self):
        assert CFG.partition_size(4) == 128
        assert CFG.partition_size(1) == 512

    def test_record_bigger_than_partition_rejected(self):
        def emit(env, shuffler):
            shuffler.emit(b"k" * 200, b"v")  # > 128B partition

        with pytest.raises(RankFailedError) as exc_info:
            run_shuffle(4, emit)
        assert isinstance(exc_info.value.original, RecordTooLargeError)

    def test_comm_buffers_freed_on_finish(self):
        def emit(env, shuffler):
            shuffler.emit(b"k", b"v")

        for _records, (_r, _n, _b, leftover_minus_pages) in \
                run_shuffle(2, emit):
            pass  # leftover checked below via tracker snapshot

        cluster = Cluster(COMET, nprocs=2, memory_limit=None)

        def job(env):
            out = KVContainer(env.tracker, CFG.layout, CFG.page_size)
            shuffler = Shuffler(env, CFG, out, None)
            shuffler.emit(b"k", b"v")
            shuffler.finish()
            held = env.tracker.usage_by_tag()
            out.free()
            return held

        for held in cluster.run(job).returns:
            assert "send_buffer" not in held
            assert "recv_buffer" not in held


class TestRounds:
    def test_single_round_for_small_data(self):
        def emit(env, shuffler):
            if env.comm.rank == 0:
                shuffler.emit(b"a", b"1")

        results = run_shuffle(2, emit)
        rounds = {stats[0] for _, stats in results}
        assert rounds == {1}

    def test_full_partition_forces_extra_rounds(self):
        def emit(env, shuffler):
            for i in range(100):  # ~17B x 100 per dest >> 128B partition
                shuffler.emit(b"k%02d" % (i % 10), b"v")

        results = run_shuffle(4, emit)
        for _, (rounds, sent, _bytes, _cur) in results:
            assert rounds > 1
            assert sent == 100

    def test_all_ranks_same_round_count(self):
        def emit(env, shuffler):
            # Only rank 0 emits a lot; everyone must follow its rounds.
            n = 200 if env.comm.rank == 0 else 1
            for i in range(n):
                shuffler.emit(b"x%03d" % i, b"y")

        results = run_shuffle(3, emit)
        assert len({stats[0] for _, stats in results}) == 1


class TestRouting:
    def test_default_partitioner_consistency(self):
        assert default_partitioner(b"word", 7) == \
            default_partitioner(b"word", 7)
        assert 0 <= default_partitioner(b"anything", 5) < 5

    def test_records_arrive_at_hash_owner(self):
        def emit(env, shuffler):
            for i in range(40):
                shuffler.emit(b"key%02d" % i, bytes([env.comm.rank]))

        results = run_shuffle(4, emit)
        for rank, (records, _stats) in enumerate(results):
            for key, _value in records:
                assert default_partitioner(key, 4) == rank

    def test_custom_partitioner_routes_everything_to_zero(self):
        def emit(env, shuffler):
            shuffler.emit(b"k%d" % env.comm.rank, b"v")

        results = run_shuffle(3, emit, partitioner=lambda k, p: 0)
        counts = [len(records) for records, _ in results]
        assert counts == [3, 0, 0]

    def test_multiset_preserved_end_to_end(self):
        def emit(env, shuffler):
            for i in range(30):
                shuffler.emit(b"w%02d" % ((i + env.comm.rank) % 9), b"v")

        results = run_shuffle(5, emit)
        merged = Counter()
        for records, _ in results:
            merged.update(k for k, _ in records)
        assert sum(merged.values()) == 5 * 30
