"""In-situ analytics: simulation physics, analysis agreement, I/O saving."""

import numpy as np
import pytest

from repro.apps.octree import morton_codes
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.insitu import InSituAnalytics, ParticleSimulation
from repro.mpi import COMET

CFG = MimirConfig(page_size=4096, comm_buffer_size=4096)


def make_cluster(nprocs=4):
    return Cluster(COMET, nprocs=nprocs, memory_limit=None)


class TestParticleSimulation:
    def test_particles_split_across_ranks(self):
        result = make_cluster(4).run(
            lambda env: ParticleSimulation(env, 103, seed=1).nlocal)
        assert sum(result.returns) == 103
        assert max(result.returns) - min(result.returns) <= 1

    def test_positions_stay_in_unit_cube(self):
        def job(env):
            sim = ParticleSimulation(env, 200, sigma=0.3, seed=2)
            for _ in range(20):
                pts = sim.step()
                assert pts.min() >= 0.0
                assert pts.max() < 1.0
            sim.finalize()
            return True

        assert all(make_cluster(2).run(job).returns)

    def test_deterministic_per_seed(self):
        def job(env):
            sim = ParticleSimulation(env, 100, seed=7)
            sim.step()
            return sim.snapshot_bytes()

        a = make_cluster(2).run(job).returns
        b = make_cluster(2).run(job).returns
        assert a == b

    def test_stepping_charges_compute(self):
        def job(env):
            sim = ParticleSimulation(env, 500, seed=0)
            t0 = env.comm.clock.time
            sim.step()
            return env.comm.clock.time - t0

        assert all(t > 0 for t in make_cluster(2).run(job).returns)

    def test_state_memory_accounted_and_released(self):
        def job(env):
            sim = ParticleSimulation(env, 400, seed=0)
            held = env.tracker.current
            sim.finalize()
            return held, env.tracker.current

        for held, after in make_cluster(2).run(job).returns:
            assert held > 0
            assert after == 0

    def test_validation(self):
        def job(env):
            with pytest.raises(ValueError):
                ParticleSimulation(env, -1)
            with pytest.raises(ValueError):
                ParticleSimulation(env, 10, sigma=-0.1)

        make_cluster(1).run(job)


class TestInSituAnalysis:
    def test_dense_octants_match_direct_computation(self):
        def job(env):
            sim = ParticleSimulation(env, 2000, sigma=0.0, seed=3)
            insitu = InSituAnalytics(env, sim, config=CFG, level=1,
                                     density=0.05)
            summary = insitu.analyse_step()
            return summary.dense_octants, sim.snapshot_bytes()

        result = make_cluster(4).run(job)
        # Reference: pool all particles, count octants directly.
        all_pts = np.concatenate([
            np.frombuffer(snap, dtype="<f4").reshape(-1, 3)
            for _, snap in result.returns])
        codes = morton_codes(all_pts, 1)
        uniq, counts = np.unique(codes, return_counts=True)
        threshold = max(1, int(0.05 * 2000))
        expected = {int(c): int(n) for c, n in zip(uniq, counts)
                    if n >= threshold}
        merged = {}
        for dense, _ in result.returns:
            for code, count in dense.items():
                assert code not in merged
                merged[code] = count
        assert merged == expected

    def test_multiple_steps_progress(self):
        def job(env):
            sim = ParticleSimulation(env, 500, seed=4)
            insitu = InSituAnalytics(env, sim, config=CFG, level=1,
                                     density=0.02)
            summaries = [insitu.analyse_step() for _ in range(3)]
            return [s.timestep for s in summaries]

        assert make_cluster(2).run(job).returns == [[1, 2, 3]] * 2

    def test_in_situ_touches_no_pfs(self):
        cluster = make_cluster(2)

        def job(env):
            sim = ParticleSimulation(env, 300, seed=5)
            InSituAnalytics(env, sim, config=CFG).analyse_step()

        cluster.run(job)
        assert cluster.pfs.stats.bytes_written == 0
        assert cluster.pfs.stats.bytes_read == 0

    def test_validation(self):
        def job(env):
            sim = ParticleSimulation(env, 10, seed=0)
            with pytest.raises(ValueError):
                InSituAnalytics(env, sim, level=0)
            with pytest.raises(ValueError):
                InSituAnalytics(env, sim, density=0.0)

        make_cluster(1).run(job)


class TestPostHocComparison:
    def test_post_hoc_agrees_with_in_situ(self):
        def job(env):
            sim = ParticleSimulation(env, 1000, sigma=0.0, seed=6)
            insitu = InSituAnalytics(env, sim, config=CFG, level=1,
                                     density=0.05)
            live = insitu.analyse_step()

            # Rewind: fresh identical simulation through the PFS path.
            sim2 = ParticleSimulation(env, 1000, sigma=0.0, seed=6)
            posthoc_runner = InSituAnalytics(env, sim2, config=CFG,
                                             level=1, density=0.05)
            posthoc_runner.dump_step()
            replay = posthoc_runner.analyse_dump(1)
            return live.dense_octants == replay.dense_octants

        assert all(make_cluster(3).run(job).returns)

    def test_in_situ_is_faster_than_post_hoc(self):
        def insitu_job(env):
            sim = ParticleSimulation(env, 3000, seed=8)
            insitu = InSituAnalytics(env, sim, config=CFG)
            for _ in range(4):
                insitu.analyse_step()
            return env.comm.clock.time

        def posthoc_job(env):
            sim = ParticleSimulation(env, 3000, seed=8)
            runner = InSituAnalytics(env, sim, config=CFG)
            for _ in range(4):
                runner.dump_step()
            for t in range(1, 5):
                runner.analyse_dump(t)
            return env.comm.clock.time

        live = max(make_cluster(4).run(insitu_job).returns)
        replay = max(make_cluster(4).run(posthoc_job).returns)
        # The post-hoc path pays the PFS round trip for every step.
        assert replay > 1.5 * live
