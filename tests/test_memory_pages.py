"""Page and PagePool behaviour."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import MemoryLimitExceeded, MemoryTracker, Page, PagePool


class TestPage:
    def test_write_within_capacity(self):
        p = Page(16)
        assert p.write(b"hello")
        assert p.used == 5
        assert bytes(p.view) == b"hello"

    def test_write_appends(self):
        p = Page(16)
        p.write(b"ab")
        p.write(b"cd")
        assert bytes(p.view) == b"abcd"

    def test_write_overflow_refused_atomically(self):
        p = Page(4)
        p.write(b"abc")
        assert not p.write(b"xy")
        assert bytes(p.view) == b"abc"

    def test_exact_fill(self):
        p = Page(4)
        assert p.write(b"abcd")
        assert p.remaining == 0

    def test_clear_resets_watermark(self):
        p = Page(8)
        p.write(b"abcd")
        p.clear()
        assert p.used == 0
        assert p.remaining == 8

    def test_len_is_used(self):
        p = Page(8)
        p.write(b"ab")
        assert len(p) == 2

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            Page(0)

    def test_view_is_zero_copy(self):
        p = Page(8)
        p.write(b"abcd")
        view = p.view
        p.data[0] = ord("z")
        assert bytes(view) == b"zbcd"


class TestPagePool:
    def test_acquire_charges_tracker(self):
        t = MemoryTracker()
        pool = PagePool(t, 64, tag="kv")
        page = pool.acquire()
        assert t.current == 64
        assert t.usage_by_tag() == {"kv": 64}
        assert page.size == 64

    def test_release_credits_tracker(self):
        t = MemoryTracker()
        pool = PagePool(t, 64)
        page = pool.acquire()
        pool.release(page)
        assert t.current == 0
        assert pool.outstanding == 0

    def test_limit_propagates(self):
        t = MemoryTracker(limit=100)
        pool = PagePool(t, 64)
        pool.acquire()
        with pytest.raises(MemoryLimitExceeded):
            pool.acquire()

    def test_would_fit(self):
        t = MemoryTracker(limit=100)
        pool = PagePool(t, 64)
        assert pool.would_fit()
        pool.acquire()
        assert not pool.would_fit()

    def test_page_size_string(self):
        pool = PagePool(MemoryTracker(), "1K")
        assert pool.page_size == 1024

    def test_release_foreign_page_rejected(self):
        pool = PagePool(MemoryTracker(), 64)
        with pytest.raises(ValueError):
            pool.release(Page(32))

    def test_release_without_acquire_rejected(self):
        t = MemoryTracker()
        pool = PagePool(t, 64)
        page = pool.acquire()
        pool.release(page)
        with pytest.raises(ValueError):
            pool.release(page)

    def test_custom_tag_per_acquire(self):
        t = MemoryTracker()
        pool = PagePool(t, 32, tag="default")
        pool.acquire()
        pool.acquire(tag="special")
        assert t.usage_by_tag() == {"default": 32, "special": 32}


@given(st.lists(st.binary(min_size=0, max_size=20), max_size=30))
def test_property_page_concatenates_accepted_writes(chunks):
    page = Page(128)
    accepted = []
    for chunk in chunks:
        if page.write(chunk):
            accepted.append(chunk)
    assert bytes(page.view) == b"".join(accepted)
    assert page.used == sum(len(c) for c in accepted)
    assert page.used <= 128
