"""Size parsing/formatting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import format_size, parse_size


class TestParseSize:
    def test_plain_int(self):
        assert parse_size(4096) == 4096

    def test_float(self):
        assert parse_size(10.0) == 10

    def test_kilobytes(self):
        assert parse_size("64K") == 64 * 1024

    def test_megabytes(self):
        assert parse_size("64M") == 64 * 1024 * 1024

    def test_gigabytes(self):
        assert parse_size("128G") == 128 * 1024 ** 3

    def test_fractional(self):
        assert parse_size("1.5K") == 1536

    def test_suffix_variants(self):
        assert parse_size("2MB") == parse_size("2MiB") == parse_size("2m")

    def test_bare_bytes(self):
        assert parse_size("100") == 100
        assert parse_size("100B") == 100

    def test_whitespace(self):
        assert parse_size("  64 K ".replace(" ", "") or "64K") == 64 * 1024

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            parse_size(-1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_size("")

    def test_rejects_unknown_unit(self):
        with pytest.raises(ValueError):
            parse_size("10Q")

    def test_rejects_no_number(self):
        with pytest.raises(ValueError):
            parse_size("MB")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            parse_size(True)


class TestFormatSize:
    def test_bytes(self):
        assert format_size(100) == "100B"

    def test_kilobytes(self):
        assert format_size(64 * 1024) == "64.0K"

    def test_megabytes(self):
        assert format_size(64 * 1024 ** 2) == "64.0M"

    def test_zero(self):
        assert format_size(0) == "0B"

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            format_size(-5)


@given(st.integers(min_value=0, max_value=2 ** 50))
def test_parse_of_int_is_identity(n):
    assert parse_size(n) == n


@given(st.integers(min_value=0, max_value=2 ** 40 - 1))
def test_format_then_parse_within_rounding(n):
    # format_size rounds to one decimal of the chosen unit; the
    # round-trip must stay within that rounding granularity.
    text = format_size(n)
    back = parse_size(text)
    # Value in the chosen unit is >= 1, rounded to one decimal: relative
    # error is bounded by 0.05/1 = 5 % (plus integer truncation).
    assert abs(back - n) <= 0.06 * n + 1
