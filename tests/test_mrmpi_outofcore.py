"""MR-MPI out-of-core paths: spilled convert, oversized records, I/O cost."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import pack_u64, unpack_u64
from repro.mpi import COMET
from repro.mrmpi import MRMPI, MRMPIConfig, OutOfCoreMode

TEXT = (b"red green blue red yellow red green purple red orange ") * 50
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def run_job(config, nprocs=2, text=TEXT):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("in.txt", text)

    def job(env):
        mr = MRMPI(env, config)
        mr.map_text_file("in.txt", wc_map)
        mr.aggregate()
        kv_spilled = env.pfs.spilled_bytes
        mr.convert()
        mr.reduce(wc_reduce)
        counts = {k: unpack_u64(v) for k, v in mr.collect()}
        mr.free()
        return counts, kv_spilled

    result = cluster.run(job)
    merged: Counter = Counter()
    for counts, _ in result.returns:
        merged.update(counts)
    return merged, result, cluster


class TestOutOfCoreConvert:
    TINY = MRMPIConfig(page_size=256, input_chunk_size=128)

    def test_spilled_convert_is_correct(self):
        merged, result, _ = run_job(self.TINY)
        assert merged == EXPECTED
        assert result.spilled_bytes > 0

    def test_partition_respill_adds_io(self):
        # Out-of-core convert re-partitions the KV data through the
        # PFS: spill traffic exceeds the raw KV volume several-fold.
        _, result, cluster = run_job(self.TINY)
        kv_volume = sum(len(w) + 16 for w in TEXT.split())
        assert cluster.pfs.spilled_bytes > 1.5 * kv_volume

    def test_out_of_core_much_slower(self):
        _, fast, _ = run_job(MRMPIConfig(page_size=64 * 1024,
                                         input_chunk_size=512))
        _, slow, _ = run_job(self.TINY)
        assert slow.elapsed > 5 * fast.elapsed

    def test_memory_still_bounded_by_pages(self):
        # Even fully out-of-core, the page complement bounds memory.
        _, result, _ = run_job(self.TINY)
        assert result.max_rank_peak_bytes == 7 * 256


class TestOversizedRecords:
    def test_record_larger_than_page_spills_through(self):
        config = MRMPIConfig(page_size=64, input_chunk_size=64)
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            mr = MRMPI(env, config)
            big_value = b"v" * 100  # record > page
            mr.map_items([1, 2, 3],
                         lambda ctx, i: ctx.emit(b"k%d" % i, big_value))
            records = mr.collect()
            spilled = mr.kv.spilled
            mr.free()
            return records, spilled

        result = cluster.run(job)
        records, spilled = result.returns[0]
        assert spilled
        assert [k for k, _ in records] == [b"k1", b"k2", b"k3"]
        assert all(v == b"v" * 100 for _, v in records)

    def test_oversized_record_error_mode(self):
        from repro.mpi import RankFailedError
        from repro.mrmpi import PageOverflowError

        config = MRMPIConfig(page_size=64, mode=OutOfCoreMode.ERROR)
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            mr = MRMPI(env, config)
            mr.map_items([1], lambda ctx, i: ctx.emit(b"k", b"v" * 100))

        with pytest.raises(RankFailedError) as exc_info:
            cluster.run(job)
        assert isinstance(exc_info.value.original, PageOverflowError)

    def test_order_preserved_across_spills(self):
        config = MRMPIConfig(page_size=128, input_chunk_size=64)
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            mr = MRMPI(env, config)
            mr.map_items(range(50),
                         lambda ctx, i: ctx.emit(b"%04d" % i, b"x" * 10))
            keys = [k for k, _ in mr.collect()]
            mr.free()
            return keys

        result = cluster.run(job)
        assert result.returns[0] == [b"%04d" % i for i in range(50)]


class TestSkewedConvert:
    def test_one_hot_key_dominating(self):
        # One key holds 90 % of the values; its KMV exceeds any page.
        config = MRMPIConfig(page_size=512, input_chunk_size=256)
        hot_text = b" ".join([b"hot"] * 450 + [b"cold%03d" % i
                                               for i in range(50)])
        merged, result, _ = run_job(config, nprocs=4, text=hot_text)
        assert merged[b"hot"] == 450
        assert sum(merged.values()) == 500
