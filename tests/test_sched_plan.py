"""Dataflow plans: stage identity, lowering, iteration, checkpoints."""

import pytest

from repro.cluster import Cluster
from repro.core import KVLayout, MimirConfig, pack_u64, unpack_u64
from repro.ft import FaultPlan, run_with_recovery
from repro.mpi import COMET
from repro.sched import Plan, PlanRunner, StageCache

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"oak elm ash fir oak elm oak yew ash oak " * 40


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def make_cluster(nprocs=3):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)
    return cluster


def wc_plan(plan):
    return plan.read_text("t.txt", name="input") \
        .map(wc_map, name="count").reduce(wc_reduce, name="sum")


class TestStageIdentity:
    def test_same_structure_same_key(self):
        a = wc_plan(Plan("wc", CFG))
        b = wc_plan(Plan("wc", CFG))
        assert a.key == b.key
        assert a.key.startswith("sum-")

    def test_key_covers_fn_name_salt_and_lineage(self):
        base = wc_plan(Plan("wc", CFG))
        other_fn = Plan("wc", CFG).read_text("t.txt", name="input") \
            .map(wc_map, name="count").reduce(wc_combine, name="sum")
        other_name = Plan("wc", CFG).read_text("t.txt", name="input") \
            .map(wc_map, name="count").reduce(wc_reduce, name="sum2")
        salted = Plan("wc", CFG)
        salted.salt = "#i1"
        keys = {base.key, other_fn.key, other_name.key,
                wc_plan(salted).key}
        assert len(keys) == 4
        # A changed ancestor changes every descendant's key.
        other_input = Plan("wc", CFG).read_text("u.txt", name="input") \
            .map(wc_map, name="count").reduce(wc_reduce, name="sum")
        assert other_input.key != base.key

    def test_lineage_dependency_ordered(self):
        out = wc_plan(Plan("wc", CFG))
        ops = [s.op for s in out.stage.lineage()]
        assert ops == ["read_text", "map", "reduce"]

    def test_describe_marks_annotations(self):
        plan = Plan("wc", CFG)
        wc_plan(plan).cache().checkpoint()
        text = plan.describe()
        assert "sum" in text and "[cached]" in text and "[ckpt]" in text

    def test_join_requires_same_plan(self):
        a = Plan("a", CFG).source([1], name="a")
        b = Plan("b", CFG).source([2], name="b")
        with pytest.raises(ValueError, match="different plans"):
            a.join(b, lambda ctx, k, lv, rv: None)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError, match="unknown stage op"):
            from repro.sched.plan import Stage

            Stage(Plan("p", CFG), 0, "scan", ())


class TestLowering:
    def expected_counts(self):
        from collections import Counter

        return Counter(TEXT.split())

    def run_plan(self, build):
        def job(env):
            plan = Plan("wc", CFG)
            runner = PlanRunner(env, plan)
            return dict(runner.collect(build(plan))), runner.stage_counts

        return make_cluster().run(job)

    def test_reduce_matches_direct_counts(self):
        result = self.run_plan(wc_plan)
        merged = {}
        for counts, _stages in result.returns:
            merged.update({k: unpack_u64(v) for k, v in counts.items()})
        assert merged == dict(self.expected_counts())

    def test_partial_reduce_and_combine(self):
        result = self.run_plan(
            lambda plan: plan.read_text("t.txt", name="input")
            .map(wc_map, combine_fn=wc_combine, name="count")
            .partial_reduce(wc_combine, out_layout=KVLayout(),
                            name="sum"))
        merged = {}
        for counts, _stages in result.returns:
            merged.update({k: unpack_u64(v) for k, v in counts.items()})
        assert merged == dict(self.expected_counts())

    def test_sort_local_orders_keys(self):
        def build(plan):
            return wc_plan(plan).sort_local(name="ordered")

        result = self.run_plan(build)
        for counts, stages in result.returns:
            keys = list(counts)
            assert keys == sorted(keys)
            assert stages == {"count": 1, "sum": 1, "ordered": 1}

    def test_join_cogroups_both_sides(self):
        def job(env):
            plan = Plan("join", CFG)
            left = plan.source([(b"a", b"1"), (b"b", b"2")], name="l") \
                .map(lambda ctx, kv: ctx.emit(*kv), name="lm")
            right = plan.source([(b"b", b"3"), (b"c", b"4")], name="r") \
                .map(lambda ctx, kv: ctx.emit(*kv), name="rm")

            def joined(ctx, key, lvals, rvals):
                ctx.emit(key, b",".join(lvals) + b"|" + b",".join(rvals))

            out = left.join(right, joined, name="merge")
            return dict(PlanRunner(env, plan).collect(out))

        # source() items are per-rank; one rank keeps the sides exact.
        result = make_cluster(nprocs=1).run(job)
        merged = {}
        for part in result.returns:
            merged.update(part)
        assert merged == {b"a": b"1|", b"b": b"2|3", b"c": b"|4"}

    def test_raw_input_needs_map(self):
        def job(env):
            plan = Plan("bad", CFG)
            ds = plan.read_text("t.txt", name="input").reduce(
                wc_reduce, name="sum")
            with pytest.raises(ValueError, match="map it first"):
                PlanRunner(env, plan).collect(ds)

        make_cluster(nprocs=1).run(job)


class TestIterate:
    def test_invariant_stage_cached_across_iterations(self):
        caches = [StageCache(rank) for rank in range(3)]

        def job(env):
            plan = Plan("loop", CFG)
            counts = wc_plan(plan).cache()
            runner = PlanRunner(env, plan, cache=caches[env.comm.rank])

            def body(r, i, state):
                # Loop-invariant stage: same key every pass.
                total = sum(unpack_u64(v) for _, v in r.stream(counts))
                # Per-iteration stage: salted key, runs every pass.
                fresh = r.plan.source([None], name="probe").map(
                    lambda ctx, _x, n=i: ctx.emit(b"i", pack_u64(n)),
                    name="stamp")
                list(r.stream(fresh))
                return state + total

            total, iters = runner.iterate(0, body, max_iters=3)
            assert plan.salt == ""  # restored after the loop
            return total, iters, dict(runner.stage_counts)

        result = make_cluster().run(job)
        for total, iters, stages in result.returns:
            assert iters == 3
            # The cached chain executed once; the salted stage 3 times.
            assert stages["count"] == 1 and stages["sum"] == 1
            assert stages["stamp"] == 3

    def test_until_stops_early(self):
        def job(env):
            runner = PlanRunner(env, Plan("loop", CFG))
            state, iters = runner.iterate(
                0, lambda r, i, s: s + 1, until=lambda s: s >= 2,
                max_iters=10)
            return state, iters

        result = make_cluster(nprocs=1).run(job)
        assert result.returns == [(2, 2)]


class TestStageCheckpoint:
    def test_recovery_skips_checkpointed_stage(self):
        attempts = []

        def job(env, ckpt, faults):
            plan = Plan("wc", CFG)
            counts = wc_plan(plan).checkpoint()
            runner = PlanRunner(env, plan, checkpoint=ckpt)
            out = {k: unpack_u64(v) for k, v in runner.stream(counts)}
            faults.check("after-sum", env.comm.rank)
            probe = plan.source([None], name="probe").map(
                lambda ctx, _x: ctx.emit(b"p", pack_u64(1)), name="tail")
            list(runner.stream(probe))
            attempts.append((env.comm.rank, dict(runner.stage_counts)))
            return out

        plan = FaultPlan().fail_at("after-sum", 1)
        ft = run_with_recovery(make_cluster(), job, faults=plan,
                               job_id="sched-ckpt")
        assert ft.attempts == 2
        merged = {}
        for part in ft.result.returns:
            merged.update(part)
        from collections import Counter

        assert merged == dict(Counter(TEXT.split()))
        # The successful attempt restored "sum" from its checkpoint:
        # only the post-fault stage executed.
        final = [stages for _rank, stages in attempts[-3:]]
        assert all(stages == {"tail": 1} for stages in final)


class TestConsumeSemantics:
    def test_pinned_container_refuses_consume_and_free(self):
        def job(env):
            from repro.core import Mimir

            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_file("t.txt", wc_map)
            kvs.pin()
            with pytest.raises(RuntimeError, match="pinned"):
                kvs.consume()
            with pytest.raises(RuntimeError, match="pinned"):
                kvs.free()
            kvs.unpin()
            assert len(list(kvs.consume())) > 0

        make_cluster(nprocs=1).run(job)
