"""Tenant quotas, fair-share aging, and lease lifecycles."""

import pytest

from repro.sched.scheduler import SchedJob
from repro.serve.leases import LeaseTable
from repro.serve.tenants import QuotaExceeded, TenantManager, TenantQuota


def job(name="j", tenant=None, priority=0):
    return SchedJob(name=name, fn=lambda env, ctx: None,
                    priority=priority, tenant=tenant)


class TestQuotas:
    def test_default_quota_for_unknown_tenants(self):
        manager = TenantManager()
        assert manager.quota("anyone").max_queued == 8

    def test_closed_mode_rejects_unknown_tenants(self):
        manager = TenantManager({"alice": TenantQuota()}, default=None)
        assert manager.quota("alice") is manager.quotas["alice"]
        with pytest.raises(QuotaExceeded) as exc:
            manager.quota("mallory")
        assert exc.value.quota == "unknown-tenant"

    def test_max_queued_rejection_is_structured(self):
        manager = TenantManager({"t": TenantQuota(max_queued=2)})
        manager.check_submit("t", queued=1, footprint=None)
        with pytest.raises(QuotaExceeded) as exc:
            manager.check_submit("t", queued=2, footprint=None)
        body = exc.value.to_json()
        assert body == {"error": "quota-exceeded", "tenant": "t",
                        "quota": "max_queued", "limit": 2, "current": 3}

    def test_memory_quota_compares_footprints(self):
        manager = TenantManager(
            {"t": TenantQuota(memory_per_rank="64K")})
        manager.check_submit("t", queued=0, footprint=64 << 10)
        with pytest.raises(QuotaExceeded) as exc:
            manager.check_submit("t", queued=0, footprint=(64 << 10) + 1)
        assert exc.value.quota == "memory_per_rank"

    def test_unknown_footprint_skips_memory_check(self):
        manager = TenantManager(
            {"t": TenantQuota(memory_per_rank="1K")})
        manager.check_submit("t", queued=0, footprint=None)

    def test_rejections_counted(self):
        class Shard:
            def __init__(self):
                self.counts = {}

            def inc(self, name, value=1):
                self.counts[name] = self.counts.get(name, 0) + value

        shard = Shard()
        manager = TenantManager({"t": TenantQuota(max_queued=0)},
                                metrics=shard)
        with pytest.raises(QuotaExceeded):
            manager.check_submit("t", queued=0, footprint=None)
        assert shard.counts["serve.rejections.quota"] == 1


class TestSchedulerHooks:
    def test_admission_filter_caps_per_round_share(self):
        manager = TenantManager({"t": TenantQuota(max_concurrent=2)})
        batch = [job("a", "t"), job("b", "t")]
        assert manager.admission_filter(job("c", "t"), batch) is False
        assert manager.admission_filter(job("c", "other"), batch) is True
        assert manager.admission_filter(job("c", None), batch) is True

    def test_priority_aging_beats_fresh_priority_eventually(self):
        manager = TenantManager(aging_rate=1.0)
        old_low = manager.priority_fn(job(priority=0), queued_rounds=6)
        fresh_high = manager.priority_fn(job(priority=5), queued_rounds=0)
        assert old_low > fresh_high

    def test_tenant_base_priority_weighs_in(self):
        manager = TenantManager({"vip": TenantQuota(base_priority=10)})
        vip = manager.priority_fn(job(tenant="vip"), queued_rounds=0)
        pleb = manager.priority_fn(job(tenant="other"), queued_rounds=0)
        assert vip - pleb == 10

    def test_install_wires_both_hooks(self):
        class FakeScheduler:
            admission_filter = None
            priority_fn = None

        manager = TenantManager()
        sched = FakeScheduler()
        manager.install(sched)
        assert sched.admission_filter == manager.admission_filter
        assert sched.priority_fn == manager.priority_fn


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestLeases:
    def test_grant_renew_expire_cycle(self):
        clock = FakeClock()
        table = LeaseTable(ttl=10.0, clock=clock)
        table.grant("job-1")
        assert table.alive("job-1")

        clock.now = 8.0
        assert table.renew("job-1") is not None
        clock.now = 17.0
        assert table.alive("job-1")  # renewed at t=8, good until 18

        clock.now = 18.0
        assert not table.alive("job-1")
        assert table.sweep() == ["job-1"]
        assert len(table) == 0

    def test_lapsed_lease_not_resurrected_by_renew(self):
        clock = FakeClock()
        table = LeaseTable(ttl=5.0, clock=clock)
        table.grant("job-1")
        clock.now = 20.0
        table.sweep()
        assert table.renew("job-1") is None

    def test_custom_ttl_per_grant_and_renew(self):
        clock = FakeClock()
        table = LeaseTable(ttl=5.0, clock=clock)
        table.grant("job-1", ttl=100.0)
        clock.now = 50.0
        assert table.alive("job-1")
        lease = table.renew("job-1", ttl=1.0)
        assert lease.ttl == 1.0
        clock.now = 51.5
        assert not table.alive("job-1")

    def test_remaining_reports_time_left(self):
        clock = FakeClock()
        table = LeaseTable(ttl=10.0, clock=clock)
        table.grant("job-1")
        clock.now = 4.0
        assert table.remaining("job-1") == pytest.approx(6.0)
        assert table.remaining("nope") is None

    def test_sweep_counts_expiries(self):
        class Shard:
            def __init__(self):
                self.counts = {}

            def inc(self, name, value=1):
                self.counts[name] = self.counts.get(name, 0) + value

        clock = FakeClock()
        shard = Shard()
        table = LeaseTable(ttl=1.0, clock=clock, metrics=shard)
        table.grant("a")
        table.grant("b")
        clock.now = 2.0
        assert sorted(table.sweep()) == ["a", "b"]
        assert shard.counts["serve.lease.expiries"] == 2

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            LeaseTable(ttl=0)
