"""Accounted hash buckets used by compression / partial reduction / convert."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bucket import AccountedBucket, CountingBucket
from repro.memory import MemoryLimitExceeded, MemoryTracker


class TestAccountedBucket:
    def test_set_and_get(self):
        b = AccountedBucket(MemoryTracker())
        b.set(b"k", b"v")
        assert b.get(b"k") == b"v"
        assert b.get(b"missing") is None
        assert b"k" in b
        assert len(b) == 1

    def test_insert_charges_tracker(self):
        t = MemoryTracker()
        b = AccountedBucket(t, entry_overhead=10)
        b.set(b"key", b"val")  # 3 + 3 + 10
        assert t.current == 16
        assert b.accounted_bytes == 16

    def test_replace_same_size_no_delta(self):
        t = MemoryTracker()
        b = AccountedBucket(t, entry_overhead=10)
        b.set(b"k", b"aa")
        before = t.current
        b.set(b"k", b"bb")
        assert t.current == before
        assert b.get(b"k") == b"bb"

    def test_replace_grows_and_shrinks(self):
        t = MemoryTracker()
        b = AccountedBucket(t, entry_overhead=0)
        b.set(b"k", b"a")
        b.set(b"k", b"aaaa")
        assert t.current == 1 + 4
        b.set(b"k", b"")
        assert t.current == 1

    def test_drain_yields_and_frees(self):
        t = MemoryTracker()
        b = AccountedBucket(t, entry_overhead=5)
        b.set(b"a", b"1")
        b.set(b"b", b"2")
        items = list(b.drain())
        assert items == [(b"a", b"1"), (b"b", b"2")]
        assert t.current == 0
        assert len(b) == 0

    def test_drain_frees_incrementally(self):
        t = MemoryTracker()
        b = AccountedBucket(t, entry_overhead=5)
        for i in range(10):
            b.set(b"k%d" % i, b"v")
        levels = [t.current]
        for _ in b.drain():
            levels.append(t.current)
        assert levels == sorted(levels, reverse=True)
        assert levels[-1] == 0

    def test_free_releases_all(self):
        t = MemoryTracker()
        b = AccountedBucket(t)
        b.set(b"a", b"1")
        b.set(b"b", b"2")
        b.free()
        assert t.current == 0
        assert len(b) == 0
        b.free()  # idempotent

    def test_respects_memory_limit(self):
        t = MemoryTracker(limit=100)
        b = AccountedBucket(t, entry_overhead=40)
        b.set(b"a", b"1")
        with pytest.raises(MemoryLimitExceeded):
            b.set(b"bbbbbbbbbb", b"1" * 30)

    def test_insertion_order_preserved(self):
        b = AccountedBucket(MemoryTracker())
        for i in (3, 1, 2):
            b.set(b"%d" % i, b"x")
        assert [k for k, _ in b.items()] == [b"3", b"1", b"2"]


class TestCountingBucket:
    def test_counts_and_totals(self):
        cb = CountingBucket(MemoryTracker())
        cb.add(b"k", 5)
        cb.add(b"k", 3)
        cb.add(b"j", 1)
        data = dict(cb.items())
        assert data[b"k"] == [2, 8]
        assert data[b"j"] == [1, 1]
        assert len(cb) == 2

    def test_only_new_keys_charge(self):
        t = MemoryTracker()
        cb = CountingBucket(t, entry_overhead=4)
        cb.add(b"k", 5)
        first = t.current
        assert first == 1 + 4 + 16
        cb.add(b"k", 100)
        assert t.current == first

    def test_free(self):
        t = MemoryTracker()
        cb = CountingBucket(t)
        cb.add(b"a", 1)
        cb.add(b"b", 2)
        cb.free()
        assert t.current == 0
        assert len(cb) == 0


@given(st.lists(st.tuples(st.binary(min_size=1, max_size=4),
                          st.binary(max_size=4)), max_size=60))
def test_property_bucket_matches_dict(pairs):
    t = MemoryTracker()
    b = AccountedBucket(t, entry_overhead=7)
    model = {}
    for k, v in pairs:
        b.set(k, v)
        model[k] = v
    assert dict(b.items()) == model
    expected = sum(len(k) + len(v) + 7 for k, v in model.items())
    assert t.current == expected
    assert dict(b.drain()) == model
    assert t.current == 0
