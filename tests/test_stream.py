"""Streaming runtime: windows, sources, and runner edge cases.

The edge cases the window/watermark machinery must get right: empty
windows, a batch straddling a window boundary, late records arriving
behind the watermark, and a stream killed mid-run resuming from its
checkpointed windows - every one validated bit-identical against the
full-batch twin over the same total input.
"""

import pytest

from repro.cluster import Cluster
from repro.ft.faults import FaultPlan
from repro.ft.runner import run_with_recovery
from repro.mpi import COMET
from repro.sched import StageCache
from repro.stream import (
    GrowingWindows,
    MicroBatch,
    SlidingWindows,
    StreamRecord,
    StreamRunner,
    StreamSource,
    TumblingWindows,
)
from repro.stream.demo import (
    DEMO_CONFIG,
    make_doc_stream,
    run_scenario,
)
from repro.stream.scenarios import StreamWordCount, wordcount_reference

NPROCS = 3


def make_cluster():
    return Cluster(COMET, nprocs=NPROCS, memory_limit=None)


def render_run(runs):
    return StreamWordCount.render([r["final"] for r in runs])


def reference_render(stream):
    cluster = make_cluster()
    refs = cluster.run(
        lambda env: wordcount_reference(env, stream, DEMO_CONFIG)).returns
    return StreamWordCount.render(refs)


# ---------------------------------------------------------------------
# window assigners
# ---------------------------------------------------------------------

class TestWindows:
    def test_tumbling_partitions_time(self):
        w = TumblingWindows(10.0)
        assert w.window(0).start == 0.0 and w.window(0).end == 10.0
        assert w.window(3).contains(30.0)
        assert not w.window(3).contains(40.0)  # end-exclusive
        assert w.last_wid(29.9) == 2
        assert w.last_wid(30.0) == 3

    def test_sliding_overlaps(self):
        w = SlidingWindows(10.0, 5.0)
        assert (w.window(0).start, w.window(0).end) == (0.0, 10.0)
        assert (w.window(1).start, w.window(1).end) == (5.0, 15.0)
        # t=7 lives in both windows 0 and 1.
        assert w.window(0).contains(7.0) and w.window(1).contains(7.0)

    def test_sliding_rejects_gaps(self):
        with pytest.raises(ValueError):
            SlidingWindows(5.0, 10.0)

    def test_growing_is_a_landmark(self):
        w = GrowingWindows(10.0)
        assert w.window(2).start == 0.0 and w.window(2).end == 30.0
        assert w.window(2).contains(5.0)  # every window sees the origin


class TestStreamSource:
    def test_from_payload_batches_schedules_arrivals(self):
        src = StreamSource.from_payload_batches(
            "s", [[(0, b"a")], [(1, b"b")]], interval=5.0)
        batches = list(src.schedule())
        assert [b.arrival for b in batches] == [0.0, 5.0]
        assert batches[1].records[0].time == 5.0

    def test_push_appends_live_batches(self):
        src = StreamSource("live")
        b0 = src.push([b"x"], arrival=1.0)
        b1 = src.push([b"y"], arrival=2.0)
        assert (b0.index, b1.index) == (0, 1)
        assert len(list(src.records())) == 2

    def test_repr_is_stable_across_pushes(self):
        # The repr feeds stage-identity hashing: pushing more batches
        # must never change it, or batch stages would lose their keys.
        src = StreamSource("live")
        before = repr(src)
        src.push([b"x"], arrival=1.0)
        assert repr(src) == before


# ---------------------------------------------------------------------
# runner edge cases
# ---------------------------------------------------------------------

def manual_stream(*batches):
    """Build a stream from (arrival, [(time, payload), ...]) specs."""
    built = []
    for index, (arrival, records) in enumerate(batches):
        built.append(MicroBatch(index, arrival, tuple(
            StreamRecord(t, p) for t, p in records)))
    return StreamSource("manual", tuple(built))


class TestRunnerEdgeCases:
    def test_empty_windows_still_close(self):
        # Records at t=0 and t=55 with 10s windows: windows 1..4 hold
        # nothing but must still close (with empty payloads) so the
        # timeline stays gap-free.
        stream = manual_stream(
            (0.0, [(0.0, (0, b"alpha beta"))]),
            (55.0, [(55.0, (1, b"beta"))]),
        )
        cluster = make_cluster()
        runs = cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(10.0))).returns
        assert runs[0]["closed"] == 6
        empty = [wid for wid in runs[0]["windows"]
                 if not any(r["windows"][wid] for r in runs)]
        assert set(empty) == {1, 2, 3, 4}
        assert render_run(runs) == reference_render(stream)

    def test_batch_straddling_a_boundary_refilters(self):
        # Batch 0 spans windows 0 and 1, so its cached whole-batch
        # aggregate is unusable for either; the straddle slice path
        # must produce the same totals the batch twin computes.
        stream = manual_stream(
            (0.0, [(2.0, (0, b"alpha beta")), (12.0, (1, b"beta gamma"))]),
            (20.0, [(20.0, (2, b"alpha"))]),
        )
        cluster = make_cluster()
        caches = [StageCache(rank) for rank in range(NPROCS)]

        def run(env):
            scenario = StreamWordCount(env, config=DEMO_CONFIG)
            runner = StreamRunner(env, scenario, stream,
                                  TumblingWindows(10.0),
                                  cache=caches[env.comm.rank])
            result = runner.run()
            return result.final, result.windows, runner.stage_counts

        returns = cluster.run(run).returns
        counts0 = returns[0][2]
        assert counts0.get("wc-straddle-map", 0) >= 2  # windows 0 and 1
        # Window 0 only holds the t=2 record's words (union over the
        # ranks: keys are hash-partitioned).
        def window_keys(wid):
            return set().union(*(set(r[1][wid]) for r in returns))

        assert window_keys(0) == {b"alpha", b"beta"}
        assert window_keys(1) == {b"beta", b"gamma"}
        streamed = StreamWordCount.render([r[0] for r in returns])
        assert streamed == reference_render(stream)

    def test_late_record_repairs_closed_window(self):
        # Window 0 closes once the watermark passes 10; the t=3 record
        # arriving at t=40 is behind the watermark and must re-open
        # (repair) window 0 - final output still matches the twin.
        stream = manual_stream(
            (0.0, [(1.0, (0, b"alpha"))]),
            (20.0, [(21.0, (1, b"beta"))]),
            (40.0, [(41.0, (2, b"gamma")), (3.0, (3, b"alpha alpha"))]),
        )
        cluster = make_cluster()
        runs = cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(10.0))).returns
        assert runs[0]["late"] == 1
        assert runs[0]["recomputed"] >= 1
        alpha = sum(r["windows"][0].get(b"alpha", 0) for r in runs)
        assert alpha == 3  # repaired window 0 counts the late record
        assert render_run(runs) == reference_render(stream)

    def test_lateness_allowance_holds_the_watermark_back(self):
        # Same shape, but a 25s allowance keeps window 0 open until
        # the t=3 record has arrived: nothing is late, nothing repairs.
        stream = manual_stream(
            (0.0, [(1.0, (0, b"alpha"))]),
            (20.0, [(21.0, (1, b"beta"))]),
            (40.0, [(41.0, (2, b"gamma")), (3.0, (3, b"alpha alpha"))]),
        )
        cluster = make_cluster()
        runs = cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(10.0),
            lateness=25.0)).returns
        assert runs[0]["late"] == 0
        assert runs[0]["recomputed"] == 0
        assert render_run(runs) == reference_render(stream)

    def test_stream_metrics_are_emitted(self):
        stream = make_doc_stream(seed=3)
        cluster = make_cluster()
        cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(20.0)))
        totals = cluster.metrics.totals()
        assert totals["stream.batches.ingested"] == 6 * NPROCS
        assert totals["stream.records.ingested"] > 0
        assert totals["stream.windows.closed"] == 3 * NPROCS
        assert "stream.watermark" in totals


# ---------------------------------------------------------------------
# kill / resume
# ---------------------------------------------------------------------

class TestKillResume:
    def test_truncated_stream_resumes_from_checkpoint(self):
        stream = make_doc_stream(seed=1)
        cluster = make_cluster()
        caches = [StageCache(rank) for rank in range(NPROCS)]

        first = cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(20.0),
            caches=caches, checkpoint_job="wc-kill", nonce="n1",
            stop_after_windows=1)).returns
        assert first[0]["truncated"] and first[0]["closed"] == 1
        assert first[0]["final"] is None

        second = cluster.run(lambda env: run_scenario(
            env, StreamWordCount, stream, TumblingWindows(20.0),
            caches=caches, checkpoint_job="wc-kill", nonce="n1")).returns
        assert second[0]["resumed"] == 1  # window 0 loaded, not rerun
        assert second[0]["closed"] == 3
        assert render_run(second) == reference_render(stream)

    def test_rank_death_mid_stream_recovers_bit_identical(self):
        # A rank dies at batch 3 (mid-window); the classified-restart
        # driver re-runs the job, which restores every window already
        # checkpointed and continues - output matches the twin.
        stream = make_doc_stream(seed=2)
        cluster = make_cluster()
        plan = FaultPlan().fail_at("batch3", 1)

        def job(env, ckpt, faults):
            scenario = StreamWordCount(env, config=DEMO_CONFIG)
            runner = StreamRunner(
                env, scenario, stream, TumblingWindows(20.0),
                checkpoint=ckpt,
                probe=lambda tag: faults.check(tag, env.comm.rank))
            result = runner.run()
            return result.final, result.resumed

        ft = run_with_recovery(cluster, job, faults=plan, job_id="wc-ft")
        assert ft.attempts == 2
        finals = [r[0] for r in ft.result.returns]
        resumed = ft.result.returns[0][1]
        assert resumed >= 1
        assert StreamWordCount.render(finals) == reference_render(stream)


# ---------------------------------------------------------------------
# incremental recompute
# ---------------------------------------------------------------------

class TestIncrementalRecompute:
    def test_cached_rerun_executes_no_batch_stages(self):
        # Second pass over the same stream with warm caches: every
        # batch stage is a hit, only window-scoped folds run.
        stream = make_doc_stream(seed=0)
        cluster = make_cluster()
        caches = [StageCache(rank) for rank in range(NPROCS)]
        run = lambda env: run_scenario(  # noqa: E731
            env, StreamWordCount, stream, TumblingWindows(20.0),
            caches=caches)
        cold = cluster.run(run).returns
        warm = cluster.run(run).returns
        assert warm[0]["cache_hits"] > cold[0]["cache_hits"]
        assert warm[0]["stages"] < cold[0]["stages"]
        assert render_run(warm) == render_run(cold)

    def test_pagerank_incremental_beats_full(self):
        from repro.stream.demo import demo_pagerank

        summary = demo_pagerank(nbatches=4, iterations=1)
        assert summary["identical"] and summary["full_identical"]
        assert summary["stages_incremental"] < summary["stages_full"]
        assert summary["cache_hits"] > 0
        assert summary["update_speedup"] > 1.0
