"""partial_reduce and the shared KMV codec in isolation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cluster import Cluster
from repro.core import KVContainer, KVLayout, MimirConfig, pack_u64, unpack_u64
from repro.core.kmvcontainer import encode_kmv_record, iter_kmv_buffer
from repro.core.partial_reduction import partial_reduce
from repro.core.records import CSTRING
from repro.mpi import COMET

CFG = MimirConfig(page_size=1024, comm_buffer_size=1024)


def with_env(fn):
    cluster = Cluster(COMET, nprocs=1, memory_limit=None)
    return cluster.run(fn).returns[0]


class TestPartialReduceUnit:
    def test_folds_duplicates_in_order(self):
        def job(env):
            kvc = KVContainer(env.tracker, page_size=1024)
            for i in range(10):
                kvc.add(b"k%d" % (i % 3), pack_u64(i))
            out = partial_reduce(
                env, kvc,
                lambda k, a, b: pack_u64(unpack_u64(a) + unpack_u64(b)),
                CFG)
            result = {k: unpack_u64(v) for k, v in out.records()}
            out.free()
            return result, env.tracker.current

        result, leftover = with_env(job)
        assert result == {b"k0": 0 + 3 + 6 + 9, b"k1": 1 + 4 + 7,
                          b"k2": 2 + 5 + 8}
        assert leftover == 0

    def test_noncommutative_fold_sees_stream_order(self):
        def job(env):
            kvc = KVContainer(env.tracker, page_size=1024)
            for token in (b"a", b"b", b"c"):
                kvc.add(b"k", token)
            out = partial_reduce(env, kvc, lambda k, a, b: a + b, CFG)
            result = dict(out.records())
            out.free()
            return result

        # Values fold left-to-right in insertion order.
        assert with_env(job) == {b"k": b"abc"}

    def test_unique_keys_pass_through(self):
        def job(env):
            kvc = KVContainer(env.tracker, page_size=1024)
            pairs = [(b"x%d" % i, b"v%d" % i) for i in range(5)]
            for k, v in pairs:
                kvc.add(k, v)
            out = partial_reduce(env, kvc, lambda k, a, b: a, CFG)
            result = list(out.records())
            out.free()
            return result, pairs

        result, pairs = with_env(job)
        assert sorted(result) == sorted(pairs)

    def test_empty_input(self):
        def job(env):
            kvc = KVContainer(env.tracker, page_size=1024)
            out = partial_reduce(env, kvc, lambda k, a, b: a, CFG)
            n = len(out)
            out.free()
            return n

        assert with_env(job) == 0


class TestKMVCodec:
    def test_roundtrip_variable(self):
        layout = KVLayout()
        record = encode_kmv_record(layout, b"key", [b"a", b"bb", b""])
        assert list(iter_kmv_buffer(layout, record)) == \
            [(b"key", [b"a", b"bb", b""])]

    def test_roundtrip_fixed_values(self):
        layout = KVLayout(key_len=CSTRING, val_len=8)
        record = encode_kmv_record(layout, b"word",
                                   [pack_u64(1), pack_u64(2)])
        [(key, values)] = list(iter_kmv_buffer(layout, record))
        assert key == b"word"
        assert [unpack_u64(v) for v in values] == [1, 2]

    def test_multiple_records_stream(self):
        layout = KVLayout()
        buf = (encode_kmv_record(layout, b"a", [b"1"]) +
               encode_kmv_record(layout, b"b", [b"2", b"3"]))
        assert list(iter_kmv_buffer(layout, buf)) == \
            [(b"a", [b"1"]), (b"b", [b"2", b"3"])]

    @given(st.lists(st.tuples(
        st.binary(min_size=1, max_size=8),
        st.lists(st.binary(max_size=8), min_size=1, max_size=6)),
        max_size=10))
    def test_property_codec_roundtrip(self, records):
        layout = KVLayout()
        buf = b"".join(encode_kmv_record(layout, k, vs)
                       for k, vs in records)
        assert list(iter_kmv_buffer(layout, buf)) == records
