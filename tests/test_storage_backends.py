"""Storage backends: protocol semantics, cross-backend bit-identity,
external sort beyond the memory budget, and the stage-cache spill
regressions."""

import pickle

import pytest

from repro.apps.terasort import (
    RECORD_SIZE,
    TS_LAYOUT,
    generate_records,
    terasort_mimir,
    validate_output,
)
from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64
from repro.core.errors import ConfigError
from repro.ft.chaos import chaos_wordcount, make_wordcount_cluster, \
    run_chaos_sweep
from repro.ft.runner import run_with_recovery
from repro.io.errors import PFSFileNotFoundError, TransientIOError, retrying
from repro.mpi import COMET
from repro.sched import StageCache
from repro.serve.catalog import merge_output, run_direct
from repro.serve.daemon import ServeDaemon
from repro.storage import (
    BACKENDS,
    ExternalSortBackend,
    PFSBackend,
    ShardedKVBackend,
    default_backend_name,
    external_sort_file,
    make_backend,
)

backend_param = pytest.mark.parametrize("spec", BACKENDS)


class _FakeComm:
    """Just enough communicator for standalone backend tests."""

    def __init__(self, rank=0):
        self.rank = rank
        self.time = 0.0

    def advance(self, seconds):
        self.time += seconds


class _TransientOnce:
    """Duck-typed chaos plan: one transient fault per matching path."""

    def __init__(self, match):
        self.match = match
        self.fired = []

    def on_access(self, comm, op, path):
        if self.match in path and path not in self.fired:
            self.fired.append(path)
            raise TransientIOError(path, op)

    def on_write(self, comm, path, data):
        try:
            self.on_access(comm, "write", path)
        except TransientIOError as exc:
            return data, exc
        return data, None


class TestProtocolSemantics:
    @backend_param
    def test_staging_surface(self, spec):
        backend = make_backend(spec)
        backend.store("a/x", b"hello")
        backend.store("a/y", b"yy")
        backend.store("b/z", b"z")
        assert backend.fetch("a/x") == b"hello"
        assert backend.exists("a/x") and not backend.exists("a/w")
        assert backend.size("a/y") == 2
        # Deterministic, sorted listings on every backend.
        assert backend.listdir("a/") == ["a/x", "a/y"]
        assert backend.listdir() == ["a/x", "a/y", "b/z"]
        backend.delete("a/x")
        backend.delete("a/x")  # idempotent
        assert not backend.exists("a/x")
        with pytest.raises(PFSFileNotFoundError):
            backend.fetch("a/x")
        with pytest.raises(PFSFileNotFoundError):
            backend.size("nope")

    @backend_param
    def test_costed_io_contract(self, spec):
        backend = make_backend(spec)
        comm = _FakeComm()
        backend.write(comm, "f", b"0123456789")
        assert backend.read(comm, "f", 2, 3) == b"234"
        assert backend.read(comm, "f") == b"0123456789"
        # write_at grows with zero fill; disjoint regions compose.
        backend.write_at(comm, "g", 4, b"BB")
        backend.write_at(comm, "g", 0, b"AA")
        assert backend.fetch("g") == b"AA\0\0BB"
        with pytest.raises(ValueError):
            backend.write_at(comm, "g", -1, b"x")
        # append returns disjoint, ordered offsets.
        assert backend.append(comm, "log", b"one") == 0
        assert backend.append(comm, "log", b"two") == 3
        assert backend.fetch("log") == b"onetwo"
        with pytest.raises(PFSFileNotFoundError):
            backend.read(comm, "missing")
        assert backend.stats.reads == 2
        assert backend.stats.writes == 5
        assert backend.stats.bytes_written == len(b"0123456789BBAAonetwo")

    @backend_param
    def test_cost_model_charges_virtual_time(self, spec):
        backend = make_backend(spec, platform=COMET)
        comm = _FakeComm()
        backend.write(comm, "f", b"x" * 4096)
        after_write = comm.time
        assert after_write > 0.0
        backend.read(comm, "f")
        assert comm.time > after_write

    @backend_param
    def test_transient_fault_is_pre_mutation_and_retryable(self, spec):
        backend = make_backend(spec)
        backend.chaos = _TransientOnce("victim")
        comm = _FakeComm()
        backend.store("victim/f", b"payload")
        # First read faults without any state change; retrying absorbs it.
        assert retrying(comm, lambda: backend.read(comm, "victim/f")) \
            == b"payload"
        # A transient append must not have partially applied.
        retrying(comm, lambda: backend.append(comm, "victim/log", b"abc"))
        assert backend.fetch("victim/log") == b"abc"

    @backend_param
    def test_metric_namespace_per_backend(self, spec):
        from repro.obs.registry import MetricsRegistry

        backend = make_backend(spec)
        backend.metrics = MetricsRegistry()
        comm = _FakeComm()
        backend.write(comm, "f", b"data")
        backend.read(comm, "f")
        totals = backend.metrics.totals()
        prefix = "io.pfs" if spec == "pfs" else "storage"
        assert totals[f"{prefix}.reads"] == 1
        assert totals[f"{prefix}.writes"] == 1
        assert totals[f"{prefix}.bytes_read"] == 4
        assert totals[f"{prefix}.bytes_written"] == 4

    def test_factory_and_env_default(self, monkeypatch):
        assert isinstance(make_backend("pfs"), PFSBackend)
        assert isinstance(make_backend("kv"), ShardedKVBackend)
        assert isinstance(make_backend("extsort"), ExternalSortBackend)
        with pytest.raises(ValueError, match="unknown storage backend"):
            make_backend("tape")
        monkeypatch.setenv("REPRO_STORAGE_BACKEND", "kv")
        assert default_backend_name() == "kv"
        cluster = Cluster(COMET, nprocs=2)
        assert cluster.pfs.name == "kv"
        monkeypatch.setenv("REPRO_STORAGE_BACKEND", "floppy")
        with pytest.raises(ValueError, match="floppy"):
            Cluster(COMET, nprocs=2)

    def test_kv_shard_assignment_is_deterministic(self):
        a = ShardedKVBackend(nshards=8)
        b = ShardedKVBackend(nshards=8)
        paths = [f"spill/run_{i}.0" for i in range(64)]
        assert [a.shard_of(p) for p in paths] == \
            [b.shard_of(p) for p in paths]
        for path in paths:
            a.store(path, b"x")
        assert sum(a.shard_sizes()) == len(paths)
        # More than one shard actually used (placement spreads).
        assert sum(1 for n in a.shard_sizes() if n) > 1

    def test_companion_is_a_per_substrate_singleton(self):
        substrate = make_backend("pfs", platform=COMET)
        kv = substrate.companion("kv")
        assert kv is substrate.companion("kv")
        assert kv.name == "kv"
        assert substrate.companion(None) is substrate
        assert substrate.companion("pfs") is substrate


class TestCrossBackendIdentity:
    """The same jobs, chaos storms, and services on every backend must
    produce bit-identical answers."""

    def test_wordcount_recovery_identical_across_backends(self):
        outputs = {}
        for spec in BACKENDS:
            ft = run_with_recovery(make_wordcount_cluster(4, spec),
                                   chaos_wordcount, job_id=f"wc-{spec}")
            outputs[spec] = pickle.dumps(ft.result.returns)
        assert len(set(outputs.values())) == 1, outputs.keys()

    def test_terasort_identical_across_backends(self):
        data = generate_records(300, seed=9)
        outputs = {}
        for spec in BACKENDS:
            cluster = Cluster(COMET, nprocs=4, memory_limit=None,
                              storage=spec)
            cluster.pfs.store("tera/in.bin", data)
            cluster.run(lambda env: terasort_mimir(
                env, "tera/in.bin", "tera/out.bin",
                MimirConfig(page_size=2048, comm_buffer_size=2048,
                            input_chunk_size=1024)))
            outputs[spec] = cluster.pfs.fetch("tera/out.bin")
            assert validate_output(data, outputs[spec]) == []
        assert len(set(outputs.values())) == 1

    @backend_param
    def test_chaos_sweep_converges(self, spec):
        sweep = run_chaos_sweep(20, nprocs=4, storage=spec)
        bad = [r.seed for r in sweep.records if not r.ok]
        assert sweep.all_ok, f"{spec}: failing seeds {bad}"

    @backend_param
    def test_serve_kill_replay_smoke(self, spec):
        """Mid-run daemon kill + journal replay completes the job with
        output identical to a direct run - on every backend."""
        from repro.ft.injection import ChaosPlan
        from repro.mpi import RankFailedError
        from repro.sched.demo import stage_inputs

        def make_cluster():
            cluster = Cluster(COMET, nprocs=4, storage=spec)
            stage_inputs(cluster, seed=0)
            return cluster

        direct = make_cluster()
        result = direct.run(lambda env: run_direct(
            "wordcount", env, "demo/words.txt", {}))
        expected = merge_output("wordcount", result.returns)

        chaos = ChaosPlan(seed=11).fail_at("serve:job:job-0001", 2)
        cluster = make_cluster()
        daemon = ServeDaemon(cluster, chaos=chaos)
        daemon.recover()
        job = daemon.submit("alice", "wordcount", "demo/words.txt")
        with pytest.raises(RankFailedError):
            for _ in range(64):
                daemon.tick()
        daemon.kill()

        successor = ServeDaemon(cluster, chaos=chaos)
        assert successor.recover() == [job.job_id]
        assert successor.jobs[job.job_id].state == "done"
        assert successor.output(job.job_id) == expected


class TestExternalSort:
    def test_beyond_memory_budget(self):
        """A dataset larger than the per-rank budget OOMs the in-memory
        terasort but completes through the external-sort driver, with
        identical sorted bytes."""
        nrec = 4096
        data = generate_records(nrec, seed=21)
        limit = 16 * 1024  # far below the ~64K payload
        config = MimirConfig(page_size=2048, comm_buffer_size=2048,
                             input_chunk_size=2048)

        in_memory = Cluster(COMET, nprocs=2, memory_limit=limit)
        in_memory.pfs.store("tera/in.bin", data)
        result = in_memory.run(
            lambda env: terasort_mimir(env, "tera/in.bin", "tera/out.bin",
                                       config),
            allow_oom=True)
        assert result.ran_out_of_memory

        cluster = Cluster(COMET, nprocs=2, memory_limit=limit,
                          storage="extsort")
        cluster.pfs.store("tera/in.bin", data)
        # Merge footprint = one frame per open run + the output buffer:
        # <= 16 runs x 512B frames + 4K = 12K, inside the 16K budget.
        returns = cluster.run(lambda env: external_sort_file(
            env, "tera/in.bin", "tera/out.bin",
            record_size=RECORD_SIZE, key_size=TS_LAYOUT.key_len,
            run_budget=4096, frame_bytes=512)).returns
        out = cluster.pfs.fetch("tera/out.bin")
        assert validate_output(data, out) == []
        expected = b"".join(sorted(
            (data[off:off + RECORD_SIZE]
             for off in range(0, len(data), RECORD_SIZE)),
            key=lambda r: r[:TS_LAYOUT.key_len]))
        # Full-record equality needs a deterministic tie order; compare
        # the key stream (total) plus the multiset of whole records.
        assert [out[o:o + TS_LAYOUT.key_len]
                for o in range(0, len(out), RECORD_SIZE)] == \
            [expected[o:o + TS_LAYOUT.key_len]
             for o in range(0, len(expected), RECORD_SIZE)]
        assert sorted(out[o:o + RECORD_SIZE]
                      for o in range(0, len(out), RECORD_SIZE)) == \
            sorted(expected[o:o + RECORD_SIZE]
                   for o in range(0, len(expected), RECORD_SIZE))
        assert sum(r.records_local for r in returns) == nrec
        assert cluster.pfs.listdir("spill/") == []  # runs cleaned up

    def test_matches_in_memory_terasort_with_unique_keys(self):
        """With unique keys the full record order is deterministic, so
        the external plan must match the in-memory plan byte for byte."""
        nrec = 600
        rng_keys = sorted({(i * 2654435761 % (1 << 32)) for i in range(nrec)})
        assert len(rng_keys) == nrec
        data = b"".join(
            int(k).to_bytes(4, "big") + bytes(12) for k in
            __import__("random").Random(3).sample(rng_keys, nrec))

        reference = Cluster(COMET, nprocs=4, memory_limit=None)
        reference.pfs.store("tera/in.bin", data)
        reference.run(lambda env: terasort_mimir(
            env, "tera/in.bin", "tera/out.bin",
            MimirConfig(page_size=2048, comm_buffer_size=2048,
                        input_chunk_size=1024)))
        expected = reference.pfs.fetch("tera/out.bin")

        cluster = Cluster(COMET, nprocs=4, memory_limit=None,
                          storage="extsort")
        cluster.pfs.store("tera/in.bin", data)
        cluster.run(lambda env: external_sort_file(
            env, "tera/in.bin", "tera/out.bin",
            record_size=RECORD_SIZE, key_size=TS_LAYOUT.key_len,
            run_budget=2048, frame_bytes=512))
        assert cluster.pfs.fetch("tera/out.bin") == expected

    def test_empty_and_single_rank_inputs(self):
        for nprocs, nrec in ((1, 0), (1, 37), (3, 0), (3, 1)):
            cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None,
                              storage="extsort")
            data = generate_records(nrec, seed=nrec)
            cluster.pfs.store("in", data)
            cluster.run(lambda env: external_sort_file(
                env, "in", "out", record_size=RECORD_SIZE,
                key_size=TS_LAYOUT.key_len, run_budget=512))
            out = cluster.pfs.fetch("out")
            assert validate_output(data, out) == [], (nprocs, nrec)

    def test_local_spill_namespace_is_cheaper(self):
        backend = ExternalSortBackend(COMET.pfs)
        comm = _FakeComm()
        backend.write(comm, "shared/f", b"x" * 65536)
        shared_cost = comm.time
        comm.time = 0.0
        backend.write(comm, "spill/f", b"x" * 65536)
        assert comm.time < shared_cost

    def test_rejects_bad_geometry(self):
        cluster = Cluster(COMET, nprocs=1, storage="extsort")
        cluster.pfs.store("in", b"12345")  # not a record multiple
        with pytest.raises(Exception, match="multiple|geometry"):
            cluster.run(lambda env: external_sort_file(
                env, "in", "out", record_size=RECORD_SIZE,
                key_size=TS_LAYOUT.key_len))


CACHE_CFG = MimirConfig(page_size=1024, comm_buffer_size=1024,
                        input_chunk_size=256)


def _fill_entry(env, cache, key, tag=b"k", n=64):
    def emit(ctx, _item):
        for i in range(n):
            ctx.emit(tag + pack_u64(i), pack_u64(i))

    kvs = Mimir(env, CACHE_CFG).map_items([None], emit)
    cache.put(key, kvs, name=key, job="test")
    return sorted(kvs.records())


class TestStageCacheStorage:
    """Regressions for the protocol-routed eviction/reload path."""

    @backend_param
    def test_stale_spill_file_from_dropped_entry(self, spec):
        """A recompute after a drop that left a stale spill file behind
        must not read (or leak) the stale bytes: eviction deletes the
        path before writing, so reload returns exactly the new entry."""

        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            records = _fill_entry(env, cache, "old", tag=b"o")
            _fill_entry(env, cache, "new", tag=b"n")
            cache.get("new")
            # The stale file a pre-attach drop would leave behind.
            env.pfs.store("spill/cache_old.0", b"\xde\xad" * 512)
            assert cache.ensure_room(env.tracker.limit) > 0
            assert not cache.entries["old"].resident
            # The chunk table describes only the fresh bytes...
            total = sum(length for _, length
                        in cache.entries["old"].spill_chunks)
            assert env.pfs.size("spill/cache_old.0") == total
            # ...and reload returns them bit for bit.
            assert sorted(cache.get("old").records()) == records
            assert not env.pfs.exists("spill/cache_old.0")

        cluster = Cluster(COMET, nprocs=1, memory_limit="64K",
                          storage=spec)
        cluster.run(job)

    @backend_param
    def test_evict_and_reload_survive_transient_faults(self, spec):
        """Chaos on the cache's spill path is absorbed by the retry
        wrapper instead of killing the launch."""

        def job(env):
            cache = StageCache(0)
            cache.attach(env)
            records = _fill_entry(env, cache, "old", tag=b"o")
            _fill_entry(env, cache, "new", tag=b"n")
            cache.get("new")
            env.pfs.chaos = _TransientOnce("cache_old")
            try:
                assert cache.ensure_room(env.tracker.limit) > 0
                assert sorted(cache.get("old").records()) == records
            finally:
                env.pfs.chaos = None

        cluster = Cluster(COMET, nprocs=1, memory_limit="64K",
                          storage=spec)
        cluster.run(job)


class TestPerJobSpillRedirect:
    def test_config_validates_storage_spec(self):
        assert MimirConfig(storage="kv").storage == "kv"
        assert MimirConfig().storage is None
        with pytest.raises(ConfigError, match="storage backend"):
            MimirConfig(storage="tape")

    def test_out_of_core_spill_lands_on_companion(self):
        """MimirConfig.storage moves spill traffic off the substrate
        while inputs/outputs stay put and answers do not change."""
        text = b"oak elm ash fir oak elm oak yew ash oak pine " * 200

        def wc(env, storage):
            cfg = MimirConfig(page_size=1024, comm_buffer_size=1024,
                              input_chunk_size=512, out_of_core=True,
                              storage=storage)
            mimir = Mimir(env, cfg)

            def wc_map(ctx, chunk):
                for word in chunk.split():
                    ctx.emit(word, pack_u64(1))

            kvs = mimir.map_text_file("w.txt", wc_map)
            out = mimir.partial_reduce(
                kvs, lambda k, a, b: pack_u64(
                    int.from_bytes(a, "little") +
                    int.from_bytes(b, "little")))
            counts = tuple(sorted(out.records()))
            out.free()
            return counts

        def run(storage):
            # Substrate pinned to pfs so the redirect target is always
            # a distinct companion (REPRO_STORAGE_BACKEND-proof).
            cluster = Cluster(COMET, nprocs=2, memory_limit="24K",
                              storage="pfs")
            cluster.pfs.store("w.txt", text)
            result = cluster.run(wc, storage)
            return cluster, result

        base_cluster, base = run(None)
        assert base_cluster.pfs.spilled_bytes > 0  # pressure is real

        redirected_cluster, redirected = run("kv")
        assert redirected.returns == base.returns
        companion = redirected_cluster.pfs.companion("kv")
        assert companion.spilled_bytes > 0
        assert redirected_cluster.pfs.spilled_bytes == 0
        # Inputs/outputs stayed on the substrate.
        assert redirected_cluster.pfs.exists("w.txt")
