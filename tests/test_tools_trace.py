"""Structured event tracing."""

import json

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64
from repro.mpi import COMET
from repro.tools import Trace

CFG = MimirConfig(page_size=1024, comm_buffer_size=1024,
                  input_chunk_size=256)
TEXT = b"ash oak elm fir " * 60


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def run_traced(nprocs=3):
    trace = Trace()
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)

    def job(env):
        mimir = Mimir(env, CFG, trace=trace)
        kvs = mimir.map_text_file("t.txt", wc_map)
        trace.emit(env, "custom", "done", records=len(kvs))
        kvs.free()

    cluster.run(job)
    return trace


class TestTrace:
    def test_phase_events_per_rank(self):
        trace = run_traced(nprocs=3)
        starts = [e for e in trace.of_kind("phase")
                  if e.label == "map+aggregate:start"]
        assert len(starts) == 3
        assert {e.rank for e in starts} == {0, 1, 2}

    def test_exchange_rounds_recorded(self):
        trace = run_traced()
        rounds = trace.of_kind("exchange")
        assert rounds
        assert all("sent" in e.data and "received" in e.data
                   for e in rounds)

    def test_end_event_carries_stats(self):
        trace = run_traced()
        ends = [e for e in trace.of_kind("phase")
                if e.label == "map+aggregate:end"]
        assert all(e.data["records"] > 0 for e in ends)
        assert all(e.data["kv_bytes"] > 0 for e in ends)

    def test_custom_events(self):
        trace = run_traced()
        custom = trace.of_kind("custom")
        assert len(custom) == 3
        assert sum(e.data["records"] for e in custom) == len(TEXT.split())

    def test_merged_is_time_ordered(self):
        trace = run_traced()
        times = [e.time for e in trace.merged()]
        assert times == sorted(times)

    def test_for_rank_filters(self):
        trace = run_traced()
        assert all(e.rank == 1 for e in trace.for_rank(1))

    def test_json_roundtrip(self):
        trace = run_traced()
        decoded = json.loads(trace.to_json())
        assert len(decoded) == len(trace.events)
        assert {"time", "rank", "kind", "label", "data"} <= \
            set(decoded[0].keys())

    def test_render_and_summary(self):
        trace = run_traced()
        text = trace.render(limit=5)
        assert "rank" in text and "more events" in text
        summary = trace.summary()
        assert summary["phase"] == 6  # start+end on 3 ranks
        assert sum(summary.values()) == len(trace.events)

    def test_untraced_job_emits_nothing(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cluster.pfs.store("t.txt", TEXT)

        def job(env):
            mimir = Mimir(env, CFG)  # no trace attached
            mimir.map_text_file("t.txt", wc_map).free()

        cluster.run(job)  # simply must not crash
