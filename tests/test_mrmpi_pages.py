"""PagedObject in isolation: page discipline, spill modes, lifecycle."""

import pytest

from repro.cluster import Cluster
from repro.core import KVLayout
from repro.memory import PagePool
from repro.mpi import COMET
from repro.mrmpi import OutOfCoreMode, PageOverflowError, PagedObject


def with_env(fn):
    cluster = Cluster(COMET, nprocs=1, memory_limit=None)
    return cluster.run(lambda env: fn(env)).returns[0], cluster


def make_obj(env, size=128, mode=OutOfCoreMode.WHEN_FULL, name="obj"):
    pool = PagePool(env.tracker, size, tag="test")
    return PagedObject(env, pool, name, mode, KVLayout())


class TestPagedObject:
    def test_holds_exactly_one_page(self):
        def fn(env):
            obj = make_obj(env, size=256)
            for i in range(5):
                obj.append_kv(b"k%d" % i, b"v")
            held = env.tracker.current
            obj.free()
            return held

        held, _ = with_env(fn)
        assert held == 256

    def test_when_full_spills_and_preserves_order(self):
        def fn(env):
            obj = make_obj(env, size=64)
            pairs = [(b"key%02d" % i, b"value%02d" % i) for i in range(20)]
            for k, v in pairs:
                obj.append_kv(k, v)
            ok = list(obj.records()) == pairs
            spilled = obj.spilled
            nbytes = obj.spilled_bytes
            obj.free()
            return ok, spilled, nbytes

        (ok, spilled, nbytes), cluster = with_env(fn)
        assert ok and spilled and nbytes > 0
        assert not cluster.pfs.listdir("spill/")  # freed

    def test_error_mode_raises_on_overflow(self):
        def fn(env):
            obj = make_obj(env, size=64, mode=OutOfCoreMode.ERROR)
            with pytest.raises(PageOverflowError):
                for i in range(20):
                    obj.append_kv(b"key%02d" % i, b"v" * 10)
            obj.free()

        with_env(fn)

    def test_always_mode_flushes_on_finalize(self):
        def fn(env):
            obj = make_obj(env, size=1024, mode=OutOfCoreMode.ALWAYS)
            obj.append_kv(b"k", b"v")
            before = obj.spilled
            obj.finalize()
            after = obj.spilled
            obj.free()
            return before, after

        (before, after), _ = with_env(fn)
        assert not before and after

    def test_chunks_spilled_then_resident(self):
        def fn(env):
            obj = make_obj(env, size=64)
            for i in range(10):
                obj.append_kv(b"0123456789abcd%02d" % i, b"x" * 20)
            chunks = list(obj.chunks())
            obj.free()
            return len(chunks)

        nchunks, _ = with_env(fn)
        assert nchunks > 1

    def test_use_after_free_rejected(self):
        def fn(env):
            obj = make_obj(env)
            obj.free()
            with pytest.raises(ValueError):
                obj.append_kv(b"k", b"v")

        with_env(fn)

    def test_counters(self):
        def fn(env):
            obj = make_obj(env, size=4096)
            obj.append_kv(b"ab", b"cde")
            obj.append_kv(b"f", b"")
            stats = (len(obj), obj.nbytes)
            obj.free()
            return stats

        (nrecords, nbytes), _ = with_env(fn)
        assert nrecords == 2
        assert nbytes == (8 + 5) + (8 + 1)


class TestWorldRankArgs:
    def test_per_rank_arguments(self):
        from repro.mpi import World

        result = World(3).run(lambda comm, base, extra: base + extra,
                              10, rank_args=[(1,), (2,), (3,)])
        assert result.returns == [11, 12, 13]

    def test_rank_args_length_checked(self):
        from repro.mpi import World

        with pytest.raises(ValueError):
            World(3).run(lambda comm, x: x, rank_args=[(1,)])

    def test_serial_rank_args(self):
        from repro.mpi import World

        result = World(1).run(lambda comm, x: x * 2, rank_args=[(21,)])
        assert result.returns == [42]
