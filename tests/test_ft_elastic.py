"""Reactive fault handling: stragglers, speculation, elastic membership."""

import pytest

from repro.cluster import Cluster
from repro.core import MimirConfig, pack_u64, unpack_u64
from repro.ft import (
    CheckpointManager,
    ElasticPolicy,
    ElasticStageHooks,
    ScalingPolicy,
    StragglerMonitor,
    run_elastic,
)
from repro.ft.elastic import (
    ELASTIC_TAGS,
    ELASTIC_TEXT,
    elastic_wordcount,
    global_counts,
    make_elastic_cluster,
    restore_rebalanced,
    speculative_map,
    straggler_plan,
    sweep_wordcount,
    _elastic_cfg,
)
from repro.ft.injection import ChaosPlan, MembershipEvent
from repro.mpi import COMET
from repro.sched import Plan, PlanRunner, SchedJob, Scheduler

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


# ------------------------------------------------------------ validation


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        ElasticPolicy()
        ScalingPolicy()
        StragglerMonitor()

    @pytest.mark.parametrize("kwargs", [
        dict(straggler_threshold=1.0),
        dict(straggler_threshold=0.5),
        dict(min_detect_seconds=-1.0),
        dict(backup_overhead=-0.1),
        dict(max_membership_changes=-1),
        dict(min_ranks=0),
        dict(max_ranks=0),
        dict(min_ranks=8, max_ranks=4),
        dict(splits_per_rank=0),
    ])
    def test_bad_elastic_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ElasticPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(min_ranks=0),
        dict(min_ranks=8, max_ranks=4),
        dict(jobs_per_rank=0),
        dict(grow_residency=1.5),
        dict(shrink_residency=0.9, grow_residency=0.5),
        dict(step=0),
    ])
    def test_bad_scaling_policy_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ScalingPolicy(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(at=0.5, kind="restart"),
        dict(at=-1.0, kind="join"),
        dict(at=float("nan"), kind="join"),
        dict(at=0.5, kind="leave"),              # leave needs a rank
        dict(at=0.5, kind="leave", rank=-1),
        dict(at=0.5, kind="join", rank=2),       # join must not name one
    ])
    def test_bad_membership_event_rejected(self, kwargs):
        with pytest.raises(ValueError):
            MembershipEvent(**kwargs)


class TestStragglerMonitor:
    def test_flags_outlier_over_threshold(self):
        mon = StragglerMonitor(threshold=2.0)
        assert mon.flag([1.0, 1.1, 0.9, 5.0]) == [3]
        assert mon.flag({0: 1.0, 2: 1.0, 5: 9.0}) == [5]

    def test_threshold_is_strict(self):
        mon = StragglerMonitor(threshold=2.0)
        assert mon.flag([1.0, 1.0, 2.0]) == []
        assert mon.flag([1.0, 1.0, 2.01]) == [2]

    def test_min_gap_suppresses_tiny_phases(self):
        # 3x over median but only 2ms absolute: noise, not a straggler.
        mon = StragglerMonitor(threshold=2.0, min_gap=0.01)
        assert mon.flag([0.001, 0.001, 0.003]) == []
        assert mon.flag([1.0, 1.0, 3.0]) == [2]

    def test_degenerate_inputs(self):
        mon = StragglerMonitor()
        assert mon.flag([]) == []
        assert mon.flag([0.0, 0.0]) == []

    def test_flag_from_metrics_uses_per_rank_phase_time(self):
        from repro.obs.registry import MetricsRegistry

        reg = MetricsRegistry()
        for rank, secs in ((0, 1.0), (1, 1.1), (2, 6.0)):
            reg.shard(rank).observe("core.phase.seconds", secs)
        assert StragglerMonitor(2.0).flag_from_metrics(reg) == [2]


class TestScalingDecisions:
    def test_deep_queue_grows(self):
        pol = ScalingPolicy(max_ranks=8)
        assert pol.decide(queue_depth=6, residency=0.5, nprocs=4) == 5

    def test_high_residency_grows_even_with_short_queue(self):
        pol = ScalingPolicy(max_ranks=8)
        assert pol.decide(queue_depth=1, residency=0.9, nprocs=4) == 5

    def test_shrink_needs_low_residency(self):
        pol = ScalingPolicy()
        assert pol.decide(queue_depth=1, residency=0.5, nprocs=4) == 4
        assert pol.decide(queue_depth=1, residency=0.1, nprocs=4) == 3

    def test_clamped_to_bounds(self):
        pol = ScalingPolicy(min_ranks=2, max_ranks=4)
        assert pol.decide(queue_depth=100, residency=0.9, nprocs=4) == 4
        assert pol.decide(queue_depth=0, residency=0.0, nprocs=2) == 2


# --------------------------------------------------------- membership ops


class TestMembershipPlan:
    def test_leave_fires_once_at_probe(self):
        plan = ChaosPlan(0, membership=[
            MembershipEvent(at=0.5, kind="leave", rank=1)])
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)

        def job(env):
            env.comm.advance(1.0)
            plan.membership_check(env.comm, "tick")
            return "survived"

        from repro.mpi import RankFailedError
        with pytest.raises(RankFailedError) as info:
            cluster.run(job)
        assert info.value.rank == 1

    def test_due_events_consumed_in_order(self):
        plan = ChaosPlan(0, membership=[
            MembershipEvent(at=0.2, kind="join"),
            MembershipEvent(at=0.1, kind="leave", rank=0),
            MembershipEvent(at=9.0, kind="join")])
        due = plan.membership_due(1.0)
        assert [(e.kind, e.rank) for e in due] == [("leave", 0),
                                                   ("join", None)]
        # Consumed: a second sweep finds only the far-future one left.
        assert plan.membership_due(10.0)[0].at == 9.0
        assert plan.membership_due(10.0) == []

    def test_remove_rank_shifts_stragglers(self):
        plan = ChaosPlan(0, stragglers={1: 4.0, 3: 2.0})
        plan.remove_rank(1)
        # The departed straggler takes its slowness with it; rank 3
        # becomes rank 2.
        assert plan.stragglers == {2: 2.0}

    def test_random_membership_keeps_classic_schedule(self):
        classic = ChaosPlan.random(7, 4)
        with_members = ChaosPlan.random(7, 4, membership=True)
        assert classic.stragglers == with_members.stragglers
        assert classic.io_error_rate == with_members.io_error_rate
        assert not classic.membership
        assert with_members.membership


class TestClusterResize:
    def test_resize_changes_gang_for_next_launch(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        assert cluster.run(lambda env: env.comm.size).returns == [4] * 4
        cluster.resize(2)
        assert cluster.run(lambda env: env.comm.size).returns == [2] * 2

    def test_resize_rederives_auto_limit(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit="auto")
        before = cluster.memory_limit_per_rank
        cluster.resize(2)
        # Half the ranks per node => each rank's share grows.
        assert cluster.memory_limit_per_rank > before

    def test_resize_rejects_nonpositive(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        with pytest.raises(ValueError):
            cluster.resize(0)

    def test_pfs_survives_resize(self):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("x", b"data")
        cluster.resize(2)
        assert cluster.pfs.fetch("x") == b"data"


# ----------------------------------------------------- speculation + maps


def spec_wc(env, policy=None):
    cfg = _elastic_cfg()
    kvc = speculative_map(env, "input/elastic_words.txt", wc_map,
                          config=cfg, policy=policy, combine_fn=wc_combine)
    from repro.core.job import Mimir
    out = Mimir(env, cfg).partial_reduce(kvc, wc_combine)
    return sorted((k, unpack_u64(v)) for k, v in out.consume())


class TestSpeculativeMap:
    def expected(self):
        from collections import Counter

        return tuple(sorted(Counter(ELASTIC_TEXT.split()).items()))

    def test_matches_plain_wordcount_without_faults(self):
        result = make_elastic_cluster(4).run(spec_wc)
        assert global_counts(result.returns) == self.expected()

    def test_straggler_mitigated_and_bit_identical(self):
        policy = ElasticPolicy(evict_stragglers=False, splits_per_rank=12)
        fair = make_elastic_cluster(4).run(spec_wc, policy)
        base_time = fair.elapsed

        slow = make_elastic_cluster(4)
        slow.chaos = straggler_plan(0, 4)   # one rank 4-8x slower
        (rank, factor), = slow.chaos.stragglers.items()
        mitigated = slow.run(spec_wc, policy)

        assert global_counts(mitigated.returns) == self.expected()
        assert mitigated.elapsed <= 1.6 * base_time, \
            f"straggler x{factor} not mitigated: {mitigated.elapsed}"

    def test_speculation_off_is_unbounded(self):
        policy = ElasticPolicy(speculate=False, evict_stragglers=False)
        fair = make_elastic_cluster(4).run(spec_wc, policy)
        slow = make_elastic_cluster(4)
        slow.chaos = ChaosPlan(0, stragglers={1: 6.0})
        hit = slow.run(spec_wc, policy)
        assert global_counts(hit.returns) == self.expected()
        assert hit.elapsed >= 4.0 * fair.elapsed

    def test_speculation_metrics_counted(self):
        policy = ElasticPolicy(evict_stragglers=False, splits_per_rank=8)
        cluster = make_elastic_cluster(4)
        cluster.chaos = ChaosPlan(0, stragglers={2: 6.0})
        cluster.run(spec_wc, policy)
        totals = cluster.metrics.totals()
        assert totals.get("ft.straggler.flagged", 0) >= 1
        assert totals.get("ft.speculation.launched", 0) >= 1
        assert totals.get("ft.speculation.won", 0) >= 1
        assert totals.get("ft.speculation.won", 0) \
            + totals.get("ft.speculation.discarded", 0) \
            <= 2 * totals.get("ft.speculation.launched", 0)


class TestRestoreRebalanced:
    def save_with(self, pfs, nprocs, nonce="j"):
        cfg = _elastic_cfg()

        def job(env):
            ckpt = CheckpointManager(env, "j", nonce=nonce)
            kvc = speculative_map(env, "input/elastic_words.txt", wc_map,
                                  config=cfg, combine_fn=wc_combine)
            ckpt.save_kvc("shuffle", kvc)

        cluster = make_elastic_cluster(nprocs)
        cluster.pfs = pfs if pfs is not None else cluster.pfs
        if pfs is not None:
            pfs.store("input/elastic_words.txt", ELASTIC_TEXT)
        cluster.run(job)
        return cluster.pfs

    def restore_with(self, pfs, nprocs, nonce="j"):
        cfg = _elastic_cfg()

        def job(env):
            ckpt = CheckpointManager(env, "j", nonce=nonce)
            kvc = restore_rebalanced(env, ckpt, "shuffle",
                                     layout=cfg.layout,
                                     page_size=cfg.page_size)
            if kvc is None:
                return None
            return sorted((k, unpack_u64(v)) for k, v in kvc.consume())

        cluster = make_elastic_cluster(nprocs)
        cluster.pfs = pfs
        return cluster.run(job)

    @pytest.mark.parametrize("old,new", [(4, 4), (4, 2), (2, 4), (4, 3)])
    def test_rebalance_across_gang_sizes(self, old, new):
        pfs = self.save_with(None, old)
        result = self.restore_with(pfs, new)
        expected = self.save_and_count()
        assert global_counts(result.returns) == expected

    def save_and_count(self):
        from collections import Counter

        return tuple(sorted(Counter(ELASTIC_TEXT.split()).items()))

    def test_missing_checkpoint_returns_none(self):
        cluster = make_elastic_cluster(2)
        result = self.restore_with(cluster.pfs, 2)
        assert result.returns == [None, None]

    def test_partial_save_is_rejected_whole(self):
        # A 4-rank save that died between data and markers must not be
        # restorable by a smaller gang as a "complete" checkpoint, even
        # though a valid prefix of partitions exists.
        from repro.ft.faults import FaultPlan

        cfg = _elastic_cfg()
        faults = FaultPlan().fail_at("ckpt:shuffle:precommit", 2)

        def dying_save(env):
            ckpt = CheckpointManager(env, "j", nonce="j", faults=faults)
            kvc = speculative_map(env, "input/elastic_words.txt", wc_map,
                                  config=cfg, combine_fn=wc_combine)
            ckpt.save_kvc("shuffle", kvc)

        from repro.mpi import RankFailedError

        cluster = make_elastic_cluster(4)
        with pytest.raises(RankFailedError):
            cluster.run(dying_save)
        result = self.restore_with(cluster.pfs, 2)
        assert result.returns == [None, None]


# ------------------------------------------------------ the elastic driver


class TestRunElastic:
    def baseline(self):
        res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                          job_id="base")
        assert res.attempts == 1 and not res.membership_log
        return global_counts(res.result.returns)

    def test_death_shrinks_instead_of_restarting_at_size(self):
        expected = self.baseline()
        plan = ChaosPlan(0).fail_at("after_shuffle", 1)
        res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                          faults=plan, job_id="death")
        assert res.final_nprocs == 3
        assert [m.kind for m in res.membership_log] == ["death"]
        assert res.log_counts() == {"rank-death": 1}
        assert global_counts(res.result.returns) == expected

    def test_scheduled_leave_and_join(self):
        expected = self.baseline()
        plan = ChaosPlan(0, membership=[
            MembershipEvent(at=0.001, kind="leave", rank=2),
            MembershipEvent(at=0.01, kind="join")])
        res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                          faults=plan, job_id="members")
        kinds = [m.kind for m in res.membership_log]
        assert kinds == ["leave", "join"]
        assert res.final_nprocs == 4
        assert global_counts(res.result.returns) == expected

    def test_straggler_eviction_removes_slow_host(self):
        expected = self.baseline()
        plan = ChaosPlan(0, stragglers={1: 6.0})
        res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                          faults=plan,
                          policy=ElasticPolicy(splits_per_rank=8),
                          job_id="evict")
        assert [m.kind for m in res.membership_log] == ["evict"]
        assert [m.rank for m in res.membership_log] == [1]
        assert res.final_nprocs == 3
        # The straggler's slowness left with it.
        assert not plan.stragglers
        assert global_counts(res.result.returns) == expected

    def test_min_ranks_stops_shrinking(self):
        plan = ChaosPlan(0, membership=[
            MembershipEvent(at=0.001, kind="leave", rank=0),
            MembershipEvent(at=0.002, kind="leave", rank=0)])
        res = run_elastic(make_elastic_cluster(2), elastic_wordcount,
                          faults=plan,
                          policy=ElasticPolicy(min_ranks=1),
                          job_id="floor")
        assert res.final_nprocs == 1
        assert res.result is not None

    def test_combined_faults_converge_bit_identical(self):
        """Satellite: straggler + rank death + transient-I/O burst in
        one run; output must match the fault-free run and the failure
        log must classify every event."""
        expected = self.baseline()
        plan = ChaosPlan(0, stragglers={2: 5.0},
                         io_error_rate=0.05).fail_at("after_shuffle", 1)
        res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                          faults=plan,
                          policy=ElasticPolicy(evict_stragglers=False,
                                               splits_per_rank=8),
                          job_id="combined", max_restarts=10)
        assert global_counts(res.result.returns) == expected
        log = res.log_counts()
        assert log.get("rank-death") == 1
        assert log.get("retry", 0) >= 1          # transient I/O absorbed
        assert [m.kind for m in res.membership_log] == ["death"]
        assert res.final_nprocs == 3
        spec = [r for r in res.speculation if r.flagged]
        assert spec and spec[-1].won >= 1        # straggler speculated

    def test_chaos_membership_sweep_converges(self):
        expected = self.baseline()
        for seed in range(4):
            plan = ChaosPlan.random(seed, 4, tags=ELASTIC_TAGS,
                                    membership=True)
            res = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                              faults=plan, job_id="chaos",
                              max_restarts=12)
            assert global_counts(res.result.returns) == expected, \
                f"seed {seed} diverged"

    def test_membership_metric_counted(self):
        cluster = make_elastic_cluster(4)
        plan = ChaosPlan(0, membership=[
            MembershipEvent(at=0.001, kind="leave", rank=1)])
        run_elastic(cluster, elastic_wordcount, faults=plan, job_id="m")
        assert cluster.metrics.totals().get("ft.membership.changes") == 1

    def test_sweep_job_matches_checkpointed_job(self):
        a = run_elastic(make_elastic_cluster(4), elastic_wordcount,
                        job_id="a")
        b = run_elastic(make_elastic_cluster(4), sweep_wordcount,
                        job_id="b")
        assert global_counts(a.result.returns) \
            == global_counts(b.result.returns)


# ----------------------------------------------- scheduler integration


class TestPlanRunnerHooks:
    TEXT = b"oak elm ash fir oak elm oak yew ash oak " * 400

    def run_wc(self, *, elastic=None, chaos=None):
        cluster = Cluster(COMET, nprocs=4, memory_limit=None)
        cluster.pfs.store("t.txt", self.TEXT)
        cluster.chaos = chaos

        def job(env):
            plan = Plan("wc", CFG)
            out = plan.read_text("t.txt", name="input") \
                .map(wc_map, combine_fn=wc_combine, name="count") \
                .partial_reduce(wc_combine, name="sum")
            runner = PlanRunner(env, plan, elastic=elastic)
            return sorted((k, unpack_u64(v))
                          for k, v in runner.collect(out))

        return cluster.run(job)

    def test_elastic_map_matches_plain(self):
        plain = self.run_wc()
        hooked = self.run_wc(elastic=ElasticStageHooks())
        assert global_counts(hooked.returns) == global_counts(plain.returns)

    def test_straggler_under_plan_is_mitigated_and_reported(self):
        hooks = ElasticStageHooks(ElasticPolicy(splits_per_rank=8))
        plain = self.run_wc()
        unmitigated = self.run_wc(chaos=ChaosPlan(0, stragglers={3: 6.0}))
        slowed = self.run_wc(elastic=hooks,
                             chaos=ChaosPlan(0, stragglers={3: 6.0}))
        assert global_counts(slowed.returns) == global_counts(plain.returns)
        assert hooks.reports and hooks.reports[0].flagged == [3]
        # Speculation recovers most of what the x6 straggler costs the
        # plain runner (post-map stages still run on the slow clock).
        assert slowed.elapsed <= 0.5 * unmitigated.elapsed

    def test_non_map_stage_durations_feed_monitor(self):
        hooks = ElasticStageHooks()
        self.run_wc(elastic=hooks)
        # No straggler: the monitor saw stages but flagged nothing.
        assert hooks.flags == {}


class TestSchedulerScaling:
    def make_job(self, name):
        def fn(env, ctx):
            env.tracker.allocate(50_000, "work")
            env.comm.barrier()
            env.tracker.free(50_000, "work")
            return env.comm.size

        return SchedJob(name, fn, footprint="300K", config=CFG)

    def test_deep_queue_grows_gang(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit="512K")
        sched = Scheduler(cluster,
                          scaling=ScalingPolicy(min_ranks=2, max_ranks=4,
                                                jobs_per_rank=0.5))
        for i in range(4):
            sched.submit(self.make_job(f"j{i}"))
        report = sched.run()
        assert all(report.outcome(f"j{i}").completed for i in range(4))
        assert sched.scale_events, "queue pressure never scaled the gang"
        assert all(2 <= n <= 4 for _, n in sched.scale_events)
        assert cluster.nprocs > 2
        # Jobs launched after the scale-up actually saw the wider gang.
        sizes = {report.outcome(f"j{i}").returns[0] for i in range(4)}
        assert max(sizes) > 2

    def test_scaling_counts_membership_metric(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit="512K")
        sched = Scheduler(cluster,
                          scaling=ScalingPolicy(min_ranks=2, max_ranks=4,
                                                jobs_per_rank=0.5))
        for i in range(4):
            sched.submit(self.make_job(f"s{i}"))
        sched.run()
        assert cluster.metrics.totals().get("ft.membership.changes") \
            == len(sched.scale_events)

    def test_no_policy_means_no_scaling(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit="512K")
        sched = Scheduler(cluster)
        for i in range(4):
            sched.submit(self.make_job(f"p{i}"))
        report = sched.run()
        assert all(report.outcome(f"p{i}").completed for i in range(4))
        assert sched.scale_events == []
        assert cluster.nprocs == 2
