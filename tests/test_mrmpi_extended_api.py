"""Extended MR-MPI API: collate, scan, gather, broadcast, sort."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import pack_u64, unpack_u64
from repro.mpi import COMET, RankFailedError
from repro.mrmpi import MRMPI, MRMPIConfig

CFG = MRMPIConfig(page_size=32 * 1024, input_chunk_size=512)
TINY = MRMPIConfig(page_size=256, input_chunk_size=128)
TEXT = (b"ant bee cat dog elk fox gnu hen ibis jay ant bee cat ant ") * 20
EXPECTED = Counter(TEXT.split())


def wc_map(ctx, chunk):
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def wc_reduce(ctx, key, values):
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def make_cluster(nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store("t.txt", TEXT)
    return cluster


class TestCollate:
    def test_collate_equals_aggregate_convert(self):
        def job(env, use_collate):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            if use_collate:
                mr.collate()
            else:
                mr.aggregate()
                mr.convert()
            mr.reduce(wc_reduce)
            counts = {k: unpack_u64(v) for k, v in mr.collect()}
            mr.free()
            return counts

        a = make_cluster().run(job, True)
        b = make_cluster().run(job, False)
        assert a.returns == b.returns


class TestScan:
    def test_scan_visits_every_kv(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            seen = []
            mr.scan(lambda k, v: seen.append(k))
            n_records = len(mr.kv)
            mr.free()
            return len(seen), n_records

        for visited, total in make_cluster().run(job).returns:
            assert visited == total > 0

    def test_scan_kmv(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            mr.collate()
            groups = {}
            mr.scan_kmv(lambda k, vs: groups.__setitem__(k, len(vs)))
            mr.free()
            return groups

        merged = {}
        for groups in make_cluster().run(job).returns:
            merged.update(groups)
        assert merged == dict(EXPECTED)

    def test_scan_requires_kv(self):
        def job(env):
            MRMPI(env, CFG).scan(lambda k, v: None)

        with pytest.raises(RankFailedError):
            make_cluster(1).run(job)


class TestGather:
    def test_gather_to_one_rank(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            mr.gather(1)
            pairs = mr.collect()
            mr.free()
            return len(pairs)

        counts = make_cluster(4).run(job).returns
        total = sum(EXPECTED.values())
        assert sorted(counts) == [0, 0, 0, total]

    def test_gather_preserves_multiset(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            mr.gather(2)
            keys = [k for k, _ in mr.collect()]
            mr.free()
            return keys

        result = make_cluster(4).run(job)
        merged = Counter()
        for keys in result.returns:
            merged.update(keys)
        assert merged == EXPECTED
        assert not result.returns[2] and not result.returns[3]

    def test_gather_invalid_nranks(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            mr.gather(99)

        with pytest.raises(RankFailedError):
            make_cluster(2).run(job)


class TestBroadcast:
    def test_broadcast_replicates_root(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_items(
                range(5) if env.comm.rank == 0 else [],
                lambda ctx, i: ctx.emit(b"k%d" % i, pack_u64(i)))
            mr.broadcast_kvs(root=0)
            pairs = mr.collect()
            mr.free()
            return pairs

        result = make_cluster(3).run(job)
        expected = [(b"k%d" % i, pack_u64(i)) for i in range(5)]
        assert result.returns == [expected] * 3


class TestSort:
    def test_sort_keys_in_memory(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            mr.sort_keys()
            keys = [k for k, _ in mr.collect()]
            mr.free()
            return keys

        for keys in make_cluster(3).run(job).returns:
            assert keys == sorted(keys)

    def test_sort_keys_out_of_core(self):
        def job(env):
            mr = MRMPI(env, TINY)
            mr.map_text_file("t.txt", wc_map)
            assert mr.kv.spilled  # force the external-sort path
            mr.sort_keys()
            keys = [k for k, _ in mr.collect()]
            mr.free()
            return keys

        result = make_cluster(2).run(job)
        merged = Counter()
        for keys in result.returns:
            assert keys == sorted(keys)
            merged.update(keys)
        assert merged == EXPECTED

    def test_sort_values(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_items(range(20),
                         lambda ctx, i: ctx.emit(b"k", pack_u64(97 * i % 20)))
            mr.sort_values()
            values = [unpack_u64(v) for _, v in mr.collect()]
            mr.free()
            return values

        result = make_cluster(1).run(job)
        assert result.returns[0] == sorted(range(20))

    def test_sort_preserves_pairs(self):
        def job(env):
            mr = MRMPI(env, CFG)
            mr.map_text_file("t.txt", wc_map)
            before = Counter(k for k, _ in mr.collect())
            mr.sort_keys()
            after = Counter(k for k, _ in mr.collect())
            mr.free()
            return before == after

        assert all(make_cluster(2).run(job).returns)
