"""Convert paths: in-memory two-pass vs partitioned out-of-core."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import KVContainer, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.convert import (
    _needs_partitioned_convert,
    convert_to_kmv,
    iter_grouped,
)
from repro.mpi import COMET

CFG = MimirConfig(page_size=1024, comm_buffer_size=1024)
OOC = MimirConfig(page_size=1024, comm_buffer_size=1024, out_of_core=True)


def with_env(fn, limit=None):
    cluster = Cluster(COMET, nprocs=1, memory_limit=limit)
    return cluster.run(fn).returns[0]


def fill(env, pairs, config=CFG, **kvc_kwargs):
    kvc = KVContainer(env.tracker, config.layout, config.page_size,
                      **kvc_kwargs)
    for k, v in pairs:
        kvc.add(k, v)
    return kvc


PAIRS = [(b"k%02d" % (i % 7), b"v%03d" % (i % 1000)) for i in range(240)]


def groupby(pairs):
    groups: dict[bytes, list[bytes]] = {}
    for k, v in pairs:
        groups.setdefault(k, []).append(v)
    return groups


class TestInMemoryConvert:
    def test_groups_match_reference(self):
        def job(env):
            kvc = fill(env, PAIRS)
            kmvc = convert_to_kmv(env, kvc, CFG)
            return dict(kmvc.consume())

        assert with_env(job) == groupby(PAIRS)

    def test_iter_grouped_in_memory(self):
        def job(env):
            kvc = fill(env, PAIRS)
            return dict(iter_grouped(env, kvc, CFG))

        assert with_env(job) == groupby(PAIRS)

    def test_empty_kvc(self):
        def job(env):
            kvc = fill(env, [])
            return list(iter_grouped(env, kvc, CFG))

        assert with_env(job) == []


class TestPartitionedConvert:
    def test_spilled_kvc_takes_partitioned_path(self):
        def job(env):
            kvc = fill(env, PAIRS, config=OOC, spill_env=env,
                       resident_page_budget=1)
            assert kvc.spilled
            assert _needs_partitioned_convert(env, kvc)
            groups = dict(iter_grouped(env, kvc, OOC))
            return groups, env.tracker.current

        groups, leftover = with_env(job)
        assert groups == groupby(PAIRS)
        assert leftover == 0

    def test_tight_budget_triggers_partitioning(self):
        def job(env):
            kvc = fill(env, PAIRS)
            return kvc.nbytes, _needs_partitioned_convert(env, kvc)

        # Resident KVs need 2x headroom to group in memory: a 10K
        # budget (4K of pages held, ~3.7K of payload) fails the check,
        # an ample one passes it.
        tight = Cluster(COMET, nprocs=1, memory_limit=10 * 1024)
        nbytes, needs = tight.run(job).returns[0]
        assert nbytes * 2 > 10 * 1024 - 4 * 1024  # precondition holds
        assert needs

        ample = Cluster(COMET, nprocs=1, memory_limit=1 << 20)
        _, needs = ample.run(job).returns[0]
        assert not needs

    def test_partitioned_values_complete(self):
        # Values per key survive partitioning intact (multiset check).
        def job(env):
            kvc = fill(env, PAIRS, config=OOC, spill_env=env,
                       resident_page_budget=1)
            return {k: sorted(vs)
                    for k, vs in iter_grouped(env, kvc, OOC)}

        expected = {k: sorted(vs) for k, vs in groupby(PAIRS).items()}
        assert with_env(job) == expected

    def test_partition_files_cleaned_up(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            kvc = fill(env, PAIRS, config=OOC, spill_env=env,
                       resident_page_budget=1)
            list(iter_grouped(env, kvc, OOC))

        cluster.run(job)
        assert not cluster.pfs.listdir("spill/")


class TestEndToEndOOCReduce:
    def test_reduce_over_spilled_input_correct(self):
        text = b" ".join(b"w%03d" % (i % 40) for i in range(3000))
        cluster = Cluster(COMET, nprocs=2, memory_limit=48 * 1024)
        cluster.pfs.store("t.txt", text)
        config = MimirConfig(page_size=2048, comm_buffer_size=2048,
                             input_chunk_size=512, out_of_core=True)

        def job(env):
            mimir = Mimir(env, config)
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            out = mimir.reduce(
                kvs, lambda ctx, k, vs: ctx.emit(k, pack_u64(
                    sum(unpack_u64(v) for v in vs))))
            counts = {k: unpack_u64(v) for k, v in out.records()}
            out.free()
            return counts

        merged: Counter = Counter()
        for part in cluster.run(job).returns:
            merged.update(part)
        assert merged == Counter(text.split())
