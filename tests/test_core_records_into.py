"""encode_into: the zero-staging-copy encoder matches encode()."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import CSTRING, KVLayout


LAYOUTS = [
    KVLayout(),
    KVLayout(key_len=CSTRING, val_len=8),
    KVLayout(key_len=4, val_len=8),
    KVLayout(key_len=CSTRING, val_len=CSTRING),
    KVLayout(key_len=None, val_len=6),
    KVLayout(key_len=3, val_len=None),
]


def fit(layout, key, value):
    """Coerce random bytes to satisfy the layout's constraints."""
    if isinstance(layout.key_len, int) and layout.key_len > 0:
        key = (key * layout.key_len)[: layout.key_len].ljust(
            layout.key_len, b"k")
    if layout.key_len == CSTRING:
        key = key.replace(b"\0", b"x")
    if isinstance(layout.val_len, int) and layout.val_len > 0:
        value = (value * layout.val_len)[: layout.val_len].ljust(
            layout.val_len, b"v")
    if layout.val_len == CSTRING:
        value = value.replace(b"\0", b"y")
    return key, value


class TestEncodeInto:
    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_matches_encode(self, layout):
        key, value = fit(layout, b"hello", b"world!")
        expected = layout.encode(key, value)
        buf = bytearray(64)
        end = layout.encode_into(buf, 0, key, value)
        assert bytes(buf[:end]) == expected
        assert end == layout.encoded_size(key, value)

    @pytest.mark.parametrize("layout", LAYOUTS)
    def test_offset_respected(self, layout):
        key, value = fit(layout, b"abc", b"defg")
        buf = bytearray(b"\xee" * 64)
        end = layout.encode_into(buf, 10, key, value)
        assert bytes(buf[:10]) == b"\xee" * 10  # prefix untouched
        assert bytes(buf[10:end]) == layout.encode(key, value)

    def test_validation_still_applies(self):
        layout = KVLayout(key_len=4)
        with pytest.raises(ValueError):
            layout.encode_into(bytearray(32), 0, b"toolong", b"v")
        layout2 = KVLayout(key_len=CSTRING)
        with pytest.raises(ValueError):
            layout2.encode_into(bytearray(32), 0, b"a\0b", b"v")

    def test_back_to_back_records_decode(self):
        layout = KVLayout()
        buf = bytearray(256)
        pairs = [(b"a", b"1"), (b"bb", b"22"), (b"", b"")]
        offset = 0
        for key, value in pairs:
            offset = layout.encode_into(buf, offset, key, value)
        assert list(layout.iter_records(bytes(buf[:offset]))) == pairs


@given(st.binary(max_size=20), st.binary(max_size=20),
       st.integers(min_value=0, max_value=16))
def test_property_encode_into_equals_encode(key, value, offset):
    layout = KVLayout()
    buf = bytearray(offset + layout.encoded_size(key, value))
    end = layout.encode_into(buf, offset, key, value)
    assert bytes(buf[offset:end]) == layout.encode(key, value)


class TestMRMPIAdd:
    def test_add_concatenates(self):
        from repro.cluster import Cluster
        from repro.mpi import COMET
        from repro.mrmpi import MRMPI, MRMPIConfig

        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        cfg = MRMPIConfig(page_size=8192)

        def job(env):
            a = MRMPI(env, cfg)
            a.map_items([1, 2], lambda ctx, i: ctx.emit(b"a%d" % i, b"x"))
            b = MRMPI(env, cfg)
            b.map_items([3], lambda ctx, i: ctx.emit(b"b%d" % i, b"y"))
            a.add(b)
            keys = [k for k, _ in a.collect()]
            a.free()
            b.free()
            return keys

        result = cluster.run(job)
        assert result.returns[0] == [b"a1", b"a2", b"b3"]

    def test_add_kv_without_map(self):
        from repro.cluster import Cluster
        from repro.mpi import COMET
        from repro.mrmpi import MRMPI, MRMPIConfig

        cluster = Cluster(COMET, nprocs=1, memory_limit=None)

        def job(env):
            mr = MRMPI(env, MRMPIConfig(page_size=4096))
            mr.add_kv(b"k", b"v")
            mr.add_kv(b"k2", b"v2")
            pairs = mr.collect()
            mr.free()
            return pairs

        assert cluster.run(job).returns[0] == [(b"k", b"v"), (b"k2", b"v2")]
