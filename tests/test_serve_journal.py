"""Crash-safety of the serve journal: framing, lineage, torn tails."""

import pytest

from repro.cluster import Cluster
from repro.ft.injection import ChaosPlan
from repro.mpi import COMET
from repro.serve.journal import BOOTSTRAP_NONCE, JournalError, ServeJournal


def fresh_pfs():
    return Cluster(COMET, nprocs=2).pfs


class TestJournalBasics:
    def test_fresh_journal_opens_empty(self):
        journal = ServeJournal(fresh_pfs())
        assert journal.open() == []
        assert journal.nonce is not None
        assert journal.size() > 0  # the header record

    def test_append_then_replay_roundtrip(self):
        pfs = fresh_pfs()
        journal = ServeJournal(pfs)
        journal.open()
        records = [{"type": "submit", "job_id": f"job-{i}", "seq": i}
                   for i in range(5)]
        for record in records:
            journal.append(record)

        replay = ServeJournal(pfs)
        assert replay.open() == records
        assert replay.nonce == journal.nonce
        assert replay.torn_tail_bytes == 0

    def test_append_before_open_refused(self):
        journal = ServeJournal(fresh_pfs())
        with pytest.raises(JournalError, match="not opened"):
            journal.append({"type": "submit"})

    def test_records_survive_many_generations(self):
        pfs = fresh_pfs()
        for generation in range(4):
            journal = ServeJournal(pfs)
            replayed = journal.open()
            assert len(replayed) == generation
            journal.append({"type": "submit", "gen": generation})


class TestTornTail:
    def seed(self, pfs, n=4):
        journal = ServeJournal(pfs)
        journal.open()
        for i in range(n):
            journal.append({"type": "submit", "seq": i})
        return journal

    @pytest.mark.parametrize("cut", [1, 3, 7, 20])
    def test_truncation_at_arbitrary_offsets_keeps_valid_prefix(self, cut):
        """Chopping bytes off the tail loses whole records, never
        corrupts: replay returns a strict prefix of the appended
        sequence."""
        pfs = fresh_pfs()
        self.seed(pfs)
        blob = pfs.fetch("serve/journal")
        pfs.store("serve/journal", blob[:-cut])

        replay = ServeJournal(pfs)
        records = replay.open()
        assert [r["seq"] for r in records] == list(range(len(records)))
        assert len(records) < 4
        assert replay.torn_tail_bytes > 0

    def test_corrupt_middle_record_ends_replay_there(self):
        pfs = fresh_pfs()
        self.seed(pfs)
        blob = bytearray(pfs.fetch("serve/journal"))
        # Flip a bit well into the body (past header + first record).
        blob[len(blob) // 2] ^= 0x40
        pfs.store("serve/journal", bytes(blob))

        replay = ServeJournal(pfs)
        records = replay.open()
        assert len(records) < 4
        assert replay.torn_tail_bytes > 0

    def test_appends_after_torn_open_still_replay(self):
        pfs = fresh_pfs()
        self.seed(pfs, n=2)
        pfs.store("serve/journal", pfs.fetch("serve/journal")[:-3])

        second = ServeJournal(pfs)
        survivors = second.open()
        second.append({"type": "submit", "seq": 99})

        third = ServeJournal(pfs)
        records = third.open()
        assert records[-1]["seq"] == 99
        assert records[:-1] == survivors


class TestLineage:
    def test_foreign_journal_rejected(self):
        """A journal from a different lineage must fail loudly, not
        replay silently."""
        pfs_a, pfs_b = fresh_pfs(), fresh_pfs()
        ServeJournal(pfs_a).open()
        ServeJournal(pfs_b).open()
        pfs_b.store("serve/journal", pfs_a.fetch("serve/journal"))
        # pfs_b's journal now *is* lineage A; a fresh daemon adopts the
        # header it finds - that is legitimate (restart-from-backup).
        adopted = ServeJournal(pfs_b)
        adopted.open()
        assert adopted.nonce is not None

    def test_garbage_header_rejected(self):
        pfs = fresh_pfs()
        pfs.store("serve/journal", b"not a journal at all")
        with pytest.raises(JournalError, match="header"):
            ServeJournal(pfs).open()

    def test_bootstrap_nonce_is_stable_constant(self):
        # The header is only readable if this constant never changes.
        assert BOOTSTRAP_NONCE == "serve-journal-v1"


class TestChaosAppend:
    def test_torn_append_raises_and_is_discarded_on_replay(self):
        """A chaos-torn append stores a prefix and raises - the record
        was never acknowledged, so replay must not resurrect it."""
        pfs = fresh_pfs()
        journal = ServeJournal(pfs)
        journal.open()
        journal.append({"type": "submit", "seq": 0})

        chaos = ChaosPlan(seed=7, torn_write_rate=1.0,
                          corruptible_prefix="serve/")
        torn = ServeJournal(pfs, chaos=chaos)
        torn.nonce = journal.nonce
        with pytest.raises(Exception):
            torn.append({"type": "submit", "seq": 1})

        replay = ServeJournal(pfs)
        records = replay.open()
        assert [r["seq"] for r in records] == [0]
        assert replay.torn_tail_bytes > 0

    def test_dump_writes_artifact(self, tmp_path):
        pfs = fresh_pfs()
        journal = ServeJournal(pfs)
        journal.open()
        journal.append({"type": "submit", "seq": 0})
        out = tmp_path / "journal.bin"
        nbytes = journal.dump(str(out))
        assert out.stat().st_size == nbytes == journal.size()
