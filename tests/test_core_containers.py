"""KVContainer and KMVContainer: growth, consumption, accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import KMVContainer, KVContainer, KVLayout, RecordTooLargeError
from repro.core.records import CSTRING
from repro.memory import MemoryLimitExceeded, MemoryTracker


def make_kvc(page_size=256, layout=None, limit=None):
    return KVContainer(MemoryTracker(limit), layout, page_size)


class TestKVContainerBasics:
    def test_empty(self):
        kvc = make_kvc()
        assert len(kvc) == 0
        assert kvc.memory_bytes == 0
        assert list(kvc.records()) == []

    def test_add_and_iterate(self):
        kvc = make_kvc()
        kvc.add(b"a", b"1")
        kvc.add(b"b", b"2")
        assert list(kvc.records()) == [(b"a", b"1"), (b"b", b"2")]
        assert len(kvc) == 2

    def test_pages_grow_on_demand(self):
        kvc = make_kvc(page_size=64)
        for i in range(20):
            kvc.add(b"key%02d" % i, b"v")
        assert kvc.npages > 1
        assert len(kvc) == 20

    def test_record_never_straddles_pages(self):
        kvc = make_kvc(page_size=32)
        for i in range(10):
            kvc.add(b"0123456789", b"ab")  # 20-byte record, 32-byte pages
        # One record per page (two don't fit in 32 bytes).
        assert kvc.npages == 10
        assert list(kvc.records()) == [(b"0123456789", b"ab")] * 10

    def test_record_too_large_raises(self):
        kvc = make_kvc(page_size=16)
        with pytest.raises(RecordTooLargeError):
            kvc.add(b"x" * 32, b"")

    def test_nbytes_counts_payload(self):
        kvc = make_kvc()
        kvc.add(b"ab", b"c")
        assert kvc.nbytes == 8 + 3

    def test_tracker_charged_per_page(self):
        tracker = MemoryTracker()
        kvc = KVContainer(tracker, page_size=128)
        kvc.add(b"k", b"v")
        assert tracker.current == 128

    def test_memory_limit_enforced(self):
        kvc = make_kvc(page_size=128, limit=256)
        kvc.add(b"x" * 100, b"")
        kvc.add(b"y" * 100, b"")
        with pytest.raises(MemoryLimitExceeded):
            kvc.add(b"z" * 100, b"")


class TestKVContainerConsume:
    def test_consume_yields_all_and_frees(self):
        tracker = MemoryTracker()
        kvc = KVContainer(tracker, page_size=64)
        pairs = [(b"k%d" % i, b"v%d" % i) for i in range(30)]
        for k, v in pairs:
            kvc.add(k, v)
        assert tracker.current > 0
        seen = list(kvc.consume())
        assert seen == pairs
        assert tracker.current == 0
        assert len(kvc) == 0

    def test_consume_frees_incrementally(self):
        tracker = MemoryTracker()
        kvc = KVContainer(tracker, page_size=32)
        for i in range(8):
            kvc.add(b"0123456789", b"ab")  # one record per page
        held_during = []
        for _ in kvc.consume():
            held_during.append(tracker.current)
        # Footprint strictly decreases as pages drain.
        assert held_during == sorted(held_during, reverse=True)
        assert held_during[-1] < held_during[0]

    def test_free_releases_everything(self):
        tracker = MemoryTracker()
        kvc = KVContainer(tracker, page_size=64)
        for i in range(10):
            kvc.add(b"abcdef", b"xy")
        kvc.free()
        assert tracker.current == 0
        assert list(kvc.records()) == []


class TestKVContainerEncoded:
    def test_extend_encoded_resplits_at_pages(self):
        layout = KVLayout()
        src = b"".join(layout.encode(b"w%d" % i, b"1") for i in range(40))
        kvc = make_kvc(page_size=64)
        added = kvc.extend_encoded(src)
        assert added == 40
        assert [k for k, _ in kvc.records()] == [b"w%d" % i for i in range(40)]

    def test_extend_empty(self):
        kvc = make_kvc()
        assert kvc.extend_encoded(b"") == 0

    def test_add_record_bytes(self):
        layout = KVLayout(key_len=CSTRING, val_len=2)
        kvc = make_kvc(layout=layout)
        kvc.add_record_bytes(layout.encode(b"hi", b"xy"))
        assert list(kvc.records()) == [(b"hi", b"xy")]


class TestKMVContainer:
    def test_reserve_and_fill(self):
        kmvc = KMVContainer(MemoryTracker(), page_size=256)
        slot = kmvc.reserve(b"key", 3, 6)
        for v in (b"aa", b"bb", b"cc"):
            kmvc.append_value(slot, v)
        kmvc.finish_fill()
        assert list(kmvc.records()) == [(b"key", [b"aa", b"bb", b"cc"])]

    def test_interleaved_fill_of_two_slots(self):
        kmvc = KMVContainer(MemoryTracker(), page_size=256)
        s1 = kmvc.reserve(b"k1", 2, 2)
        s2 = kmvc.reserve(b"k2", 2, 4)
        kmvc.append_value(s1, b"a")
        kmvc.append_value(s2, b"xx")
        kmvc.append_value(s2, b"yy")
        kmvc.append_value(s1, b"b")
        kmvc.finish_fill()
        assert list(kmvc.records()) == [
            (b"k1", [b"a", b"b"]), (b"k2", [b"xx", b"yy"])]

    def test_overfill_rejected(self):
        kmvc = KMVContainer(MemoryTracker(), page_size=256)
        slot = kmvc.reserve(b"k", 1, 1)
        kmvc.append_value(slot, b"x")
        with pytest.raises(ValueError):
            kmvc.append_value(slot, b"y")

    def test_unfilled_slot_detected(self):
        kmvc = KMVContainer(MemoryTracker(), page_size=256)
        kmvc.reserve(b"k", 2, 4)
        with pytest.raises(ValueError):
            kmvc.finish_fill()

    def test_record_spans_exact_size(self):
        layout = KVLayout()  # variable key and values
        kmvc = KMVContainer(MemoryTracker(), layout, page_size=256)
        # key part 4+1, count 4, values 2*(4+2) = 21
        assert kmvc.record_size(b"k", 2, 4) == 21

    def test_fixed_value_record_size(self):
        layout = KVLayout(key_len=CSTRING, val_len=8)
        kmvc = KMVContainer(MemoryTracker(), layout, page_size=256)
        # key 'ab' + NUL = 3, count 4, 2 values * 8 = 16
        assert kmvc.record_size(b"ab", 2, 16) == 23

    def test_oversized_kmv_gets_jumbo_page(self):
        tracker = MemoryTracker()
        kmvc = KMVContainer(tracker, page_size=64)
        slot = kmvc.reserve(b"k", 10, 100)  # record ~169B > 64B page
        for _ in range(10):
            kmvc.append_value(slot, b"x" * 10)
        kmvc.finish_fill()
        # Charged in whole page units (3 x 64 = 192 >= 169).
        assert tracker.current == 192
        assert kmvc.memory_bytes == 192
        assert list(kmvc.records()) == [(b"k", [b"x" * 10] * 10)]
        kmvc.free()
        assert tracker.current == 0

    def test_jumbo_page_freed_on_consume(self):
        tracker = MemoryTracker()
        kmvc = KMVContainer(tracker, page_size=64)
        slot = kmvc.reserve(b"big", 20, 100)
        for _ in range(20):
            kmvc.append_value(slot, b"y" * 5)
        slot2 = kmvc.reserve(b"small", 1, 4)
        kmvc.append_value(slot2, b"abcd")
        kmvc.finish_fill()
        records = list(kmvc.consume())
        assert [k for k, _ in records] == [b"big", b"small"]
        assert tracker.current == 0

    def test_consume_frees_pages(self):
        tracker = MemoryTracker()
        kmvc = KMVContainer(tracker, page_size=64)
        for i in range(8):
            slot = kmvc.reserve(b"key%d" % i, 1, 30)
            kmvc.append_value(slot, b"v" * 30)
        kmvc.finish_fill()
        assert tracker.current > 0
        records = list(kmvc.consume())
        assert len(records) == 8
        assert tracker.current == 0

    def test_cstring_values(self):
        layout = KVLayout(key_len=4, val_len=CSTRING)
        kmvc = KMVContainer(MemoryTracker(), layout, page_size=128)
        slot = kmvc.reserve(b"aaaa", 2, len(b"hi") + len(b"yo"))
        kmvc.append_value(slot, b"hi")
        kmvc.append_value(slot, b"yo")
        kmvc.finish_fill()
        assert list(kmvc.records()) == [(b"aaaa", [b"hi", b"yo"])]


@settings(max_examples=50)
@given(st.lists(st.tuples(st.binary(min_size=1, max_size=8),
                          st.binary(max_size=8)), max_size=60),
       st.sampled_from([64, 128, 256]))
def test_property_kvc_preserves_sequence(pairs, page_size):
    kvc = KVContainer(MemoryTracker(), page_size=page_size)
    for k, v in pairs:
        kvc.add(k, v)
    assert list(kvc.records()) == pairs
    tracker = kvc.pool.tracker
    assert list(kvc.consume()) == pairs
    assert tracker.current == 0
