"""Smoke tests: the example scripts run and their assertions hold.

Examples are documentation that executes; running the fast ones in the
suite keeps them from rotting as the API evolves.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = run_example("quickstart.py", capsys)
        assert "word counts:" in out
        assert "peak node memory" in out

    def test_terasort(self, capsys):
        out = run_example("terasort_global.py", capsys)
        assert "validation      : PASS" in out

    def test_wordcount_cluster(self, capsys):
        out = run_example("wordcount_cluster.py", capsys)
        assert "MR-MPI" in out
        assert "Mimir (hint+pr+cps)" in out

    def test_fault_tolerant_wordcount(self, capsys):
        out = run_example("fault_tolerant_wordcount.py", capsys)
        assert "1 restart(s)" in out

    def test_octree_clustering(self, capsys):
        out = run_example("octree_clustering.py", capsys)
        assert "dense octant" in out

    def test_all_examples_have_docstrings_and_main(self):
        scripts = sorted(EXAMPLES.glob("*.py"))
        assert len(scripts) >= 9
        for script in scripts:
            source = script.read_text()
            assert source.startswith("#!"), script.name
            assert '"""' in source, script.name
            assert '__name__ == "__main__"' in source, script.name
