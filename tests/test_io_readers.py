"""Chunked input readers shared by both frameworks."""

import pytest

from repro.cluster import Cluster
from repro.io.readers import iter_binary_chunks, iter_text_chunks
from repro.mpi import COMET


def gather_chunks(nprocs, path, data, reader):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store(path, data)
    result = cluster.run(lambda env: list(reader(env)))
    return result.returns


class TestTextChunks:
    TEXT = b"one two three four five six seven eight nine ten " * 30

    def test_all_words_covered_exactly_once(self):
        chunks_per_rank = gather_chunks(
            4, "t.txt", self.TEXT,
            lambda env: iter_text_chunks(env, "t.txt", 100))
        words = [w for chunks in chunks_per_rank
                 for chunk in chunks for w in chunk.split()]
        assert words == self.TEXT.split()

    def test_no_chunk_splits_a_word(self):
        chunks_per_rank = gather_chunks(
            3, "t.txt", self.TEXT,
            lambda env: iter_text_chunks(env, "t.txt", 64))
        vocab = set(self.TEXT.split())
        for chunks in chunks_per_rank:
            for chunk in chunks:
                for word in chunk.split():
                    assert word in vocab

    def test_chunk_size_respected_approximately(self):
        chunks_per_rank = gather_chunks(
            2, "t.txt", self.TEXT,
            lambda env: iter_text_chunks(env, "t.txt", 50))
        for chunks in chunks_per_rank:
            for chunk in chunks[:-1]:
                assert len(chunk) <= 50 + 16  # chunk + carried word

    def test_empty_file(self):
        chunks = gather_chunks(2, "e.txt", b"",
                               lambda env: iter_text_chunks(env, "e.txt", 64))
        assert chunks == [[], []]

    def test_read_charges_clock(self):
        cluster = Cluster(COMET, nprocs=1)
        cluster.pfs.store("t.txt", self.TEXT)

        def job(env):
            list(iter_text_chunks(env, "t.txt", 128))
            return env.comm.clock.time

        assert cluster.run(job).returns[0] > 0


class TestBinaryChunks:
    DATA = bytes(range(256)) * 8  # 2048 bytes

    def test_whole_records_only(self):
        chunks_per_rank = gather_chunks(
            3, "b.bin", self.DATA,
            lambda env: iter_binary_chunks(env, "b.bin", 16, 100))
        for chunks in chunks_per_rank:
            for chunk in chunks:
                assert len(chunk) % 16 == 0

    def test_full_coverage_in_order(self):
        chunks_per_rank = gather_chunks(
            4, "b.bin", self.DATA,
            lambda env: iter_binary_chunks(env, "b.bin", 16, 64))
        assert b"".join(c for chunks in chunks_per_rank
                        for c in chunks) == self.DATA

    def test_chunk_smaller_than_record_rounds_up(self):
        chunks_per_rank = gather_chunks(
            1, "b.bin", self.DATA,
            lambda env: iter_binary_chunks(env, "b.bin", 128, 100))
        for chunk in chunks_per_rank[0]:
            assert len(chunk) == 128

    def test_misaligned_file_rejected(self):
        with pytest.raises(Exception):
            gather_chunks(2, "b.bin", b"x" * 100,
                          lambda env: iter_binary_chunks(env, "b.bin", 16,
                                                         64))
