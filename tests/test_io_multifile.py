"""Multi-file inputs: path resolution, round-robin shares, map coverage."""

from collections import Counter

import pytest

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.io.readers import (
    iter_binary_chunks_multi,
    iter_text_chunks_multi,
    rank_files,
    resolve_paths,
)
from repro.mpi import COMET, RankFailedError

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=256)

PARTS = {
    f"corpus/part-{i:02d}": (b"file%d " % i) * (10 + i)
    for i in range(6)
}
ALL_WORDS = Counter(w for data in PARTS.values() for w in data.split())


def make_cluster(nprocs=4):
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    for path, data in PARTS.items():
        cluster.pfs.store(path, data)
    return cluster


class TestPathResolution:
    def test_directory_prefix_expands(self):
        cluster = make_cluster(1)
        result = cluster.run(lambda env: resolve_paths(env, "corpus/"))
        assert result.returns[0] == sorted(PARTS)

    def test_explicit_list_passthrough(self):
        cluster = make_cluster(1)
        paths = ["corpus/part-01", "corpus/part-03"]
        assert cluster.run(
            lambda env: resolve_paths(env, paths)).returns[0] == paths

    def test_single_path_wraps(self):
        cluster = make_cluster(1)
        assert cluster.run(
            lambda env: resolve_paths(env, "corpus/part-00")
        ).returns[0] == ["corpus/part-00"]

    def test_empty_prefix_raises(self):
        cluster = make_cluster(2)
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: resolve_paths(env, "nothing/"))

    def test_empty_list_raises(self):
        cluster = make_cluster(2)
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: resolve_paths(env, []))


class TestRankFiles:
    def test_round_robin_partition(self):
        cluster = make_cluster(4)
        result = cluster.run(lambda env: rank_files(env, "corpus/"))
        claimed = [p for share in result.returns for p in share]
        assert sorted(claimed) == sorted(PARTS)
        # Shares differ by at most one file.
        sizes = [len(share) for share in result.returns]
        assert max(sizes) - min(sizes) <= 1


class TestMultiFileReaders:
    def test_text_full_coverage(self):
        cluster = make_cluster(4)
        result = cluster.run(
            lambda env: [w for chunk in
                         iter_text_chunks_multi(env, "corpus/", 64)
                         for w in chunk.split()])
        merged = Counter(w for words in result.returns for w in words)
        assert merged == ALL_WORDS

    def test_more_ranks_than_files_splits_bytes(self):
        cluster = make_cluster(8)  # 8 ranks, 6 files
        result = cluster.run(
            lambda env: [w for chunk in
                         iter_text_chunks_multi(env, "corpus/", 64)
                         for w in chunk.split()])
        merged = Counter(w for words in result.returns for w in words)
        assert merged == ALL_WORDS

    def test_binary_full_coverage(self):
        cluster = Cluster(COMET, nprocs=3, memory_limit=None)
        blobs = {}
        for i in range(4):
            data = b"".join(pack_u64(i * 100 + j) for j in range(20))
            cluster.pfs.store(f"bin/part-{i}", data)
            blobs[f"bin/part-{i}"] = data
        result = cluster.run(
            lambda env: b"".join(
                iter_binary_chunks_multi(env, "bin/", 8, 64)))
        combined = b"".join(result.returns)
        values = sorted(unpack_u64(combined[i : i + 8])
                        for i in range(0, len(combined), 8))
        expected = sorted(i * 100 + j for i in range(4) for j in range(20))
        assert values == expected

    def test_binary_misaligned_file_rejected(self):
        cluster = Cluster(COMET, nprocs=1, memory_limit=None)
        cluster.pfs.store("bin/bad", b"x" * 7)
        with pytest.raises(RankFailedError):
            cluster.run(lambda env: list(
                iter_binary_chunks_multi(env, "bin/", 8, 64)))


class TestMimirMultiFile:
    def test_wordcount_over_directory(self):
        cluster = make_cluster(4)

        def wc_map(ctx, chunk):
            for word in chunk.split():
                ctx.emit(word, pack_u64(1))

        def job(env):
            mimir = Mimir(env, CFG)
            kvs = mimir.map_text_files("corpus/", wc_map)
            out = mimir.partial_reduce(
                kvs, lambda k, a, b: pack_u64(unpack_u64(a) +
                                              unpack_u64(b)))
            counts = {k: unpack_u64(v) for k, v in out.records()}
            out.free()
            return counts

        merged: Counter = Counter()
        for part in cluster.run(job).returns:
            merged.update(part)
        assert merged == ALL_WORDS

    def test_binary_files_through_mimir(self):
        cluster = Cluster(COMET, nprocs=2, memory_limit=None)
        for i in range(3):
            cluster.pfs.store(f"nums/{i}",
                              b"".join(pack_u64(j) for j in range(10)))

        def job(env):
            mimir = Mimir(env, CFG)

            def map_fn(ctx, chunk):
                for off in range(0, len(chunk), 8):
                    ctx.emit(b"sum", chunk[off : off + 8])

            kvs = mimir.map_binary_files("nums/", 8, map_fn)
            out = mimir.partial_reduce(
                kvs, lambda k, a, b: pack_u64(unpack_u64(a) +
                                              unpack_u64(b)))
            totals = [unpack_u64(v) for _, v in out.records()]
            out.free()
            return totals

        result = cluster.run(job)
        assert sum(t for totals in result.returns for t in totals) == \
            3 * sum(range(10))
