"""Collective correctness, mismatch detection, and failure handling."""

import operator

import pytest

from repro.mpi import (
    CollectiveMismatchError,
    RankFailedError,
    World,
)


def run(size, fn, **kwargs):
    return World(size, **kwargs).run(fn)


class TestBarrier:
    def test_barrier_completes(self):
        result = run(4, lambda comm: comm.barrier())
        assert result.returns == [None] * 4

    def test_barrier_advances_clock(self):
        def fn(comm):
            comm.barrier()
            return comm.clock.time

        result = run(4, fn)
        assert all(t > 0 for t in result.returns)
        assert len(set(result.returns)) == 1  # synchronised

    def test_serial_barrier_is_noop(self):
        result = run(1, lambda comm: comm.barrier())
        assert result.returns == [None]


class TestAllreduce:
    def test_sum(self):
        result = run(4, lambda comm: comm.allreduce(comm.rank + 1))
        assert result.returns == [10] * 4

    def test_max(self):
        result = run(3, lambda comm: comm.allreduce(comm.rank, max))
        assert result.returns == [2] * 3

    def test_all_true(self):
        result = run(4, lambda comm: comm.all_true(comm.rank != 2))
        assert result.returns == [False] * 4
        result = run(4, lambda comm: comm.all_true(True))
        assert result.returns == [True] * 4

    def test_any_true(self):
        result = run(4, lambda comm: comm.any_true(comm.rank == 2))
        assert result.returns == [True] * 4
        result = run(4, lambda comm: comm.any_true(False))
        assert result.returns == [False] * 4

    def test_serial(self):
        result = run(1, lambda comm: comm.allreduce(7))
        assert result.returns == [7]

    def test_allmax_allsum(self):
        result = run(3, lambda comm: (comm.allsum(1), comm.allmax(comm.rank)))
        assert result.returns == [(3, 2)] * 3


class TestAllgatherBcast:
    def test_allgather_ordered_by_rank(self):
        result = run(4, lambda comm: comm.allgather(comm.rank * 10))
        assert result.returns == [[0, 10, 20, 30]] * 4

    def test_bcast_from_root0(self):
        def fn(comm):
            value = "hello" if comm.rank == 0 else None
            return comm.bcast(value)

        assert run(3, fn).returns == ["hello"] * 3

    def test_bcast_from_other_root(self):
        def fn(comm):
            value = comm.rank * 100
            return comm.bcast(value, root=2)

        assert run(4, fn).returns == [200] * 4

    def test_bcast_root_out_of_range(self):
        def fn(comm):
            return comm.bcast(1, root=5)

        with pytest.raises(RankFailedError):
            run(2, fn)

    def test_serial_allgather(self):
        assert run(1, lambda comm: comm.allgather("x")).returns == [["x"]]


class TestAlltoallv:
    def test_transpose_semantics(self):
        def fn(comm):
            sends = [f"{comm.rank}->{d}".encode() for d in range(comm.size)]
            received = comm.alltoallv(sends)
            return received

        result = run(3, fn)
        for dst in range(3):
            assert result.returns[dst] == [
                f"{src}->{dst}".encode() for src in range(3)]

    def test_empty_parts_allowed(self):
        def fn(comm):
            sends = [b"" for _ in range(comm.size)]
            return comm.alltoallv(sends)

        result = run(4, fn)
        assert result.returns == [[b""] * 4] * 4

    def test_uneven_sizes(self):
        def fn(comm):
            sends = [bytes([comm.rank]) * (comm.rank + dst)
                     for dst in range(comm.size)]
            return comm.alltoallv(sends)

        result = run(2, fn)
        assert result.returns[0] == [b"", b"\x01"]
        assert result.returns[1] == [b"\x00", b"\x01\x01"]

    def test_wrong_part_count_rejected(self):
        def fn(comm):
            return comm.alltoallv([b"x"])  # needs size parts

        with pytest.raises(RankFailedError):
            run(3, fn)

    def test_serial_roundtrip(self):
        result = run(1, lambda comm: comm.alltoallv([b"abc"]))
        assert result.returns == [[b"abc"]]

    def test_clock_charged_for_payload(self):
        def fn(comm):
            comm.alltoallv([b"x" * 1000] * comm.size)
            return comm.clock.time

        small = run(2, lambda comm: (comm.alltoallv([b""] * comm.size),
                                     comm.clock.time)[1])
        big = run(2, fn)
        assert big.returns[0] > small.returns[0]


class TestFailureModes:
    def test_rank_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.barrier()

        with pytest.raises(RankFailedError) as exc_info:
            run(3, fn)
        assert exc_info.value.rank == 1
        assert isinstance(exc_info.value.original, ValueError)

    def test_mismatched_collectives_detected(self):
        def fn(comm):
            if comm.rank == 0:
                comm.barrier()
            else:
                comm.allreduce(1)

        with pytest.raises(RankFailedError) as exc_info:
            run(2, fn)
        assert isinstance(exc_info.value.original, CollectiveMismatchError)

    def test_early_return_while_others_wait_aborts(self):
        def fn(comm):
            if comm.rank == 0:
                return "done-early"
            comm.barrier()

        # Must not deadlock; the waiting ranks unwind.
        with pytest.raises(RankFailedError):
            World(2, join_timeout=10.0).run(fn)

    def test_sequential_collectives_reuse_engine(self):
        def fn(comm):
            total = 0
            for i in range(10):
                total = comm.allreduce(total + 1)
            return total

        # 2 ranks, each adds 1 per round: totals follow t' = 2t + 2.
        result = run(2, fn)
        assert result.returns[0] == result.returns[1] > 0


class TestClockSync:
    def test_collective_synchronises_to_slowest(self):
        def fn(comm):
            comm.advance(float(comm.rank))  # rank r is r seconds behind
            comm.barrier()
            return comm.clock.time

        result = run(4, fn)
        assert len(set(result.returns)) == 1
        assert result.returns[0] >= 3.0

    def test_elapsed_is_max_clock(self):
        def fn(comm):
            comm.advance(2.0 if comm.rank == 0 else 0.5)

        result = run(2, fn)
        assert result.elapsed == pytest.approx(2.0)
