#!/usr/bin/env python3
"""Octree clustering of 3-D points (the paper's OC benchmark).

Generates the paper's point distribution (Normal(0.5, 0.5) clipped to
the unit cube), runs the iterative MapReduce clustering through Mimir
with the full optimization stack, and prints the dense octants found
at the deepest dense refinement level.

Run:  python examples/octree_clustering.py
"""

from repro.apps.octree import octree_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import normal_points, points_to_bytes
from repro.mpi import COMET

NPOINTS = 50_000
DENSITY = 0.02  # an octant is dense if it holds >= 2 % of all points


def describe_octant(level, code):
    """Decode a Morton code into the octant's spatial bounding box."""
    x = y = z = 0
    for bit in range(level):
        x |= ((code >> (3 * bit)) & 1) << bit
        y |= ((code >> (3 * bit + 1)) & 1) << bit
        z |= ((code >> (3 * bit + 2)) & 1) << bit
    side = 1.0 / (1 << level)
    return (x * side, y * side, z * side), side


def main():
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("input/points.bin",
                      points_to_bytes(normal_points(NPOINTS, seed=3)))

    config = MimirConfig(page_size="16K", comm_buffer_size="16K")
    result = cluster.run(
        lambda env: octree_mimir(env, "input/points.bin", config,
                                 density=DENSITY, max_level=6,
                                 hint=True, partial=True, compress=True))

    clusters = sorted(c for r in result.returns for c in r.clusters)
    levels = result.returns[0].levels_run
    print(f"{NPOINTS} points, density threshold {DENSITY:.0%}, "
          f"refined {levels} level(s)")
    print(f"found {len(clusters)} dense octant(s):\n")
    for level, code, count in clusters:
        corner, side = describe_octant(level, code)
        print(f"  level {level}  corner=({corner[0]:.3f}, {corner[1]:.3f}, "
              f"{corner[2]:.3f})  side={side:.3f}  points={count} "
              f"({count / NPOINTS:.1%})")
    print(f"\npeak node memory : {result.node_peak_bytes} bytes")
    print(f"virtual job time : {result.elapsed:.3f} s")


if __name__ == "__main__":
    main()
