#!/usr/bin/env python3
"""Distributed k-means over a point cloud on the simulated PFS.

Iterative MapReduce with map-side combining of partial centroid sums
and control-plane convergence detection.

Run:  python examples/kmeans_clustering.py
"""

import numpy as np

from repro.apps.kmeans import kmeans_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import points_to_bytes
from repro.mpi import COMET

K = 4
POINTS_PER_BLOB = 800


def make_blobs(seed=11):
    rng = np.random.default_rng(seed)
    centers = rng.random((K, 3)) * 0.8 + 0.1
    points = np.concatenate([
        rng.normal(c, 0.035, size=(POINTS_PER_BLOB, 3)) for c in centers])
    return np.clip(points, 0, 0.999).astype("<f4"), centers


def main():
    points, true_centers = make_blobs()
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("pts.bin", points_to_bytes(points))

    config = MimirConfig(page_size="16K", comm_buffer_size="16K")
    result = cluster.run(
        lambda env: kmeans_mimir(env, "pts.bin", K, config, seed=1))
    outcome = result.returns[0]

    print(f"k-means: {len(points)} points, k={K}, "
          f"{outcome.iterations} iterations, "
          f"inertia={outcome.inertia:.3f}, "
          f"{result.elapsed:.3f} virtual s\n")
    print(f"{'found centroid':<28} {'nearest true center':<28} {'dist':>7}")
    for centroid, size in zip(outcome.centroids, outcome.sizes):
        dists = np.linalg.norm(true_centers - centroid, axis=1)
        nearest = true_centers[dists.argmin()]
        fmt = lambda p: "(" + ", ".join(f"{x:.3f}" for x in p) + ")"
        print(f"{fmt(centroid):<28} {fmt(nearest):<28} "
              f"{dists.min():>7.4f}   [{size} pts]")
        assert dists.min() < 0.05


if __name__ == "__main__":
    main()
