#!/usr/bin/env python3
"""Fault-tolerant WordCount: checkpoint/restart surviving rank crashes.

Injects a rank failure after the shuffle phase; the restarted job loads
the shuffle checkpoint from the parallel file system instead of redoing
the map and exchange, so the lost work is bounded by one phase.  (This
reproduces the checkpoint/restart design of the authors' companion
fault-tolerance work the paper cites.)

Run:  python examples/fault_tolerant_wordcount.py
"""

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.datasets import uniform_text
from repro.ft import FaultPlan, run_with_recovery
from repro.mpi import COMET

CFG = MimirConfig(page_size="8K", comm_buffer_size="8K")


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def job(env, ckpt, faults):
    mimir = Mimir(env, CFG)

    if ckpt.has("shuffle"):
        if env.comm.rank == 0:
            print("  [restart] shuffle checkpoint found - skipping map")
        kvs = ckpt.load_kvc("shuffle", CFG.layout, CFG.page_size)
    else:
        kvs = mimir.map_text_file("input/words.txt", wc_map)
        ckpt.save_kvc("shuffle", kvs)

    faults.check("after_shuffle", env.comm.rank)

    out = mimir.partial_reduce(kvs, wc_combine)
    result = {k: unpack_u64(v) for k, v in out.records()}
    out.free()
    return result


def main():
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("input/words.txt",
                      uniform_text(200_000, vocab_size=500, seed=5))

    plan = FaultPlan().fail_at("after_shuffle", 3)
    print("running WordCount with an injected crash of rank 3 ...")
    ft = run_with_recovery(cluster, job, faults=plan)

    total_words = sum(count for part in ft.result.returns
                      for count in part.values())
    print(f"\nattempts        : {ft.attempts} "
          f"({ft.restarts} restart(s), failures: {ft.failures})")
    print(f"words counted   : {total_words}")
    print(f"virtual time    : {ft.total_elapsed:.3f} s total "
          f"({ft.result.elapsed:.3f} s successful attempt)")
    for record in ft.failure_log:
        print(f"failure log     : attempt {record.attempt} rank "
              f"{record.rank} [{record.kind}] {record.message}")


if __name__ == "__main__":
    main()
