#!/usr/bin/env python3
"""Miniature of the paper's Figure 8a: Mimir vs MR-MPI memory frontier.

Sweeps the WordCount dataset size on one simulated Comet node and
prints, for each framework, the peak node memory and whether the run
stayed in memory - showing MR-MPI's fixed footprint + early spill vs
Mimir's proportional footprint + 4x reach.

Run:  python examples/memory_comparison.py
"""

from repro.bench import BenchScale, ExperimentSpec, Series, run_spec
from repro.bench.tables import render_memory_time_table
from repro.mpi import COMET


def main():
    scale = BenchScale()
    platform = scale.platform(COMET)
    print(f"Simulated Comet node, {scale.describe()}")

    series = Series("WordCount (Uniform): memory frontier")
    for label in ["256M", "512M", "1G", "2G", "4G", "8G", "16G"]:
        for name, framework, page in [
            ("Mimir", "mimir", None),
            ("MR-MPI(64M)", "mrmpi", platform.default_page_size),
            ("MR-MPI(512M)", "mrmpi", platform.max_page_size),
        ]:
            series.add(run_spec(ExperimentSpec(
                label=label, config_name=name, platform=platform,
                nprocs=platform.procs_per_node, app="wc_uniform",
                framework=framework, size=scale.size(label),
                mrmpi_page=page)))
    print(render_memory_time_table(series))
    print("\n(* = spilled to the parallel file system; OOM = exceeded"
          "\n the per-rank memory budget, as in the paper's figures)")


if __name__ == "__main__":
    main()
