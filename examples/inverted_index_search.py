#!/usr/bin/env python3
"""Inverted index over a document directory, with query lookups.

Builds the classic MapReduce artefact (word -> posting list) from a
directory of documents on the simulated PFS, then answers conjunctive
queries against the distributed index.

Run:  python examples/inverted_index_search.py
"""

from repro.apps.inverted_index import inverted_index_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.mpi import COMET

DOCS = {
    "library/moby.txt":
        b"call me ishmael some years ago never mind how long precisely",
    "library/pride.txt":
        b"it is a truth universally acknowledged that a single man",
    "library/tale.txt":
        b"it was the best of times it was the worst of times",
    "library/kafka.txt":
        b"as gregor samsa awoke one morning from uneasy dreams",
    "library/joyce.txt":
        b"stately plump buck mulligan came from the stairhead",
    "library/woolf.txt":
        b"mrs dalloway said she would buy the flowers herself",
}

QUERIES = [[b"it", b"was"], [b"the"], [b"from"], [b"whale"]]


def main():
    cluster = Cluster(COMET, nprocs=6, memory_limit=None)
    for path, text in DOCS.items():
        cluster.pfs.store(path, text)

    config = MimirConfig(page_size="8K", comm_buffer_size="8K")
    result = cluster.run(
        lambda env: inverted_index_mimir(env, "library/", config,
                                         compress=True))

    # Each rank owns a slice of the index; merge for querying.
    index = {}
    documents = result.returns[0].documents
    for part in result.returns:
        index.update(part.index)

    nwords = len(index)
    npostings = sum(len(p) for p in index.values())
    print(f"indexed {len(DOCS)} documents: {nwords} distinct words, "
          f"{npostings} postings, {result.elapsed:.4f} virtual s\n")

    for terms in QUERIES:
        postings = [set(index.get(t, [])) for t in terms]
        hits = sorted(set.intersection(*postings)) if postings else []
        names = [documents[d].rsplit("/", 1)[-1] for d in hits]
        query = b" AND ".join(terms).decode()
        print(f"  {query:<12} -> {', '.join(names) if names else '(none)'}")


if __name__ == "__main__":
    main()
