#!/usr/bin/env python3
"""TeraSort: one globally sorted output file from distributed records.

Demonstrates the sorting toolchain: sample-sort range partitioning
(`global_sort`), MPI-IO-style offset writes (`write_output_global`),
and TeraValidate-style output certification.

Run:  python examples/terasort_global.py
"""

from repro.apps.terasort import (
    RECORD_SIZE,
    generate_records,
    terasort_mimir,
    validate_output,
)
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.mpi import COMET

NRECORDS = 5_000


def main():
    data = generate_records(NRECORDS, seed=7)
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("tera/input.bin", data)

    config = MimirConfig(page_size="32K", comm_buffer_size="32K")
    result = cluster.run(
        lambda env: terasort_mimir(env, "tera/input.bin",
                                   "tera/output.bin", config))

    output = cluster.pfs.fetch("tera/output.bin")
    problems = validate_output(data, output)

    shares = [r.records_local for r in result.returns]
    print(f"sorted {NRECORDS} records of {RECORD_SIZE} bytes "
          f"across {len(shares)} ranks")
    print(f"per-rank shares : {shares}")
    print(f"virtual time    : {result.elapsed:.3f} s")
    print(f"validation      : {'PASS' if not problems else problems}")
    assert not problems

    first = output[:4].hex()
    last = output[-RECORD_SIZE : -RECORD_SIZE + 4].hex()
    print(f"key range       : {first} .. {last}")


if __name__ == "__main__":
    main()
