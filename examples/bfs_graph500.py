#!/usr/bin/env python3
"""Graph500 BFS through Mimir (the paper's map-only iterative workload).

Generates a Kronecker (R-MAT) graph with the Graph500 parameters, runs
the two-phase BFS (graph partitioning, then level-synchronous
traversal) across 8 simulated ranks, and cross-checks the result
against networkx.

Run:  python examples/bfs_graph500.py
"""

import networkx as nx

from repro.apps.bfs import bfs_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET

SCALE = 10       # 2**10 = 1024 vertices
EDGEFACTOR = 16  # average degree


def main():
    edges = kronecker_edges(SCALE, EDGEFACTOR, seed=1)
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("input/edges.bin", edges_to_bytes(edges))

    config = MimirConfig(page_size="32K", comm_buffer_size="32K")
    result = cluster.run(
        lambda env: bfs_mimir(env, "input/edges.bin", config,
                              hint=True, compress=True))

    root = result.returns[0].root
    visited = sum(r.visited_local for r in result.returns)
    levels = result.returns[0].levels

    print(f"Kronecker graph: scale {SCALE} "
          f"({1 << SCALE} vertices, {len(edges)} edges)")
    print(f"BFS from vertex {root}: visited {visited} vertices "
          f"in {levels} level(s)")
    print(f"peak node memory : {result.node_peak_bytes} bytes")
    print(f"virtual job time : {result.elapsed:.3f} s")

    # Ground truth.
    graph = nx.Graph(e for e in edges.tolist() if e[0] != e[1])
    reachable = len(nx.node_connected_component(graph, root))
    print(f"\nnetworkx reachable component: {reachable} vertices "
          f"({'MATCH' if reachable == visited else 'MISMATCH'})")
    assert reachable == visited


if __name__ == "__main__":
    main()
