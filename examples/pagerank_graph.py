#!/usr/bin/env python3
"""PageRank over a Kronecker web graph, verified against networkx.

Iterative MapReduce with control-plane allreduces (dangling mass,
convergence detection) - the shape of most scientific iterative
analytics on top of Mimir.

Run:  python examples/pagerank_graph.py
"""

import networkx as nx

from repro.apps.pagerank import pagerank_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.mpi import COMET

SCALE = 8  # 256 vertices
CFG = MimirConfig(page_size="16K", comm_buffer_size="16K")


def main():
    edges = kronecker_edges(SCALE, edgefactor=8, seed=2)
    cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    cluster.pfs.store("edges.bin", edges_to_bytes(edges))

    result = cluster.run(
        lambda env: pagerank_mimir(env, "edges.bin", CFG, hint=True,
                                   compress=True, iterations=100,
                                   tolerance=1e-10))
    scores = {}
    for part in result.returns:
        scores.update(part.ranks)
    iterations = result.returns[0].iterations

    print(f"Kronecker graph: scale {SCALE}, {len(edges)} edges, "
          f"{len(scores)} vertices")
    print(f"converged after {iterations} iterations "
          f"(virtual time {result.elapsed:.3f}s)\n")

    top = sorted(scores.items(), key=lambda kv: -kv[1])[:5]
    print("top vertices by PageRank:")
    for vertex, score in top:
        print(f"  vertex {vertex:>5}  {score:.6f}")

    graph = nx.DiGraph()
    graph.add_edges_from(edges.tolist())
    reference = nx.pagerank(graph, alpha=0.85, tol=1e-12, max_iter=200)
    worst = max(abs(scores[v] - reference[v]) for v in scores)
    print(f"\nmax |difference| vs networkx: {worst:.2e} "
          f"({'MATCH' if worst < 1e-6 else 'MISMATCH'})")
    assert worst < 1e-6


if __name__ == "__main__":
    main()
