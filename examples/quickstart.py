#!/usr/bin/env python3
"""Quickstart: WordCount with Mimir on a simulated 4-rank cluster.

Shows the minimal public-API loop: create a cluster, stage input on
the simulated parallel file system, and run a job function on every
rank.  Inside the job, ``Mimir.map_text_file`` performs the map phase
with the implicit interleaved aggregate (shuffle), and ``reduce``
performs the implicit convert plus the user reduce callback.

Run:  python examples/quickstart.py
"""

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET

TEXT = b"""
    the quick brown fox jumps over the lazy dog
    the dog and the fox became the best of friends
""" * 50


def map_words(ctx, chunk):
    """Map callback: one (word, 1) pair per word."""
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def sum_counts(ctx, key, values):
    """Reduce callback: sum the 64-bit partial counts."""
    ctx.emit(key, pack_u64(sum(unpack_u64(v) for v in values)))


def job(env):
    mimir = Mimir(env, MimirConfig(page_size="4K", comm_buffer_size="4K"))
    shuffled = mimir.map_text_file("input/quick.txt", map_words)
    counts = mimir.reduce(shuffled, sum_counts)
    return {key.decode(): unpack_u64(value)
            for key, value in counts.records()}


def main():
    cluster = Cluster(COMET, nprocs=4, memory_limit=None)
    cluster.pfs.store("input/quick.txt", TEXT)
    result = cluster.run(job)

    merged = {}
    for rank_counts in result.returns:
        merged.update(rank_counts)  # each key reduces on exactly one rank

    print("word counts:")
    for word, count in sorted(merged.items(), key=lambda kv: -kv[1]):
        print(f"  {word:>8}  {count}")
    print(f"\npeak node memory : {result.node_peak_bytes} bytes")
    print(f"virtual job time : {result.elapsed:.4f} s")


if __name__ == "__main__":
    main()
