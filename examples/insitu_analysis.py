#!/usr/bin/env python3
"""In-situ analytics: MapReduce over a live simulation, no PFS round trip.

Couples a particle simulation to a per-timestep Mimir density analysis
(the paper's third input source) and compares the virtual cost against
the conventional post-hoc workflow that persists every timestep to the
parallel file system first.

Run:  python examples/insitu_analysis.py
"""

from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.insitu import InSituAnalytics, ParticleSimulation
from repro.mpi import COMET

PARTICLES = 20_000
STEPS = 5
CFG = MimirConfig(page_size="16K", comm_buffer_size="16K")


def insitu_job(env):
    sim = ParticleSimulation(env, PARTICLES, sigma=0.05, seed=42)
    analysis = InSituAnalytics(env, sim, config=CFG, level=2,
                               density=0.014)
    summaries = [analysis.analyse_step() for _ in range(STEPS)]
    sim.finalize()
    dense_per_step = [len(s.dense_octants) for s in summaries]
    return dense_per_step, env.comm.clock.time


def posthoc_job(env):
    sim = ParticleSimulation(env, PARTICLES, sigma=0.05, seed=42)
    analysis = InSituAnalytics(env, sim, config=CFG, level=2,
                               density=0.014)
    for _ in range(STEPS):
        analysis.dump_step()
    for t in range(1, STEPS + 1):
        analysis.analyse_dump(t)
    sim.finalize()
    return env.comm.clock.time


def main():
    live_cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    live = live_cluster.run(insitu_job)
    # Dense octants are owned by the rank that reduced them: sum.
    dense_counts = [sum(part[0][step] for part in live.returns)
                    for step in range(STEPS)]
    live_time = live.elapsed

    replay_cluster = Cluster(COMET, nprocs=8, memory_limit=None)
    replay_time = replay_cluster.run(posthoc_job).elapsed

    print(f"{PARTICLES} particles, {STEPS} timesteps, density analysis "
          f"at octree level 2\n")
    print("dense octants per step:",
          " ".join(str(n) for n in dense_counts))
    print(f"\nin-situ pipeline : {live_time:9.3f} virtual s "
          f"(PFS bytes: {live_cluster.pfs.stats.bytes_written})")
    print(f"post-hoc pipeline: {replay_time:9.3f} virtual s "
          f"(PFS bytes: {replay_cluster.pfs.stats.bytes_written})")
    print(f"\nin-situ avoids the file system entirely and runs "
          f"{replay_time / live_time:.1f}x faster")


if __name__ == "__main__":
    main()
