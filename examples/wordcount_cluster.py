#!/usr/bin/env python3
"""WordCount shoot-out: Mimir (with its optimization stack) vs MR-MPI.

Runs the same Zipf-skewed corpus through five configurations on a
simulated 24-rank Comet node and prints the peak memory and virtual
execution time of each - a miniature of the paper's Figures 8 and 13.

Run:  python examples/wordcount_cluster.py
"""

from repro.apps.wordcount import wordcount_mimir, wordcount_mrmpi
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import zipf_text
from repro.memory import format_size
from repro.mpi import COMET
from repro.mrmpi import MRMPIConfig

PLATFORM = COMET.rescaled(3)  # benchmark scale: 1/8192 of paper sizes
DATASET_BYTES = PLATFORM.node_memory // 20


def run(name, fn):
    cluster = Cluster(PLATFORM)
    cluster.pfs.store("input/words.txt",
                      zipf_text(DATASET_BYTES, vocab_size=4096, seed=7))
    result = cluster.run(fn, allow_oom=True)
    mem = "OOM" if result.ran_out_of_memory else \
        format_size(result.node_peak_bytes)
    time = "-" if result.ran_out_of_memory else f"{result.elapsed:.2f}s"
    spill = "yes" if result.spilled_bytes else "no"
    print(f"  {name:<24} {mem:>10} {time:>10} {spill:>8}")
    return result


def main():
    mimir_cfg = MimirConfig(page_size=PLATFORM.default_page_size,
                            comm_buffer_size=PLATFORM.default_page_size)
    mrmpi_cfg = MRMPIConfig(page_size=PLATFORM.default_page_size)

    print(f"WordCount, {format_size(DATASET_BYTES)} Zipf corpus, "
          f"{PLATFORM.procs_per_node} ranks "
          f"({format_size(PLATFORM.node_memory)} node)\n")
    print(f"  {'configuration':<24} {'peak mem':>10} {'time':>10} "
          f"{'spilled':>8}")

    run("MR-MPI",
        lambda env: wordcount_mrmpi(env, "input/words.txt", mrmpi_cfg))
    run("Mimir",
        lambda env: wordcount_mimir(env, "input/words.txt", mimir_cfg))
    run("Mimir (hint)",
        lambda env: wordcount_mimir(env, "input/words.txt", mimir_cfg,
                                    hint=True))
    run("Mimir (hint+pr)",
        lambda env: wordcount_mimir(env, "input/words.txt", mimir_cfg,
                                    hint=True, partial=True))
    run("Mimir (hint+pr+cps)",
        lambda env: wordcount_mimir(env, "input/words.txt", mimir_cfg,
                                    hint=True, partial=True, compress=True))


if __name__ == "__main__":
    main()
