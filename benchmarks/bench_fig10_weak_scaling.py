"""Figure 10: weak scalability of WordCount, Mimir vs MR-MPI.

512 MB/node on Comet, 256 MB/node on Mira (the largest inputs the
MR-MPI 64M configurations can hold), 2 to 64 nodes.  The paper's
shape: Mimir's weak-scaling curve is essentially flat to 64 nodes;
MR-MPI(64M) falls over early (spills), and on the skewed Wikipedia
data even MR-MPI with the large page cannot keep up because a few
ranks exceed their pages and hit the I/O subsystem.

Weak scaling uses the representative-process model (see
``figutils.weak_scaling_sweep``).
"""

from figutils import (
    BCOMET,
    BMIRA,
    SCALE,
    mimir,
    mrmpi,
    print_scaling,
    weak_scaling_sweep,
)

NODES = [2, 4, 8, 16, 32, 64]


def _check_mimir_scales(series, growth_bound=2.5):
    """Mimir stays in memory at every node count, with bounded growth.

    Uniform data weak-scales nearly flat; skewed (Wikipedia) data grows
    moderately because the hottest key's owner does disproportionate
    work - visible in the paper's Figure 10b as well - so the bound is
    looser there.
    """
    records = [series.get("Mimir", str(n)) for n in NODES]
    assert all(r.in_memory for r in records)
    times = [r.elapsed for r in records]
    assert all(t > 0 for t in times)
    assert times[-1] < growth_bound * times[0]


def _reach(series, config):
    """Largest node count this config still ran in memory at."""
    best = 0
    for n in NODES:
        record = series.get(config, str(n))
        if record is not None and record.in_memory:
            best = n
    return best


def test_fig10a_wc_uniform_comet(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 10a: WC(Uniform) weak scaling, Comet, 512M/node",
            BCOMET, "wc_uniform", "512M", SCALE.size("512M"), NODES,
            (mimir(), mrmpi("64M"), mrmpi("512M"))),
        rounds=1, iterations=1)
    print_scaling(series)
    _check_mimir_scales(series)
    assert _reach(series, "Mimir") == 64


def test_fig10b_wc_wikipedia_comet(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 10b: WC(Wikipedia) weak scaling, Comet, 512M/node",
            BCOMET, "wc_wiki", "512M", SCALE.size("512M"), NODES,
            (mimir(), mrmpi("64M"), mrmpi("512M"))),
        rounds=1, iterations=1)
    print_scaling(series)
    _check_mimir_scales(series, growth_bound=6.0)
    # Skewed data: the small-page MR-MPI hits the I/O subsystem from
    # the start while Mimir stays in memory throughout.
    assert _reach(series, "Mimir") == 64
    assert _reach(series, "MR-MPI(64M)") < 64


def test_fig10c_wc_uniform_mira(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 10c: WC(Uniform) weak scaling, Mira, 256M/node",
            BMIRA, "wc_uniform", "256M", SCALE.size("256M"), NODES,
            (mimir(), mrmpi("64M"), mrmpi("128M"))),
        rounds=1, iterations=1)
    print_scaling(series)
    _check_mimir_scales(series)


def test_fig10d_wc_wikipedia_mira(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 10d: WC(Wikipedia) weak scaling, Mira, 256M/node",
            BMIRA, "wc_wiki", "256M", SCALE.size("256M"), NODES,
            (mimir(), mrmpi("64M"), mrmpi("128M"))),
        rounds=1, iterations=1)
    print_scaling(series)
    _check_mimir_scales(series, growth_bound=6.0)
    # Both MR-MPI page sizes fall over on the imbalanced dataset well
    # before Mimir does.
    assert _reach(series, "Mimir") == 64
    assert _reach(series, "MR-MPI(64M)") < 64
    assert _reach(series, "MR-MPI(128M)") < 64
