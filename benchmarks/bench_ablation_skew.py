"""Ablation: skew-tolerant folding vs plain partial reduction at scale.

The failure mode of the paper's Figures 10b/14b: under weak scaling,
the hottest key's owner accumulates a share of *all* nodes' records,
so its footprint grows linearly with the node count and eventually
OOMs, while every other rank stays flat.  Hot-key salting (the
follow-up work's idea) splits that key across ranks and removes the
growth.  This ablation weak-scales a skewed corpus with both
pipelines and reports the largest node count each survives.
"""

from figutils import BMIRA, SCALE
from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.core.skew import fold_by_key
from repro.datasets import zipf_text
from repro.io.readers import iter_text_chunks

NODES = [2, 4, 8, 16, 32]
PER_NODE = SCALE.size("2G")


def wc_fold(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def _config():
    page = BMIRA.default_page_size
    return MimirConfig(page_size=page, comm_buffer_size=page,
                       input_chunk_size=page)


def _run(nodes: int, salted: bool):
    per_proc = PER_NODE // BMIRA.procs_per_node
    text = zipf_text(per_proc * nodes, vocab_size=4096, s=1.05, seed=9)
    cluster = Cluster(BMIRA, nprocs=nodes, nodes=nodes,
                      memory_limit=BMIRA.memory_per_proc)
    cluster.pfs.store("t.txt", text)
    config = _config()

    def job(env):
        if salted:
            def feed(emit):
                for chunk in iter_text_chunks(env, "t.txt",
                                              config.input_chunk_size):
                    for word in chunk.split():
                        emit(word, pack_u64(1))

            # A lower hotness threshold salts the whole heavy head of
            # the Zipf distribution, not just its first word.
            out = fold_by_key(env, config, feed, wc_fold,
                              hot_fraction=0.015, max_hot=24)
        else:
            mimir = Mimir(env, config)
            kvs = mimir.map_text_file(
                "t.txt", lambda ctx, chunk: [
                    ctx.emit(w, pack_u64(1)) for w in chunk.split()])
            out = mimir.partial_reduce(kvs, wc_fold)
        total = sum(unpack_u64(v) for _, v in out.records())
        out.free()
        return total

    return cluster.run(job, allow_oom=True)


def test_ablation_skew_tolerant_scaling(benchmark):
    def sweep():
        return {
            (nodes, salted): _run(nodes, salted)
            for nodes in NODES for salted in (False, True)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: skew-tolerant fold, skewed WC, Mira, 2G/node ==")
    print(f"{'nodes':>6}  {'plain pr':>14}  {'salted fold':>14}")
    reach = {False: 0, True: 0}
    for nodes in NODES:
        cells = []
        for salted in (False, True):
            r = results[(nodes, salted)]
            if r.ran_out_of_memory:
                cells.append("OOM")
            else:
                cells.append(f"{r.elapsed:8.2f}s")
                reach[salted] = nodes
        print(f"{nodes:>6}  {cells[0]:>14}  {cells[1]:>14}")

    # Both produce identical totals wherever both complete.
    for nodes in NODES:
        plain = results[(nodes, False)]
        salted = results[(nodes, True)]
        if not plain.ran_out_of_memory and not salted.ran_out_of_memory:
            assert sum(plain.returns) == sum(salted.returns)

    # The salted pipeline scales at least as far, and further when the
    # plain one hits the hot-key wall.
    assert reach[True] >= reach[False]
    assert reach[True] == NODES[-1]
