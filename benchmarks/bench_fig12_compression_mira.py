"""Figure 12: KV compression on one Mira node.

Same configurations as Figure 11 on the smaller node: MR-MPI at its
largest workable page (128M for WC; 64M for OC and BFS, since 128M
pages cannot even be allocated there - the paper makes the same
substitution).  With compression, Mimir processes up to 16x larger
datasets than MR-MPI.
"""

from figutils import (
    BMIRA,
    count_sizes,
    in_memory_reach,
    mimir,
    mrmpi,
    print_memory_time,
    single_node_sweep,
    wc_sizes,
)


def _configs(page: str):
    return (
        mimir("Mimir"),
        mimir("Mimir (cps)", compress=True),
        mrmpi(page, name="MR-MPI"),
        mrmpi(page, name="MR-MPI (cps)", compress=True),
    )


def test_fig12a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 12a: KV compression, WC(Uniform), Mira", BMIRA,
            "wc_uniform",
            wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G"]),
            _configs("128M")),
        rounds=1, iterations=1)
    print_memory_time(series)
    assert in_memory_reach(series, "Mimir (cps)") > \
        in_memory_reach(series, "MR-MPI")


def test_fig12b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 12b: KV compression, WC(Wikipedia), Mira", BMIRA,
            "wc_wiki",
            wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G"]),
            _configs("128M")),
        rounds=1, iterations=1)
    print_memory_time(series)
    assert in_memory_reach(series, "Mimir (cps)") > \
        in_memory_reach(series, "MR-MPI")


def test_fig12c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 12c: KV compression, OC, Mira", BMIRA, "oc",
            count_sizes([24, 25, 26, 27, 28, 29]), _configs("64M"),
            max_level=6),
        rounds=1, iterations=1)
    print_memory_time(series)
    assert in_memory_reach(series, "Mimir (cps)") > \
        in_memory_reach(series, "MR-MPI")


def test_fig12d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 12d: KV compression, BFS, Mira", BMIRA, "bfs",
            count_sizes([18, 19, 20, 21, 22, 23]), _configs("64M")),
        rounds=1, iterations=1)
    print_memory_time(series)
    assert in_memory_reach(series, "Mimir") > \
        in_memory_reach(series, "MR-MPI")
    # Compression does not meaningfully change BFS's reach (the peak
    # is in graph partitioning); at bench scale the hub vertex can make
    # a traversal round the runner-up, so allow cps to tie or edge out
    # by one step.
    assert in_memory_reach(series, "Mimir") <= \
        in_memory_reach(series, "Mimir (cps)") <= \
        in_memory_reach(series, "Mimir") + 1
