"""Ablation: Mimir communication-buffer size.

The send/receive buffers are Mimir's only statically allocated memory.
Small buffers mean many small exchange rounds (latency-bound); large
buffers raise the static footprint without helping once rounds are
amortised.  The paper fixes 64 MB for fairness with MR-MPI; this
ablation shows the plateau that choice sits on.
"""

from figutils import BCOMET, SCALE
from repro.apps.wordcount import wordcount_mimir
from repro.bench.runner import ExperimentSpec, stage_dataset
from repro.cluster import Cluster
from repro.core import MimirConfig

BUFFERS = ["16M", "64M", "256M", "1G"]
DATASET = "4G"


def _run(buffer_label: str):
    spec = ExperimentSpec(label=DATASET, config_name=buffer_label,
                          platform=BCOMET, nprocs=BCOMET.procs_per_node,
                          app="wc_uniform", framework="mimir",
                          size=SCALE.size(DATASET))
    path, data = stage_dataset(spec)
    cluster = Cluster(BCOMET, nprocs=BCOMET.procs_per_node)
    cluster.pfs.store(path, data)
    config = MimirConfig(page_size=BCOMET.default_page_size,
                         comm_buffer_size=SCALE.size(buffer_label),
                         input_chunk_size=BCOMET.default_page_size)
    result = cluster.run(
        lambda env: wordcount_mimir(env, path, config), allow_oom=True)
    return result


def test_ablation_comm_buffer_size(benchmark):
    def sweep():
        return {label: _run(label) for label in BUFFERS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: Mimir comm-buffer size, WC(Uniform) 4G, Comet ==")
    print(f"{'buffer':>8}  {'peak':>12}  {'time':>10}")
    for label in BUFFERS:
        r = results[label]
        cell = "OOM" if r.ran_out_of_memory else \
            f"{r.node_peak_bytes:>12}  {r.elapsed:>9.2f}s"
        print(f"{label:>8}  {cell}")

    ok = {label: r for label, r in results.items()
          if not r.ran_out_of_memory}
    assert len(ok) >= 3
    # Bigger buffers -> more static memory.
    peaks = [ok[label].node_peak_bytes for label in BUFFERS if label in ok]
    assert peaks == sorted(peaks)
    # Small buffers pay a per-round penalty relative to the default.
    if "16M" in ok and "64M" in ok:
        assert ok["64M"].elapsed <= ok["16M"].elapsed * 1.5
