"""Pipeline benchmark: cached intermediate containers pay for themselves.

Two claims from the scheduler subsystem, measured in virtual time:

1. **Container reuse** - iterative PageRank with its adjacency stage
   ``cache()``-annotated reads the materialized container every
   iteration instead of re-shuffling the edge list, and must be
   strictly faster than the same plan re-materializing per iteration
   (with bit-identical scores).

2. **Concurrent admission** - WordCount and PageRank submitted
   together with declared footprints gang-schedule into one round on a
   memory-limited cluster and finish with zero OOMs.

Runs under pytest (``pytest benchmarks/bench_pipeline_reuse.py``) or
standalone (``python benchmarks/bench_pipeline_reuse.py [--smoke]``).
"""

import argparse
import sys

from repro.cluster import Cluster
from repro.datasets.graph500 import edges_to_bytes, kronecker_edges
from repro.memory.limits import format_size
from repro.mpi.platforms import PLATFORMS
from repro.sched import Scheduler, StageCache
from repro.sched.demo import make_job, stage_inputs
from repro.tools.timeline import render_job_lanes
from repro.tools.trace import Trace

NPROCS = 4
GRAPH_SCALE = 7
ITERATIONS = 5


# ------------------------------------------------------------- reuse sweep

def run_pagerank(*, reuse: bool, scale: int = GRAPH_SCALE,
                 iterations: int = ITERATIONS):
    """One PageRank run on a fresh cluster; returns the ClusterResult."""
    cluster = Cluster(PLATFORMS["comet"], NPROCS, memory_limit=None)
    cluster.pfs.store("bench/graph.bin", edges_to_bytes(
        kronecker_edges(scale, edgefactor=8, seed=0)))
    caches = [StageCache(rank) for rank in range(NPROCS)]

    def job(env):
        from repro.apps.pagerank import pagerank_plan

        return pagerank_plan(
            env, "bench/graph.bin", hint=True, iterations=iterations,
            reuse=reuse, cache=caches[env.comm.rank] if reuse else None)

    return cluster.run(job)


def reuse_sweep(*, scale: int = GRAPH_SCALE, iterations: int = ITERATIONS):
    cached = run_pagerank(reuse=True, scale=scale, iterations=iterations)
    rebuilt = run_pagerank(reuse=False, scale=scale, iterations=iterations)
    return cached, rebuilt


def check_reuse(cached, rebuilt) -> None:
    assert [r.ranks for r in cached.returns] == \
        [r.ranks for r in rebuilt.returns], \
        "cached adjacency changed the PageRank scores"
    assert [r.iterations for r in cached.returns] == \
        [r.iterations for r in rebuilt.returns]
    assert cached.elapsed < rebuilt.elapsed, \
        (f"cached run ({cached.elapsed:.3f}s) not faster than "
         f"re-materialization ({rebuilt.elapsed:.3f}s)")


def print_reuse(cached, rebuilt, iterations: int) -> None:
    print(f"\n== PageRank adjacency reuse: {NPROCS} ranks, Comet, "
          f"{iterations} iterations ==")
    print(f"{'variant':>16} {'time':>9} {'peak/rank':>10}")
    for name, res in (("cached", cached), ("re-materialized", rebuilt)):
        print(f"{name:>16} {res.elapsed:>8.3f}s "
              f"{format_size(res.max_rank_peak_bytes):>10}")
    print(f"speedup: {rebuilt.elapsed / cached.elapsed:.2f}x")


def test_pagerank_container_reuse(benchmark):
    cached, rebuilt = benchmark.pedantic(reuse_sweep, rounds=1, iterations=1)
    check_reuse(cached, rebuilt)
    print_reuse(cached, rebuilt, ITERATIONS)


# ------------------------------------------------------- concurrent jobs

def run_schedule(*, memory_limit: str = "1M", iterations: int = ITERATIONS):
    """WordCount + PageRank through one admission round; zero OOMs."""
    cluster = Cluster(PLATFORMS["comet"], NPROCS, memory_limit=memory_limit)
    paths = stage_inputs(cluster)
    trace = Trace()
    scheduler = Scheduler(cluster, trace=trace)
    scheduler.submit(make_job("wordcount", paths, priority=2,
                              footprint="256K"))
    scheduler.submit(make_job("pagerank", paths, priority=1,
                              footprint="288K", iterations=iterations))
    return scheduler.run(), trace


def check_schedule(report) -> None:
    assert report.ooms == 0, f"schedule OOMed {report.ooms} time(s)"
    wc = report.outcome("wordcount")
    pr = report.outcome("pagerank")
    assert wc.completed and pr.completed
    # Declared footprints fit the 1M budget together: one gang round.
    assert wc.round == pr.round == 1, report.render_log()
    # WordCount owns words on every rank; PageRank actually iterated.
    assert all(unique > 0 for unique in wc.returns), wc.returns
    assert all(iters >= 1 for iters in pr.returns)


def test_concurrent_wordcount_pagerank(benchmark):
    report, trace = benchmark.pedantic(run_schedule, rounds=1, iterations=1)
    check_schedule(report)
    print("\n== Concurrent WordCount + PageRank: "
          f"{NPROCS} ranks, Comet, 1M/rank ==")
    print(report.render_log())
    print(render_job_lanes(trace))


# ---------------------------------------------------------------- driver

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI")
    args = parser.parse_args(argv)
    scale = 6 if args.smoke else GRAPH_SCALE
    iterations = 3 if args.smoke else ITERATIONS
    cached, rebuilt = reuse_sweep(scale=scale, iterations=iterations)
    check_reuse(cached, rebuilt)
    print_reuse(cached, rebuilt, iterations)
    report, trace = run_schedule(iterations=iterations)
    check_schedule(report)
    print("\n== Concurrent WordCount + PageRank ==")
    print(report.render_log())
    print(render_job_lanes(trace))
    return 0


if __name__ == "__main__":
    sys.exit(main())
