"""Ablation: checkpoint/restart cost and payoff.

Measures (a) the overhead a shuffle checkpoint adds to a failure-free
WordCount, and (b) the recovery saving when a rank crashes after the
shuffle: with a checkpoint the restart skips the map+aggregate, without
one it redoes everything.
"""

from figutils import BCOMET, SCALE
from repro.bench.runner import ExperimentSpec, stage_dataset
from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.ft import FaultPlan, run_with_recovery

CFG = MimirConfig(page_size=BCOMET.default_page_size,
                  comm_buffer_size=BCOMET.default_page_size,
                  input_chunk_size=BCOMET.default_page_size)
DATASET = "2G"


def wc_map(ctx, chunk):
    for word in chunk.split():
        ctx.emit(word, pack_u64(1))


def wc_combine(key, a, b):
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def make_job(checkpoint: bool):
    def job(env, ckpt, faults):
        mimir = Mimir(env, CFG)
        if checkpoint and ckpt.has("shuffle"):
            kvs = ckpt.load_kvc("shuffle", CFG.layout, CFG.page_size)
        else:
            kvs = mimir.map_text_file("input/wc_uniform.txt", wc_map)
            if checkpoint:
                ckpt.save_kvc("shuffle", kvs)
        faults.check("after_shuffle", env.comm.rank)
        out = mimir.partial_reduce(kvs, wc_combine)
        n = len(out)
        out.free()
        return n

    return job


def run_case(checkpoint: bool, fail: bool):
    spec = ExperimentSpec(label=DATASET, config_name="x", platform=BCOMET,
                          nprocs=BCOMET.procs_per_node, app="wc_uniform",
                          framework="mimir", size=SCALE.size(DATASET))
    path, data = stage_dataset(spec)
    cluster = Cluster(BCOMET, nprocs=BCOMET.procs_per_node,
                      memory_limit=None)
    cluster.pfs.store(path, data)
    plan = FaultPlan()
    if fail:
        plan.fail_at("after_shuffle", 5)
    return run_with_recovery(cluster, make_job(checkpoint), faults=plan)


def test_ablation_checkpoint_overhead_and_recovery(benchmark):
    def sweep():
        return {
            "plain": run_case(checkpoint=False, fail=False),
            "ckpt": run_case(checkpoint=True, fail=False),
            "plain+fail": run_case(checkpoint=False, fail=True),
            "ckpt+fail": run_case(checkpoint=True, fail=True),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Ablation: checkpoint/restart, WC(Uniform) 2G, Comet ==")
    print(f"{'case':<12} {'attempts':>8} {'total time':>12} "
          f"{'final attempt':>14}")
    for case, ft in results.items():
        print(f"{case:<12} {ft.attempts:>8} {ft.total_elapsed:>11.2f}s "
              f"{ft.result.elapsed:>13.2f}s")

    plain, ckpt = results["plain"], results["ckpt"]
    plain_fail, ckpt_fail = results["plain+fail"], results["ckpt+fail"]
    assert plain.attempts == ckpt.attempts == 1
    assert plain_fail.attempts == ckpt_fail.attempts == 2

    # Checkpointing is not free: writing the shuffled KVs through the
    # contended PFS costs real time (comparable to a spill - for a
    # phase this cheap, recomputation can beat checkpointing, exactly
    # the classic checkpoint-interval trade-off).
    assert ckpt.total_elapsed > plain.total_elapsed

    # The payoff: a restarted attempt that loads the checkpoint is
    # cheaper than a from-scratch checkpointed run (reads instead of
    # map + aggregate + checkpoint write).
    assert ckpt_fail.result.elapsed < ckpt.result.elapsed
    # Without a checkpoint the restart pays the full job again.
    assert plain_fail.result.elapsed > 0.9 * plain.result.elapsed
