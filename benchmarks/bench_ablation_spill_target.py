"""Ablation: spilling to node-local SSD vs the parallel file system.

The paper's architectural premise: "most large supercomputer
installations do not provide on-node persistent storage ... storage is
decoupled into a separate globally accessible parallel file system",
which is what makes MR-MPI's spill model so expensive there.  Comet
happens to carry node-local flash; this ablation runs MR-MPI's
out-of-core WordCount spilling to Lustre vs to that SSD and shows the
penalty is an artefact of the storage architecture, not of spilling
per se.
"""

from figutils import SCALE, mrmpi, single_node_sweep, wc_sizes
from repro.bench.records import Series
from repro.bench.runner import ExperimentSpec, run_spec
from repro.bench.tables import render_time_table
from repro.mpi.platforms import COMET, COMET_LOCAL_SSD

LABELS = ["4G", "8G", "16G", "32G"]


def _series():
    series = Series("Ablation: MR-MPI spill target, WC(Uniform)")
    for platform, name in ((SCALE.platform(COMET), "Lustre (shared PFS)"),
                           (SCALE.platform(COMET_LOCAL_SSD),
                            "node-local SSD")):
        for label in LABELS:
            series.add(run_spec(ExperimentSpec(
                label=label, config_name=name, platform=platform,
                nprocs=platform.procs_per_node, app="wc_uniform",
                framework="mrmpi", size=SCALE.size(label),
                mrmpi_page=platform.max_page_size)))
    return series


def test_ablation_spill_target(benchmark):
    series = benchmark.pedantic(_series, rounds=1, iterations=1)
    print(render_time_table(series))

    # Both spill for the large datasets...
    for label in ("8G", "16G", "32G"):
        assert series.get("Lustre (shared PFS)", label).spilled
        assert series.get("node-local SSD", label).spilled
    # ...but the SSD absorbs it with a far smaller penalty: out-of-core
    # runs are several times faster than through the contended PFS.
    for label in ("8G", "16G", "32G"):
        lustre = series.get("Lustre (shared PFS)", label).elapsed
        ssd = series.get("node-local SSD", label).elapsed
        assert ssd < lustre / 2
