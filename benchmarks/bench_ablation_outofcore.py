"""Ablation: out-of-core Mimir vs MR-MPI past the memory limit.

Published Mimir fails with OOM once a dataset exceeds node memory; the
out-of-core extension spills KV containers instead.  This ablation
sweeps WordCount past the in-memory boundary and compares three
configurations: in-memory Mimir (OOMs), out-of-core Mimir, and MR-MPI
at its largest page (which has been out-of-core since far smaller
datasets).  Expected shape: Mimir(ooc) extends the processable range
with a milder time penalty than MR-MPI's spill path, because it writes
the overflow once instead of re-partitioning everything through the
PFS.
"""

from figutils import BCOMET, SCALE, mimir, mrmpi, print_memory_time, single_node_sweep, wc_sizes
from repro.bench.runner import ExperimentSpec, run_spec
from repro.bench.records import Series

LABELS = ["8G", "16G", "32G", "64G"]


def _spec(label, name, **kwargs):
    return ExperimentSpec(label=label, config_name=name, platform=BCOMET,
                          nprocs=BCOMET.procs_per_node, app="wc_uniform",
                          framework=kwargs.pop("framework", "mimir"),
                          size=SCALE.size(label), **kwargs)


def test_ablation_out_of_core_mimir(benchmark):
    def sweep():
        series = Series("Ablation: out-of-core Mimir, WC(Uniform), Comet")
        for label in LABELS:
            series.add(run_spec(_spec(label, "Mimir")))
            series.add(run_spec(_spec(label, "Mimir (ooc)",
                                      out_of_core=True)))
            series.add(run_spec(_spec(
                label, "MR-MPI(512M)", framework="mrmpi",
                mrmpi_page=BCOMET.max_page_size)))
        return series

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print_memory_time(series)

    # In-memory Mimir dies past its boundary; ooc Mimir keeps going.
    assert series.get("Mimir", "32G").oom
    for label in LABELS:
        record = series.get("Mimir (ooc)", label)
        assert not record.oom

    # Past the boundary the ooc runs do spill, under the memory budget.
    big = series.get("Mimir (ooc)", "64G")
    assert big.spilled
    limit = BCOMET.memory_per_proc * BCOMET.procs_per_node
    assert big.peak_bytes <= limit

    # And the graceful degradation beats MR-MPI's out-of-core path.
    assert big.elapsed < series.get("MR-MPI(512M)", "64G").elapsed
