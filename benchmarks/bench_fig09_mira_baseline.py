"""Figure 9: baseline Mimir vs MR-MPI on one Mira node.

Same four panels as Figure 8 on the BG/Q-like platform: 16 ranks,
16 GB of node memory, GPFS behind I/O forwarding, and MR-MPI pages of
64 MB and 128 MB (128 MB is the largest the smaller node supports).
The paper reports a minimum 40 % memory gain and 4x larger datasets
across all benchmarks; MR-MPI(128M) cannot even allocate its pages for
OC and BFS.
"""

from figutils import (
    BMIRA,
    count_sizes,
    in_memory_reach,
    mimir,
    mrmpi,
    print_memory_time,
    single_node_sweep,
    wc_sizes,
)

CONFIGS = (mimir(), mrmpi("64M"), mrmpi("128M"))


def _check_paper_shape(series, *, small_label, min_gain=0.40):
    mimir_rec = series.get("Mimir", small_label)
    mr64 = series.get("MR-MPI(64M)", small_label)
    # Paper: minimum 40 % memory gain across all Mira tests.
    assert mimir_rec.peak_bytes < (1 - min_gain) * mr64.peak_bytes
    assert in_memory_reach(series, "Mimir") > \
        in_memory_reach(series, "MR-MPI(64M)")


def test_fig09a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 9a: WC(Uniform), one Mira node", BMIRA, "wc_uniform",
            wc_sizes(["64M", "128M", "256M", "512M", "1G", "2G"]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="64M")


def test_fig09b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 9b: WC(Wikipedia), one Mira node", BMIRA, "wc_wiki",
            wc_sizes(["64M", "128M", "256M", "512M", "1G", "2G"]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="64M")


def test_fig09c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 9c: OC, one Mira node", BMIRA, "oc",
            count_sizes([22, 23, 24, 25, 26, 27]), CONFIGS, max_level=6),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="2^22")


def test_fig09d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 9d: BFS, one Mira node", BMIRA, "bfs",
            count_sizes([18, 19, 20, 21, 22]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="2^18")
