"""Serving-layer benchmark: throughput and queue latency under load.

Drives the :class:`~repro.serve.daemon.ServeDaemon` in-process (no
HTTP on the hot path - the network is not what this measures) with a
seeded multi-tenant workload: three tenants submit a randomized mix of
wordcount / pagerank / bfs jobs against the gang-admission scheduler,
and the run measures, in *virtual* time,

- **jobs per virtual second** - service throughput once the scheduler
  packs rounds under the shared memory budget;
- **queue latency p50 / p99** - submit-to-admission wait, the number a
  tenant actually feels; fair-share aging keeps the tail bounded.

A second pass kills the daemon after every round and replays the
journal into a successor, measuring **replay overhead** (journal
records replayed per completed job) and asserting outputs stay
bit-identical to the uninterrupted pass - crash recovery priced, not
just claimed.

Results append to ``BENCH_serve.json`` at the repo root as a tracked
trajectory.  Runs under pytest (``pytest benchmarks/bench_serve.py``)
or standalone (``python benchmarks/bench_serve.py [--smoke]``).
"""

import argparse
import json
import random
import sys
from pathlib import Path

from repro.cluster import Cluster
from repro.mpi import COMET
from repro.sched.demo import stage_inputs
from repro.serve.daemon import ServeDaemon
from repro.serve.tenants import TenantManager, TenantQuota

NPROCS = 4
NJOBS = 24
TENANTS = ("alice", "bob", "carol")
#: The submission mix (app, input, params) a seeded workload draws from.
MIX = [
    ("wordcount", "demo/words.txt", {}),
    ("wordcount", "demo/words.txt", {"partial": False}),
    ("pagerank", "demo/graph.bin", {"iterations": 2}),
    ("bfs", "demo/graph.bin", {}),
]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


def make_daemon():
    cluster = Cluster(COMET, nprocs=NPROCS)
    stage_inputs(cluster, seed=0)
    daemon = ServeDaemon(cluster, tenants=TenantManager(
        {t: TenantQuota(max_queued=NJOBS, max_concurrent=2)
         for t in TENANTS}))
    daemon.recover()
    return daemon


def workload(seed: int, njobs: int):
    rng = random.Random(seed)
    return [(TENANTS[i % len(TENANTS)], *rng.choice(MIX))
            for i in range(njobs)]


def drain(daemon, limit=1000):
    for _ in range(limit):
        busy = daemon.scheduler.queue_depth or any(
            j.state == "running" for j in daemon.jobs.values())
        if not busy:
            return
        daemon.tick()
    raise AssertionError("daemon did not drain")


def percentile(values, q):
    ordered = sorted(values)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx]


def run_service_load(seed: int = 0, njobs: int = NJOBS, *,
                     crash_every_round: bool = False):
    """One seeded load; returns (stats, {job_id: output bytes})."""
    daemon = make_daemon()
    for tenant, app, inp, params in workload(seed, njobs):
        daemon.submit(tenant, app, inp, params=dict(params))
    if crash_every_round:
        generations = 1
        while daemon.scheduler.queue_depth or any(
                j.state == "running" for j in daemon.jobs.values()):
            daemon.tick()
            daemon.kill()
            successor = ServeDaemon(daemon.cluster, tenants=daemon.tenants)
            successor.recover()
            daemon = successor
            generations += 1
    else:
        generations = 1
        drain(daemon)

    jobs = [j for j in daemon.jobs.values() if j.state == "done"]
    assert len(jobs) == njobs, \
        f"{njobs - len(jobs)} job(s) not done after drain"
    latencies = [j.queue_latency for j in jobs
                 if j.queue_latency is not None]
    elapsed = daemon.scheduler.clock
    totals = daemon.cluster.metrics.totals()
    stats = {
        "seed": seed,
        "njobs": njobs,
        "virtual_elapsed": elapsed,
        "jobs_per_vsecond": njobs / elapsed if elapsed else None,
        "queue_latency_p50": percentile(latencies, 0.50),
        "queue_latency_p99": percentile(latencies, 0.99),
        "rounds": daemon.scheduler.rounds_run,
        "journal_records": totals.get("serve.journal.records", 0),
        "journal_replays": totals.get("serve.journal.replays", 0),
        "generations": generations,
    }
    outputs = {j.job_id: daemon.output(j.job_id) for j in jobs}
    return stats, outputs


def run_sweep(nseeds: int, njobs: int = NJOBS, verbose: bool = False):
    rows = []
    for seed in range(nseeds):
        smooth, outputs = run_service_load(seed, njobs)
        crashed, crash_outputs = run_service_load(
            seed, njobs, crash_every_round=True)
        assert crash_outputs == outputs, \
            f"seed {seed}: crash-replay outputs diverged"
        row = dict(smooth,
                   identical=True,
                   crash_generations=crashed["generations"],
                   crash_replays=crashed["journal_replays"],
                   replay_records_per_job=(
                       crashed["journal_replays"] / njobs))
        rows.append(row)
        if verbose:
            print(f"  seed {seed}: {row['jobs_per_vsecond']:.1f} jobs/vs, "
                  f"p50 {row['queue_latency_p50']:.3f}s, "
                  f"p99 {row['queue_latency_p99']:.3f}s, "
                  f"{row['crash_generations']} crash generations ok")
    return rows


def check_rows(rows):
    assert rows, "empty sweep"
    for row in rows:
        assert row["identical"], \
            f"seed {row['seed']}: outputs not bit-identical under crashes"
        assert row["jobs_per_vsecond"] > 0
        assert row["queue_latency_p99"] >= row["queue_latency_p50"] >= 0


# ------------------------------------------------------------- trajectory

def append_trajectory(path: Path, entry: dict) -> None:
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "serve-throughput-latency", "history": []}
    entry["run"] = len(doc["history"]) + 1
    doc["history"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def make_entry(nseeds: int, njobs: int, *, smoke: bool) -> dict:
    rows = run_sweep(nseeds, njobs, verbose=True)
    check_rows(rows)
    throughput = [r["jobs_per_vsecond"] for r in rows]
    p99s = [r["queue_latency_p99"] for r in rows]
    return {
        "smoke": smoke,
        "config": {"nprocs": NPROCS, "nseeds": nseeds, "njobs": njobs,
                   "tenants": list(TENANTS)},
        "sweep": rows,
        "summary": {
            "mean_jobs_per_vsecond": sum(throughput) / len(throughput),
            "worst_queue_latency_p99": max(p99s),
            "all_identical_under_crashes": all(r["identical"]
                                               for r in rows),
        },
    }


# ------------------------------------------------------------------ pytest

def test_serve_throughput_and_crash_identity(benchmark):
    rows = benchmark.pedantic(
        run_sweep, kwargs={"nseeds": 1, "njobs": 8}, rounds=1,
        iterations=1)
    check_rows(rows)
    row = rows[0]
    print(f"\n== serve: {row['njobs']} jobs, {NPROCS} ranks ==")
    print(f"  throughput : {row['jobs_per_vsecond']:.1f} jobs/vsecond")
    print(f"  queue p50  : {row['queue_latency_p50']:.3f}s  "
          f"p99 {row['queue_latency_p99']:.3f}s")
    print(f"  crash pass : {row['crash_generations']} generations, "
          f"outputs bit-identical")


# ------------------------------------------------------------------ driver

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--no-write", action="store_true",
                        help="skip updating BENCH_serve.json")
    args = parser.parse_args(argv)
    nseeds = args.seeds if args.seeds is not None else \
        (1 if args.smoke else 3)
    njobs = 8 if args.smoke else NJOBS

    print(f"serve benchmark: {nseeds} seed(s) x {njobs} jobs x "
          f"{len(TENANTS)} tenants on {NPROCS} ranks")
    entry = make_entry(nseeds, njobs, smoke=args.smoke)
    summary = entry["summary"]
    print(f"mean throughput     : "
          f"{summary['mean_jobs_per_vsecond']:.1f} jobs/vsecond")
    print(f"worst queue p99     : "
          f"{summary['worst_queue_latency_p99']:.3f} vseconds")
    print("all outputs bit-identical across crash generations")
    if not args.no_write:
        append_trajectory(BENCH_PATH, entry)
        print(f"trajectory appended to {BENCH_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
