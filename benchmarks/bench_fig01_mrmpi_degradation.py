"""Figure 1: MR-MPI single-node WordCount degradation past memory.

The paper's motivating plot: on one Comet node, MR-MPI's execution
time grows by nearly three orders of magnitude as the dataset grows
from 1 GB to 64 GB, because everything past what the fixed pages hold
spills to the shared parallel file system.
"""

from figutils import BCOMET, mrmpi, print_memory_time, single_node_sweep, wc_sizes
from repro.bench.tables import render_time_table

LABELS = ["1G", "2G", "4G", "8G", "16G", "32G", "64G"]


def test_fig01_mrmpi_wordcount_degradation(benchmark):
    def sweep():
        return single_node_sweep(
            "Fig 1: WC(Uniform) with MR-MPI(512M), one Comet node",
            BCOMET, "wc_uniform", wc_sizes(LABELS), (mrmpi("512M"),))

    series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(render_time_table(series))

    records = {r.label: r for r in series.records}
    # In-memory regime scales linearly...
    assert not records["4G"].spilled
    in_mem_rate = records["4G"].elapsed / 4
    # ...then spilling blows the per-GB cost up by well over an order
    # of magnitude (the paper shows ~3 orders across its full sweep).
    assert records["64G"].spilled
    spilled_rate = records["64G"].elapsed / 64
    assert spilled_rate > 10 * in_mem_rate
    # Monotone hockey stick.
    times = [records[label].elapsed for label in LABELS]
    assert times == sorted(times)
