"""Shared sweep builders for the figure-reproduction benchmarks.

Each paper figure is a sweep of (dataset size x configuration); this
module turns a compact declaration into executed `RunRecord`s and a
printed paper-style table.  Dataset sizes are quoted in *paper units*
("4G", 2**26 points) and rescaled through :class:`BenchScale`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench import BenchScale, ExperimentSpec, Series, run_spec
from repro.bench.tables import render_memory_time_table, render_scaling_table
from repro.memory.limits import parse_size
from repro.mpi import COMET, MIRA
from repro.mpi.platforms import Platform

SCALE = BenchScale()

#: Bench-scaled platforms used by every figure module.
BCOMET = SCALE.platform(COMET)
BMIRA = SCALE.platform(MIRA)


@dataclass(frozen=True)
class Config:
    """One plotted series: a framework plus its options."""

    name: str
    framework: str            # "mimir" | "mrmpi"
    mrmpi_page: str | None = None   # paper units, e.g. "512M"
    hint: bool = False
    compress: bool = False
    partial: bool = False


def mimir(name: str = "Mimir", **opts) -> Config:
    return Config(name=name, framework="mimir", **opts)


def mrmpi(page: str, name: str | None = None, **opts) -> Config:
    return Config(name=name or f"MR-MPI({page})", framework="mrmpi",
                  mrmpi_page=page, **opts)


#: Canonical optimization-stack series of Figures 13 and 14.
OPT_STACK = (
    mimir("Mimir"),
    mimir("Mimir (hint)", hint=True),
    mimir("Mimir (hint;pr)", hint=True, partial=True),
    mimir("Mimir (hint;pr;cps)", hint=True, partial=True, compress=True),
)


def _spec(platform: Platform, app: str, label: str, size: int,
          config: Config, *, nprocs: int | None = None,
          nodes: int = 1, memory_limit="auto", seed: int = 0,
          max_level: int = 8) -> ExperimentSpec:
    page = None
    if config.mrmpi_page is not None:
        page = max(1, parse_size(config.mrmpi_page) >> SCALE.total_shift)
    partial = config.partial and app != "bfs"  # BFS does not support pr
    return ExperimentSpec(
        label=label, config_name=config.name, platform=platform,
        nprocs=nprocs if nprocs is not None else platform.procs_per_node,
        nodes=nodes, app=app, framework=config.framework, size=size,
        mrmpi_page=page, hint=config.hint, compress=config.compress,
        partial=partial, memory_limit=memory_limit, seed=seed,
        max_level=max_level)


def wc_sizes(labels: list[str]) -> list[tuple[str, int]]:
    """Paper byte-size labels -> (label, scaled bytes)."""
    return [(label, SCALE.size(label)) for label in labels]


def count_sizes(exponents: list[int]) -> list[tuple[str, int]]:
    """Paper cardinality exponents -> ("2^k", scaled count)."""
    return [(f"2^{k}", SCALE.count(1 << k)) for k in exponents]


def single_node_sweep(title: str, platform: Platform, app: str,
                      points: list[tuple[str, int]],
                      configs: tuple[Config, ...], *,
                      max_level: int = 8) -> Series:
    """Run a full (size x config) single-node sweep."""
    series = Series(title)
    for label, size in points:
        for config in configs:
            series.add(run_spec(_spec(platform, app, label, size, config,
                                      max_level=max_level)))
    return series


def weak_scaling_sweep(title: str, platform: Platform, app: str,
                       per_node_label: str, per_node_size: int,
                       node_counts: list[int],
                       configs: tuple[Config, ...], *,
                       max_level: int = 8) -> Series:
    """Weak scaling with the representative-process model.

    One simulated rank stands for one process of each fully populated
    node: it owns ``per_node_size / procs_per_node`` of data and
    ``node_memory / procs_per_node`` of memory, so per-process load
    imbalance - the failure mode of the paper's Figure 14 - appears
    exactly as it would across ``nodes x procs_per_node`` real ranks.
    """
    series = Series(title)
    per_proc = max(1, per_node_size // platform.procs_per_node)
    for nodes in node_counts:
        for config in configs:
            spec = _spec(platform, app, str(nodes), per_proc * nodes,
                         config, nprocs=nodes, nodes=nodes,
                         memory_limit=platform.memory_per_proc,
                         max_level=max_level)
            series.add(run_spec(spec))
    return series


def print_memory_time(series: Series) -> None:
    print(render_memory_time_table(series))


def print_scaling(series: Series) -> None:
    print(render_scaling_table(series))


def in_memory_reach(series: Series, config_name: str) -> int:
    """Index of the largest in-memory label for a config (-1 if none)."""
    label = series.max_in_memory_label(config_name)
    return series.labels.index(label) if label is not None else -1
