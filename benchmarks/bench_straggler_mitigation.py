"""Straggler-mitigation benchmark: speculation bounds the damage.

The elastic layer's headline claim, measured in virtual time over
seeded straggler schedules (one straggling rank per seed, slowdown
factor drawn from [4, 8]):

1. **Without speculation** the job's makespan tracks the straggler
   factor - a 7x-slow rank makes the whole gang ~7x slower.  The
   damage is unbounded.
2. **With speculation** (task-pool map, per-task detection, backups
   on healthy ranks, first-result-wins) the makespan stays within
   ``BOUND`` (1.5x) of the fault-free baseline, with output
   bit-identical to it.

A second sweep measures chaos *recovery* time: seeded mixed-fault
schedules (deaths, transient I/O, torn writes, stragglers, mid-run
membership leave/join) over the checkpointed elastic WordCount, where
the elastic driver shrinks the gang on departures and re-balances the
checkpoint instead of restarting at full size.

Results append to ``BENCH_elastic.json`` at the repo root - the
benchmark-trajectory file the roadmap calls for - so the mitigation
curve is a tracked regression, not a one-off claim.

Runs under pytest (``pytest benchmarks/bench_straggler_mitigation.py``)
or standalone (``python benchmarks/bench_straggler_mitigation.py
[--smoke]``).
"""

import argparse
import json
import sys
from pathlib import Path

from repro.ft.elastic import (
    ELASTIC_TAGS,
    ElasticPolicy,
    elastic_wordcount,
    global_counts,
    make_elastic_cluster,
    run_elastic,
    straggler_plan,
    sweep_wordcount,
)
from repro.ft.injection import ChaosPlan

NPROCS = 4
NSEEDS = 10
CHAOS_SEEDS = 6
#: Acceptance bound: speculation must keep the makespan within this
#: multiple of the fault-free baseline for every seeded schedule.
BOUND = 1.5
FACTOR_RANGE = (4.0, 8.0)

#: Finer task granularity than the policy default: 12 tasks per rank
#: detect a straggler after ~1/6 of its share and divide its work
#: evenly over 3 healthy backups.
SPEC_POLICY = ElasticPolicy(evict_stragglers=False, splits_per_rank=12)
NOSPEC_POLICY = ElasticPolicy(speculate=False, evict_stragglers=False)

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_elastic.json"


# --------------------------------------------------------- straggler sweep

def run_straggler_sweep(nseeds: int = NSEEDS, *, nprocs: int = NPROCS,
                        factor_range=FACTOR_RANGE, verbose: bool = False):
    """Spec vs. no-spec over ``nseeds`` seeded straggler schedules."""
    baseline = run_elastic(make_elastic_cluster(nprocs), sweep_wordcount,
                           job_id="straggler-baseline")
    expected = global_counts(baseline.result.returns)

    rows = []
    for seed in range(nseeds):
        plan = straggler_plan(seed, nprocs, factor_range=factor_range)
        (rank, factor), = plan.stragglers.items()
        spec = run_elastic(make_elastic_cluster(nprocs), sweep_wordcount,
                           faults=plan, policy=SPEC_POLICY, job_id="spec")
        nospec = run_elastic(make_elastic_cluster(nprocs), sweep_wordcount,
                             faults=straggler_plan(
                                 seed, nprocs, factor_range=factor_range),
                             policy=NOSPEC_POLICY, job_id="nospec")
        report = spec.speculation[0] if spec.speculation else None
        row = {
            "seed": seed,
            "straggler_rank": rank,
            "factor": factor,
            "spec_elapsed": spec.total_elapsed,
            "nospec_elapsed": nospec.total_elapsed,
            "spec_ratio": spec.total_elapsed / baseline.total_elapsed,
            "nospec_ratio": nospec.total_elapsed / baseline.total_elapsed,
            "identical": (
                global_counts(spec.result.returns) == expected
                and global_counts(nospec.result.returns) == expected),
            "flagged": list(report.flagged) if report else [],
            "backups_launched": report.launched if report else 0,
            "backups_won": report.won if report else 0,
            "attempts_discarded": report.discarded if report else 0,
        }
        rows.append(row)
        if verbose:
            print(f"  seed {seed:>3}: rank {rank} x{factor:<5g} "
                  f"spec {row['spec_ratio']:.3f}x  "
                  f"nospec {row['nospec_ratio']:.3f}x  "
                  f"won {row['backups_won']}/{row['backups_launched']} "
                  f"{'ok' if row['identical'] else 'OUTPUT DIVERGED'}")
    return baseline.total_elapsed, rows


def check_sweep(rows, *, bound: float = BOUND) -> None:
    assert rows, "empty sweep"
    for row in rows:
        assert row["identical"], \
            f"seed {row['seed']}: output diverged from fault-free baseline"
        assert row["factor"] >= FACTOR_RANGE[0], row
        assert row["spec_ratio"] <= bound, (
            f"seed {row['seed']}: speculation left makespan at "
            f"{row['spec_ratio']:.3f}x baseline (> {bound}x bound, "
            f"straggler factor {row['factor']}x)")
        assert row["nospec_ratio"] > row["spec_ratio"], (
            f"seed {row['seed']}: speculation "
            f"({row['spec_ratio']:.3f}x) did not beat no-speculation "
            f"({row['nospec_ratio']:.3f}x)")
        # Unmitigated damage tracks the injected factor (within the
        # fixed-cost fraction of the job): the contrast speculation is
        # bounding against.
        assert row["nospec_ratio"] >= 0.75 * row["factor"], row


# ----------------------------------------------------- chaos recovery sweep

def run_chaos_recovery(nseeds: int = CHAOS_SEEDS, *, nprocs: int = NPROCS,
                       verbose: bool = False):
    """Mixed-fault recovery time under the elastic membership driver."""
    baseline = run_elastic(make_elastic_cluster(nprocs), elastic_wordcount,
                           job_id="chaos-baseline")
    expected = global_counts(baseline.result.returns)

    rows = []
    for seed in range(nseeds):
        plan = ChaosPlan.random(seed, nprocs, tags=ELASTIC_TAGS,
                                membership=True)
        res = run_elastic(make_elastic_cluster(nprocs), elastic_wordcount,
                          faults=plan, job_id="chaos-elastic",
                          max_restarts=12)
        row = {
            "seed": seed,
            "elapsed": res.total_elapsed,
            "recovery_ratio": res.total_elapsed / baseline.total_elapsed,
            "attempts": res.attempts,
            "membership_changes": res.membership_changes,
            "final_nprocs": res.final_nprocs,
            "failure_kinds": res.log_counts(),
            "identical": global_counts(res.result.returns) == expected,
        }
        rows.append(row)
        if verbose:
            print(f"  seed {seed:>3}: attempts={row['attempts']} "
                  f"members={row['membership_changes']} "
                  f"final={row['final_nprocs']}p "
                  f"recovery {row['recovery_ratio']:.2f}x "
                  f"{'ok' if row['identical'] else 'OUTPUT DIVERGED'}")
    return baseline.total_elapsed, rows


def check_chaos(rows) -> None:
    assert rows, "empty chaos sweep"
    for row in rows:
        assert row["identical"], \
            f"seed {row['seed']}: chaos run diverged from baseline"
    assert any(row["membership_changes"] for row in rows), \
        "no schedule exercised a membership change"


# ------------------------------------------------------------- trajectory

def append_trajectory(path: Path, entry: dict) -> None:
    """Append one run's results to the BENCH trajectory file."""
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "elastic-straggler-mitigation",
               "bound": BOUND, "history": []}
    entry["run"] = len(doc["history"]) + 1
    doc["history"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def make_entry(nseeds: int, chaos_seeds: int, *, smoke: bool) -> dict:
    base_elapsed, rows = run_straggler_sweep(nseeds, verbose=True)
    check_sweep(rows)
    chaos_base, chaos_rows = run_chaos_recovery(chaos_seeds, verbose=True)
    check_chaos(chaos_rows)
    spec_ratios = [r["spec_ratio"] for r in rows]
    nospec_ratios = [r["nospec_ratio"] for r in rows]
    return {
        "smoke": smoke,
        "config": {
            "nprocs": NPROCS,
            "nseeds": nseeds,
            "chaos_seeds": chaos_seeds,
            "factor_range": list(FACTOR_RANGE),
            "threshold": SPEC_POLICY.straggler_threshold,
            "splits_per_rank": SPEC_POLICY.splits_per_rank,
            "backup_overhead": SPEC_POLICY.backup_overhead,
        },
        "baseline_elapsed": base_elapsed,
        "sweep": rows,
        "summary": {
            "worst_spec_ratio": max(spec_ratios),
            "mean_spec_ratio": sum(spec_ratios) / len(spec_ratios),
            "worst_nospec_ratio": max(nospec_ratios),
            "mean_nospec_ratio": sum(nospec_ratios) / len(nospec_ratios),
            "all_identical": all(r["identical"] for r in rows),
        },
        "chaos_baseline_elapsed": chaos_base,
        "chaos_recovery": chaos_rows,
    }


# ------------------------------------------------------------------ pytest

def test_straggler_mitigation_bound(benchmark):
    base, rows = benchmark.pedantic(
        run_straggler_sweep, kwargs={"nseeds": 3}, rounds=1, iterations=1)
    check_sweep(rows)
    print(f"\n== Straggler mitigation: {NPROCS} ranks, {len(rows)} seeds ==")
    for row in rows:
        print(f"  seed {row['seed']}: spec {row['spec_ratio']:.3f}x vs "
              f"nospec {row['nospec_ratio']:.3f}x (factor {row['factor']}x)")


def test_chaos_recovery_elastic(benchmark):
    base, rows = benchmark.pedantic(
        run_chaos_recovery, kwargs={"nseeds": 3}, rounds=1, iterations=1)
    check_chaos(rows)


# ------------------------------------------------------------------ driver

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--seeds", type=int, default=None,
                        help=f"straggler schedules (default {NSEEDS})")
    parser.add_argument("--no-write", action="store_true",
                        help="skip updating BENCH_elastic.json")
    args = parser.parse_args(argv)
    nseeds = args.seeds if args.seeds is not None else \
        (4 if args.smoke else NSEEDS)
    chaos_seeds = 3 if args.smoke else CHAOS_SEEDS

    print(f"straggler mitigation: {nseeds} schedules x {NPROCS} ranks "
          f"(factors {FACTOR_RANGE[0]:g}-{FACTOR_RANGE[1]:g}x, "
          f"bound {BOUND}x)")
    entry = make_entry(nseeds, chaos_seeds, smoke=args.smoke)
    summary = entry["summary"]
    print(f"worst spec ratio   : {summary['worst_spec_ratio']:.3f}x "
          f"(bound {BOUND}x)")
    print(f"worst nospec ratio : {summary['worst_nospec_ratio']:.3f}x")
    print("all outputs bit-identical to fault-free baseline")
    if not args.no_write:
        append_trajectory(BENCH_PATH, entry)
        print(f"trajectory appended to {BENCH_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
