"""Figure 11: KV compression on one Comet node.

Mimir and MR-MPI each with and without KV compression (cps), MR-MPI at
its largest page (512M).  The paper's observations, all asserted here:

- Mimir(cps) lowers peak memory and extends the in-memory range for
  WC and OC, because freed bucket/buffer pages are reclaimed;
- MR-MPI(cps) does NOT lower peak memory (fixed page complement);
- for BFS, compression does not change Mimir's peak (it only shrinks
  traversal traffic, while the peak is in graph partitioning).
"""

from figutils import (
    BCOMET,
    count_sizes,
    in_memory_reach,
    mimir,
    mrmpi,
    print_memory_time,
    single_node_sweep,
    wc_sizes,
)

CONFIGS = (
    mimir("Mimir"),
    mimir("Mimir (cps)", compress=True),
    mrmpi("512M", name="MR-MPI"),
    mrmpi("512M", name="MR-MPI (cps)", compress=True),
)


def _common_checks(series, *, big_label):
    # MR-MPI's fixed pages: compression does not change peak memory.
    for label in series.labels:
        plain = series.get("MR-MPI", label)
        cps = series.get("MR-MPI (cps)", label)
        if plain.in_memory and cps.in_memory:
            assert abs(plain.peak_bytes - cps.peak_bytes) <= \
                0.05 * plain.peak_bytes
    # Mimir (cps) reaches at least as far in memory as baseline Mimir.
    assert in_memory_reach(series, "Mimir (cps)") >= \
        in_memory_reach(series, "Mimir")


def test_fig11a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 11a: KV compression, WC(Uniform), Comet", BCOMET,
            "wc_uniform",
            wc_sizes(["512M", "1G", "2G", "4G", "8G", "16G", "32G", "64G"]),
            CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _common_checks(series, big_label="64G")
    # Scale note: at bench scale the per-rank duplicate density of the
    # uniform corpus is too low for map-side combining to win (the
    # fixed vocabulary does not shrink with the dataset), so cps only
    # matches - rather than extends - the baseline reach here.  The
    # skewed datasets below show the paper's strict improvement.
    assert in_memory_reach(series, "Mimir (cps)") >= \
        in_memory_reach(series, "Mimir")


def test_fig11b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 11b: KV compression, WC(Wikipedia), Comet", BCOMET,
            "wc_wiki",
            wc_sizes(["512M", "1G", "2G", "4G", "8G", "16G", "32G", "64G"]),
            CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _common_checks(series, big_label="64G")
    assert in_memory_reach(series, "Mimir (cps)") > \
        in_memory_reach(series, "Mimir")


def test_fig11c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 11c: KV compression, OC, Comet", BCOMET, "oc",
            count_sizes([25, 26, 27, 28, 29, 30, 31, 32]), CONFIGS,
            max_level=6),
        rounds=1, iterations=1)
    print_memory_time(series)
    _common_checks(series, big_label="2^32")
    assert in_memory_reach(series, "Mimir (cps)") > \
        in_memory_reach(series, "Mimir")


def test_fig11d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 11d: KV compression, BFS, Comet", BCOMET, "bfs",
            count_sizes([20, 21, 22, 23, 24, 25, 26]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _common_checks(series, big_label="2^26")
    # BFS peak is in the partition phase: compression changes nothing.
    for label in series.labels:
        plain = series.get("Mimir", label)
        cps = series.get("Mimir (cps)", label)
        if plain.in_memory and cps.in_memory:
            assert abs(plain.peak_bytes - cps.peak_bytes) <= \
                0.25 * plain.peak_bytes
