"""Core-engine benchmark: batch arenas vs per-record dispatch, codec on/off.

Runs the three core applications (WordCount on uniform and Zipf text,
PageRank, TeraSort) through every combination of

- **dispatch mode** - ``batch`` (whole-page kernels, bulk emits, zero
  per-record objects) vs ``per_record`` (the compatibility path);
- **codec** - off vs ``dedup+zlib`` (frozen container pages, framed
  spills and exchange parts).

on a Comet platform whose ``record_overhead`` is set to a plausible
full-scale per-record dispatch cost (0.25 us, stretched by the 1/1024
rescaling like every other rate).  Per-record paths charge one op per
record, batch paths one op per page, so the measured gap in *virtual*
time is exactly the dispatch overhead the columnar path removes -
byte-rate charges are identical in both modes.

Every sweep asserts the four configurations produce **bit-identical**
outputs (word counts, PageRank score bits, the TeraSort output file),
then records records-per-virtual-second and the hottest rank's peak
bytes.  A second sweep runs batch WordCount and TeraSort on every
storage backend (``pfs``/``kv``/``extsort``, see docs/storage.md) and
asserts backend choice never changes an answer.  Results append to
``BENCH_core.json`` at the repo root as a tracked trajectory;
``--check`` gates against the last committed entry and fails if batch
WordCount throughput on the default backend regressed more than 10%.

Runs under pytest (``pytest benchmarks/bench_core_throughput.py``) or
standalone::

    python benchmarks/bench_core_throughput.py [--smoke] [--check]
        [--no-write] [--trace-out TRACE.json]
"""

import argparse
import hashlib
import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.apps.pagerank import pagerank_mimir
from repro.apps.terasort import generate_records, terasort_mimir
from repro.apps.wordcount import wordcount_mimir
from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets import edges_to_bytes, kronecker_edges
from repro.datasets.words import uniform_text, zipf_text
from repro.mpi.platforms import COMET, SCALE
from repro.storage import BACKENDS

NPROCS = 4
#: Small pages so the codec's freeze-on-fill has several pages to
#: compress even at benchmark scale, and a small comm buffer so the
#: container pages (what the codec shrinks) dominate the rank peak.
PAGE_SIZE = 8 * 1024
COMM_BUFFER = 16 * 1024
#: 1 us of fixed dispatch cost per record-level framework op at full
#: scale (callback + partition + buffer bookkeeping); virtual time
#: stretches by SCALE under the rescaling, so the per-op cost carries
#: the same factor.
RECORD_OVERHEAD = 1e-6 * SCALE
PLATFORM = replace(COMET, record_overhead=RECORD_OVERHEAD)
CODEC = "dedup+zlib"
#: (mode, codec) cells of the sweep grid.
GRID = [("per_record", None), ("batch", None),
        ("per_record", CODEC), ("batch", CODEC)]

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_core.json"


def bench_config(codec):
    return MimirConfig(page_size=PAGE_SIZE, comm_buffer_size=COMM_BUFFER,
                       codec=codec)


def measure(cluster, result, digest):
    totals = cluster.metrics.totals()
    records = totals.get("core.map.records", 0)
    elapsed = result.elapsed
    return {
        "records": records,
        "virtual_elapsed": elapsed,
        "records_per_vsecond": records / elapsed if elapsed else None,
        "max_rank_peak_bytes": result.max_rank_peak_bytes,
        "codec_bytes_in": totals.get("core.codec.bytes_in", 0),
        "codec_bytes_out": totals.get("core.codec.bytes_out", 0),
        "digest": digest,
    }


# ------------------------------------------------------------------- apps

def run_wordcount(batch, codec, *, nbytes, skewed, storage=None):
    cluster = Cluster(PLATFORM, nprocs=NPROCS, storage=storage)
    text = (zipf_text(nbytes, seed=7) if skewed
            else uniform_text(nbytes, seed=7))
    cluster.pfs.store("bench/words.txt", text)
    config = bench_config(codec)
    result = cluster.run(lambda env: wordcount_mimir(
        env, "bench/words.txt", config, batch=(batch == "batch"),
        collect=True))
    counts = {}
    for rank_result in result.returns:
        counts.update(rank_result.counts)
    blob = b"".join(word + b"=%d\n" % count
                    for word, count in sorted(counts.items()))
    return measure(cluster, result, hashlib.sha256(blob).hexdigest())


def run_pagerank(batch, codec, *, scale, iterations):
    cluster = Cluster(PLATFORM, nprocs=NPROCS)
    edges = kronecker_edges(scale=scale, edgefactor=8, seed=11)
    cluster.pfs.store("bench/graph.bin", edges_to_bytes(edges))
    config = bench_config(codec)
    result = cluster.run(lambda env: pagerank_mimir(
        env, "bench/graph.bin", config, iterations=iterations,
        batch=(batch == "batch")))
    scores = {}
    for rank_result in result.returns:
        scores.update(rank_result.ranks)
    # float.hex is exact: any single-bit score divergence changes it.
    blob = "".join(f"{v}:{score.hex()}\n"
                   for v, score in sorted(scores.items())).encode()
    return measure(cluster, result, hashlib.sha256(blob).hexdigest())


def run_terasort(batch, codec, *, nrecords, storage=None):
    cluster = Cluster(PLATFORM, nprocs=NPROCS, storage=storage)
    cluster.pfs.store("bench/tera.in", generate_records(nrecords, seed=3))
    config = bench_config(codec)
    result = cluster.run(lambda env: terasort_mimir(
        env, "bench/tera.in", "bench/tera.out", config,
        batch=(batch == "batch")))
    output = cluster.pfs.fetch("bench/tera.out")
    return measure(cluster, result, hashlib.sha256(output).hexdigest())


def app_matrix(smoke: bool):
    text = 1 << 15 if smoke else 1 << 17
    return [
        ("wordcount-uniform", run_wordcount,
         {"nbytes": text, "skewed": False}),
        ("wordcount-zipf", run_wordcount,
         {"nbytes": text, "skewed": True}),
        ("pagerank", run_pagerank,
         {"scale": 5 if smoke else 6, "iterations": 2 if smoke else 3}),
        ("terasort", run_terasort,
         {"nrecords": 300 if smoke else 1500}),
    ]


# ------------------------------------------------------------------ sweep

def run_sweep(smoke: bool, verbose: bool = False):
    apps = {}
    for name, runner, kwargs in app_matrix(smoke):
        cells = {}
        for mode, codec in GRID:
            key = f"{mode}/{codec or 'raw'}"
            cells[key] = dict(runner(mode, codec, **kwargs),
                              mode=mode, codec=codec)
            if verbose:
                row = cells[key]
                print(f"  {name:<18} {key:<20} "
                      f"{row['records_per_vsecond']:>12.0f} rec/vs  "
                      f"peak {row['max_rank_peak_bytes']:>8d}")
        digests = {row["digest"] for row in cells.values()}
        assert len(digests) == 1, \
            f"{name}: outputs diverged across the sweep grid: {digests}"
        base = cells["per_record/raw"]
        batch = cells["batch/raw"]
        zipped = cells[f"batch/{CODEC}"]
        cells["summary"] = {
            "identical": True,
            "batch_speedup": (base["virtual_elapsed"]
                              / batch["virtual_elapsed"]),
            "codec_peak_reduction": (batch["max_rank_peak_bytes"]
                                     / zipped["max_rank_peak_bytes"]),
            "codec_compression_ratio": (
                zipped["codec_bytes_in"] / zipped["codec_bytes_out"]
                if zipped["codec_bytes_out"] else None),
        }
        apps[name] = cells
    return apps


def check_apps(apps):
    for name, cells in apps.items():
        summary = cells["summary"]
        assert summary["identical"], f"{name}: outputs not identical"
        # WordCount is pure framework dispatch, so batch mode must win
        # big; PageRank/TeraSort keep per-record control-plane work
        # (adjacency building, score folds) and only need to win.
        floor = 3.0 if name.startswith("wordcount") else 1.0
        assert summary["batch_speedup"] >= floor, \
            (f"{name}: batch dispatch only {summary['batch_speedup']:.2f}x "
             f"faster than per-record (need >= {floor}x)")
    zipf = apps["wordcount-zipf"]["summary"]
    assert zipf["codec_peak_reduction"] >= 1.2, \
        (f"codec trims zipf peak by only "
         f"{zipf['codec_peak_reduction']:.2f}x (need >= 1.2x)")


def run_backend_sweep(smoke: bool, verbose: bool = False):
    """Batch-mode WordCount and TeraSort on every storage backend.

    The regression gate stays pinned to the default (pfs) rows in
    ``apps``; this sweep adds the per-backend dimension - throughput on
    each substrate plus proof the answers never depend on the backend.
    """
    text = 1 << 15 if smoke else 1 << 17
    nrecords = 300 if smoke else 1500
    backends = {}
    for name, runner, kwargs in (
            ("wordcount-uniform", run_wordcount,
             {"nbytes": text, "skewed": False}),
            ("terasort", run_terasort, {"nrecords": nrecords})):
        rows = {}
        for spec in BACKENDS:
            rows[spec] = runner("batch", None, storage=spec, **kwargs)
            if verbose:
                row = rows[spec]
                print(f"  {name:<18} backend={spec:<8} "
                      f"{row['records_per_vsecond']:>12.0f} rec/vs")
        digests = {row["digest"] for row in rows.values()}
        assert len(digests) == 1, \
            f"{name}: outputs diverged across backends: {digests}"
        backends[name] = rows
    return backends


# ------------------------------------------------------------- trajectory

def append_trajectory(path: Path, entry: dict) -> None:
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "core-batch-throughput", "history": []}
    entry["run"] = len(doc["history"]) + 1
    doc["history"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def make_entry(smoke: bool) -> dict:
    apps = run_sweep(smoke, verbose=True)
    check_apps(apps)
    backends = run_backend_sweep(smoke, verbose=True)
    return {
        "smoke": smoke,
        "config": {"nprocs": NPROCS, "page_size": PAGE_SIZE,
                   "record_overhead": RECORD_OVERHEAD, "codec": CODEC,
                   "backends": list(BACKENDS)},
        "apps": apps,
        "backends": backends,
    }


def check_regression(path: Path, entry: dict, *,
                     tolerance: float = 0.10) -> list[str]:
    """Compare batch throughput against the last committed matching entry.

    Returns a list of human-readable failures (empty = gate passes).
    Virtual time is deterministic, so any drop is a real code-path
    regression, but the gate still allows ``tolerance`` slack for
    intentional cost-model adjustments.
    """
    if not path.exists():
        return []
    history = json.loads(path.read_text())["history"]
    previous = next((e for e in reversed(history)
                     if e["smoke"] == entry["smoke"]), None)
    if previous is None:
        return []
    failures = []
    for name, cells in entry["apps"].items():
        old = previous["apps"].get(name, {}).get("batch/raw")
        if not old or not old.get("records_per_vsecond"):
            continue
        new_tp = cells["batch/raw"]["records_per_vsecond"]
        floor = old["records_per_vsecond"] * (1.0 - tolerance)
        if new_tp < floor:
            failures.append(
                f"{name}: batch throughput {new_tp:.0f} rec/vs is below "
                f"{floor:.0f} (last run {old['records_per_vsecond']:.0f}, "
                f"tolerance {tolerance:.0%})")
    return failures


# ---------------------------------------------------------------- tracing

def write_batch_trace(path: str, *, nbytes: int) -> None:
    """One batch WordCount with spans attached, exported for Perfetto."""
    from repro.apps.wordcount import wc_map_batch, wc_reduce_batch
    from repro.core import Mimir
    from repro.obs import write_chrome_trace
    from repro.tools.trace import Trace

    cluster = Cluster(PLATFORM, nprocs=NPROCS)
    cluster.pfs.store("bench/words.txt", uniform_text(nbytes, seed=7))
    trace = Trace()
    config = bench_config(None)

    def rank_fn(env):
        mimir = Mimir(env, config, trace=trace)
        with trace.span(env, "wordcount-batch", rank=env.comm.rank):
            kvs = mimir.map_text_file("bench/words.txt", wc_map_batch)
            out = mimir.reduce(kvs, wc_reduce_batch,
                               out_layout=config.layout)
            unique = len(out)
            out.free()
        return unique

    cluster.run(rank_fn)
    write_chrome_trace(trace, path)


# ------------------------------------------------------------------ pytest

def test_backend_matrix_outputs_identical():
    backends = run_backend_sweep(True)
    for name, rows in backends.items():
        assert {row["digest"] for row in rows.values()}, name


def test_batch_speedup_codec_reduction_and_identity(benchmark):
    apps = benchmark.pedantic(run_sweep, args=(True,), rounds=1,
                              iterations=1)
    check_apps(apps)
    print(f"\n== core throughput: {NPROCS} ranks, smoke sizes ==")
    for name, cells in apps.items():
        summary = cells["summary"]
        print(f"  {name:<18} batch {summary['batch_speedup']:.1f}x, "
              f"codec peak /{summary['codec_peak_reduction']:.2f}, "
              "outputs identical")


# ------------------------------------------------------------------ driver

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small sweep for CI")
    parser.add_argument("--no-write", action="store_true",
                        help="skip updating BENCH_core.json")
    parser.add_argument("--check", action="store_true",
                        help="fail if batch throughput regressed >10% "
                             "vs the last committed matching entry")
    parser.add_argument("--trace-out", metavar="PATH",
                        help="also export a Perfetto trace of one "
                             "batch wordcount run")
    args = parser.parse_args(argv)

    print(f"core benchmark: {NPROCS} ranks, page {PAGE_SIZE}, "
          f"record overhead {RECORD_OVERHEAD * 1e6:.0f} virtual us, "
          f"codec {CODEC}")
    entry = make_entry(args.smoke)
    for name, cells in entry["apps"].items():
        summary = cells["summary"]
        print(f"{name:<18}: batch {summary['batch_speedup']:.1f}x "
              f"faster, codec peak reduction "
              f"{summary['codec_peak_reduction']:.2f}x, "
              "outputs bit-identical across the grid")

    if args.check:
        failures = check_regression(BENCH_PATH, entry)
        if failures:
            for line in failures:
                print(f"REGRESSION: {line}", file=sys.stderr)
            return 1
        print("regression gate: ok")
    if args.trace_out:
        write_batch_trace(args.trace_out,
                          nbytes=1 << 14 if args.smoke else 1 << 16)
        print(f"perfetto trace written to {args.trace_out}")
    if not args.no_write:
        append_trajectory(BENCH_PATH, entry)
        print(f"trajectory appended to {BENCH_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
