"""Per-phase time breakdown of WordCount across the optimization stack.

Not a paper figure, but the quantity behind the paper's Section III
arguments: where the time goes per phase, and how each optimization
shifts it (partial reduction removes the convert; compression shrinks
the aggregate; hints shave every byte-proportional stage).
"""

from figutils import BCOMET, SCALE
from repro.apps.wordcount import WC_HINT_LAYOUT, wc_combine, wc_map, wc_reduce
from repro.bench.runner import ExperimentSpec, stage_dataset
from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig
from repro.core.metrics import PhaseProfile

DATASET = "2G"

VARIANTS = {
    "base": {},
    "hint": {"hint": True},
    "hint;pr": {"hint": True, "partial": True},
    "hint;pr;cps": {"hint": True, "partial": True, "compress": True},
}


def _run(opts):
    spec = ExperimentSpec(label=DATASET, config_name="x", platform=BCOMET,
                          nprocs=BCOMET.procs_per_node, app="wc_wiki",
                          framework="mimir", size=SCALE.size(DATASET))
    path, data = stage_dataset(spec)
    cluster = Cluster(BCOMET, nprocs=BCOMET.procs_per_node,
                      memory_limit=None)
    cluster.pfs.store(path, data)
    page = BCOMET.default_page_size
    config = MimirConfig(page_size=page, comm_buffer_size=page,
                         input_chunk_size=page)
    if opts.get("hint"):
        config = config.with_layout(WC_HINT_LAYOUT)

    def job(env):
        profile = PhaseProfile(env)
        mimir = Mimir(env, config, profile=profile)
        kvs = mimir.map_text_file(
            path, wc_map,
            combine_fn=wc_combine if opts.get("compress") else None)
        if opts.get("partial"):
            out = mimir.partial_reduce(kvs, wc_combine,
                                       out_layout=config.layout)
        else:
            out = mimir.reduce(kvs, wc_reduce)
        out.free()
        return profile.by_name()

    result = cluster.run(job)
    # Merge per-rank breakdowns: slowest rank per phase (critical path).
    merged: dict[str, float] = {}
    for part in result.returns:
        for phase, duration in part.items():
            merged[phase] = max(merged.get(phase, 0.0), duration)
    return merged, result.elapsed


def test_phase_breakdown(benchmark):
    results = benchmark.pedantic(
        lambda: {name: _run(opts) for name, opts in VARIANTS.items()},
        rounds=1, iterations=1)

    phases = ["map+aggregate", "convert+reduce", "partial_reduce"]
    print(f"\n== Phase breakdown: WC(Wikipedia) {DATASET}, Comet ==")
    print(f"{'variant':<14}" + "".join(f"{p:>18}" for p in phases) +
          f"{'total':>10}")
    for name, (breakdown, total) in results.items():
        cells = "".join(
            f"{breakdown.get(p, 0.0):>17.2f}s" for p in phases)
        print(f"{name:<14}{cells}{total:>9.2f}s")

    base = results["base"][0]
    pr = results["hint;pr"][0]
    cps = results["hint;pr;cps"][0]
    # Partial reduction eliminates the convert+reduce phase entirely...
    assert "convert+reduce" not in pr
    assert pr["partial_reduce"] < base["convert+reduce"] * 1.5
    # ...and compression shrinks the aggregate phase's work.
    assert cps["map+aggregate"] < base["map+aggregate"]
    # Hints shave the byte-proportional stages.
    hint = results["hint"][0]
    assert hint["map+aggregate"] <= base["map+aggregate"]
