"""Benchmark collection configuration."""

import sys
from pathlib import Path

# Make the sibling figutils module importable from every bench module.
sys.path.insert(0, str(Path(__file__).parent))
