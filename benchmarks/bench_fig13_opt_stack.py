"""Figure 13: the optimization stack on one Mira node.

Baseline Mimir, then +KV-hint, +partial-reduction, +KV-compression,
one at a time.  The paper's shape: peak memory drops monotonically as
optimizations are added for WC and OC (BFS supports only the hint),
and the full stack processes 4x (WC/OC) or 2x (BFS) larger datasets
than the baseline.
"""

from figutils import (
    BMIRA,
    OPT_STACK,
    count_sizes,
    in_memory_reach,
    print_memory_time,
    single_node_sweep,
    wc_sizes,
)

STACK = [config.name for config in OPT_STACK]


def _check_monotone_memory(series):
    """Peak memory must not grow from base -> hint -> hint;pr.

    The cps step is checked separately: the paper notes KV compression
    "reduces memory usage only if the compression ratio reaches a
    certain threshold", so its bucket overhead may cost memory on
    low-duplication (uniform) data.
    """
    for label in series.labels:
        peaks = []
        for name in STACK[:3]:
            record = series.get(name, label)
            if record is None or not record.in_memory:
                continue
            peaks.append((name, record.peak_bytes))
        for (_, a), (_, b) in zip(peaks, peaks[1:]):
            assert b <= a * 1.10  # small tolerance for page rounding


def test_fig13a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 13a: optimization stack, WC(Uniform), Mira", BMIRA,
            "wc_uniform", wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G"]),
            OPT_STACK),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_monotone_memory(series)
    # hint and pr each extend the reach; the best stack member runs
    # 4x larger datasets than the baseline.
    best = max(in_memory_reach(series, name) for name in STACK)
    assert best >= in_memory_reach(series, STACK[0]) + 2


def test_fig13b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 13b: optimization stack, WC(Wikipedia), Mira", BMIRA,
            "wc_wiki", wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G"]),
            OPT_STACK),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_monotone_memory(series)
    # On skewed data compression pays off: the full stack goes furthest.
    assert in_memory_reach(series, STACK[-1]) > in_memory_reach(series,
                                                                STACK[0])


def test_fig13c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 13c: optimization stack, OC, Mira", BMIRA, "oc",
            count_sizes([24, 25, 26, 27, 28, 29]), OPT_STACK, max_level=6),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_monotone_memory(series)
    assert in_memory_reach(series, STACK[-1]) > in_memory_reach(series,
                                                                STACK[0])


def test_fig13d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 13d: optimization stack, BFS, Mira", BMIRA, "bfs",
            count_sizes([18, 19, 20, 21, 22, 23]), OPT_STACK),
        rounds=1, iterations=1)
    print_memory_time(series)
    # BFS: hint helps, pr is unsupported, cps does not move the peak.
    for label in series.labels:
        base = series.get("Mimir", label)
        hint = series.get("Mimir (hint)", label)
        if base.in_memory and hint.in_memory:
            assert hint.peak_bytes <= base.peak_bytes
    assert in_memory_reach(series, "Mimir (hint)") >= \
        in_memory_reach(series, "Mimir")
