"""Streaming benchmark: window throughput and incremental speedup.

Runs the three :mod:`repro.stream` demo scenarios end to end and
measures, in *virtual* time,

- **windows per virtual second** - how fast the tumbling-window
  wordcount closes windows against its paced document trickle;
- **incremental-vs-full speedup** - PageRank under edge insertions
  run twice (stage cache on / off); the ratio of per-update cost is
  what lineage-keyed batch reuse buys;
- **cache hit rate** - fraction of per-batch stages the incremental
  pass served from the :class:`~repro.sched.cache.StageCache`;
- **repair correctness** - sessionization with genuinely late clicks
  must repair closed windows and still match its batch twin.

``--check`` gates the run: every scenario bit-identical to its
full-batch recompute, incremental PageRank strictly fewer stage
executions than the uncached pass with cache hits > 0, and a tracked
per-update speedup of at least 2x at the default size.

Results append to ``BENCH_stream.json`` at the repo root as a tracked
trajectory.  Runs standalone (``python benchmarks/bench_stream.py
[--smoke] [--check] [--trace-out FILE]``) or under pytest.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.stream.demo import demo_pagerank, demo_sessionize, demo_wordcount

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_stream.json"
#: The --check gate on incremental PageRank's per-update speedup.
MIN_UPDATE_SPEEDUP = 2.0


def run_scenarios(seed: int = 0, *, trace=None) -> dict:
    wc = demo_wordcount(seed=seed, trace=trace)
    wc_run = wc["runs"][0]
    pr = demo_pagerank(seed=seed)
    pr_hits = sum(r["cache_hits"] for r in pr["runs"])
    pr_misses = sum(r["cache_misses"] for r in pr["runs"])
    sz = demo_sessionize(seed=seed)
    return {
        "seed": seed,
        "wordcount": {
            "identical": wc["identical"],
            "windows_closed": wc_run["closed"],
            "virtual_elapsed": wc["virtual_time"],
            "windows_per_vsecond": wc_run["closed"] / wc["virtual_time"],
        },
        "pagerank": {
            "identical": pr["identical"],
            "full_identical": pr["full_identical"],
            "stages_incremental": pr["stages_incremental"],
            "stages_full": pr["stages_full"],
            "cache_hits": pr["cache_hits"],
            "cache_hit_rate": pr_hits / (pr_hits + pr_misses)
            if pr_hits + pr_misses else 0.0,
            "update_speedup": pr["update_speedup"],
        },
        "sessionize": {
            "identical": sz["identical"],
            "late_records": sz["late"],
            "windows_repaired": sz["recomputed"],
        },
    }


def check_row(row: dict) -> None:
    wc, pr, sz = row["wordcount"], row["pagerank"], row["sessionize"]
    assert wc["identical"], "streamed wordcount diverged from batch"
    assert wc["windows_per_vsecond"] > 0
    assert pr["identical"] and pr["full_identical"], \
        "streamed pagerank diverged from batch"
    assert pr["stages_incremental"] < pr["stages_full"], (
        f"incremental recompute did not save stages: "
        f"{pr['stages_incremental']} vs {pr['stages_full']}")
    assert pr["cache_hits"] > 0, "stage cache never hit"
    assert pr["update_speedup"] >= MIN_UPDATE_SPEEDUP, (
        f"per-update speedup {pr['update_speedup']:.2f}x below the "
        f"{MIN_UPDATE_SPEEDUP:.1f}x gate")
    assert sz["identical"], "sessionization diverged from batch"
    assert sz["late_records"] > 0, "late-click injection went missing"
    assert sz["windows_repaired"] > 0, "no closed window was repaired"


# ------------------------------------------------------------- trajectory

def append_trajectory(path: Path, entry: dict) -> None:
    if path.exists():
        doc = json.loads(path.read_text())
    else:
        doc = {"benchmark": "stream-incremental", "history": []}
    entry["run"] = len(doc["history"]) + 1
    doc["history"].append(entry)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def make_entry(nseeds: int, *, smoke: bool, trace=None) -> dict:
    rows = [run_scenarios(seed, trace=trace if seed == 0 else None)
            for seed in range(nseeds)]
    speedups = [r["pagerank"]["update_speedup"] for r in rows]
    return {
        "smoke": smoke,
        "config": {"nseeds": nseeds,
                   "min_update_speedup": MIN_UPDATE_SPEEDUP},
        "sweep": rows,
        "summary": {
            "mean_windows_per_vsecond": sum(
                r["wordcount"]["windows_per_vsecond"]
                for r in rows) / len(rows),
            "mean_update_speedup": sum(speedups) / len(speedups),
            "worst_update_speedup": min(speedups),
            "mean_cache_hit_rate": sum(
                r["pagerank"]["cache_hit_rate"]
                for r in rows) / len(rows),
            "all_identical": all(
                r["wordcount"]["identical"] and r["pagerank"]["identical"]
                and r["sessionize"]["identical"] for r in rows),
        },
    }


# ------------------------------------------------------------------ pytest

def test_stream_benchmark_gates():
    row = run_scenarios(0)
    check_row(row)
    pr = row["pagerank"]
    print(f"\n== stream: incremental pagerank ==")
    print(f"  stages     : {pr['stages_incremental']} incremental vs "
          f"{pr['stages_full']} full")
    print(f"  cache      : {pr['cache_hits']} hits "
          f"({pr['cache_hit_rate']:.0%})")
    print(f"  speedup    : {pr['update_speedup']:.2f}x per update")


# ------------------------------------------------------------------ driver

def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="single-seed sweep for CI")
    parser.add_argument("--seeds", type=int, default=None)
    parser.add_argument("--check", action="store_true",
                        help="fail on identity or speedup regressions")
    parser.add_argument("--no-write", action="store_true",
                        help="skip updating BENCH_stream.json")
    parser.add_argument("--trace-out", default=None, metavar="FILE",
                        help="write a Perfetto trace of the seed-0 "
                             "wordcount stream")
    args = parser.parse_args(argv)
    nseeds = args.seeds if args.seeds is not None else \
        (1 if args.smoke else 3)

    trace = None
    if args.trace_out:
        from repro.tools.trace import Trace

        trace = Trace()
    print(f"stream benchmark: {nseeds} seed(s), three scenarios")
    entry = make_entry(nseeds, smoke=args.smoke, trace=trace)
    if args.check:
        for row in entry["sweep"]:
            check_row(row)
    summary = entry["summary"]
    print(f"windows/vsecond     : "
          f"{summary['mean_windows_per_vsecond']:.3f}")
    print(f"update speedup      : {summary['mean_update_speedup']:.2f}x "
          f"mean, {summary['worst_update_speedup']:.2f}x worst")
    print(f"cache hit rate      : {summary['mean_cache_hit_rate']:.0%}")
    print(f"bit-identical       : {summary['all_identical']}")
    if args.trace_out:
        from repro.obs.chrome import validate_chrome_trace, write_chrome_trace

        data = write_chrome_trace(trace, args.trace_out)
        validate_chrome_trace(data)
        print(f"wrote Perfetto trace: {args.trace_out} "
              f"({len(data['traceEvents'])} events)")
    if not args.no_write:
        append_trajectory(BENCH_PATH, entry)
        print(f"trajectory appended to {BENCH_PATH.name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
