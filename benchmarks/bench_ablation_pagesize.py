"""Ablation: MR-MPI page size vs in-memory reach and footprint.

DESIGN.md calls out the page-size trade-off the paper's Figures 8-9
sweep at two points: larger pages extend MR-MPI's in-memory range
linearly but multiply the fixed memory footprint by the same factor,
while Mimir needs no such tuning.  This ablation sweeps four page
sizes to expose the whole frontier.
"""

from figutils import BCOMET, in_memory_reach, mimir, mrmpi, print_memory_time, single_node_sweep, wc_sizes

PAGES = ["16M", "64M", "256M", "512M"]
CONFIGS = tuple(mrmpi(page) for page in PAGES) + (mimir(),)


def test_ablation_mrmpi_page_size(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Ablation: MR-MPI page size, WC(Uniform), Comet", BCOMET,
            "wc_uniform", wc_sizes(["256M", "1G", "4G", "16G"]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)

    # Larger pages strictly increase the fixed footprint...
    peaks = [series.get(f"MR-MPI({p})", "256M").peak_bytes for p in PAGES]
    assert peaks == sorted(peaks)
    assert peaks[-1] > 8 * peaks[0]
    # ...and never decrease the in-memory reach.
    reaches = [in_memory_reach(series, f"MR-MPI({p})") for p in PAGES]
    for a, b in zip(reaches, reaches[1:]):
        assert b >= a
    # Mimir beats every page size on reach without the footprint
    # (compared at the paper's default 64M page).
    assert in_memory_reach(series, "Mimir") >= max(reaches)
    assert series.get("Mimir", "256M").peak_bytes < peaks[PAGES.index("64M")]
