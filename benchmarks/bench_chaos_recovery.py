"""Chaos benchmark: recovery-time overhead vs. injected fault rate.

The robustness analog of the figure benchmarks.  Seeded chaos
schedules of increasing intensity (transient PFS errors, torn
checkpoint writes, bit corruption, rank deaths) run over a
checkpointed WordCount; every run must converge to output
bit-identical to the fault-free baseline, and the table reports what
that resilience costs in attempts and virtual time as the fault rate
climbs.
"""

import pickle
import statistics

from repro.ft import ChaosPlan, run_with_recovery
from repro.ft.chaos import (
    chaos_wordcount,
    make_wordcount_cluster,
    verify_accounting,
)

NPROCS = 8
RATES = (0.0, 0.05, 0.15, 0.30)
SEEDS = range(1, 6)


def make_plan(seed: int, rate: float) -> ChaosPlan:
    return ChaosPlan(seed=seed,
                     io_error_rate=rate / 4,
                     torn_write_rate=rate,
                     corruption_rate=rate,
                     tag_death_rate=rate / 2,
                     max_faults=6)


def run_rate(rate: float, expected: bytes):
    outcomes = []
    for seed in SEEDS:
        plan = make_plan(seed, rate)
        ft = run_with_recovery(make_wordcount_cluster(NPROCS),
                               chaos_wordcount, faults=plan,
                               job_id="chaos-bench", max_restarts=12)
        assert pickle.dumps(ft.result.returns) == expected, \
            f"rate {rate} seed {seed} diverged from fault-free output"
        problems = verify_accounting(ft, plan)
        assert not problems, (rate, seed, problems)
        outcomes.append((ft, plan))
    return outcomes


def test_chaos_recovery_overhead_vs_fault_rate(benchmark):
    baseline = run_with_recovery(make_wordcount_cluster(NPROCS),
                                 chaos_wordcount, job_id="chaos-baseline")
    expected = pickle.dumps(baseline.result.returns)

    def sweep():
        return {rate: run_rate(rate, expected) for rate in RATES}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Chaos recovery: WordCount, 8 ranks, Comet, "
          f"{len(SEEDS)} seeds/rate ==")
    print(f"{'fault rate':>10} {'attempts':>9} {'faults':>7} "
          f"{'total time':>11} {'overhead':>9}")
    mean_total = {}
    for rate, outcomes in results.items():
        attempts = statistics.mean(ft.attempts for ft, _ in outcomes)
        faults = statistics.mean(sum(plan.counts().values())
                                 for _, plan in outcomes)
        total = statistics.mean(ft.total_elapsed for ft, _ in outcomes)
        mean_total[rate] = total
        overhead = total / baseline.total_elapsed - 1.0
        print(f"{rate:>10.2f} {attempts:>9.1f} {faults:>7.1f} "
              f"{total:>10.3f}s {overhead:>8.1%}")

    # Fault-free schedules finish first try at (near-)baseline cost;
    # exact equality is off by the nonce length embedded in every
    # checkpoint frame, which differs per job id.
    clean = results[0.0]
    assert all(ft.attempts == 1 for ft, _ in clean)
    assert abs(mean_total[0.0] / baseline.total_elapsed - 1.0) < 0.01

    # Chaos is not free: the heaviest fault rate costs measurably more
    # virtual time than the clean run (restarts + retry backoff).
    assert mean_total[RATES[-1]] > 1.05 * mean_total[0.0]
    # And the heaviest rate actually injected faults everywhere.
    assert all(plan.counts() for _, plan in results[RATES[-1]])
