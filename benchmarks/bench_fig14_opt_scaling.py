"""Figure 14: weak scalability of the optimization stack on Mira.

Per-node inputs are the largest the *baseline* can process on one node
(2 GB/node WC, 2^27 points/node OC, 2^22 vertices/node BFS), so the
baseline is at the edge of memory from the start: as nodes are added,
load imbalance pushes some representative process over its budget and
the run OOMs.  Each added optimization extends the node count the job
survives to - the paper's central scalability result.  (The paper runs
to 1,024 nodes; we sweep 2-32 simulated nodes, which is where all the
ordering crossovers already appear.)
"""

from figutils import (
    BMIRA,
    OPT_STACK,
    SCALE,
    print_scaling,
    weak_scaling_sweep,
)

NODES = [2, 4, 8, 16, 32]
STACK = [config.name for config in OPT_STACK]


def _reach(series, config):
    best = 0
    for n in NODES:
        record = series.get(config, str(n))
        if record is not None and record.in_memory:
            best = n
    return best


def _check_stack_order(series):
    """More optimizations never scale worse."""
    reaches = [_reach(series, name) for name in STACK]
    for a, b in zip(reaches, reaches[1:]):
        assert b >= a
    return reaches


def test_fig14a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 14a: opt-stack weak scaling, WC(Uniform), 2G/node, Mira",
            BMIRA, "wc_uniform", "2G", SCALE.size("2G"), NODES, OPT_STACK),
        rounds=1, iterations=1)
    print_scaling(series)
    reaches = _check_stack_order(series)
    # The full stack must scale meaningfully further than the baseline.
    assert reaches[-1] > reaches[0]


def test_fig14b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 14b: opt-stack weak scaling, WC(Wikipedia), 2G/node, Mira",
            BMIRA, "wc_wiki", "2G", SCALE.size("2G"), NODES, OPT_STACK),
        rounds=1, iterations=1)
    print_scaling(series)
    reaches = _check_stack_order(series)
    assert reaches[-1] > reaches[0]


def test_fig14c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 14c: opt-stack weak scaling, OC, 2^27 points/node, Mira",
            BMIRA, "oc", "2^27/node", SCALE.count(1 << 27), NODES,
            OPT_STACK, max_level=6),
        rounds=1, iterations=1)
    print_scaling(series)
    _check_stack_order(series)


def test_fig14d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: weak_scaling_sweep(
            "Fig 14d: opt-stack weak scaling, BFS, 2^22 vertices/node, Mira",
            BMIRA, "bfs", "2^22/node", SCALE.count(1 << 22), NODES,
            OPT_STACK),
        rounds=1, iterations=1)
    print_scaling(series)
    # BFS ignores pr; hint must not hurt the reach.
    assert _reach(series, "Mimir (hint)") >= _reach(series, "Mimir")
