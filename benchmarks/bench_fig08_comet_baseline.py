"""Figure 8: baseline Mimir vs MR-MPI on one Comet node.

Four panels (WC Uniform, WC Wikipedia, OC, BFS), each sweeping dataset
size for Mimir, MR-MPI(64M), and MR-MPI(512M).  The paper's claims:
Mimir uses at least ~25 % less memory in the in-memory regime, runs
4x (WC/OC) to 8x (BFS) larger datasets in memory, and matches MR-MPI's
in-memory execution times.
"""

import pytest

from figutils import (
    BCOMET,
    count_sizes,
    in_memory_reach,
    mimir,
    mrmpi,
    print_memory_time,
    single_node_sweep,
    wc_sizes,
)

CONFIGS = (mimir(), mrmpi("64M"), mrmpi("512M"))


def _check_paper_shape(series, *, small_label):
    mimir_peak = series.get("Mimir", small_label).peak_bytes
    mr64_peak = series.get("MR-MPI(64M)", small_label).peak_bytes
    # Paper: at least ~25 % less memory in the in-memory regime.
    assert mimir_peak < 0.75 * mr64_peak
    # Paper: Mimir supports the largest in-memory datasets of the three.
    reach_mimir = in_memory_reach(series, "Mimir")
    assert reach_mimir > in_memory_reach(series, "MR-MPI(64M)")
    assert reach_mimir >= in_memory_reach(series, "MR-MPI(512M)")
    # Paper: comparable execution times wherever both run in memory.
    for mr_name in ("MR-MPI(64M)", "MR-MPI(512M)"):
        for label in series.labels:
            mimir_rec = series.get("Mimir", label)
            mr_rec = series.get(mr_name, label)
            if mimir_rec.in_memory and mr_rec.in_memory:
                assert mimir_rec.elapsed < 2 * mr_rec.elapsed
                assert mr_rec.elapsed < 2 * mimir_rec.elapsed


def test_fig08a_wc_uniform(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 8a: WC(Uniform), one Comet node", BCOMET, "wc_uniform",
            wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G", "16G"]),
            CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="256M")
    # 4-fold larger than the best MR-MPI case (512M pages -> 4G).
    assert series.max_in_memory_label("Mimir") == "16G"
    assert series.max_in_memory_label("MR-MPI(512M)") == "4G"


def test_fig08b_wc_wikipedia(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 8b: WC(Wikipedia), one Comet node", BCOMET, "wc_wiki",
            wc_sizes(["256M", "512M", "1G", "2G", "4G", "8G", "16G"]),
            CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="256M")


def test_fig08c_octree(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 8c: OC, one Comet node", BCOMET, "oc",
            count_sizes([24, 25, 26, 27, 28, 29, 30]), CONFIGS,
            max_level=6),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="2^24")


def test_fig08d_bfs(benchmark):
    series = benchmark.pedantic(
        lambda: single_node_sweep(
            "Fig 8d: BFS, one Comet node", BCOMET, "bfs",
            count_sizes([19, 20, 21, 22, 23, 24, 25, 26]), CONFIGS),
        rounds=1, iterations=1)
    print_memory_time(series)
    _check_paper_shape(series, small_label="2^19")
