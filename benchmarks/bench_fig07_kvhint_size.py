"""Figure 7: KV bytes of WordCount (Wikipedia) with and without KV-hint.

The hint (NUL-terminated key, fixed 8-byte value) removes the 8-byte
per-record length header; the paper measures ~26 % smaller KV data on
the Wikipedia dataset.
"""

from figutils import BCOMET, SCALE
from repro.apps.wordcount import wordcount_mimir
from repro.bench.runner import ExperimentSpec, stage_dataset, _mimir_config
from repro.cluster import Cluster

LABELS = ["8G", "16G", "32G"]


def _kv_bytes(label: str, hint: bool) -> int:
    spec = ExperimentSpec(label=label, config_name="mimir", platform=BCOMET,
                          nprocs=BCOMET.procs_per_node, app="wc_wiki",
                          framework="mimir", size=SCALE.size(label))
    path, data = stage_dataset(spec)
    cluster = Cluster(BCOMET, nprocs=BCOMET.procs_per_node,
                      memory_limit=None)
    cluster.pfs.store(path, data)
    result = cluster.run(
        lambda env: wordcount_mimir(env, path, _mimir_config(spec),
                                    hint=hint).kv_bytes)
    return sum(result.returns)


def test_fig07_kvhint_kv_size(benchmark):
    def sweep():
        return {label: (_kv_bytes(label, False), _kv_bytes(label, True))
                for label in LABELS}

    sizes = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\n== Fig 7: KV size of WC (Wikipedia), with/without KV-hint ==")
    print(f"{'size':>6}  {'no hint':>12}  {'with hint':>12}  {'saving':>7}")
    for label in LABELS:
        plain, hinted = sizes[label]
        saving = 1 - hinted / plain
        print(f"{label:>6}  {plain:>12}  {hinted:>12}  {saving:>6.1%}")

    for label in LABELS:
        plain, hinted = sizes[label]
        saving = 1 - hinted / plain
        # Paper: close to 26 % saved; accept a generous band around it
        # (our synthetic Zipf corpus has a different mean word length).
        assert 0.15 <= saving <= 0.45
