#!/usr/bin/env python
"""CI smoke for the serving layer, over real HTTP.

Boots a :class:`~repro.serve.daemon.ServeDaemon` on an ephemeral port,
then from three tenants submits eight wordcount jobs through the HTTP
API and asserts:

- every job completes and its artifact is fetchable and non-trivial;
- quota enforcement works over the wire: a tenant capped at
  ``max_queued=2`` with admission stalled gets the structured 429;
- a kill + restart over the same PFS replays the journal with no
  duplicated or lost jobs.

Artifacts for upload: the raw journal (``serve_journal.bin``) and the
scheduler's Perfetto trace (``serve_trace.json``).

Run from the repo root: ``PYTHONPATH=src python scripts/serve_smoke.py``.
"""

from __future__ import annotations

import sys

from repro.cluster import Cluster
from repro.mpi import COMET
from repro.obs.chrome import validate_chrome_trace, write_chrome_trace
from repro.sched.demo import stage_inputs
from repro.serve.api import ServeAPIError, ServeClient
from repro.serve.daemon import ServeDaemon
from repro.serve.tenants import TenantManager, TenantQuota

TENANTS = ("alice", "bob", "carol")
NJOBS = 8


def main() -> int:
    cluster = Cluster(COMET, nprocs=4)
    stage_inputs(cluster)
    daemon = ServeDaemon(cluster, tenants=TenantManager(
        {"capped": TenantQuota(max_queued=2)}))
    port = daemon.start()
    url = f"http://127.0.0.1:{port}"
    print(f"serve smoke: daemon on {url}")

    # -------- 8 wordcount jobs from 3 tenants, over HTTP -------------
    submitted = []
    for i in range(NJOBS):
        tenant = TENANTS[i % len(TENANTS)]
        client = ServeClient(url, tenant=tenant)
        client.put_input("smoke.txt",
                         f"smoke run {i} the the the tenant {tenant}\n"
                         .encode())
        doc = client.submit("wordcount", "smoke.txt")
        submitted.append((client, doc["job_id"]))
    for client, job_id in submitted:
        doc = client.wait(job_id, timeout=120.0)
        assert doc["state"] == "done", (job_id, doc)
        output = client.output(job_id)
        assert b"the\t3" in output, output
    print(f"  {NJOBS} jobs from {len(TENANTS)} tenants completed "
          f"with valid artifacts")

    # -------- quota enforcement over the wire ------------------------
    daemon.scheduler.admission_filter = lambda job, batch: False
    capped = ServeClient(url, tenant="capped")
    for _ in range(2):
        capped.submit("wordcount", "demo/words.txt")
    try:
        capped.submit("wordcount", "demo/words.txt")
    except ServeAPIError as exc:
        assert exc.status == 429, exc.status
        assert exc.body["quota"] == "max_queued", exc.body
        print(f"  quota rejection enforced: {exc.body}")
    else:
        raise AssertionError("third submit should have been rejected")
    daemon.scheduler.admission_filter = daemon.tenants.admission_filter

    # -------- kill + replay ------------------------------------------
    before = {job_id: daemon.jobs[job_id].state
              for _, job_id in submitted}
    daemon.kill()
    successor = ServeDaemon(cluster, tenants=daemon.tenants)
    successor.recover()
    assert set(before) <= set(successor.jobs), "jobs lost in replay"
    for job_id, state in before.items():
        assert successor.jobs[job_id].state == state, \
            (job_id, state, successor.jobs[job_id].state)
    while successor.scheduler.queue_depth:
        successor.tick()
    print(f"  journal replayed {len(successor.jobs)} job(s); "
          f"no duplicates, no losses")

    # -------- artifacts ----------------------------------------------
    nbytes = successor.journal.dump("serve_journal.bin")
    data = write_chrome_trace(daemon.trace, "serve_trace.json")
    validate_chrome_trace(data)
    print(f"  artifacts: serve_journal.bin ({nbytes} bytes), "
          f"serve_trace.json ({len(data['traceEvents'])} events)")
    print("serve smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
