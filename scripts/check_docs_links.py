#!/usr/bin/env python
"""Check relative links and anchors in README.md and docs/*.md.

For every markdown link ``[text](target)``:

- external targets (``http://``, ``https://``, ``mailto:``) are
  skipped — CI must not depend on the network;
- a relative path must exist on disk (resolved against the linking
  file's directory);
- a ``#fragment`` must match a heading in the target file (or the
  linking file itself for bare ``#fragment`` links), using GitHub's
  anchor slug rules (lowercase, punctuation stripped, spaces to
  dashes).

Exits non-zero listing every broken link.  Run from anywhere:
``python scripts/check_docs_links.py``.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — ignoring images is fine, the rule is the same.
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$", re.MULTILINE)
_EXTERNAL = ("http://", "https://", "mailto:")


def slugify(heading: str) -> str:
    """GitHub's heading-to-anchor rule (close enough for ASCII docs)."""
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path: Path) -> set[str]:
    slugs: set[str] = set()
    counts: dict[str, int] = {}
    for match in _HEADING.finditer(path.read_text()):
        slug = slugify(match.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def doc_files() -> list[Path]:
    files = [ROOT / "README.md"]
    files += sorted((ROOT / "docs").glob("*.md"))
    return [f for f in files if f.exists()]


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    for match in _LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(_EXTERNAL):
            continue
        base, _, fragment = target.partition("#")
        if base:
            resolved = (path.parent / base).resolve()
            if not resolved.exists():
                problems.append(f"{path.relative_to(ROOT)}: broken link "
                                f"{target!r} (no such file)")
                continue
        else:
            resolved = path
        if fragment:
            if resolved.suffix != ".md" or not resolved.is_file():
                continue  # anchors into non-markdown targets: skip
            if fragment.lower() not in anchors_of(resolved):
                problems.append(
                    f"{path.relative_to(ROOT)}: broken anchor "
                    f"{target!r} (no heading "
                    f"'#{fragment}' in {resolved.name})")
    return problems


def main() -> int:
    problems: list[str] = []
    files = doc_files()
    for path in files:
        problems.extend(check_file(path))
    if problems:
        print(f"{len(problems)} broken link(s):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"checked {len(files)} file(s): all links and anchors resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
