"""Launch a simulated MPI world: one thread per rank.

:class:`World` owns the collective engine and the rank threads.  A rank
function has the signature ``fn(comm, *args) -> value``; per-rank
return values, final clocks, and the elapsed virtual time (the maximum
clock, i.e. job completion) are collected in :class:`WorldResult`.

Failure semantics match an MPI job killed by its launcher: the first
rank exception aborts the world, bystander ranks unwind with
:class:`WorldAbortedError`, and :meth:`World.run` re-raises the
original failure wrapped in :class:`RankFailedError`.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.mpi.comm import SimComm
from repro.mpi.costmodel import NetworkModel
from repro.mpi.engine import CollectiveEngine
from repro.mpi.errors import RankFailedError, WorldAbortedError

#: Conservative default network when a world is created bare (tests).
DEFAULT_NETWORK = NetworkModel(latency=1e-6, bandwidth=1e9)


@dataclass
class WorldResult:
    """Outcome of one simulated job."""

    returns: list[Any]
    clocks: list[float]

    @property
    def elapsed(self) -> float:
        """Virtual job completion time (slowest rank)."""
        return max(self.clocks) if self.clocks else 0.0


class World:
    """A fixed-size group of simulated ranks."""

    def __init__(self, size: int, network: NetworkModel | None = None, *,
                 nnodes: int | None = None, join_timeout: float = 600.0):
        if size <= 0:
            raise ValueError(f"world size must be positive, got {size}")
        self.size = size
        self.network = network or DEFAULT_NETWORK
        self.nnodes = nnodes
        self.join_timeout = join_timeout

    def run(self, fn: Callable[..., Any], *common_args: Any,
            rank_args: Sequence[Sequence[Any]] | None = None) -> WorldResult:
        """Execute ``fn(comm, *common_args, *rank_args[rank])`` on every rank."""
        if rank_args is not None and len(rank_args) != self.size:
            raise ValueError(
                f"rank_args has {len(rank_args)} entries for {self.size} ranks")

        if self.size == 1:
            comm = SimComm(0, 1)
            extra = tuple(rank_args[0]) if rank_args is not None else ()
            try:
                value = fn(comm, *common_args, *extra)
            except Exception as exc:
                # Same failure surface as the threaded path.
                raise RankFailedError(0, exc) from exc
            return WorldResult([value], [comm.clock.time])

        engine = CollectiveEngine(self.size, self.network, self.nnodes)
        returns: list[Any] = [None] * self.size
        clocks: list[float] = [0.0] * self.size
        errors: dict[int, BaseException] = {}
        lock = threading.Lock()

        def runner(rank: int) -> None:
            comm = SimComm(rank, self.size, engine)
            extra = tuple(rank_args[rank]) if rank_args is not None else ()
            try:
                returns[rank] = fn(comm, *common_args, *extra)
            except WorldAbortedError:
                pass  # bystander of another rank's failure
            except BaseException as exc:  # noqa: BLE001 - report any rank failure
                with lock:
                    errors[rank] = exc
                engine.abort()
            finally:
                clocks[rank] = comm.clock.time
                engine.rank_done(rank)

        threads = [
            threading.Thread(target=runner, args=(rank,),
                             name=f"simrank-{rank}", daemon=True)
            for rank in range(self.size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(self.join_timeout)
            if thread.is_alive():
                engine.abort()
                raise RuntimeError(
                    f"simulated world deadlocked ({thread.name} still alive "
                    f"after {self.join_timeout}s)")

        if errors:
            rank = min(errors)
            failure = RankFailedError(rank, errors[rank])
            # Expose the virtual time the failed attempt consumed, so
            # fault-tolerance harnesses can charge lost work.
            failure.clocks = list(clocks)
            raise failure from errors[rank]
        return WorldResult(returns, clocks)
