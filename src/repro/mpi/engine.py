"""The collective engine shared by all rank threads of one world.

Every collective operation funnels through :meth:`CollectiveEngine.collective`:
ranks deposit their operation name, payload, and virtual clock, meet at
a barrier, one thread computes the exchange result and the synchronised
clock, and a second barrier releases the slots for the next operation.
Mismatched collectives are detected (rather than deadlocking) and a
failing rank aborts the whole world so no bystander hangs.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Sequence

from repro.mpi.costmodel import NetworkModel
from repro.mpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    WorldAbortedError,
)

#: Nominal payload size charged for object-valued control-plane
#: collectives (allreduce/bcast/allgather of flags and counters).
_CONTROL_BYTES = 64


class Mailbox:
    """Tagged point-to-point message queues between ranks.

    ``put``/``take`` implement MPI's matched send/recv: messages of one
    ``(source, dest, tag)`` channel are delivered in send order; sends
    are buffered (non-blocking), receives block until a message
    arrives or the world aborts.
    """

    def __init__(self, abort_check):
        import queue

        self._queues: dict[tuple[int, int, int], "queue.Queue"] = {}
        self._lock = threading.Lock()
        self._abort_check = abort_check
        self._queue_cls = queue.Queue
        self._empty_exc = queue.Empty

    def _channel(self, source: int, dest: int, tag: int):
        key = (source, dest, tag)
        with self._lock:
            chan = self._queues.get(key)
            if chan is None:
                chan = self._queues[key] = self._queue_cls()
            return chan

    def put(self, source: int, dest: int, tag: int, payload: Any,
            arrival_clock: float) -> None:
        self._channel(source, dest, tag).put((payload, arrival_clock))

    def take(self, source: int, dest: int, tag: int,
             timeout: float = 60.0) -> tuple[Any, float]:
        chan = self._channel(source, dest, tag)
        import time

        deadline = time.monotonic() + timeout
        while True:
            try:
                return chan.get(timeout=0.05)
            except self._empty_exc:
                if self._abort_check():
                    raise WorldAbortedError(
                        "world aborted while waiting for a message") from None
                if time.monotonic() > deadline:
                    raise WorldAbortedError(
                        f"recv(source={source}, tag={tag}) timed out "
                        f"after {timeout}s") from None


class CollectiveEngine:
    """Sequences collective operations for ``nprocs`` rank threads."""

    def __init__(self, nprocs: int, network: NetworkModel,
                 nnodes: int | None = None):
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        if nnodes is not None and nnodes <= 0:
            raise ValueError(f"nnodes must be positive, got {nnodes}")
        self.nprocs = nprocs
        self.nnodes = nnodes or nprocs
        self.network = network
        self._ops: list[str | None] = [None] * nprocs
        self._payloads: list[Any] = [None] * nprocs
        self._clocks: list[float] = [0.0] * nprocs
        self._results: list[Any] = [None] * nprocs
        self._reduce_fn: Callable[[Any, Any], Any] | None = None
        self._root = 0
        self._new_clock = 0.0
        self._error: BaseException | None = None
        self._finished: set[int] = set()
        self._aborted = False
        self._abort_reason: BaseException | None = None
        self._lock = threading.Lock()
        self._enter = threading.Barrier(nprocs, action=self._compute)
        self._exit = threading.Barrier(nprocs)
        self.mailbox = Mailbox(lambda: self._aborted)

    # ------------------------------------------------------------------ API

    def collective(self, op: str, rank: int, payload: Any, clock: float, *,
                   reduce_fn: Callable[[Any, Any], Any] | None = None,
                   root: int = 0) -> tuple[Any, float]:
        """Run one collective; returns ``(result, synchronised_clock)``."""
        with self._lock:
            if self._aborted:
                raise WorldAbortedError("world already aborted")
            if self._finished:
                reason = DeadlockError(
                    f"rank {rank} entered {op!r} after rank(s) "
                    f"{sorted(self._finished)} already returned")
                self._do_abort(reason)
                raise reason
        self._ops[rank] = op
        self._payloads[rank] = payload
        self._clocks[rank] = clock
        if reduce_fn is not None:
            self._reduce_fn = reduce_fn
        if root:
            self._root = root
        self._wait(self._enter)
        result = self._results[rank]
        new_clock = self._new_clock
        error = self._error
        self._wait(self._exit)
        if error is not None:
            raise error
        return result, new_clock

    def rank_done(self, rank: int) -> None:
        """A rank function returned; abort if others are mid-collective."""
        with self._lock:
            self._finished.add(rank)
            waiting = self._enter.n_waiting > 0 or self._exit.n_waiting > 0
            if waiting and not self._aborted:
                # The waiting collective can never complete.
                self._do_abort(DeadlockError(
                    f"rank {rank} returned while other ranks wait in a "
                    f"collective"))

    def abort(self) -> None:
        """Break both barriers so every blocked rank unwinds (failure path)."""
        with self._lock:
            self._do_abort(None)

    def _do_abort(self, reason: BaseException | None) -> None:
        """Must hold ``self._lock``."""
        if not self._aborted:
            self._aborted = True
            self._abort_reason = reason
        self._enter.abort()
        self._exit.abort()

    # ------------------------------------------------------------ internals

    def _wait(self, barrier: threading.Barrier) -> None:
        try:
            barrier.wait()
        except threading.BrokenBarrierError:
            reason = self._abort_reason
            if reason is not None:
                # The abort is itself the root cause (deadlock), not a
                # side effect of another rank's failure.
                raise reason from None
            raise WorldAbortedError("world aborted during a collective") from None

    def _compute(self) -> None:
        """Barrier action: runs in exactly one thread per operation."""
        self._error = None
        ops = {op for op in self._ops if op is not None}
        if len(ops) != 1:
            self._error = CollectiveMismatchError(
                {r: op or "<none>" for r, op in enumerate(self._ops)})
            self._results = [None] * self.nprocs
            self._new_clock = max(self._clocks)
            return
        op = next(iter(ops))
        start = max(self._clocks)
        try:
            cost = self._dispatch(op)
        except Exception as exc:  # defensive: surface, don't break barrier
            self._error = exc
            self._results = [None] * self.nprocs
            cost = 0.0
        self._new_clock = start + cost
        self._ops = [None] * self.nprocs

    def _dispatch(self, op: str) -> float:
        p = self.nprocs
        net = self.network
        if op == "barrier":
            self._results = [None] * p
            return net.barrier_cost(p, self.nnodes)
        if op == "allreduce":
            fn = self._reduce_fn
            if fn is None:
                raise ValueError("allreduce requires a reduce function")
            acc = self._payloads[0]
            for value in self._payloads[1:]:
                acc = fn(acc, value)
            self._results = [acc] * p
            self._reduce_fn = None
            return net.allreduce_cost(p, _CONTROL_BYTES, self.nnodes)
        if op == "allgather":
            gathered = list(self._payloads)
            self._results = [gathered] * p
            return net.allgather_cost(p, _CONTROL_BYTES, self.nnodes)
        if op == "bcast":
            value = self._payloads[self._root]
            self._results = [value] * p
            self._root = 0
            return net.bcast_cost(p, _CONTROL_BYTES, self.nnodes)
        if op == "scan":
            fn = self._reduce_fn
            if fn is None:
                raise ValueError("scan requires a reduce function")
            results = []
            acc = None
            for value in self._payloads:
                acc = value if acc is None else fn(acc, value)
                results.append(acc)
            self._results = results
            self._reduce_fn = None
            return net.allreduce_cost(p, _CONTROL_BYTES, self.nnodes)
        if op == "alltoallv":
            sends: Sequence[Sequence[bytes]] = self._payloads
            for r, parts in enumerate(sends):
                if len(parts) != p:
                    raise ValueError(
                        f"rank {r} passed {len(parts)} alltoallv parts, "
                        f"expected {p}")
            self._results = [
                [bytes(sends[src][dst]) for src in range(p)]
                for dst in range(p)
            ]
            max_send = max(sum(len(part) for part in parts) for parts in sends)
            return net.alltoallv_cost(p, max_send, self.nnodes)
        raise ValueError(f"unknown collective {op!r}")
