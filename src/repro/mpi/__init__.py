"""Deterministic simulated MPI runtime.

Each rank runs as a thread against a shared :class:`CollectiveEngine`
that implements the collective operations both MapReduce frameworks
need (``alltoallv``, ``allreduce``, ``allgather``, ``bcast``,
``barrier``) with real blocking semantics: a collective completes only
once every rank has entered it, exactly like MPI.  A virtual clock is
synchronised at every collective using an alpha-beta network cost model
parameterised per platform, which is what gives the benchmarks their
shape-preserving "execution time" series.
"""

from repro.mpi.comm import SimComm
from repro.mpi.costmodel import NetworkModel, PFSModel
from repro.mpi.errors import (
    CollectiveMismatchError,
    DeadlockError,
    RankFailedError,
    WorldAbortedError,
)
from repro.mpi.platforms import COMET, MIRA, Platform
from repro.mpi.world import World, WorldResult

__all__ = [
    "COMET",
    "CollectiveMismatchError",
    "DeadlockError",
    "MIRA",
    "NetworkModel",
    "PFSModel",
    "Platform",
    "RankFailedError",
    "SimComm",
    "World",
    "WorldAbortedError",
    "WorldResult",
]
