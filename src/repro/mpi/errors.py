"""Errors raised by the simulated MPI runtime."""

from __future__ import annotations


class MPIError(RuntimeError):
    """Base class for simulated-MPI failures."""


class CollectiveMismatchError(MPIError):
    """Raised when ranks disagree on which collective they are entering.

    A real MPI job would deadlock or corrupt data; the simulator detects
    the mismatch deterministically and reports every rank's call.
    """

    def __init__(self, calls: dict[int, str]):
        self.calls = dict(calls)
        ops = ", ".join(f"rank {r}: {op}" for r, op in sorted(calls.items()))
        super().__init__(f"ranks entered different collectives ({ops})")


class DeadlockError(MPIError):
    """Raised when a collective can provably never complete.

    Happens when some rank's function has already returned while other
    ranks are still entering collectives - the simulated equivalent of
    an MPI job hanging in ``MPI_Barrier`` forever.
    """


class WorldAbortedError(MPIError):
    """Raised inside surviving ranks when another rank has failed.

    The originating exception is re-raised by :meth:`World.run`; this
    error only unwinds the bystander threads.
    """


class RankFailedError(MPIError):
    """Raised by :meth:`World.run` when a rank function raised.

    Wraps the original exception (``__cause__``) and records the rank.
    """

    def __init__(self, rank: int, original: BaseException):
        self.rank = rank
        self.original = original
        super().__init__(f"rank {rank} failed: {original!r}")
