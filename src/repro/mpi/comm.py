"""Per-rank communicator handle over the shared collective engine.

The API mirrors the subset of MPI both MapReduce frameworks need.
Payload conventions follow mpi4py's split: ``alltoallv`` moves raw
byte buffers (the data plane, costed exactly), while ``allreduce`` /
``allgather`` / ``bcast`` move small Python objects (the control
plane, costed at a nominal message size).

A communicator of size 1 works without any engine or threads, which
keeps serial unit tests trivial.
"""

from __future__ import annotations

import operator
from typing import Any, Callable, Sequence

from repro.mpi.engine import CollectiveEngine


class Clock:
    """Virtual per-rank clock, in seconds."""

    __slots__ = ("time",)

    def __init__(self, time: float = 0.0):
        self.time = time

    def advance(self, seconds: float) -> None:
        if seconds < 0:
            raise ValueError(f"cannot advance clock by {seconds}")
        self.time += seconds


class SimComm:
    """Communicator bound to one rank of a simulated world."""

    def __init__(self, rank: int, size: int,
                 engine: CollectiveEngine | None = None):
        if not 0 <= rank < size:
            raise ValueError(f"rank {rank} out of range for size {size}")
        if size > 1 and engine is None:
            raise ValueError("multi-rank communicators need an engine")
        self.rank = rank
        self.size = size
        self._engine = engine
        self.clock = Clock()
        #: Straggler multiplier: local (compute/I/O) time charged via
        #: :meth:`advance` is scaled by this factor.  Collectives are
        #: unaffected - a straggler slows its own work, and the job
        #: feels it at the next synchronisation, as on real hardware.
        self.slowdown = 1.0
        #: Optional per-rank metrics shard (see :mod:`repro.obs.
        #: registry`), installed by the cluster harness at launch.
        self.metrics = None
        self._loopback: list[tuple[int, Any]] = []  # self-sends

    # ------------------------------------------------------------ plumbing

    def _run(self, op: str, payload: Any, *,
             reduce_fn: Callable[[Any, Any], Any] | None = None,
             root: int = 0) -> Any:
        assert self._engine is not None
        if self.metrics is not None:
            self.metrics.inc("mpi.collectives")
        result, new_clock = self._engine.collective(
            op, self.rank, payload, self.clock.time,
            reduce_fn=reduce_fn, root=root)
        self.clock.time = new_clock
        return result

    # ---------------------------------------------------------- collectives

    def barrier(self) -> None:
        """Block until every rank reaches the barrier."""
        if self.size == 1:
            return
        self._run("barrier", None)

    def allreduce(self, value: Any,
                  op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Reduce ``value`` across ranks with ``op``; all ranks get the result."""
        if self.size == 1:
            return value
        return self._run("allreduce", value, reduce_fn=op)

    def allsum(self, value: Any) -> Any:
        return self.allreduce(value, operator.add)

    def allmax(self, value: Any) -> Any:
        return self.allreduce(value, max)

    def all_true(self, flag: bool) -> bool:
        """Logical AND across ranks (termination detection)."""
        return bool(self.allreduce(bool(flag), lambda a, b: a and b))

    def any_true(self, flag: bool) -> bool:
        """Logical OR across ranks."""
        return bool(self.allreduce(bool(flag), lambda a, b: a or b))

    def scan(self, value: Any,
             op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Inclusive prefix reduction: rank r gets op over ranks 0..r."""
        if self.size == 1:
            return value
        return self._run("scan", value, reduce_fn=op)

    def exscan(self, value: Any, zero: Any = 0,
               op: Callable[[Any, Any], Any] = operator.add) -> Any:
        """Exclusive prefix reduction: rank r gets op over ranks 0..r-1.

        Rank 0 receives ``zero``.  Implemented on top of the inclusive
        scan by shifting through an allgather-free trick: the inclusive
        result minus this rank's own contribution works only for
        invertible ops, so the generic path gathers instead.
        """
        if self.size == 1:
            return zero
        gathered = self.allgather(value)
        acc = zero
        for peer_value in gathered[: self.rank]:
            acc = op(acc, peer_value)
        return acc

    def allgather(self, value: Any) -> list[Any]:
        """Gather one object from every rank, everywhere."""
        if self.size == 1:
            return [value]
        return self._run("allgather", value)

    def bcast(self, value: Any, root: int = 0) -> Any:
        """Broadcast ``value`` from ``root`` to all ranks."""
        if not 0 <= root < self.size:
            raise ValueError(f"root {root} out of range for size {self.size}")
        if self.size == 1:
            return value
        return self._run("bcast", value, root=root)

    def alltoallv(self, sends: Sequence[bytes | bytearray | memoryview],
                  ) -> list[bytes]:
        """Exchange byte buffers: ``sends[d]`` goes to rank ``d``;
        returns the buffer received from every source rank."""
        if len(sends) != self.size:
            raise ValueError(
                f"alltoallv needs {self.size} send parts, got {len(sends)}")
        if self.metrics is not None:
            self.metrics.inc("mpi.alltoallv.rounds")
            self.metrics.inc("mpi.alltoallv.bytes",
                             sum(len(part) for part in sends))
        if self.size == 1:
            return [bytes(sends[0])]
        # Zero-copy: send parts may be memoryviews over live send
        # buffers.  The collective engine materialises them with
        # ``bytes()`` inside the enter barrier - while every rank
        # thread is blocked - so exactly one copy happens, race-free,
        # and the caller may reuse its buffers as soon as this returns.
        return self._run("alltoallv", list(sends))

    # ------------------------------------------------------ point-to-point

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Buffered send of a Python object to ``dest`` (non-blocking)."""
        if not 0 <= dest < self.size:
            raise ValueError(f"dest {dest} out of range for size {self.size}")
        nbytes = self._payload_bytes(obj)
        if self.metrics is not None:
            self.metrics.inc("mpi.ptp.messages")
            self.metrics.inc("mpi.ptp.bytes", nbytes)
        if dest == self.rank or self.size == 1:
            self._loopback.append((tag, obj))
            return
        assert self._engine is not None
        cost = self._engine.network.ptp_cost(nbytes)
        self._engine.mailbox.put(self.rank, dest, tag, obj,
                                 self.clock.time + cost)

    def recv(self, source: int, tag: int = 0) -> Any:
        """Blocking receive of the next message from ``source``."""
        if not 0 <= source < self.size:
            raise ValueError(
                f"source {source} out of range for size {self.size}")
        if source == self.rank or self.size == 1:
            for i, (msg_tag, obj) in enumerate(self._loopback):
                if msg_tag == tag:
                    del self._loopback[i]
                    return obj
            raise ValueError(f"no buffered self-message with tag {tag}")
        assert self._engine is not None
        obj, arrival = self._engine.mailbox.take(source, self.rank, tag)
        # The message cannot be consumed before it arrived.
        self.clock.time = max(self.clock.time, arrival)
        return obj

    @staticmethod
    def _payload_bytes(obj: Any) -> int:
        if isinstance(obj, (bytes, bytearray, memoryview)):
            return len(obj)
        import pickle

        try:
            return len(pickle.dumps(obj))
        except Exception:
            return 64

    # -------------------------------------------------------------- timing

    def advance(self, seconds: float) -> None:
        """Charge local (compute or I/O) virtual time to this rank."""
        self.clock.advance(seconds * self.slowdown)

    def sync_time(self, time: float) -> None:
        """Set this rank's clock to an externally scheduled time.

        The elastic layer (:mod:`repro.ft.elastic`) replays task pools
        through a deterministic discrete-event schedule and then
        *replaces* the physically accumulated clock with the scheduled
        completion time - e.g. a straggler whose attempt was killed
        stops being charged at the kill point.  Collectives still take
        the max afterwards, so time can be re-scheduled but never
        un-synchronized.
        """
        if time < 0:
            raise ValueError(f"cannot sync clock to negative time {time}")
        self.clock.time = time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimComm(rank={self.rank}, size={self.size}, t={self.clock.time:.6f})"
