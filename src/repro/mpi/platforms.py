"""Descriptors of the paper's two evaluation platforms, linearly rescaled.

The paper evaluates on Comet (SDSC: 2x12-core Xeon E5-2680v3, 128 GB
RAM, FDR InfiniBand, Lustre) and Mira (ALCF BG/Q: 16-core A2, 16 GB
RAM, 5-D torus, GPFS behind 1:128 I/O forwarding).  A pure-Python
reproduction cannot shuffle hundreds of gigabytes in reasonable time,
so every *size* and every *rate* is divided by the same factor
(``SCALE_SHIFT = 10``, i.e. 1024): 64 MB pages become 64 KB pages,
128 GB nodes become 128 MB nodes, and bandwidths shrink equally, so
virtual-time and memory *ratios* are invariant under the rescaling.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.limits import parse_size
from repro.mpi.costmodel import NetworkModel, PFSModel

#: Every byte count and byte rate in the reproduction is the paper's
#: value divided by ``2**SCALE_SHIFT``.
SCALE_SHIFT = 10
SCALE = 1 << SCALE_SHIFT


def scaled(size: int | str) -> int:
    """Rescale a paper-quoted size (e.g. ``"64M"``) to reproduction units."""
    value = parse_size(size)
    return max(1, value >> SCALE_SHIFT)


@dataclass(frozen=True)
class Platform:
    """A simulated compute platform (already rescaled)."""

    name: str
    procs_per_node: int
    node_memory: int              # bytes per node (scaled)
    network: NetworkModel         # rates scaled
    pfs: PFSModel                 # rates scaled
    compute_rate: float           # bytes/sec of record processing per proc (scaled)
    default_page_size: int        # MR-MPI default page (scaled: 64K)
    max_page_size: int            # largest MR-MPI page the node supports
    #: Seconds of fixed dispatch overhead per record-level framework
    #: operation (one emit, one reduce-call, ...).  The default 0.0
    #: models bandwidth-only costs, matching all pre-batch virtual
    #: times exactly; benchmarks set it to expose the per-record vs.
    #: batch dispatch gap the columnar path removes.
    record_overhead: float = 0.0

    @property
    def memory_per_proc(self) -> int:
        """Per-rank memory budget when one node is fully populated."""
        return self.node_memory // self.procs_per_node

    def rescaled(self, extra_shift: int) -> "Platform":
        """A copy shrunk by a further ``2**extra_shift``.

        Sizes *and* rates shrink together, so memory ratios and
        virtual-time ratios are invariant; only absolute work drops.
        Used by the benchmark harness to keep full figure sweeps fast.
        """
        if extra_shift < 0:
            raise ValueError(f"extra_shift must be >= 0, got {extra_shift}")
        if extra_shift == 0:
            return self
        f = 1 << extra_shift
        # Latencies shrink with the sizes as well: exchange rounds get
        # proportionally smaller under rescaling, so keeping latency
        # fixed would overweight per-round costs (no dynamical
        # similarity).  With everything divided by f, virtual times of
        # a rescaled run match the full-scale run exactly.
        return Platform(
            name=f"{self.name}/{f}",
            procs_per_node=self.procs_per_node,
            node_memory=max(1, self.node_memory // f),
            network=NetworkModel(self.network.latency / f,
                                 self.network.bandwidth / f),
            pfs=PFSModel(self.pfs.latency / f, self.pfs.bandwidth / f,
                         self.pfs.io_ratio, self.pfs.write_penalty),
            compute_rate=self.compute_rate / f,
            default_page_size=max(1, self.default_page_size // f),
            max_page_size=max(1, self.max_page_size // f),
            # Record counts do not shrink under byte rescaling, so the
            # per-record dispatch cost carries over unchanged.
            record_overhead=self.record_overhead,
        )

    def describe(self) -> str:
        from repro.memory.limits import format_size

        return (f"{self.name}: {self.procs_per_node} procs/node, "
                f"{format_size(self.node_memory)} memory/node (scaled 1/{SCALE})")


#: Comet: 24 procs/node, 128 GB/node, FDR InfiniBand (~6 GB/s), Lustre.
COMET = Platform(
    name="comet",
    procs_per_node=24,
    node_memory=scaled("128G"),
    network=NetworkModel(latency=2e-6, bandwidth=6e9 / SCALE),
    # Lustre: streaming reads are respectable, but 24 concurrent
    # spill writers collapse the shared OSTs' throughput.
    pfs=PFSModel(latency=1e-3, bandwidth=1.2e9 / SCALE, io_ratio=1.0,
                 write_penalty=12.0),
    compute_rate=300e6 / SCALE,
    default_page_size=scaled("64M"),
    max_page_size=scaled("512M"),
)

#: Mira: 16 procs/node, 16 GB/node, 5-D torus (~1.8 GB/s/link), GPFS
#: behind 1:128 I/O forwarding; slower cores than Comet.
MIRA = Platform(
    name="mira",
    procs_per_node=16,
    node_memory=scaled("16G"),
    network=NetworkModel(latency=2.5e-6, bandwidth=1.8e9 / SCALE),
    pfs=PFSModel(latency=1e-3, bandwidth=2.4e9 / SCALE, io_ratio=16.0,
                 write_penalty=4.0),
    compute_rate=40e6 / SCALE,
    default_page_size=scaled("64M"),
    max_page_size=scaled("128M"),
)

#: Comet variant that spills to the node-local flash SSD (each Comet
#: node has 320 GB of flash) instead of Lustre: modest streaming
#: bandwidth but no shared-OST write collapse and no metadata RTT.
#: Most supercomputers (e.g. Mira) have no such device - which is the
#: paper's point about why I/O spillover is so much worse on them.
COMET_LOCAL_SSD = Platform(
    name="comet-ssd",
    procs_per_node=24,
    node_memory=scaled("128G"),
    network=NetworkModel(latency=2e-6, bandwidth=6e9 / SCALE),
    pfs=PFSModel(latency=5e-5, bandwidth=500e6 / SCALE, io_ratio=1.0,
                 write_penalty=1.5),
    compute_rate=300e6 / SCALE,
    default_page_size=scaled("64M"),
    max_page_size=scaled("512M"),
)

PLATFORMS: dict[str, Platform] = {
    "comet": COMET,
    "mira": MIRA,
    "comet-ssd": COMET_LOCAL_SSD,
}
