"""Virtual-time cost models for the network and the parallel file system.

The simulator charges time, never wall-clock: every collective advances
all participating ranks' clocks by an alpha-beta (latency + inverse
bandwidth) estimate, and every PFS access is charged against a shared
bandwidth model.  The absolute numbers are arbitrary; what matters for
reproducing the paper is the *ratio* between in-memory processing,
network shuffling, and I/O spill (the last being orders of magnitude
slower, which is where Fig. 1's 1000x degradation comes from).
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta interconnect model, optionally topology-aware.

    ``latency`` is the per-message software+wire latency in seconds;
    ``bandwidth`` is per-link bytes/second.  Collective estimates follow
    the standard log-tree formulations.

    ``intra_speedup`` > 1 makes communication between ranks of one node
    cheaper (shared memory vs the wire): cost helpers accept the number
    of *nodes* the ranks span and blend the intra/inter rates by the
    fraction of traffic that stays on-node.  The default of 1.0 keeps
    the flat (topology-blind) model.
    """

    latency: float
    bandwidth: float
    intra_speedup: float = 1.0

    def _effective(self, nprocs: int, nnodes: int) -> tuple[float, float]:
        """Blended (latency, bandwidth) for an nprocs/nnodes layout."""
        if self.intra_speedup <= 1.0 or nprocs <= 1:
            return self.latency, self.bandwidth
        nnodes = max(1, min(nnodes, nprocs))
        # Fraction of peer pairs that live on the same node.
        per_node = nprocs / nnodes
        intra_frac = max(0.0, min(1.0, (per_node - 1) / max(1, nprocs - 1)))
        blend = intra_frac / self.intra_speedup + (1.0 - intra_frac)
        return self.latency * blend, self.bandwidth / blend

    def ptp_cost(self, nbytes: int) -> float:
        """One point-to-point message (inter-node rate)."""
        return self.latency + nbytes / self.bandwidth

    def barrier_cost(self, nprocs: int, nnodes: int | None = None) -> float:
        """Dissemination barrier: ceil(log2(p)) rounds of latency."""
        if nprocs <= 1:
            return 0.0
        lat, _bw = self._effective(nprocs, nnodes or nprocs)
        return lat * math.ceil(math.log2(nprocs))

    def allreduce_cost(self, nprocs: int, nbytes: int,
                       nnodes: int | None = None) -> float:
        """Recursive-doubling allreduce on a small payload."""
        if nprocs <= 1:
            return 0.0
        lat, bw = self._effective(nprocs, nnodes or nprocs)
        rounds = math.ceil(math.log2(nprocs))
        return rounds * (lat + nbytes / bw)

    def bcast_cost(self, nprocs: int, nbytes: int,
                   nnodes: int | None = None) -> float:
        """Binomial-tree broadcast."""
        if nprocs <= 1:
            return 0.0
        lat, bw = self._effective(nprocs, nnodes or nprocs)
        rounds = math.ceil(math.log2(nprocs))
        return rounds * (lat + nbytes / bw)

    def allgather_cost(self, nprocs: int, max_nbytes: int,
                       nnodes: int | None = None) -> float:
        """Ring allgather: p-1 steps of the largest contribution."""
        if nprocs <= 1:
            return 0.0
        lat, bw = self._effective(nprocs, nnodes or nprocs)
        return (nprocs - 1) * (lat + max_nbytes / bw)

    def alltoallv_cost(self, nprocs: int, max_send_bytes: int,
                       nnodes: int | None = None) -> float:
        """Pairwise-exchange alltoallv.

        ``max_send_bytes`` is the largest total payload any single rank
        contributes; the busiest rank bounds completion.  p-1 exchange
        steps each move roughly ``max_send_bytes / p`` through one link.
        """
        if nprocs <= 1:
            return 0.0
        lat, bw = self._effective(nprocs, nnodes or nprocs)
        per_step = max_send_bytes / nprocs
        return (nprocs - 1) * (lat + per_step / bw)


@dataclass(frozen=True)
class PFSModel:
    """Shared parallel-file-system model.

    ``bandwidth`` is the aggregate bytes/second the PFS delivers to one
    compute node for streaming reads; ``latency`` is the per-operation
    overhead (metadata, RPC).  ``io_ratio`` models I/O-forwarding
    fan-in (Mira forwards many compute nodes through each I/O node):
    effective bandwidth is divided by it.  ``write_penalty`` models the
    well-known collapse of shared-file-system throughput under many
    concurrent small writers (exactly the spill pattern): write
    bandwidth is read bandwidth divided by this factor.  The PFS being
    slow relative to memory is the whole story of the paper's Figure 1.
    """

    latency: float
    bandwidth: float
    io_ratio: float = 1.0
    write_penalty: float = 1.0

    @property
    def effective_bandwidth(self) -> float:
        return self.bandwidth / self.io_ratio

    @property
    def effective_write_bandwidth(self) -> float:
        return self.effective_bandwidth / self.write_penalty

    def access_cost(self, nbytes: int, write: bool = False) -> float:
        """Time for one rank to move ``nbytes`` (uncontended)."""
        bw = self.effective_write_bandwidth if write else \
            self.effective_bandwidth
        return self.latency + nbytes / bw
