"""Byte-accurate memory accounting for a single simulated rank.

Every buffer either framework allocates (pages, communication buffers,
hash buckets) is charged to a :class:`MemoryTracker`.  The tracker
enforces the per-rank memory limit of the simulated platform and records
the peak, which is exactly the "peak memory usage" metric of the paper's
Figures 8, 9, 11, 12, and 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.limits import format_size, parse_size


class MemoryLimitExceeded(MemoryError):
    """Raised when an allocation would push a rank past its memory limit.

    Carries enough context to render the paper's "ran out of memory"
    data points: which tag overflowed, how much was requested, and the
    per-tag breakdown at the time of failure.
    """

    def __init__(self, tag: str, requested: int, current: int, limit: int,
                 by_tag: dict[str, int]):
        self.tag = tag
        self.requested = requested
        self.current = current
        self.limit = limit
        self.by_tag = dict(by_tag)
        super().__init__(
            f"allocation of {format_size(requested)} for {tag!r} exceeds "
            f"limit {format_size(limit)} (in use: {format_size(current)}; "
            f"by tag: {{{', '.join(f'{k}: {format_size(v)}' for k, v in sorted(by_tag.items()))}}})"
        )


@dataclass
class MemorySample:
    """One point of the allocation timeline (virtual bookkeeping only)."""

    seq: int
    tag: str
    delta: int
    current: int


class MemoryTracker:
    """Tracks current/peak allocated bytes for one rank, by tag.

    ``limit`` may be ``None`` (unlimited) or any value accepted by
    :func:`repro.memory.limits.parse_size`.  ``allocate`` raises
    :class:`MemoryLimitExceeded` instead of silently exceeding the
    limit, matching a strict-allocation lightweight-kernel platform.
    """

    def __init__(self, limit: int | str | None = None, *,
                 keep_timeline: bool = False):
        self.limit: int | None = None if limit is None else parse_size(limit)
        self.current = 0
        self.peak = 0
        self._by_tag: dict[str, int] = {}
        self._seq = 0
        self.keep_timeline = keep_timeline
        self.timeline: list[MemorySample] = []

    def allocate(self, nbytes: int, tag: str = "untagged") -> None:
        """Charge ``nbytes`` to ``tag``; raise if the limit would be exceeded."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate negative bytes: {nbytes}")
        if self.limit is not None and self.current + nbytes > self.limit:
            raise MemoryLimitExceeded(tag, nbytes, self.current, self.limit,
                                      self._by_tag)
        self.current += nbytes
        self._by_tag[tag] = self._by_tag.get(tag, 0) + nbytes
        if self.current > self.peak:
            self.peak = self.current
        self._record(tag, nbytes)

    def free(self, nbytes: int, tag: str = "untagged") -> None:
        """Release ``nbytes`` previously charged to ``tag``."""
        if nbytes < 0:
            raise ValueError(f"cannot free negative bytes: {nbytes}")
        held = self._by_tag.get(tag, 0)
        if nbytes > held:
            raise ValueError(
                f"freeing {nbytes}B from tag {tag!r} which holds only {held}B")
        self.current -= nbytes
        remaining = held - nbytes
        if remaining:
            self._by_tag[tag] = remaining
        else:
            self._by_tag.pop(tag, None)
        self._record(tag, -nbytes)

    def _record(self, tag: str, delta: int) -> None:
        self._seq += 1
        if self.keep_timeline:
            self.timeline.append(
                MemorySample(self._seq, tag, delta, self.current))

    def usage_by_tag(self) -> dict[str, int]:
        """Current live bytes per tag (a copy)."""
        return dict(self._by_tag)

    def would_fit(self, nbytes: int) -> bool:
        """Whether an allocation of ``nbytes`` would stay within the limit."""
        return self.limit is None or self.current + nbytes <= self.limit

    @property
    def available(self) -> int | None:
        """Bytes left before the limit, or ``None`` if unlimited."""
        if self.limit is None:
            return None
        return self.limit - self.current

    def reset_peak(self) -> None:
        """Restart peak measurement from the current level."""
        self.peak = self.current

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        lim = "unlimited" if self.limit is None else format_size(self.limit)
        return (f"MemoryTracker(current={format_size(self.current)}, "
                f"peak={format_size(self.peak)}, limit={lim})")
