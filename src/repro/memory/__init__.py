"""Memory substrate: byte-accurate per-rank accounting and page pools.

Both Mimir and the MR-MPI baseline allocate all significant buffers
through this package, so peak-memory numbers reported by the benchmarks
are exact byte counts of the frameworks' data structures rather than
process RSS.  The page abstraction mirrors the fixed-size-buffer idiom
both libraries use to avoid allocator fragmentation on lightweight
kernels (e.g. the BG/Q CNK).
"""

from repro.memory.limits import format_size, parse_size
from repro.memory.pages import Page, PagePool
from repro.memory.tracker import MemoryLimitExceeded, MemoryTracker

__all__ = [
    "MemoryLimitExceeded",
    "MemoryTracker",
    "Page",
    "PagePool",
    "format_size",
    "parse_size",
]
