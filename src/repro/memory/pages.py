"""Fixed-size memory pages and the pool that allocates them.

MR-MPI and Mimir both allocate intermediate-data buffers exclusively in
fixed-size units ("pages" in MR-MPI's terminology) so that lightweight
kernels with simplistic heap managers never see fragmentation-inducing
variable-size requests.  A :class:`Page` is a bytearray with a fill
watermark; a :class:`PagePool` hands out pages of one configured size
and charges them to a :class:`~repro.memory.tracker.MemoryTracker`.
"""

from __future__ import annotations

from repro.memory.limits import parse_size
from repro.memory.tracker import MemoryTracker


class Page:
    """One fixed-size buffer with a fill watermark.

    ``used`` bytes at the front of ``data`` are valid; the remainder is
    free space.  Writers append with :meth:`write`; readers slice
    :attr:`view`.
    """

    __slots__ = ("data", "used", "size", "tag")

    def __init__(self, size: int, tag: str = "page"):
        if size <= 0:
            raise ValueError(f"page size must be positive, got {size}")
        self.size = size
        self.data = bytearray(size)
        self.used = 0
        self.tag = tag

    @property
    def remaining(self) -> int:
        return self.size - self.used

    @property
    def view(self) -> memoryview:
        """Read-only view of the valid prefix (no copy)."""
        return memoryview(self.data)[: self.used]

    def write(self, payload: bytes | bytearray | memoryview) -> bool:
        """Append ``payload`` if it fits; return ``False`` without writing
        anything when it does not."""
        n = len(payload)
        if n > self.remaining:
            return False
        self.data[self.used : self.used + n] = payload
        self.used += n
        return True

    def clear(self) -> None:
        """Reset the watermark; capacity is retained."""
        self.used = 0

    def __len__(self) -> int:
        return self.used

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Page(used={self.used}/{self.size}, tag={self.tag!r})"


class PagePool:
    """Allocates :class:`Page` objects of one size against a tracker.

    The pool itself holds no free list: the simulation's purpose is to
    *account* for allocation, so acquiring charges the tracker and
    releasing credits it immediately.  (A free list would hide exactly
    the memory-footprint behaviour we are measuring.)
    """

    def __init__(self, tracker: MemoryTracker, page_size: int | str,
                 tag: str = "page"):
        self.tracker = tracker
        self.page_size = parse_size(page_size)
        if self.page_size <= 0:
            raise ValueError(f"page size must be positive, got {page_size!r}")
        self.tag = tag
        self.outstanding = 0

    def acquire(self, tag: str | None = None) -> Page:
        """Allocate one page; raises MemoryLimitExceeded when over limit."""
        use_tag = tag or self.tag
        self.tracker.allocate(self.page_size, use_tag)
        self.outstanding += 1
        return Page(self.page_size, use_tag)

    def release(self, page: Page) -> None:
        """Return a page to the system (frees its accounting)."""
        if page.size != self.page_size:
            raise ValueError(
                f"page of size {page.size} does not belong to pool of "
                f"size {self.page_size}")
        if self.outstanding <= 0:
            raise ValueError("release without matching acquire")
        self.tracker.free(self.page_size, page.tag)
        self.outstanding -= 1
        page.clear()

    def would_fit(self) -> bool:
        """Whether one more page fits under the tracker's limit."""
        return self.tracker.would_fit(self.page_size)
