"""Human-readable byte-size parsing and formatting.

The paper quotes every size in binary units (64 MB pages, 128 GB
nodes); configuration throughout the reproduction accepts the same
shorthand strings.
"""

from __future__ import annotations

_UNITS = {
    "": 1,
    "B": 1,
    "K": 1 << 10,
    "KB": 1 << 10,
    "KIB": 1 << 10,
    "M": 1 << 20,
    "MB": 1 << 20,
    "MIB": 1 << 20,
    "G": 1 << 30,
    "GB": 1 << 30,
    "GIB": 1 << 30,
    "T": 1 << 40,
    "TB": 1 << 40,
    "TIB": 1 << 40,
}


def parse_size(size: int | float | str) -> int:
    """Parse ``"64M"``, ``"512K"``, ``"1.5G"`` or a plain number into bytes.

    Binary units throughout (1K = 1024), matching the paper's usage.

    >>> parse_size("64M")
    67108864
    >>> parse_size(4096)
    4096
    """
    if isinstance(size, bool):
        raise TypeError("size must be a number or string, not bool")
    if isinstance(size, (int, float)):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        return int(size)
    text = size.strip().upper()
    if not text:
        raise ValueError("empty size string")
    idx = len(text)
    while idx > 0 and not (text[idx - 1].isdigit() or text[idx - 1] == "."):
        idx -= 1
    number, unit = text[:idx], text[idx:].strip()
    if not number:
        raise ValueError(f"no numeric part in size string {size!r}")
    if unit not in _UNITS:
        raise ValueError(f"unknown size unit {unit!r} in {size!r}")
    value = float(number) * _UNITS[unit]
    if value < 0:
        raise ValueError(f"size must be non-negative, got {size!r}")
    return int(value)


def format_size(nbytes: int) -> str:
    """Render a byte count with the largest exact-ish binary unit.

    >>> format_size(67108864)
    '64.0M'
    """
    if nbytes < 0:
        raise ValueError(f"nbytes must be non-negative, got {nbytes}")
    value = float(nbytes)
    for suffix in ("B", "K", "M", "G", "T"):
        if value < 1024 or suffix == "T":
            if suffix == "B":
                return f"{int(value)}B"
            return f"{value:.1f}{suffix}"
        value /= 1024
    raise AssertionError("unreachable")
