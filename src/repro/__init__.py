"""Reproduction of Mimir (IPDPS 2017): memory-efficient MapReduce over MPI.

Top-level convenience imports; see the subpackages for the full API:

- :mod:`repro.core` - Mimir itself (the paper's contribution)
- :mod:`repro.mrmpi` - the MR-MPI baseline
- :mod:`repro.cluster` - the simulated cluster harness
- :mod:`repro.mpi`, :mod:`repro.memory`, :mod:`repro.io` - substrates
- :mod:`repro.apps`, :mod:`repro.datasets` - evaluation workloads
- :mod:`repro.bench` - figure-reproduction harness
"""

from repro.cluster import Cluster, ClusterResult, RankEnv
from repro.core import KVLayout, Mimir, MimirConfig, pack_u64, unpack_u64
from repro.mpi import COMET, MIRA, Platform
from repro.mrmpi import MRMPI, MRMPIConfig

__version__ = "1.0.0"

__all__ = [
    "COMET",
    "Cluster",
    "ClusterResult",
    "KVLayout",
    "MIRA",
    "MRMPI",
    "MRMPIConfig",
    "Mimir",
    "MimirConfig",
    "Platform",
    "RankEnv",
    "__version__",
    "pack_u64",
    "unpack_u64",
]
