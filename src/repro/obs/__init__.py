"""Unified observability: metrics registry, span tracing, Perfetto export.

Three pieces (see ``docs/observability.md``):

- :mod:`repro.obs.registry` - the closed catalog of named counters /
  gauges / histograms, per-rank :class:`MetricShard` storage, and the
  collective :func:`reduce_metrics` aggregation.
- :mod:`repro.obs.chrome` - Chrome/Perfetto ``trace_event`` JSON
  export for :class:`repro.tools.trace.Trace`.
- :mod:`repro.obs.report` - the ``repro report`` pipeline (phase
  table, memory-at-peak composition, metric totals, job lanes).
  **Imported lazily**: it pulls in the cluster harness, which itself
  imports this package - ``import repro.obs.report`` explicitly when
  you need it.
"""

from repro.obs.chrome import (
    JOB_PID,
    SCHED_PID,
    to_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.obs.registry import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    METRICS,
    Histogram,
    MetricShard,
    MetricSpec,
    MetricsRegistry,
    UnknownMetricError,
    aggregate,
    reduce_metrics,
    register,
)

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "JOB_PID",
    "METRICS",
    "SCHED_PID",
    "Histogram",
    "MetricShard",
    "MetricSpec",
    "MetricsRegistry",
    "UnknownMetricError",
    "aggregate",
    "reduce_metrics",
    "register",
    "to_chrome_trace",
    "validate_chrome_trace",
    "write_chrome_trace",
]
