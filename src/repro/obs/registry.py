"""Unified metrics registry: named counters, gauges, and histograms.

Every number the paper's evaluation argues from - per-phase times,
shuffle volume, spill traffic, retries, cache behaviour - is emitted
through one :class:`MetricsRegistry` instead of ad-hoc attributes
scattered across modules.  Three rules keep the data trustworthy:

1. **Closed namespace.**  A metric must be declared in :data:`METRICS`
   (name, kind, unit, emitting module, description) before anything
   may emit it; an unregistered name raises :class:`UnknownMetricError`
   at the emit site.  The catalog is what
   ``docs/metrics-reference.md`` documents and what the docs-integrity
   test diffs against, so an undocumented metric cannot ship.
2. **Per-rank shards.**  Each rank writes to its own
   :class:`MetricShard` - no locks on the hot path, and per-rank
   breakdowns (load imbalance!) survive aggregation.
3. **Explicit aggregation.**  :meth:`MetricsRegistry.totals` folds the
   shards locally (the cluster harness owns all shards, since ranks
   are threads); :func:`reduce_metrics` is the collective flavour that
   allgathers shard snapshots so every rank sees the global totals,
   the way a real MPI deployment would.

Counters sum across ranks, gauges take the maximum (they record
per-rank peaks), histograms merge bucket-wise.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

#: Metric kinds.
COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

_KINDS = (COUNTER, GAUGE, HISTOGRAM)


class UnknownMetricError(KeyError):
    """An emit named a metric absent from :data:`METRICS`."""

    def __init__(self, name: str, hint: str = ""):
        self.name = name
        msg = (f"metric {name!r} is not registered; declare it via "
               f"repro.obs.registry.register() and document it in "
               f"docs/metrics-reference.md")
        if hint:
            msg = f"{msg} ({hint})"
        self._msg = msg
        super().__init__(msg)

    def __str__(self) -> str:
        return self._msg


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: the row docs and tests validate."""

    name: str
    kind: str          # counter | gauge | histogram
    unit: str          # bytes, records, calls, seconds, ...
    module: str        # the emitting module (dotted path)
    description: str


#: The closed catalog of every metric the system may emit.
METRICS: dict[str, MetricSpec] = {}


def register(name: str, kind: str, unit: str, module: str,
             description: str) -> MetricSpec:
    """Declare a metric; idempotent for identical re-declarations."""
    if kind not in _KINDS:
        raise ValueError(f"metric kind must be one of {_KINDS}, got {kind!r}")
    spec = MetricSpec(name, kind, unit, module, description)
    existing = METRICS.get(name)
    if existing is not None and existing != spec:
        raise ValueError(f"metric {name!r} already registered with a "
                         f"different spec: {existing}")
    METRICS[name] = spec
    return spec


# --------------------------------------------------------------- catalog
#
# Declared centrally (not at the emit sites) so importing this module
# alone yields the complete namespace - the property the metrics
# reference documentation and its integrity test rely on.

register("core.map.records", COUNTER, "records", "repro.core.job",
         "KV records emitted through the interleaved map+aggregate")
register("core.map.kv_bytes", COUNTER, "bytes", "repro.core.job",
         "encoded KV bytes shipped through the shuffle (Fig. 7 metric)")
register("core.map.rounds", COUNTER, "rounds", "repro.core.job",
         "alltoallv exchange rounds run by map+aggregate phases")
register("core.combine.records_in", COUNTER, "records", "repro.core.combiner",
         "records routed through the map-side combiner bucket")
register("core.combine.merged", COUNTER, "records", "repro.core.combiner",
         "combiner hits: records merged into an existing bucket entry")
register("core.combine.flushes", COUNTER, "events", "repro.core.combiner",
         "bounded-bucket partial flushes triggered by the byte budget")
register("core.reduce.keys", COUNTER, "keys", "repro.core.job",
         "unique keys handed to the user reduce callback")
register("core.reduce.bytes", COUNTER, "bytes", "repro.core.job",
         "key+value bytes processed by convert+reduce")
register("core.partial_reduce.records", COUNTER, "records", "repro.core.job",
         "unique records produced by streaming partial reduction")
register("core.spill.bytes", COUNTER, "bytes", "repro.core.job",
         "bytes phase output containers spilled to the PFS")
register("core.phase.seconds", HISTOGRAM, "seconds", "repro.core.job",
         "virtual duration of each executed MapReduce phase")
register("core.batch.records", COUNTER, "records", "repro.core.job",
         "records that moved through whole-batch kernel dispatches")
register("core.batch.pages", COUNTER, "pages", "repro.core.job",
         "whole-batch kernel dispatches (one per page or chunk)")
register("core.codec.chunks", COUNTER, "chunks", "repro.core.codec",
         "page/exchange chunks framed by the configured codec")
register("core.codec.bytes_in", COUNTER, "bytes", "repro.core.codec",
         "raw bytes entering the codec (pre-compression)")
register("core.codec.bytes_out", COUNTER, "bytes", "repro.core.codec",
         "framed bytes leaving the codec (post-compression)")

register("mpi.collectives", COUNTER, "calls", "repro.mpi.comm",
         "collective operations entered (barrier/allreduce/...)")
register("mpi.alltoallv.rounds", COUNTER, "rounds", "repro.mpi.comm",
         "alltoallv data-plane exchanges")
register("mpi.alltoallv.bytes", COUNTER, "bytes", "repro.mpi.comm",
         "payload bytes this rank sent through alltoallv")
register("mpi.ptp.messages", COUNTER, "messages", "repro.mpi.comm",
         "point-to-point sends")
register("mpi.ptp.bytes", COUNTER, "bytes", "repro.mpi.comm",
         "payload bytes sent point-to-point")

register("io.pfs.reads", COUNTER, "calls", "repro.io.pfs",
         "costed PFS read operations")
register("io.pfs.writes", COUNTER, "calls", "repro.io.pfs",
         "costed PFS write/write_at/append operations")
register("io.pfs.bytes_read", COUNTER, "bytes", "repro.io.pfs",
         "bytes read through the costed PFS path")
register("io.pfs.bytes_written", COUNTER, "bytes", "repro.io.pfs",
         "bytes written through the costed PFS path")
register("io.pfs.retries", COUNTER, "calls", "repro.io.errors",
         "transient PFS errors absorbed by the retry/backoff wrapper")

register("storage.reads", COUNTER, "calls", "repro.storage.base",
         "costed read operations on non-PFS storage backends")
register("storage.writes", COUNTER, "calls", "repro.storage.base",
         "costed write/write_at/append operations on non-PFS backends")
register("storage.bytes_read", COUNTER, "bytes", "repro.storage.base",
         "bytes read through the costed path of non-PFS backends")
register("storage.bytes_written", COUNTER, "bytes", "repro.storage.base",
         "bytes written through the costed path of non-PFS backends")
register("storage.extsort.runs", COUNTER, "runs", "repro.storage.extsort",
         "sorted runs formed by the external-sort driver")
register("storage.extsort.merged_records", COUNTER, "records",
         "repro.storage.extsort",
         "records streamed through the external-sort k-way merge")

register("ft.faults.injected", COUNTER, "faults", "repro.ft.injection",
         "chaos faults that actually fired (errors, corruption, death)")
register("ft.restarts", COUNTER, "restarts", "repro.ft.runner",
         "classified job restarts performed by run_with_recovery")
register("ft.checkpoint.saves", COUNTER, "calls", "repro.ft.checkpoint",
         "checkpoint phases committed (data + marker durable)")
register("ft.checkpoint.restores", COUNTER, "calls", "repro.ft.checkpoint",
         "checkpoint phases restored instead of recomputed")
register("ft.checkpoint.invalid", COUNTER, "events", "repro.ft.checkpoint",
         "torn/corrupt/stale checkpoints detected and recomputed")
register("ft.straggler.flagged", COUNTER, "ranks", "repro.ft.elastic",
         "ranks flagged by the per-phase straggler monitor")
register("ft.speculation.launched", COUNTER, "tasks", "repro.ft.elastic",
         "backup task attempts launched on healthy ranks")
register("ft.speculation.won", COUNTER, "tasks", "repro.ft.elastic",
         "backup attempts that finished first (first-result-wins)")
register("ft.speculation.discarded", COUNTER, "tasks", "repro.ft.elastic",
         "losing duplicate task attempts killed or discarded")
register("ft.membership.changes", COUNTER, "events", "repro.ft.elastic",
         "gang membership changes (rank leave/join, scaling resize)")

register("sched.admissions", COUNTER, "jobs", "repro.sched.scheduler",
         "jobs admitted onto the cluster by admission control")
register("sched.queued", COUNTER, "events", "repro.sched.scheduler",
         "job-rounds spent waiting in the admission queue")
register("sched.ooms", COUNTER, "events", "repro.sched.scheduler",
         "blown footprint estimates absorbed by the scheduler")
register("sched.cache.hits", COUNTER, "hits", "repro.sched.cache",
         "stage-cache lookups served from memory or spill")
register("sched.cache.misses", COUNTER, "misses", "repro.sched.cache",
         "cached stages that had to be recomputed from lineage")
register("sched.cache.evictions", COUNTER, "evictions", "repro.sched.cache",
         "cache entries spilled to the PFS under memory pressure")
register("sched.cache.reloads", COUNTER, "reloads", "repro.sched.cache",
         "spilled cache entries streamed back from the PFS")
register("sched.stages.executed", COUNTER, "stages", "repro.sched.executor",
         "plan stages actually executed (restores and hits excluded)")

register("serve.submissions", COUNTER, "jobs", "repro.serve.daemon",
         "jobs accepted by the serve API and journaled durably")
register("serve.rejections.quota", COUNTER, "jobs", "repro.serve.tenants",
         "submissions rejected by a per-tenant quota check (429)")
register("serve.admissions", COUNTER, "jobs", "repro.serve.daemon",
         "served jobs admitted into a gang round by the scheduler")
register("serve.completions", COUNTER, "jobs", "repro.serve.daemon",
         "served jobs that reached a terminal done/failed state")
register("serve.cancellations", COUNTER, "jobs", "repro.serve.daemon",
         "queued jobs cancelled by their owner before admission")
register("serve.lease.expiries", COUNTER, "leases", "repro.serve.leases",
         "job leases that lapsed without a client renewal")
register("serve.gc.outputs", COUNTER, "jobs", "repro.serve.daemon",
         "lease-expired job outputs garbage-collected from the PFS")
register("serve.journal.records", COUNTER, "records", "repro.serve.journal",
         "records appended to the crash-safe job journal")
register("serve.journal.replays", COUNTER, "records", "repro.serve.journal",
         "journal records replayed during daemon recovery")
register("serve.queue.depth", GAUGE, "jobs", "repro.serve.daemon",
         "jobs waiting in the admission queue after the last tick")
register("serve.autoscale.events", COUNTER, "events", "repro.serve.daemon",
         "gang resizes applied by the daemon's ScalingPolicy")
register("serve.log.fetches", COUNTER, "calls", "repro.serve.daemon",
         "incremental job-log fetches served (offset-based API)")

register("stream.batches.ingested", COUNTER, "batches", "repro.sched.executor",
         "micro-batches lowered through source_stream stages")
register("stream.records.ingested", COUNTER, "records", "repro.sched.executor",
         "stream records lowered through source_stream stages")
register("stream.records.late", COUNTER, "records", "repro.stream.runner",
         "records that arrived behind the event-time watermark")
register("stream.windows.closed", COUNTER, "windows", "repro.stream.runner",
         "windows finalized once the watermark passed their end")
register("stream.windows.recomputed", COUNTER, "windows", "repro.stream.runner",
         "closed windows re-finalized after late arrivals")
register("stream.windows.resumed", COUNTER, "windows", "repro.stream.runner",
         "windows restored from checkpoint instead of recomputed")
register("stream.watermark", GAUGE, "seconds", "repro.stream.runner",
         "current event-time watermark (max event time - lateness)")
register("stream.window.lag", HISTOGRAM, "seconds", "repro.stream.runner",
         "processing-time lag between a window's end and its close")


# ------------------------------------------------------------ histogram

#: Decade bucket upper bounds for histogram metrics; values above the
#: last bound land in the overflow bucket.
HISTOGRAM_BOUNDS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 1e1, 1e2, 1e3)


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("buckets", "count", "total", "min", "max")

    def __init__(self):
        self.buckets = [0] * (len(HISTOGRAM_BOUNDS) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        for i, bound in enumerate(HISTOGRAM_BOUNDS):
            if value <= bound:
                self.buckets[i] += 1
                break
        else:
            self.buckets[-1] += 1
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        self.buckets = [a + b for a, b in zip(self.buckets, other.buckets)]
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "total": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0}
        return {"count": self.count, "total": self.total, "min": self.min,
                "max": self.max, "mean": self.mean}

    @classmethod
    def from_summary(cls, summary: dict[str, float]) -> "Histogram":
        """Rebuild the mergeable stats (buckets are not serialized)."""
        h = cls()
        h.count = int(summary.get("count", 0))
        h.total = float(summary.get("total", 0.0))
        if h.count:
            h.min = float(summary["min"])
            h.max = float(summary["max"])
        return h


# ---------------------------------------------------------------- shards

class MetricShard:
    """One rank's metric storage; lock-free (one writer thread)."""

    def __init__(self, rank: int = -1):
        self.rank = rank
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    def _check(self, name: str, kind: str) -> None:
        spec = METRICS.get(name)
        if spec is None:
            raise UnknownMetricError(name)
        if spec.kind != kind:
            raise UnknownMetricError(
                name, f"registered as a {spec.kind}, emitted as a {kind}")

    def inc(self, name: str, value: float = 1) -> None:
        """Add ``value`` to counter ``name``."""
        self._check(name, COUNTER)
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self._check(name, GAUGE)
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one sample into histogram ``name``."""
        self._check(name, HISTOGRAM)
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    def value(self, name: str) -> Any:
        """Current local value (0 / empty summary when never emitted)."""
        spec = METRICS.get(name)
        if spec is None:
            raise UnknownMetricError(name)
        if spec.kind == COUNTER:
            return self.counters.get(name, 0)
        if spec.kind == GAUGE:
            return self.gauges.get(name, 0)
        hist = self.histograms.get(name)
        return hist.summary() if hist else Histogram().summary()

    def snapshot(self) -> dict[str, Any]:
        """Picklable view of every metric this shard has emitted."""
        snap: dict[str, Any] = {}
        snap.update(self.counters)
        snap.update(self.gauges)
        for name, hist in self.histograms.items():
            snap[name] = hist.summary()
        return snap


def _merge_into(totals: dict[str, Any], snapshot: dict[str, Any]) -> None:
    for name, value in snapshot.items():
        spec = METRICS.get(name)
        kind = spec.kind if spec is not None else COUNTER
        if kind == HISTOGRAM:
            merged = totals.get(name)
            if merged is None:
                totals[name] = dict(value)
            else:
                a = Histogram.from_summary(merged)
                a.merge(Histogram.from_summary(value))
                totals[name] = a.summary()
        elif kind == GAUGE:
            totals[name] = max(totals.get(name, float("-inf")), value)
        else:
            totals[name] = totals.get(name, 0) + value


def aggregate(snapshots: "list[dict[str, Any]]") -> dict[str, Any]:
    """Fold shard snapshots: counters sum, gauges max, histograms merge."""
    totals: dict[str, Any] = {}
    for snap in snapshots:
        _merge_into(totals, snap)
    return totals


def reduce_metrics(comm, shard: MetricShard) -> dict[str, Any]:
    """Collective aggregation: every rank gets the global totals.

    All ranks must call with their own shard (an ``allgather``
    underneath); the result is identical everywhere, so control flow
    keyed on it stays in lockstep.
    """
    return aggregate(comm.allgather(shard.snapshot()))


# --------------------------------------------------------------- registry

class MetricsRegistry:
    """All shards of one cluster; rank -1 is the driver/scheduler shard."""

    def __init__(self):
        self._shards: dict[int, MetricShard] = {}
        self._lock = threading.Lock()

    def shard(self, rank: int) -> MetricShard:
        """This rank's shard, created on first use."""
        with self._lock:
            shard = self._shards.get(rank)
            if shard is None:
                shard = self._shards[rank] = MetricShard(rank)
            return shard

    @property
    def shards(self) -> list[MetricShard]:
        with self._lock:
            return [self._shards[r] for r in sorted(self._shards)]

    def totals(self) -> dict[str, Any]:
        """Aggregate across every shard (driver-side convenience)."""
        return aggregate([s.snapshot() for s in self.shards])

    def by_rank(self, name: str) -> dict[int, Any]:
        """One metric's per-rank values (load-imbalance view)."""
        return {s.rank: s.value(name) for s in self.shards
                if name in s.snapshot()}

    def reset(self) -> None:
        with self._lock:
            self._shards.clear()

    def render(self) -> str:
        """Metric totals as an aligned table, catalog order."""
        totals = self.totals()
        if not totals:
            return "(no metrics emitted)"
        lines = [f"{'metric':<28} {'kind':<10} {'unit':<9} total"]
        for name in sorted(totals, key=lambda n: list(METRICS).index(n)
                           if n in METRICS else len(METRICS)):
            spec = METRICS.get(name)
            kind = spec.kind if spec else "?"
            unit = spec.unit if spec else "?"
            value = totals[name]
            if isinstance(value, dict):  # histogram summary
                rendered = (f"n={value['count']} mean={value['mean']:.5f} "
                            f"max={value['max']:.5f}")
            elif isinstance(value, float) and not value.is_integer():
                rendered = f"{value:.4f}"
            else:
                rendered = f"{int(value)}"
            lines.append(f"{name:<28} {kind:<10} {unit:<9} {rendered}")
        return "\n".join(lines)
