"""Chrome/Perfetto ``trace_event`` export for :class:`repro.tools.trace.Trace`.

Turns a trace's events into the JSON object format understood by
``chrome://tracing`` and https://ui.perfetto.dev: one process per
event domain (job ranks, scheduler), one thread per rank, nested
duration events (``B``/``E``) for spans and phase boundaries, instant
events (``i``) for everything else.

The exporter *guarantees* a schema-valid artifact even from a trace an
abort truncated mid-span: per-thread ``B``/``E`` pairs are re-balanced
(stray ends dropped, dangling begins closed at the thread's last
timestamp) and timestamps within each thread are emitted in
non-decreasing order.  Virtual seconds become microseconds, the
``trace_event`` native unit.
"""

from __future__ import annotations

import json
from typing import Any

#: pid used for rank-stamped events and for global (rank -1) events.
JOB_PID = 0
SCHED_PID = 1

#: Event kinds that open/close a duration: explicit spans, plus the
#: legacy ``phase`` events whose labels end in ``:start``/``:end``.
_SPAN_KIND = "span"


def _locate(event) -> tuple[int, int]:
    """(pid, tid) for one trace event; scheduler events get their own
    process so global decisions do not interleave rank lanes."""
    if event.rank < 0:
        return SCHED_PID, 0
    return JOB_PID, event.rank


def _duration_edge(event) -> tuple[str, str] | None:
    """(name, "B"|"E") when the event opens or closes a span."""
    if event.kind == _SPAN_KIND:
        ph = event.data.get("ph")
        if ph in ("B", "E"):
            return event.label, ph
        return None
    if event.kind == "phase":
        if event.label.endswith(":start"):
            return event.label[:-len(":start")], "B"
        if event.label.endswith(":end"):
            return event.label[:-len(":end")], "E"
    return None


def _args(data: dict[str, Any]) -> dict[str, Any]:
    return {k: v for k, v in data.items() if k != "ph"}


def to_chrome_trace(trace) -> dict[str, Any]:
    """A ``{"traceEvents": [...]}`` dict ready for ``json.dump``.

    Every emitted event carries ``ph``, ``ts`` (microseconds), ``pid``
    and ``tid``; duration events are balanced and nested per thread.
    """
    events = trace.events  # emission order: per-rank subsequences sorted
    events = sorted(events, key=lambda e: e.time)  # stable: keeps order
    out: list[dict[str, Any]] = []
    seen: dict[tuple[int, int], float] = {}      # last ts per thread
    stacks: dict[tuple[int, int], list[tuple[str, dict]]] = {}

    def emit(ph: str, name: str, ts: float, pid: int, tid: int,
             cat: str, args: dict[str, Any]) -> None:
        # Per-thread monotonicity: an offset-stamped event may arrive a
        # hair before the thread's previous one; clamp forward.
        key = (pid, tid)
        ts = max(ts, seen.get(key, 0.0))
        seen[key] = ts
        record: dict[str, Any] = {"name": name, "cat": cat, "ph": ph,
                                  "ts": ts, "pid": pid, "tid": tid}
        if ph == "i":
            record["s"] = "t"      # thread-scoped instant
        if args:
            record["args"] = args
        out.append(record)

    for event in events:
        pid, tid = _locate(event)
        ts = event.time * 1e6
        edge = _duration_edge(event)
        if edge is None:
            emit("i", event.label, ts, pid, tid, event.kind,
                 _args(event.data))
            continue
        name, ph = edge
        stack = stacks.setdefault((pid, tid), [])
        if ph == "B":
            stack.append((name, _args(event.data)))
            emit("B", name, ts, pid, tid, event.kind, _args(event.data))
        else:
            if not any(open_name == name for open_name, _ in stack):
                continue  # stray end (opening half lost): drop it
            # Close inner spans a truncated trace left dangling so the
            # E we are about to emit matches its own B.
            while stack and stack[-1][0] != name:
                stack.pop()
                emit("E", "", ts, pid, tid, event.kind, {})
            stack.pop()
            emit("E", name, ts, pid, tid, event.kind, _args(event.data))

    # Close anything still open at its thread's final timestamp.
    for (pid, tid), stack in stacks.items():
        while stack:
            name, _ = stack.pop()
            emit("E", name, seen.get((pid, tid), 0.0), pid, tid, _SPAN_KIND,
                 {})

    meta: list[dict[str, Any]] = []
    pids = {pid for pid, _tid in seen}
    for pid in sorted(pids):
        meta.append({"name": "process_name", "ph": "M", "ts": 0.0,
                     "pid": pid, "tid": 0,
                     "args": {"name": "scheduler" if pid == SCHED_PID
                              else "job ranks"}})
    for pid, tid in sorted(seen):
        if pid == JOB_PID:
            meta.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                         "pid": pid, "tid": tid,
                         "args": {"name": f"rank {tid}"}})
    return {"traceEvents": meta + out, "displayTimeUnit": "ms"}


def write_chrome_trace(trace, path: str) -> dict[str, Any]:
    """Export ``trace`` to ``path`` as Perfetto-loadable JSON."""
    data = to_chrome_trace(trace)
    with open(path, "w") as fh:
        json.dump(data, fh, indent=1)
    return data


def validate_chrome_trace(data: dict[str, Any]) -> None:
    """Assert the exported object is schema-valid; raises ``ValueError``.

    Checks the acceptance contract: required fields on every event,
    non-decreasing timestamps per thread, and balanced, properly
    nested ``B``/``E`` pairs.
    """
    events = data.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    last_ts: dict[tuple[int, int], float] = {}
    stacks: dict[tuple[int, int], list[str]] = {}
    for i, event in enumerate(events):
        for field in ("ph", "ts", "pid", "tid"):
            if field not in event:
                raise ValueError(f"event {i} missing {field!r}: {event}")
        if event["ph"] == "M":
            continue
        key = (event["pid"], event["tid"])
        if event["ts"] < last_ts.get(key, float("-inf")):
            raise ValueError(
                f"event {i}: ts {event['ts']} decreases on thread {key}")
        last_ts[key] = event["ts"]
        if event["ph"] == "B":
            stacks.setdefault(key, []).append(event.get("name", ""))
        elif event["ph"] == "E":
            stack = stacks.setdefault(key, [])
            if not stack:
                raise ValueError(f"event {i}: E without open B on {key}")
            opened = stack.pop()
            if event.get("name") not in ("", opened):
                raise ValueError(
                    f"event {i}: E {event.get('name')!r} closes B "
                    f"{opened!r} on {key}")
    for key, stack in stacks.items():
        if stack:
            raise ValueError(f"thread {key} ends with open spans: {stack}")
