"""The ``repro report`` pipeline: run a job, render what happened.

A :class:`RunReport` bundles the four views the paper's evaluation
sections argue from - a per-phase time table, the memory composition
at the global peak, the aggregated metric totals, and (for scheduled
multi-job runs) per-job timeline lanes - plus the :class:`~repro.
tools.trace.Trace` behind them, ready for Perfetto export.

Three entry points:

- :func:`run_wordcount_report` runs the paper's WordCount benchmark
  on a small simulated cluster with profiling, tracing, and metrics
  all attached.
- :func:`run_pipeline_report` drains the multi-job scheduler demo
  (WordCount + PageRank by default) the same way.
- :func:`load_trace_report` rebuilds the trace-derived views from a
  saved ``Trace.to_json()`` file without re-running anything.

This module imports the cluster harness; it is deliberately **not**
re-exported from ``repro.obs`` (which the harness itself imports).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.cluster import Cluster
from repro.memory.limits import format_size
from repro.tools.timeline import composition_at_peak, render_job_lanes
from repro.tools.trace import SCHED_EVENT_KINDS, Trace


@dataclass
class PhaseRow:
    """Aggregated timings of one phase name across every rank."""

    name: str
    count: int          # executions summed over ranks
    total: float        # virtual seconds summed over executions
    slowest: float      # the single slowest execution
    #: Records that went through whole-batch kernel dispatches (0 for
    #: phases that ran entirely per-record).
    batch_records: int = 0
    #: Whole-batch dispatches across ranks.
    batch_pages: int = 0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


def phase_rows_from_profiles(profiles) -> list[PhaseRow]:
    """Fold per-rank :class:`~repro.core.metrics.PhaseProfile` records."""
    rows: dict[str, PhaseRow] = {}
    for profile in profiles:
        for record in profile.records:
            row = rows.get(record.name)
            if row is None:
                row = rows[record.name] = PhaseRow(record.name, 0, 0.0, 0.0)
            row.count += 1
            row.total += record.duration
            row.slowest = max(row.slowest, record.duration)
            row.batch_records += getattr(record, "batch_records", 0)
            row.batch_pages += getattr(record, "batch_pages", 0)
    return list(rows.values())


def phase_rows_from_trace(trace: Trace) -> list[PhaseRow]:
    """Reconstruct phase timings by pairing ``:start``/``:end`` events.

    The fallback for jobs run without a :class:`PhaseProfile` (the
    scheduler's, for instance): per rank, each ``phase`` event whose
    label ends in ``:start`` opens the phase and the matching ``:end``
    closes it.  Unpaired halves are ignored.
    """
    rows: dict[str, PhaseRow] = {}
    open_at: dict[tuple[int, str], list[float]] = {}
    for event in trace.merged():
        if event.kind != "phase":
            continue
        if event.label.endswith(":start"):
            name = event.label[:-len(":start")]
            open_at.setdefault((event.rank, name), []).append(event.time)
        elif event.label.endswith(":end"):
            name = event.label[:-len(":end")]
            stack = open_at.get((event.rank, name))
            if not stack:
                continue
            duration = event.time - stack.pop()
            row = rows.get(name)
            if row is None:
                row = rows[name] = PhaseRow(name, 0, 0.0, 0.0)
            row.count += 1
            row.total += duration
            row.slowest = max(row.slowest, duration)
    return list(rows.values())


def render_phase_table(rows: list[PhaseRow]) -> str:
    if not rows:
        return "(no phase records)"
    lines = [f"{'phase':<20} {'execs':>6} {'total(s)':>10} "
             f"{'mean(s)':>10} {'max(s)':>10} {'batched':>9}"]
    for row in sorted(rows, key=lambda r: -r.total):
        lines.append(f"{row.name:<20} {row.count:>6} {row.total:>10.4f} "
                     f"{row.mean:>10.4f} {row.slowest:>10.4f} "
                     f"{row.batch_records:>9d}")
    return "\n".join(lines)


def render_composition(composition: dict[str, int]) -> str:
    if not composition:
        return "(no allocations)"
    peak = sum(composition.values()) or 1
    lines = []
    for tag, nbytes in sorted(composition.items(), key=lambda kv: -kv[1]):
        share = nbytes / peak
        bar = "#" * max(1, round(share * 30))
        lines.append(f"{tag:<20} {format_size(nbytes):>10} "
                     f"{share:>6.1%} {bar}")
    return "\n".join(lines)


@dataclass
class RunReport:
    """Everything ``repro report`` renders, plus the raw trace."""

    title: str
    job_lines: list[str] = field(default_factory=list)
    phases: list[PhaseRow] = field(default_factory=list)
    peak_bytes: int = 0
    composition: dict[str, int] | None = None
    metrics_text: str = ""
    metric_totals: dict[str, Any] = field(default_factory=dict)
    lanes: str | None = None
    trace: Trace = field(default_factory=Trace)

    def render(self) -> str:
        sections = [f"== {self.title} =="]
        if self.job_lines:
            sections.append("\n".join(self.job_lines))
        sections.append("-- phases --\n" + render_phase_table(self.phases))
        if self.peak_bytes or self.composition:
            mem = [f"-- memory --\npeak {format_size(self.peak_bytes)} "
                   "on the hottest rank"]
            if self.composition is not None:
                mem.append(render_composition(self.composition))
            sections.append("\n".join(mem))
        if self.metrics_text:
            sections.append("-- metrics --\n" + self.metrics_text)
        if self.lanes is not None:
            sections.append("-- job lanes --\n" + self.lanes)
        return "\n\n".join(sections)


# ------------------------------------------------------------- wordcount

def run_wordcount_report(*, nprocs: int = 4, platform: str = "comet",
                         input_bytes: int = 1 << 15,
                         seed: int = 0) -> RunReport:
    """WordCount with profiling, tracing, and metrics all attached."""
    from repro.apps.wordcount import wc_map, wc_reduce
    from repro.core import Mimir, MimirConfig, unpack_u64
    from repro.core.metrics import PhaseProfile
    from repro.datasets.words import uniform_text
    from repro.mpi.platforms import PLATFORMS

    cluster = Cluster(PLATFORMS[platform], nprocs, keep_timeline=True)
    path = "report/words.txt"
    cluster.pfs.store(path, uniform_text(input_bytes, seed=seed))
    trace = Trace()
    config = MimirConfig()
    profiles: list[PhaseProfile] = []

    def rank_fn(env):
        profile = PhaseProfile(env)
        profiles.append(profile)
        mimir = Mimir(env, config, profile=profile, trace=trace)
        with trace.span(env, "wordcount", rank=env.comm.rank):
            kvs = mimir.map_text_file(path, wc_map)
            out = mimir.reduce(kvs, wc_reduce, out_layout=config.layout)
            unique = len(out)
            total = sum(unpack_u64(v) for _, v in out.records())
            out.free()
        return unique, total

    result = cluster.run(rank_fn)
    unique = sum(u for u, _t in result.returns)
    total = sum(t for _u, t in result.returns)
    hottest = max(range(nprocs), key=lambda r: result.peak_bytes[r])
    return RunReport(
        title=f"wordcount: {nprocs} ranks on {platform}, "
              f"{format_size(input_bytes)} input",
        job_lines=[f"{unique} unique words, {total} total, "
                   f"{result.elapsed:.4f}s virtual"],
        phases=phase_rows_from_profiles(profiles),
        peak_bytes=result.peak_bytes[hottest],
        composition=composition_at_peak(cluster.trackers[hottest]),
        metrics_text=cluster.metrics.render(),
        metric_totals=cluster.metrics.totals(),
        lanes=None,
        trace=trace,
    )


# -------------------------------------------------------------- pipeline

def run_pipeline_report(apps: "list[str] | None" = None, *,
                        nprocs: int = 4, platform: str = "comet",
                        memory_limit: "int | str | None" = "512K",
                        ) -> RunReport:
    """Drain the multi-job scheduler demo and report the whole drain."""
    from repro.mpi.platforms import PLATFORMS
    from repro.sched.demo import make_job, stage_inputs
    from repro.sched.scheduler import Scheduler

    apps = list(apps) if apps else ["wordcount", "pagerank"]
    cluster = Cluster(PLATFORMS[platform], nprocs,
                      memory_limit=memory_limit)
    paths = stage_inputs(cluster)
    trace = Trace()
    scheduler = Scheduler(cluster, trace=trace)
    for i, app in enumerate(apps):
        scheduler.submit(make_job(app, paths, priority=len(apps) - i))
    sched_report = scheduler.run()
    title = f"pipeline ({' '.join(apps)}): {nprocs} ranks on {platform}"
    if cluster.memory_limit_per_rank is not None:
        title += f", {format_size(cluster.memory_limit_per_rank)}/rank"
    return RunReport(
        title=title,
        job_lines=sched_report.render_log().splitlines(),
        phases=phase_rows_from_trace(trace),
        peak_bytes=max((t.peak for t in scheduler.trackers), default=0),
        composition=None,   # scheduler trackers skip the timeline
        metrics_text=cluster.metrics.render(),
        metric_totals=cluster.metrics.totals(),
        lanes=render_job_lanes(trace),
        trace=trace,
    )


# ------------------------------------------------------------ saved trace

def load_trace_report(path: str) -> RunReport:
    """Rebuild the trace-derived views from a ``Trace.to_json`` file."""
    with open(path) as fh:
        trace = Trace.from_json(fh.read())
    has_sched = any(e.kind in SCHED_EVENT_KINDS and "job" in e.data
                    for e in trace.events)
    return RunReport(
        title=f"saved trace: {path} ({len(trace.events)} events)",
        job_lines=[f"{kind}: {count}" for kind, count
                   in sorted(trace.summary().items())],
        phases=phase_rows_from_trace(trace),
        lanes=render_job_lanes(trace) if has_sched else None,
        trace=trace,
    )
