"""One-stop simulated cluster: ranks + memory budgets + shared PFS.

:class:`Cluster` is what benchmarks and examples run jobs on.  It
launches a :class:`~repro.mpi.world.World`, gives every rank a
:class:`~repro.memory.tracker.MemoryTracker` bounded by the platform's
per-process memory, and shares one storage backend with the platform's
I/O cost model - by default the simulated :class:`ParallelFileSystem`,
or any :class:`~repro.storage.base.StorageBackend` selected via the
``storage`` spec / ``REPRO_STORAGE_BACKEND`` (see :mod:`repro.storage`
and docs/storage.md).  Job functions receive a :class:`RankEnv`.

``run(..., allow_oom=True)`` converts a rank's
:class:`~repro.memory.tracker.MemoryLimitExceeded` into a result with
``oom`` set instead of raising, which is how the benchmarks record the
paper's "ran out of memory, data point missing" outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.io.pfs import ParallelFileSystem
from repro.memory.limits import parse_size
from repro.storage import StorageBackend, make_backend
from repro.memory.tracker import MemoryLimitExceeded, MemoryTracker
from repro.mpi.comm import SimComm
from repro.mpi.errors import RankFailedError
from repro.mpi.platforms import Platform
from repro.mpi.world import World
from repro.obs.registry import MetricShard, MetricsRegistry


@dataclass
class RankEnv:
    """Everything one rank of a job can touch."""

    comm: SimComm
    tracker: MemoryTracker
    #: The cluster's storage substrate.  Named ``pfs`` for history, but
    #: typed as the protocol: any :class:`~repro.storage.base.
    #: StorageBackend` slots in (see :mod:`repro.storage`).
    pfs: StorageBackend
    platform: Platform
    #: This rank's metrics shard (see :mod:`repro.obs.registry`).  A
    #: cluster launch substitutes a registry-backed shard; the default
    #: standalone shard keeps directly constructed envs (tests) working.
    metrics: MetricShard = field(default_factory=MetricShard)

    def charge_compute(self, nbytes: int) -> None:
        """Advance this rank's clock for processing ``nbytes`` of records."""
        self.comm.advance(nbytes / self.platform.compute_rate)

    def charge_ops(self, nops: int) -> None:
        """Advance this rank's clock for ``nops`` framework dispatches.

        Free when the platform's ``record_overhead`` is 0.0 (the
        default bandwidth-only cost model); otherwise this is where the
        per-record vs. per-batch dispatch gap shows up in virtual time.
        """
        overhead = self.platform.record_overhead
        if overhead and nops:
            self.comm.advance(nops * overhead)

    def storage_for(self, spec: str | None) -> StorageBackend:
        """The backend a job's spill should use (``MimirConfig.storage``).

        ``None`` - and the substrate's own name - mean "stay on the
        cluster substrate"; any other spec resolves to a per-substrate
        companion backend sharing the substrate's chaos and metrics
        wiring (see :meth:`repro.storage.base.StorageBackend.companion`).
        """
        return self.pfs.companion(spec)


@dataclass
class ClusterResult:
    """Outcome of one job on a simulated cluster."""

    returns: list[Any]
    elapsed: float
    peak_bytes: list[int]
    spilled_bytes: int
    oom: MemoryLimitExceeded | None = None
    oom_rank: int | None = None

    @property
    def ran_out_of_memory(self) -> bool:
        return self.oom is not None

    @property
    def node_peak_bytes(self) -> int:
        """Sum of per-rank peaks: the paper's per-node peak memory metric."""
        return sum(self.peak_bytes)

    @property
    def max_rank_peak_bytes(self) -> int:
        return max(self.peak_bytes) if self.peak_bytes else 0


class Cluster:
    """A simulated allocation of ``nprocs`` ranks on ``platform``."""

    def __init__(self, platform: Platform, nprocs: int | None = None, *,
                 nodes: int = 1,
                 memory_limit: int | str | None = "auto",
                 pfs: StorageBackend | None = None,
                 storage: str | None = None,
                 keep_timeline: bool = False,
                 chaos: Any = None):
        self.platform = platform
        self.nprocs = nprocs if nprocs is not None else platform.procs_per_node
        if self.nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {self.nprocs}")
        if nodes <= 0:
            raise ValueError(f"nodes must be positive, got {nodes}")
        self.nodes = nodes
        self._memory_limit_spec = memory_limit
        self._limit = self._resolve_limit()
        # Ranks of one node contend for the node's PFS bandwidth.
        sharers = -(-self.nprocs // nodes)
        if pfs is not None:
            # An explicit backend object always wins (tests share one
            # substrate across clusters this way).
            self.pfs = pfs
        else:
            # ``storage`` spec, else REPRO_STORAGE_BACKEND, else "pfs".
            self.pfs = make_backend(storage, platform=platform,
                                    sharers=sharers)
        self.keep_timeline = keep_timeline
        #: Optional chaos injector (duck-typed; see
        #: :class:`repro.ft.injection.ChaosPlan`).  Wired into the PFS
        #: and into every rank's clock at :meth:`run`, so any job can
        #: be chaos-wrapped without code changes.
        self.chaos = chaos
        #: Metrics registry shared by every launch on this cluster; the
        #: scheduler's multi-round drains accumulate into one registry,
        #: so ``metrics.totals()`` is the whole workload's story.
        self.metrics = MetricsRegistry()
        self._trackers: list[MemoryTracker] = []
        #: Monotonic launch counter; combined with the cluster shape it
        #: gives fault-tolerance runs a nonce that invalidates stale
        #: checkpoints from earlier, differently-configured runs.
        self.launches = 0

    def _resolve_limit(self) -> int | None:
        spec = self._memory_limit_spec
        if spec == "auto":
            # Ranks on one node split the node's memory evenly.
            ranks_per_node = -(-self.nprocs // self.nodes)
            return self.platform.node_memory // ranks_per_node
        if spec is None:
            return None
        return parse_size(spec)

    def resize(self, nprocs: int) -> None:
        """Change the gang size for subsequent launches.

        This is the membership actuator of the elastic layer
        (:mod:`repro.ft.elastic`): a rank leave shrinks the gang, a
        join or a scale-up grows it.  An ``"auto"`` memory limit is
        re-derived from the new rank-per-node packing.  The shared PFS
        (and anything on it - checkpoints, spills, staged input) is
        deliberately untouched: storage outlives any one gang
        incarnation, which is exactly what membership-change recovery
        rebalances from.
        """
        if nprocs <= 0:
            raise ValueError(f"nprocs must be positive, got {nprocs}")
        self.nprocs = nprocs
        self._limit = self._resolve_limit()

    def signature(self) -> str:
        """Configuration fingerprint used to stamp checkpoints."""
        return (f"{self.platform.name}:{self.nprocs}p{self.nodes}n:"
                f"mem={self._limit}")

    @property
    def memory_limit_per_rank(self) -> int | None:
        return self._limit

    def run(self, fn: Callable[..., Any], *args: Any,
            allow_oom: bool = False,
            trackers: list[MemoryTracker] | None = None) -> ClusterResult:
        """Run ``fn(env, *args)`` on every rank; gather the outcome.

        ``trackers`` (one per rank) lets a caller carry memory state
        across launches: the multi-job scheduler reuses one tracker set
        for every scheduling round so cached intermediate containers
        stay charged between rounds instead of leaking accounting.
        """
        if trackers is not None and len(trackers) != self.nprocs:
            raise ValueError(
                f"got {len(trackers)} trackers for {self.nprocs} ranks")
        trackers = trackers if trackers is not None else [
            MemoryTracker(self._limit, keep_timeline=self.keep_timeline)
            for _ in range(self.nprocs)
        ]
        self._trackers = trackers
        self.launches += 1
        world = World(self.nprocs, self.platform.network,
                      nnodes=self.nodes)
        chaos = self.chaos
        self.pfs.chaos = chaos
        self.pfs.metrics = self.metrics

        def rank_fn(comm: SimComm) -> Any:
            if chaos is not None:
                comm.slowdown = chaos.slowdown_for(comm.rank)
            shard = self.metrics.shard(comm.rank)
            comm.metrics = shard
            env = RankEnv(comm, trackers[comm.rank], self.pfs, self.platform,
                          metrics=shard)
            return fn(env, *args)

        try:
            world_result = world.run(rank_fn)
        except RankFailedError as failure:
            original = failure.original
            if allow_oom and isinstance(original, MemoryLimitExceeded):
                return ClusterResult(
                    returns=[None] * self.nprocs,
                    elapsed=0.0,
                    peak_bytes=[t.peak for t in trackers],
                    spilled_bytes=self.pfs.spilled_bytes,
                    oom=original,
                    oom_rank=failure.rank,
                )
            raise

        return ClusterResult(
            returns=world_result.returns,
            elapsed=world_result.elapsed,
            peak_bytes=[t.peak for t in trackers],
            spilled_bytes=self.pfs.spilled_bytes,
        )

    @property
    def trackers(self) -> list[MemoryTracker]:
        """Trackers from the most recent :meth:`run` (post-mortem analysis)."""
        return self._trackers
