"""The simulated parallel file system as a named storage backend.

:class:`~repro.io.pfs.ParallelFileSystem` *is* the reference
implementation of the protocol (it subclasses :class:`~repro.storage.
base.StorageBackend` directly, keeping its cost math, ``io.pfs.*``
metric names, and chaos-hook call order bit-identical to the
pre-protocol behaviour).  :class:`PFSBackend` is the spec-addressable
face of it: what ``make_backend("pfs")``, ``Cluster(storage="pfs")``
and ``repro serve --storage pfs`` construct.
"""

from __future__ import annotations

from repro.io.pfs import ParallelFileSystem

__all__ = ["PFSBackend"]


class PFSBackend(ParallelFileSystem):
    """The default backend: the shared PFS sim, unchanged.

    Exists so the factory constructs a distinct class per spec while
    guaranteeing behavioural identity with every
    :class:`ParallelFileSystem` ever built directly - there is no code
    here to diverge.
    """
