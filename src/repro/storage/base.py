"""The :class:`StorageBackend` protocol: one persistence substrate API.

Every durable byte in the system - checkpoints (:mod:`repro.ft.
checkpoint`), stage-cache spill (:mod:`repro.sched.cache`), container
spill streams (:mod:`repro.io.spill`), job input/output files, and the
serve journal (:mod:`repro.serve.journal`) - flows through the narrow
surface defined here.  Call sites never know which backend they are
on: the same checkpoint manager that survives chaos on the simulated
parallel file system survives it on the sharded KV store, because the
retry taxonomy (:mod:`repro.io.errors`), the chaos hooks
(:mod:`repro.ft.injection`), and the metric emission all live in this
base class rather than in any one implementation.

The surface has two halves:

**Staging (cost-free, chaos-free).**  ``store``/``fetch``/``exists``/
``size``/``listdir``/``delete`` move bytes without charging virtual
time or consulting the chaos plan.  They model control-plane access
from outside the timed job - dataset staging before the clock starts,
result inspection after it stops, and driver-process (not rank)
traffic like the serve journal.

**Costed I/O (charged, chaos-injectable).**  ``read``/``write``/
``write_at``/``append`` take a communicator, charge the calling rank's
virtual clock through the backend's cost model, emit to the calling
rank's metric shard, and consult the attached chaos plan first - so
any backend composes with fault injection and recovery for free.

Implementations provide the raw *blob primitives* (a locked
``path -> bytearray`` bucket per path plus a key snapshot) and a cost
model; everything else - accounting, chaos, metrics, the atomicity
contracts below - is inherited.
"""

from __future__ import annotations

import abc
import threading
from dataclasses import dataclass, field
from typing import Any

from repro.io.errors import PFSFileNotFoundError
from repro.mpi.costmodel import PFSModel


@dataclass
class FileStats:
    """Aggregate traffic counters for one storage backend."""

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    by_prefix: dict[str, int] = field(default_factory=dict)

    def _charge(self, path: str, nbytes: int) -> None:
        prefix = path.split("/", 1)[0] if "/" in path else path
        self.by_prefix[prefix] = self.by_prefix.get(prefix, 0) + nbytes


class StorageBackend(abc.ABC):
    """Shared blob store with a cost model, chaos hooks, and metrics.

    **Atomicity/visibility contract** (every implementation, every
    method): an operation that raises :class:`~repro.io.errors.
    TransientIOError` has *not* taken effect - transient faults are
    injected before the mutation, so a retry loop (:func:`~repro.io.
    errors.retrying`) never double-applies.  A completed ``write``/
    ``write_at``/``append`` is immediately visible to every rank (the
    store is globally shared, like a POSIX-consistent PFS).  Torn
    writes - a *prefix* of the payload landing before the writer dies
    - are possible only through :meth:`write` under chaos injection,
    which is why integrity framing (checksums, length frames) guards
    everything recovery might replay.

    Attributes ``chaos`` (a :class:`~repro.ft.injection.ChaosPlan`,
    duck-typed) and ``metrics`` (a :class:`~repro.obs.registry.
    MetricsRegistry`) are installed by the cluster harness; both
    default to ``None`` so backends stand alone in tests.
    """

    #: Spec string naming this backend in configs and CLIs.
    name: str = "abstract"

    #: Metric names emitted by the costed path.  The PFS implementation
    #: overrides these with its historical ``io.pfs.*`` names; every
    #: other backend reports under the ``storage.*`` namespace.
    METRIC_READS = "storage.reads"
    METRIC_WRITES = "storage.writes"
    METRIC_BYTES_READ = "storage.bytes_read"
    METRIC_BYTES_WRITTEN = "storage.bytes_written"

    def __init__(self, model: PFSModel | None = None):
        #: Cost model for the costed half of the API.
        self.model = model or PFSModel(latency=0.0, bandwidth=float("inf"))
        self.stats = FileStats()
        self._stats_lock = threading.Lock()
        #: Optional fault injector (see :class:`repro.ft.injection.
        #: ChaosPlan`); duck-typed to keep the substrate dependency-free.
        self.chaos: Any = None
        #: Optional :class:`repro.obs.registry.MetricsRegistry` (duck-
        #: typed) installed by the cluster harness; costed accesses are
        #: then charged to the calling rank's metric shard.
        self.metrics: Any = None
        self._companions: dict[str, "StorageBackend"] = {}
        self._companion_lock = threading.Lock()

    # ------------------------------------------------- blob primitives

    @abc.abstractmethod
    def _bucket(self, path: str) -> tuple[threading.Lock, dict]:
        """The lock and ``path -> bytearray`` mapping holding ``path``.

        Implementations decide the locking granularity (one global
        lock, per-shard locks, ...); the base class always mutates a
        bucket while holding its lock and never holds two bucket locks
        at once, so per-shard implementations cannot deadlock.
        """

    @abc.abstractmethod
    def _snapshot_keys(self) -> list[str]:
        """Every stored path (unordered); must not require any bucket
        lock held by the caller."""

    @abc.abstractmethod
    def _cost(self, path: str, nbytes: int, write: bool = False) -> float:
        """Virtual seconds one costed access of ``nbytes`` takes."""

    # ----------------------------------------------------- shared glue

    def _shard(self, comm):
        """The calling rank's metric shard, or ``None`` untracked."""
        if self.metrics is None:
            return None
        return self.metrics.shard(comm.rank)

    def _not_found(self, path: str) -> PFSFileNotFoundError:
        """A descriptive not-found error with a sibling-count hint."""
        near = [p for p in self._snapshot_keys()
                if p.rsplit("/", 1)[0] == path.rsplit("/", 1)[0]]
        hint = f"{len(near)} sibling file(s) under the same directory" \
            if near else "no files under that directory"
        return PFSFileNotFoundError(path, hint)

    def _account(self, path: str, nbytes: int, write: bool) -> None:
        with self._stats_lock:
            if write:
                self.stats.bytes_written += nbytes
                self.stats.writes += 1
            else:
                self.stats.bytes_read += nbytes
                self.stats.reads += 1
            self.stats._charge(path, nbytes)

    def _emit(self, comm, nbytes: int, write: bool) -> None:
        shard = self._shard(comm)
        if shard is None:
            return
        if write:
            shard.inc(self.METRIC_WRITES)
            shard.inc(self.METRIC_BYTES_WRITTEN, nbytes)
        else:
            shard.inc(self.METRIC_READS)
            shard.inc(self.METRIC_BYTES_READ, nbytes)

    # -------------------------------------------------------- staging

    def store(self, path: str, data: bytes | bytearray) -> None:
        """Place a file without charging time (dataset staging).

        Atomic full replace; never chaos-injected - staging happens
        outside the fault domain of the timed job.
        """
        lock, files = self._bucket(path)
        with lock:
            files[path] = bytearray(data)

    def fetch(self, path: str) -> bytes:
        """Read a whole file without charging time (result inspection).

        Raises :class:`~repro.io.errors.PFSFileNotFoundError` when the
        path does not exist; never chaos-injected.
        """
        lock, files = self._bucket(path)
        with lock:
            blob = files.get(path)
            if blob is not None:
                return bytes(blob)
        raise self._not_found(path)

    def exists(self, path: str) -> bool:
        lock, files = self._bucket(path)
        with lock:
            return path in files

    def size(self, path: str) -> int:
        lock, files = self._bucket(path)
        with lock:
            blob = files.get(path)
            if blob is not None:
                return len(blob)
        raise self._not_found(path)

    def listdir(self, prefix: str = "") -> list[str]:
        """Every stored path under ``prefix``, sorted.

        The sort makes listing deterministic across backends - the
        property cross-backend bit-identity tests rely on.
        """
        return sorted(p for p in self._snapshot_keys()
                      if p.startswith(prefix))

    def delete(self, path: str) -> None:
        """Remove ``path``; idempotent (a missing path is a no-op)."""
        lock, files = self._bucket(path)
        with lock:
            files.pop(path, None)

    # ------------------------------------------------------ costed I/O

    def read(self, comm, path: str, offset: int = 0,
             size: int | None = None) -> bytes:
        """Read ``size`` bytes at ``offset``, charging the caller's clock.

        Chaos hook: ``on_access`` fires *before* the read; a transient
        fault leaves the store untouched and the clock uncharged, so
        :func:`~repro.io.errors.retrying` wrappers are safe.
        """
        if self.chaos is not None:
            self.chaos.on_access(comm, "read", path)
        lock, files = self._bucket(path)
        with lock:
            blob = files.get(path)
            if blob is not None:
                end = len(blob) if size is None \
                    else min(offset + size, len(blob))
                data = bytes(blob[offset:end])
        if blob is None:
            raise self._not_found(path)
        self._account(path, len(data), write=False)
        self._emit(comm, len(data), write=False)
        comm.advance(self._cost(path, len(data)))
        return data

    def write(self, comm, path: str, data: bytes | bytearray) -> None:
        """Replace ``path`` with ``data``, charging the caller's clock.

        The one operation that can land *torn* under chaos injection:
        ``on_write`` may truncate or bit-flip the payload and hand back
        an exception to raise *after* the bytes are stored - a rank
        dying mid-write leaves a prefix behind, exactly the failure
        mode checksummed checkpoint frames exist to catch.  A
        *transient* fault still fires before any mutation.
        """
        raise_after: BaseException | None = None
        if self.chaos is not None:
            data, raise_after = self.chaos.on_write(comm, path, bytes(data))
        lock, files = self._bucket(path)
        with lock:
            files[path] = bytearray(data)
        self._account(path, len(data), write=True)
        self._emit(comm, len(data), write=True)
        comm.advance(self._cost(path, len(data), write=True))
        if raise_after is not None:
            raise raise_after

    def write_at(self, comm, path: str, offset: int,
                 data: bytes | bytearray) -> None:
        """Positional write (MPI-IO style): ranks fill disjoint regions.

        The file grows as needed; unwritten gaps read as zero bytes.
        Concurrent ``write_at`` calls to *disjoint* regions of one path
        are linearized by the bucket lock and never corrupt each other;
        overlapping regions are caller error.  Chaos hook: ``on_access``
        fires before the mutation (transient-only; positional writes
        are never torn - the region either lands whole or not at all).
        """
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if self.chaos is not None:
            self.chaos.on_access(comm, "write_at", path)
        lock, files = self._bucket(path)
        with lock:
            blob = files.setdefault(path, bytearray())
            end = offset + len(data)
            if len(blob) < end:
                blob.extend(b"\0" * (end - len(blob)))
            blob[offset:end] = data
        self._account(path, len(data), write=True)
        self._emit(comm, len(data), write=True)
        comm.advance(self._cost(path, len(data), write=True))

    def append(self, comm, path: str, data: bytes | bytearray) -> int:
        """Append ``data``; returns the offset it was written at.

        Appends to one path are atomic and totally ordered by the
        bucket lock, so two ranks appending concurrently never
        interleave bytes - each gets a disjoint ``(offset, length)``
        region, the invariant spill chunk tables depend on.  Chaos
        hook: ``on_access`` (transient-only, pre-mutation).
        """
        if self.chaos is not None:
            self.chaos.on_access(comm, "append", path)
        lock, files = self._bucket(path)
        with lock:
            blob = files.setdefault(path, bytearray())
            offset = len(blob)
            blob.extend(data)
        self._account(path, len(data), write=True)
        self._emit(comm, len(data), write=True)
        comm.advance(self._cost(path, len(data), write=True))
        return offset

    # ------------------------------------------------------ companions

    def companion(self, spec: str | None) -> "StorageBackend":
        """A named backend sharing this substrate's chaos/metrics wiring.

        Resolves ``MimirConfig.storage``: ``None`` (or this backend's
        own name) returns ``self``; any other spec returns a
        per-substrate singleton built by :func:`repro.storage.
        make_backend`, so every rank of every job sees the *same*
        companion object - the property that keeps a redirected spill
        readable across ranks and launches.
        """
        if spec is None or spec == self.name:
            return self
        with self._companion_lock:
            backend = self._companions.get(spec)
            if backend is None:
                from repro.storage import make_backend

                backend = make_backend(spec, model=self.model)
                backend.metrics = self.metrics
                backend.chaos = self.chaos
                self._companions[spec] = backend
        return backend

    # ------------------------------------------------------- reporting

    @property
    def spilled_bytes(self) -> int:
        """Bytes written under the ``spill`` prefix (out-of-core traffic)."""
        return self.stats.by_prefix.get("spill", 0)
