"""External-sort storage backend: spill to local runs, then k-way merge.

Grounded in Sanders, "Connecting MapReduce Computations to Realistic
Machine Models" (arXiv:2002.07553): once the working set exceeds
aggregate memory, the optimal plan is the external-sort plan - form
memory-sized sorted runs on node-local storage, then stream a k-way
merge whose footprint is one frame per open run.  This module ships
both halves:

- :class:`ExternalSortBackend` - a :class:`~repro.storage.base.
  StorageBackend` whose ``spill/`` namespace is costed with a
  *node-local* disk model (no cross-node sharing, lower latency)
  while every other path pays the shared-store model.  Run traffic is
  therefore cheap, exactly the asymmetry that makes the external plan
  win.
- :func:`external_sort_file` - a driver that sorts a file of
  fixed-size records into one globally ordered output using only the
  protocol surface (costed reads, framed spill runs via
  :class:`~repro.io.spill.SpillWriter` with a :mod:`~repro.core.codec`
  codec, ``write_at`` output stripes).  Per-rank memory is bounded by
  ``run_budget`` + one frame per open run regardless of input size, so
  a terasort-class input larger than the cluster's aggregate memory
  budget completes where the in-memory path OOMs.

The driver is backend-agnostic - it runs (and is tested) on the PFS
and KV backends too; this backend just prices it realistically.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.mpi.costmodel import PFSModel
from repro.storage.kv import DEFAULT_NSHARDS, ShardedKVBackend

if TYPE_CHECKING:
    from repro.io.spill import SpillReader

#: Prefixes priced with the node-local model (run/spill traffic).
LOCAL_PREFIXES = ("spill/",)

#: How much cheaper node-local scratch is than the shared store:
#: latency divides by this, bandwidth multiplies (a local NVMe/SSD vs.
#: a contended PFS pipe; the precise factor only shapes virtual time).
LOCAL_SPEEDUP = 4.0


class ExternalSortBackend(ShardedKVBackend):
    """Sharded store with a cheap node-local ``spill/`` namespace.

    ``model`` prices the globally shared namespace (inputs, outputs,
    checkpoints, journal); ``local_model`` prices paths under
    :data:`LOCAL_PREFIXES` and defaults to the shared model sped up by
    :data:`LOCAL_SPEEDUP` with no write penalty.  Everything else -
    chaos hooks, retry taxonomy, metrics, atomicity contracts - is the
    inherited protocol behaviour, so recovery code cannot tell this
    backend apart from the others.
    """

    name = "extsort"

    def __init__(self, model: PFSModel | None = None,
                 local_model: PFSModel | None = None,
                 nshards: int = DEFAULT_NSHARDS):
        super().__init__(model, nshards=nshards)
        if local_model is None:
            shared = self.model
            local_model = PFSModel(
                latency=shared.latency / LOCAL_SPEEDUP,
                bandwidth=shared.bandwidth * LOCAL_SPEEDUP,
                io_ratio=shared.io_ratio)
        self.local_model = local_model

    def _cost(self, path: str, nbytes: int, write: bool = False) -> float:
        model = self.local_model if path.startswith(LOCAL_PREFIXES) \
            else self.model
        bw = model.effective_write_bandwidth if write else \
            model.effective_bandwidth
        return model.latency + nbytes / bw


# ------------------------------------------------------------ the driver

@dataclass
class ExternalSortResult:
    """Per-rank outcome of :func:`external_sort_file`."""

    records_local: int      # records this rank merged into the output
    runs_written: int       # sorted runs this rank formed
    output_path: str


class _RunCursor:
    """Streams one sorted run frame-by-frame; holds a single frame."""

    def __init__(self, reader: "SpillReader", record_size: int):
        self._reader = reader
        self._record_size = record_size
        self._frame = b""
        self._pos = 0
        self.exhausted = False
        self._refill()

    def _refill(self) -> None:
        for frame in self._reader:
            if frame:
                self._frame, self._pos = frame, 0
                return
        self.exhausted = True

    def head_key(self, key_size: int) -> bytes:
        return self._frame[self._pos:self._pos + key_size]

    def pop(self) -> bytes:
        record = self._frame[self._pos:self._pos + self._record_size]
        self._pos += self._record_size
        if self._pos >= len(self._frame):
            self._refill()
        return record


def _sample_splitters(env, store, input_path, *, record_size, key_size,
                      nrecords, samples_per_rank=32) -> list[bytes]:
    """Agree on ``size - 1`` key splitters from strided key samples."""
    comm = env.comm
    samples = []
    if nrecords:
        stride = max(1, nrecords // max(1, samples_per_rank))
        for index in range(comm.rank, nrecords, stride * comm.size):
            data = store.read(comm, input_path, index * record_size,
                              key_size)
            samples.append(data)
    merged = sorted(b for part in comm.allgather(samples) for b in part)
    if not merged or comm.size == 1:
        return []
    return [merged[(i * len(merged)) // comm.size]
            for i in range(1, comm.size)]


def _partition(key: bytes, splitters: list[bytes]) -> int:
    lo, hi = 0, len(splitters)
    while lo < hi:
        mid = (lo + hi) // 2
        if key < splitters[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


def external_sort_file(env, input_path: str, output_path: str, *,
                       record_size: int, key_size: int,
                       run_budget: int = 64 * 1024,
                       frame_bytes: int = 8 * 1024,
                       codec: str | None = "zlib",
                       tag: str = "extsort") -> ExternalSortResult:
    """Globally sort ``input_path`` into ``output_path``; collective.

    Classic two-phase external sort over the storage protocol:

    1. **Run formation.**  Each rank reads its contiguous record slice
       in ``run_budget``-sized chunks, sorts each chunk in memory
       (charged to the rank's tracker, so the budget is *enforced*,
       not assumed), range-partitions it by sampled splitters, and
       spills each partition segment as a codec-framed sorted run
       (frames of ``frame_bytes``, so merge read-ahead is one small
       frame per run).
    2. **Merge.**  After a barrier and a run-manifest allgather, rank
       ``p`` k-way heap-merges every rank's runs for partition ``p``
       and stripes the result into ``output_path`` at its exact global
       offset via ``write_at``.

    Only protocol calls are used, so the function runs on any backend;
    on :class:`ExternalSortBackend` the run traffic is priced at
    node-local rates.  Emits ``storage.extsort.runs`` and
    ``storage.extsort.merged_records``.
    """
    # Imported here rather than at module level: the spill/codec stack
    # imports back through repro.io -> repro.storage, and this module is
    # reachable from the package __init__ during that import.
    from repro.core.codec import get_codec
    from repro.core.records import KVLayout
    from repro.io.spill import SpillReader, SpillWriter

    if record_size <= 0 or not 0 < key_size <= record_size:
        raise ValueError(
            f"bad record geometry: record_size={record_size}, "
            f"key_size={key_size}")
    comm, store, tracker = env.comm, env.pfs, env.tracker
    run_budget = max(record_size, run_budget - run_budget % record_size)

    nbytes = store.size(input_path)
    if nbytes % record_size:
        raise ValueError(
            f"{input_path!r} is {nbytes} bytes, not a multiple of "
            f"record_size {record_size}")
    nrecords = nbytes // record_size
    splitters = _sample_splitters(env, store, input_path,
                                  record_size=record_size,
                                  key_size=key_size, nrecords=nrecords)
    nparts = comm.size

    per_rank = -(-nrecords // comm.size)
    first = min(nrecords, comm.rank * per_rank)
    last = min(nrecords, first + per_rank)
    layout = KVLayout(key_len=key_size, val_len=record_size - key_size)
    run_codec = get_codec(codec, layout)

    # ---- phase 1: memory-bounded sorted runs, partitioned by splitter
    manifest: list[tuple[int, str, list[tuple[int, int]]]] = []
    part_bytes = [0] * nparts
    position, chunk_index = first, 0
    while position < last:
        count = min(run_budget // record_size, last - position)
        span = count * record_size
        tracker.allocate(span, "extsort_run")
        try:
            chunk = store.read(comm, input_path,
                               position * record_size, span)
            records = sorted(
                (chunk[off:off + record_size]
                 for off in range(0, span, record_size)),
                key=lambda r: r[:key_size])
            env.charge_compute(span)
            segments: list[list[bytes]] = [[] for _ in range(nparts)]
            for record in records:
                segments[_partition(record[:key_size],
                                    splitters)].append(record)
            for part, segment in enumerate(segments):
                if not segment:
                    continue
                writer = SpillWriter(
                    store, comm,
                    f"{tag}/p{part}/c{chunk_index}", codec=run_codec)
                payload = b"".join(segment)
                part_bytes[part] += len(payload)
                step = max(record_size,
                           frame_bytes - frame_bytes % record_size)
                for off in range(0, len(payload), step):
                    writer.write_chunk(payload[off:off + step])
                manifest.append((part, writer.path, writer.chunks))
        finally:
            tracker.free(span, "extsort_run")
        position += count
        chunk_index += 1
    env.metrics.inc("storage.extsort.runs", len(manifest))

    # ---- phase 2: every run durable; merge this rank's partition
    counts = comm.allgather(part_bytes)
    my_offset = sum(sum(rank_counts[:comm.rank])
                    for rank_counts in counts)
    runs = [entry for rank_manifest in comm.allgather(manifest)
            for entry in rank_manifest if entry[0] == comm.rank]

    cursors = []
    for _part, path, chunks in runs:
        tracker.allocate(frame_bytes, "extsort_merge")
        cursors.append(_RunCursor(
            SpillReader(store, comm, path, list(chunks), codec=run_codec),
            record_size))
    heap = [(cursor.head_key(key_size), seq, cursor)
            for seq, cursor in enumerate(cursors) if not cursor.exhausted]
    heapq.heapify(heap)

    tracker.allocate(run_budget, "extsort_merge")
    out = bytearray()
    written = merged = 0
    try:
        while heap:
            _key, seq, cursor = heapq.heappop(heap)
            out += cursor.pop()
            merged += 1
            if not cursor.exhausted:
                heapq.heappush(heap, (cursor.head_key(key_size), seq,
                                      cursor))
            if len(out) >= run_budget:
                store.write_at(comm, output_path, my_offset + written, out)
                written += len(out)
                out = bytearray()
        if out:
            store.write_at(comm, output_path, my_offset + written, out)
        elif written == 0 and comm.rank == 0 \
                and not store.exists(output_path):
            store.write_at(comm, output_path, 0, b"")
    finally:
        tracker.free(run_budget, "extsort_merge")
        for _part, path, _chunks in runs:
            store.delete(path)
        tracker.free(frame_bytes * len(cursors), "extsort_merge")
    env.charge_compute(merged * record_size)
    env.metrics.inc("storage.extsort.merged_records", merged)
    comm.barrier()
    return ExternalSortResult(records_local=merged,
                              runs_written=sum(1 for entry in manifest),
                              output_path=output_path)
