"""Sharded in-memory KV storage backend.

The first non-PFS implementation of the :class:`~repro.storage.base.
StorageBackend` protocol: paths hash deterministically onto ``nshards``
independent shards, each a ``path -> bytearray`` dict guarded by its
own lock.  The layering follows AppScale's datastore shape (one
datastore API over pluggable storage environments): the protocol is
the datastore API, the shards are the environment.

Semantics vs. the PFS sim:

- **Sharded concurrency.**  Operations on paths in different shards
  never contend on a lock; the PFS serializes everything through one
  lock.  Shard assignment is a pure function of the path
  (``crc32(path) % nshards``), so it is stable across runs, ranks, and
  processes - a rank can compute another rank's shard without
  communicating.
- **Memory-speed cost model.**  The default model has no per-node
  ``sharers`` contention and no write penalty: an aggregate RAM-backed
  store is symmetric and contention is already captured by the shard
  locks.  The factory derives a model from the platform (a fraction of
  the PFS latency, a multiple of its bandwidth) so virtual time stays
  meaningful on every platform.
- **Durability.**  None across process restarts - the store *is* the
  process.  Within the simulation it plays the durable role (it
  survives simulated rank deaths and daemon kills, which are
  thread-level), so checkpoints, recovery, and journal replay all
  behave identically; the operator's guide (docs/storage.md) spells
  out when that distinction matters.

Chaos hooks, retry taxonomy, stats, and ``storage.*`` metrics are all
inherited from the base class.
"""

from __future__ import annotations

import threading
import zlib

from repro.mpi.costmodel import PFSModel
from repro.storage.base import StorageBackend

#: Default shard count: enough to spread a few dozen concurrent ranks
#: with a short, deterministic assignment function.
DEFAULT_NSHARDS = 16


class ShardedKVBackend(StorageBackend):
    """In-memory KV store sharded by path hash, one lock per shard."""

    name = "kv"

    def __init__(self, model: PFSModel | None = None,
                 nshards: int = DEFAULT_NSHARDS):
        if nshards <= 0:
            raise ValueError(f"nshards must be positive, got {nshards}")
        super().__init__(model)
        self.nshards = nshards
        self._shards: list[dict[str, bytearray]] = [
            {} for _ in range(nshards)]
        self._locks: list[threading.Lock] = [
            threading.Lock() for _ in range(nshards)]

    def shard_of(self, path: str) -> int:
        """Deterministic shard assignment: ``crc32(path) % nshards``."""
        return zlib.crc32(path.encode()) % self.nshards

    # --------------------------------------------------- blob primitives

    def _bucket(self, path: str) -> tuple[threading.Lock, dict]:
        index = self.shard_of(path)
        return self._locks[index], self._shards[index]

    def _snapshot_keys(self) -> list[str]:
        keys: list[str] = []
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                keys.extend(shard)
        return keys

    def _cost(self, path: str, nbytes: int, write: bool = False) -> float:
        bw = self.model.effective_write_bandwidth if write else \
            self.model.effective_bandwidth
        return self.model.latency + nbytes / bw

    # -------------------------------------------------------- inspection

    def shard_sizes(self) -> list[int]:
        """Files per shard - the balance view operators monitor."""
        sizes = []
        for lock, shard in zip(self._locks, self._shards):
            with lock:
                sizes.append(len(shard))
        return sizes
