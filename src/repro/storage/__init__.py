"""Pluggable storage backends behind the :class:`StorageBackend` protocol.

Three implementations ship (see docs/storage.md for the operator's
guide):

- ``pfs`` - the simulated shared parallel file system, the default and
  the reference implementation (:mod:`repro.io.pfs`).
- ``kv`` - a sharded in-memory KV store with per-shard locks and
  deterministic ``crc32(path) % nshards`` placement
  (:mod:`repro.storage.kv`).
- ``extsort`` - the KV store plus a cheap node-local ``spill/``
  namespace and the external-sort driver that lets terasort-class
  inputs exceed aggregate memory (:mod:`repro.storage.extsort`).

Selection points, in precedence order: an explicit backend object
passed to :class:`~repro.cluster.Cluster`; a spec string
(``Cluster(storage="kv")`` / ``repro serve --storage kv``); the
``REPRO_STORAGE_BACKEND`` environment variable (how the CI storage
matrix sweeps the tier-1 subset); and finally ``pfs``.  Per-job spill
redirection uses :attr:`repro.core.config.MimirConfig.storage`, which
resolves through :meth:`StorageBackend.companion`.

Implementation note: the concrete backends are imported lazily (PEP
562) because the PFS backend lives in :mod:`repro.io.pfs`, whose import
passes through this package - eager re-exports would cycle.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

from repro.mpi.costmodel import PFSModel
from repro.storage.base import FileStats, StorageBackend

if TYPE_CHECKING:
    from repro.mpi.platforms import Platform

__all__ = [
    "BACKENDS",
    "ExternalSortBackend",
    "ExternalSortResult",
    "FileStats",
    "PFSBackend",
    "ShardedKVBackend",
    "StorageBackend",
    "default_backend_name",
    "external_sort_file",
    "make_backend",
]

#: Every spec string ``make_backend`` accepts, in documentation order.
BACKENDS = ("pfs", "kv", "extsort")

#: Environment variable consulted when no spec is given anywhere else.
ENV_VAR = "REPRO_STORAGE_BACKEND"

#: How much faster the RAM-backed KV store is than the platform's PFS:
#: latency divides by this, bandwidth multiplies.  Fan-in (``io_ratio``)
#: and the small-writer ``write_penalty`` do not apply to a symmetric
#: in-memory store, so the derived model drops both.
KV_SPEEDUP = 8.0

_LAZY = {
    "PFSBackend": "repro.storage.pfs",
    "ShardedKVBackend": "repro.storage.kv",
    "ExternalSortBackend": "repro.storage.extsort",
    "ExternalSortResult": "repro.storage.extsort",
    "external_sort_file": "repro.storage.extsort",
}


def __getattr__(name: str):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module), name)


def default_backend_name() -> str:
    """The spec used when neither code nor CLI chose one."""
    spec = os.environ.get(ENV_VAR, "pfs") or "pfs"
    if spec not in BACKENDS:
        raise ValueError(
            f"{ENV_VAR}={spec!r} is not a storage backend; "
            f"choose from {', '.join(BACKENDS)}")
    return spec


def _kv_model(model: PFSModel | None) -> PFSModel | None:
    if model is None:
        return None
    return PFSModel(latency=model.latency / KV_SPEEDUP,
                    bandwidth=model.bandwidth * KV_SPEEDUP)


def make_backend(spec: str | None = None, *,
                 platform: "Platform | None" = None,
                 sharers: int = 1,
                 model: PFSModel | None = None) -> StorageBackend:
    """Build the backend named by ``spec``.

    ``spec=None`` falls back to :func:`default_backend_name` (which
    honours ``REPRO_STORAGE_BACKEND``).  The cost model comes from
    ``model`` if given, else from ``platform.pfs``, else each backend's
    zero-cost default; ``kv`` and ``extsort`` derive their memory-speed
    / node-local variants from it so virtual time stays meaningful on
    every platform.  ``sharers`` only applies to ``pfs`` (per-node
    bandwidth contention has no analogue on the sharded stores).
    """
    spec = spec or default_backend_name()
    if model is None and platform is not None:
        model = platform.pfs
    if spec == "pfs":
        from repro.storage.pfs import PFSBackend

        return PFSBackend(model, sharers=sharers)
    if spec == "kv":
        from repro.storage.kv import ShardedKVBackend

        return ShardedKVBackend(_kv_model(model))
    if spec == "extsort":
        from repro.storage.extsort import ExternalSortBackend

        return ExternalSortBackend(model)
    raise ValueError(
        f"unknown storage backend {spec!r}; "
        f"choose from {', '.join(BACKENDS)}")
