"""Fault tolerance: checkpoint/restart and chaos injection for MapReduce jobs.

The paper notes that MR-MPI "is unable to handle system faults" and
that the authors addressed this in prior work (Guo et al., SC'15,
"Fault Tolerant MapReduce-MPI for HPC Clusters").  This package
reproduces the checkpoint/restart flavour of that design on top of the
simulated cluster, and hardens it against the failure modes that
dominate on machines like Mira (node loss, Lustre/GPFS hiccups,
partial writes):

- :class:`CheckpointManager` persists phase outputs (KVCs and small
  control state) to the parallel file system as CRC32-checksummed,
  length-framed, nonce-stamped records with collective completion
  markers - a torn, corrupt, or stale checkpoint is detected and
  recomputed, never silently replayed;
- :class:`FaultPlan` / :class:`SimulatedRankFailure` inject
  deterministic rank failures at named points;
- :class:`ChaosPlan` generalizes injection to transient PFS errors,
  torn writes, bit corruption, and straggler ranks, all seeded and
  deterministic;
- :func:`run_with_recovery` restarts a failed job with per-class
  restart budgets and a structured failure log, letting it skip phases
  whose checkpoints completed - so work lost to a failure is bounded
  by one phase instead of the whole job;
- :func:`run_chaos_sweep` (``repro.ft.chaos``) sweeps seeded random
  fault schedules over WordCount and checks bit-identical convergence;
- :mod:`repro.ft.elastic` adds the *reactive* layer: straggler
  detection, speculative task re-execution, elastic gang membership
  with checkpoint re-balancing, and a scaling policy
  (:func:`run_elastic`, :class:`ElasticPolicy`,
  :class:`ScalingPolicy`).
"""

from repro.ft.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    CheckpointNotFoundError,
    CheckpointStaleError,
)
from repro.ft.faults import FaultPlan, SimulatedRankFailure, TornWriteFailure
from repro.ft.injection import ChaosPlan, InjectedFault
from repro.ft.runner import (
    FailureRecord,
    FTResult,
    classify_failure,
    run_with_recovery,
)

_ELASTIC_NAMES = frozenset((
    "ElasticContext", "ElasticPolicy", "ElasticResult",
    "ElasticStageHooks", "MembershipChange", "ScalingPolicy",
    "SpeculationReport", "StragglerEvicted", "StragglerMonitor",
    "restore_rebalanced", "run_elastic", "speculative_map",
))


def __getattr__(name: str):
    # Lazy: the harnesses pull in app/benchmark machinery, and eager
    # import would also trip runpy's double-import warning for
    # ``python -m repro.ft.chaos``.
    if name in ("ChaosSweepResult", "ChaosRunRecord", "run_chaos_sweep"):
        from repro.ft import chaos

        return getattr(chaos, name)
    if name in _ELASTIC_NAMES:
        from repro.ft import elastic

        return getattr(elastic, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChaosPlan",
    "ChaosSweepResult",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointNotFoundError",
    "CheckpointStaleError",
    "ElasticContext",
    "ElasticPolicy",
    "ElasticResult",
    "ElasticStageHooks",
    "FailureRecord",
    "FTResult",
    "FaultPlan",
    "InjectedFault",
    "MembershipChange",
    "ScalingPolicy",
    "SimulatedRankFailure",
    "SpeculationReport",
    "StragglerEvicted",
    "StragglerMonitor",
    "TornWriteFailure",
    "classify_failure",
    "restore_rebalanced",
    "run_chaos_sweep",
    "run_elastic",
    "run_with_recovery",
    "speculative_map",
]
