"""Fault tolerance: phase-level checkpoint/restart for MapReduce jobs.

The paper notes that MR-MPI "is unable to handle system faults" and
that the authors addressed this in prior work (Guo et al., SC'15,
"Fault Tolerant MapReduce-MPI for HPC Clusters").  This package
reproduces the checkpoint/restart flavour of that design on top of the
simulated cluster:

- :class:`CheckpointManager` persists phase outputs (KVCs and small
  control state) to the parallel file system with collective
  completion markers;
- :class:`FaultPlan` / :class:`SimulatedRankFailure` inject
  deterministic rank failures at named points;
- :func:`run_with_recovery` restarts a failed job, letting it skip
  phases whose checkpoints completed - so work lost to a failure is
  bounded by one phase instead of the whole job.
"""

from repro.ft.checkpoint import CheckpointManager
from repro.ft.faults import FaultPlan, SimulatedRankFailure
from repro.ft.runner import FTResult, run_with_recovery

__all__ = [
    "CheckpointManager",
    "FTResult",
    "FaultPlan",
    "SimulatedRankFailure",
    "run_with_recovery",
]
