"""Seeded, deterministic chaos injection across the whole stack.

:class:`ChaosPlan` generalizes :class:`~repro.ft.faults.FaultPlan`
beyond "a rank dies at a named tag" to the failure modes that dominate
at Mira/Comet scale:

- **transient PFS errors** - any ``read``/``write``/``write_at``/
  ``append`` may raise :class:`~repro.io.errors.TransientIOError`
  before taking effect (a Lustre/GPFS hiccup that succeeds on retry);
- **torn writes** - a rank crashes mid-write, leaving a prefix of the
  file on the PFS (:class:`~repro.ft.faults.TornWriteFailure`);
- **silent bit corruption** of files under a configurable prefix
  (checkpoints by default - exactly the data that integrity framing
  must catch);
- **rank death at tags**, both explicitly scheduled (``fail_at``, the
  :class:`FaultPlan` surface) and rate-based;
- **stragglers** - a per-rank clock-slowdown multiplier applied to all
  local (compute + I/O) virtual time via ``SimComm.advance``.

Determinism: every rate-based decision hashes ``(seed, kind, rank,
per-rank op index)`` - a pure function, independent of thread
interleaving.  One caveat keeps full-run replay approximate: when a
rank crashes, how many operations a *bystander* completes before the
abort reaches it is scheduling-dependent (see "The rank runtime" in
docs/architecture.md), so the set of decision points actually reached
- and therefore the realized fault list - can vary slightly across
executions of the same plan.  What never varies is the answer: the
recovery guarantee under test is bit-identical output, not a
bit-identical fault trace.  Each rate-based fault fires at most once
per decision point (the plan carries fired-state across restarts, like
:class:`FaultPlan`), and at most ``max_faults`` fire in total, so a
chaotic run always converges given a restart budget.

Hooks are consumed by :class:`~repro.io.pfs.ParallelFileSystem`
(``chaos`` attribute) and :class:`~repro.cluster.Cluster`
(``chaos=`` argument), so any existing job can be chaos-wrapped
without code changes.
"""

from __future__ import annotations

import random
import threading
import zlib
from dataclasses import dataclass, field

from repro.ft.faults import FaultPlan, SimulatedRankFailure, TornWriteFailure
from repro.io.errors import TransientIOError

#: Checkpoint-phase tags a chaos-wrapped job is expected to expose;
#: :class:`ChaosPlan.random` schedules rate-based deaths against these
#: plus whatever the job itself passes to ``check``.
_HASH_SPACE = float(1 << 32)


@dataclass(frozen=True)
class InjectedFault:
    """One fault the plan actually fired (or armed, for stragglers)."""

    kind: str    # "transient-io" | "torn-write" | "corruption"
    #          | "rank-death" | "straggler" | "membership-leave"
    rank: int
    where: str   # tag, or "op:path#opindex"
    detail: str = ""


class RankLeaveEvent(SimulatedRankFailure):
    """A scheduled membership departure (not a crash).

    Raised by :meth:`ChaosPlan.membership_check` when a rank's
    scheduled leave time has passed.  An elastic driver
    (:func:`repro.ft.elastic.run_elastic`) promotes it from a fatal
    restart to a gang-shrink; the plain restart driver treats it like
    a rank death.
    """

    #: Consumed by :func:`repro.ft.runner.classify_failure`.
    failure_class = "membership-leave"

    def __init__(self, tag: str, rank: int, at: float):
        super().__init__(tag, rank)
        self.at = at
        self.args = (f"scheduled leave of rank {rank} at {tag!r} "
                     f"(due t={at:g})",)


@dataclass(frozen=True)
class MembershipEvent:
    """One scheduled membership change: ``rank`` leaves/joins at ``at``.

    ``at`` is a virtual time; the event becomes *due* once the
    observing clock passes it.  A ``join`` carries no rank identity
    (the new rank gets the next id when the gang grows); a ``leave``
    names the rank that departs.
    """

    at: float
    kind: str          # "leave" | "join"
    rank: int | None = None

    def __post_init__(self):
        if self.kind not in ("leave", "join"):
            raise ValueError(
                f"membership event kind must be 'leave' or 'join', "
                f"got {self.kind!r}")
        if not self.at >= 0.0:  # also rejects NaN
            raise ValueError(
                f"membership event time must be >= 0, got {self.at!r}")
        if self.kind == "leave":
            if self.rank is None or self.rank < 0:
                raise ValueError(
                    f"leave event needs a non-negative rank, "
                    f"got {self.rank!r}")
        elif self.rank is not None:
            raise ValueError("join events assign the next rank id; "
                             f"got explicit rank {self.rank!r}")


class ChaosPlan:
    """A seeded schedule of injectable faults; also a ``FaultPlan``.

    All rates are per-operation probabilities in ``[0, 1]``.  Torn
    writes and corruption only target paths under
    ``corruptible_prefix`` (checkpoints by default): tearing or
    flipping bits in an *unprotected* file - the job's input, say -
    would silently change the answer, which is a test-harness bug, not
    a survivable fault.  Transient errors, deaths and stragglers are
    fair game everywhere because they are fail-stop or timing-only.
    """

    def __init__(self, seed: int = 0, *,
                 io_error_rate: float = 0.0,
                 torn_write_rate: float = 0.0,
                 corruption_rate: float = 0.0,
                 tag_death_rate: float = 0.0,
                 stragglers: dict[int, float] | None = None,
                 membership: "list[MembershipEvent | tuple] | None" = None,
                 corruptible_prefix: str = "ckpt/",
                 max_faults: int = 8):
        for name, rate in (("io_error_rate", io_error_rate),
                           ("torn_write_rate", torn_write_rate),
                           ("corruption_rate", corruption_rate),
                           ("tag_death_rate", tag_death_rate)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        self.seed = seed
        self.io_error_rate = io_error_rate
        self.torn_write_rate = torn_write_rate
        self.corruption_rate = corruption_rate
        self.tag_death_rate = tag_death_rate
        self.stragglers = dict(stragglers or {})
        # Mid-run membership schedule, validated at construction like
        # the straggler-factor check: a malformed event is a harness
        # bug, not a survivable fault.
        events = [ev if isinstance(ev, MembershipEvent)
                  else MembershipEvent(*ev) for ev in (membership or [])]
        seen_events = set()
        for ev in events:
            point = (ev.kind, ev.rank, ev.at)
            if point in seen_events:
                raise ValueError(f"duplicate membership event {ev}")
            seen_events.add(point)
        self.membership = sorted(events, key=lambda ev: (ev.at, ev.kind))
        self._membership_fired: set[MembershipEvent] = set()
        self.corruptible_prefix = corruptible_prefix
        self.max_faults = max_faults
        self.deaths = FaultPlan()
        self._lock = threading.Lock()
        self._op_index: dict[int, int] = {}     # rank -> ops seen
        self._seen_tags: set[tuple[str, int]] = set()
        self._fired = 0
        self.injected: list[InjectedFault] = []
        for rank, factor in sorted(self.stragglers.items()):
            if factor < 1.0:
                raise ValueError(
                    f"straggler factor must be >= 1, got {factor}")
            self.injected.append(InjectedFault(
                "straggler", rank, "clock", f"x{factor:g}"))

    # ------------------------------------------------- deterministic dice

    def _roll(self, kind: str, rank: int, point: str, rate: float) -> bool:
        """Seeded coin flip, independent of thread interleaving."""
        if rate <= 0.0:
            return False
        key = f"{self.seed}/{kind}/{rank}/{point}".encode()
        return zlib.crc32(key) / _HASH_SPACE < rate

    def _fire(self, fault: InjectedFault) -> bool:
        """Record a rate-based fault unless the global cap is spent."""
        with self._lock:
            if self._fired >= self.max_faults:
                return False
            self._fired += 1
            self.injected.append(fault)
            return True

    def _next_op(self, rank: int) -> int:
        with self._lock:
            n = self._op_index.get(rank, 0)
            self._op_index[rank] = n + 1
            return n

    @staticmethod
    def _count_fault(comm) -> None:
        shard = getattr(comm, "metrics", None)
        if shard is not None:
            shard.inc("ft.faults.injected")

    # -------------------------------------------- FaultPlan-compatible

    def fail_at(self, tag: str, rank: int) -> "ChaosPlan":
        """Schedule one explicit rank death (FaultPlan surface)."""
        self.deaths.fail_at(tag, rank)
        return self

    def check(self, tag: str, rank: int) -> None:
        """Maybe kill ``rank`` at ``tag`` (explicit or rate-based)."""
        try:
            self.deaths.check(tag, rank)
        except SimulatedRankFailure:
            with self._lock:
                self.injected.append(
                    InjectedFault("rank-death", rank, tag, "scheduled"))
            raise
        point = (tag, rank)
        with self._lock:
            if point in self._seen_tags:
                return
            self._seen_tags.add(point)
        if self._roll("death", rank, tag, self.tag_death_rate):
            if self._fire(InjectedFault("rank-death", rank, tag, "seeded")):
                raise SimulatedRankFailure(tag, rank)

    @property
    def pending(self) -> set[tuple[str, int]]:
        return self.deaths.pending

    @property
    def fired_count(self) -> int:
        with self._lock:
            return self._fired + len(self.deaths.fired)

    def counts(self) -> dict[str, int]:
        """Injected-fault tally by kind (stragglers excluded)."""
        tally: dict[str, int] = {}
        with self._lock:
            for fault in self.injected:
                if fault.kind == "straggler":
                    continue
                tally[fault.kind] = tally.get(fault.kind, 0) + 1
        return tally

    # ----------------------------------------------------- PFS hooks

    def on_access(self, comm, op: str, path: str) -> None:
        """Pre-operation hook for read/write_at/append (and write).

        Raises :class:`TransientIOError` *before* the operation takes
        effect; a transient fault never partially applies.
        """
        rank = comm.rank
        n = self._next_op(rank)
        where = f"{op}:{path}#{n}"
        if self._roll("transient", rank, str(n), self.io_error_rate):
            if self._fire(InjectedFault("transient-io", rank, where)):
                self._count_fault(comm)
                raise TransientIOError(op, path, rank)

    def on_write(self, comm, path: str,
                 data: bytes) -> tuple[bytes, BaseException | None]:
        """Full-write hook: transient, torn, or corrupted.

        Returns the (possibly truncated or bit-flipped) payload to
        store, plus an exception the file system must raise *after*
        storing it - a torn write leaves its prefix behind.
        """
        self.on_access(comm, "write", path)
        rank = comm.rank
        with self._lock:
            n = self._op_index.get(rank, 0) - 1  # index consumed above
        if not path.startswith(self.corruptible_prefix) or not data:
            return data, None
        if self._roll("torn", rank, str(n), self.torn_write_rate):
            kept = len(data) // 2
            fault = InjectedFault("torn-write", rank,
                                  f"write:{path}#{n}", f"kept {kept} bytes")
            if self._fire(fault):
                self._count_fault(comm)
                return data[:kept], TornWriteFailure(
                    path, rank, kept, len(data))
        if self._roll("corrupt", rank, str(n), self.corruption_rate):
            bit = zlib.crc32(f"{self.seed}/bitpos/{rank}/{n}".encode()) \
                % (len(data) * 8)
            fault = InjectedFault("corruption", rank,
                                  f"write:{path}#{n}", f"bit {bit} flipped")
            if self._fire(fault):
                self._count_fault(comm)
                mutated = bytearray(data)
                mutated[bit // 8] ^= 1 << (bit % 8)
                return bytes(mutated), None
        return data, None

    # -------------------------------------------------- cluster hook

    def slowdown_for(self, rank: int) -> float:
        """Clock multiplier for ``rank`` (1.0 = healthy)."""
        return self.stragglers.get(rank, 1.0)

    # ---------------------------------------------------- membership hooks

    def membership_check(self, comm, tag: str) -> None:
        """Raise :class:`RankLeaveEvent` if this rank's leave is due.

        Called from job probe points (next to :meth:`check`): a leave
        scheduled at virtual time ``t`` fires at the first probe the
        rank reaches with its clock past ``t``.  Fires at most once.
        """
        for ev in self.membership:
            if ev.kind != "leave" or ev.rank != comm.rank:
                continue
            if comm.clock.time < ev.at:
                continue
            with self._lock:
                if ev in self._membership_fired:
                    continue
                self._membership_fired.add(ev)
                self.injected.append(InjectedFault(
                    "membership-leave", comm.rank, tag, f"due t={ev.at:g}"))
            raise RankLeaveEvent(tag, comm.rank, ev.at)

    def membership_due(self, now: float, *,
                       nranks: int | None = None) -> list[MembershipEvent]:
        """Consume every not-yet-fired event due by virtual time ``now``.

        The gang-boundary flavour of :meth:`membership_check`: an
        elastic driver sweeps this between launches to apply joins (and
        leaves whose rank never reached a probe, or that no longer
        exists after earlier shrinks - those are reported with
        ``rank=None`` semantics by the caller).
        """
        due: list[MembershipEvent] = []
        with self._lock:
            for ev in self.membership:
                if ev.at > now or ev in self._membership_fired:
                    continue
                if ev.kind == "leave" and nranks is not None \
                        and ev.rank is not None and ev.rank >= nranks:
                    # The target rank id no longer exists; mark it
                    # spent so it cannot fire against a future join.
                    self._membership_fired.add(ev)
                    continue
                self._membership_fired.add(ev)
                due.append(ev)
        return due

    def remove_rank(self, rank: int) -> None:
        """Renumber per-rank state after ``rank`` left the gang.

        Rank ids above the departed rank shift down by one (the next
        launch numbers the survivors densely), so straggler factors
        must follow their *host*: the departed entry disappears - a
        straggling rank that dies or is evicted takes its slowness with
        it - and higher entries slide down.  Explicitly scheduled
        deaths and membership events keep their rank indices: they
        model faults at gang *positions*, matching how the harnesses
        seed them.
        """
        self.stragglers = {
            (r if r < rank else r - 1): factor
            for r, factor in self.stragglers.items() if r != rank
        }

    # ------------------------------------------------------ factories

    @classmethod
    def random(cls, seed: int, nranks: int, *,
               tags: tuple[str, ...] = (),
               intensity: float = 1.0,
               membership: bool = False,
               max_faults: int = 6) -> "ChaosPlan":
        """A mixed random schedule: deaths, I/O faults, stragglers.

        ``seed`` fully determines the schedule.  ``intensity`` scales
        every rate; ``tags`` optionally adds explicit deaths at points
        the target job is known to expose.  ``membership`` additionally
        schedules a seeded mid-run rank leave (and, half the time, a
        later join); the draws happen after the classic ones, so plans
        without membership keep their historical schedules seed for
        seed.
        """
        rng = random.Random(seed)
        stragglers = {
            rank: round(rng.uniform(1.5, 4.0), 2)
            for rank in range(nranks) if rng.random() < 0.25
        }
        kwargs = dict(
            seed=seed,
            io_error_rate=min(1.0, rng.choice([0.0, 0.02, 0.05]) * intensity),
            torn_write_rate=min(1.0, rng.choice([0.0, 0.1, 0.3]) * intensity),
            corruption_rate=min(1.0, rng.choice([0.0, 0.1, 0.3]) * intensity),
            tag_death_rate=min(1.0, rng.choice([0.0, 0.1, 0.2]) * intensity),
            stragglers=stragglers,
            max_faults=max_faults,
        )
        death = rng.choice(tags) if tags and rng.random() < 0.5 else None
        death_rank = rng.randrange(nranks) if death is not None else 0
        if membership and nranks > 1:
            events = [MembershipEvent(round(rng.uniform(0.0, 0.05), 4),
                                      "leave", rng.randrange(nranks))]
            if rng.random() < 0.5:
                events.append(MembershipEvent(
                    round(rng.uniform(0.05, 0.2), 4), "join"))
            kwargs["membership"] = events
        plan = cls(**kwargs)
        if death is not None:
            plan.fail_at(death, death_rank)
        return plan

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ChaosPlan(seed={self.seed}, io={self.io_error_rate}, "
                f"torn={self.torn_write_rate}, "
                f"corrupt={self.corruption_rate}, "
                f"death={self.tag_death_rate}, "
                f"stragglers={self.stragglers}, fired={self.fired_count})")
