"""Deterministic fault injection for simulated ranks.

A :class:`FaultPlan` names ``(checkpoint_tag, rank)`` points at which a
rank dies with :class:`SimulatedRankFailure`.  Each planned failure
fires exactly once, even across job restarts - the plan itself carries
the fired-state, mirroring a transient hardware fault that does not
recur after recovery.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


class SimulatedRankFailure(RuntimeError):
    """An injected rank crash (stands in for a node/process fault)."""

    def __init__(self, tag: str, rank: int):
        self.tag = tag
        self.rank = rank
        super().__init__(f"injected failure of rank {rank} at {tag!r}")


class TornWriteFailure(SimulatedRankFailure):
    """A rank crash *mid-write*: only a prefix of the data landed.

    The surviving file is torn - exactly the hazard that forces
    checkpoints to be checksummed and length-framed rather than
    trusted.  Recovery-wise it is a rank death (the allocation is torn
    down and resubmitted), but it is classified separately so a failure
    log can show which restarts left partial files behind.
    """

    def __init__(self, path: str, rank: int, kept: int, total: int):
        self.path = path
        self.kept = kept
        self.total = total
        super().__init__(f"torn write of {path!r}", rank)
        # Overwrite the generic message with the torn-write specifics.
        self.args = (f"injected torn write on rank {rank}: "
                     f"{path!r} kept {kept}/{total} bytes",)


@dataclass
class FaultPlan:
    """Failures to inject: ``{(tag, rank), ...}``."""

    failures: set[tuple[str, int]] = field(default_factory=set)
    _fired: set[tuple[str, int]] = field(default_factory=set)
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def fail_at(self, tag: str, rank: int) -> "FaultPlan":
        """Schedule one failure; returns self for chaining."""
        self.failures.add((tag, rank))
        return self

    def check(self, tag: str, rank: int) -> None:
        """Raise :class:`SimulatedRankFailure` if this point is armed."""
        point = (tag, rank)
        with self._lock:
            if point in self.failures and point not in self._fired:
                self._fired.add(point)
                raise SimulatedRankFailure(tag, rank)

    @property
    def fired(self) -> set[tuple[str, int]]:
        with self._lock:
            return set(self._fired)

    @property
    def pending(self) -> set[tuple[str, int]]:
        with self._lock:
            return self.failures - self._fired
