"""Deterministic chaos harness: seeded fault storms must not change answers.

The robustness analog of the figure benchmarks: sweep N seeded random
fault schedules (mixing rank death, transient I/O errors, torn
checkpoint writes, bit corruption, and stragglers) over a checkpointed
WordCount and assert that every run converges to output bit-identical
to a fault-free baseline, with the failure log accounting for the
injected faults.  Each schedule is fully determined by its seed, so a
failing seed reproduces exactly.

Run a quick sweep from the command line::

    PYTHONPATH=src python -m repro.ft.chaos --seeds 20
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field

from repro.cluster import Cluster
from repro.core import Mimir, MimirConfig, pack_u64, unpack_u64
from repro.ft.injection import ChaosPlan
from repro.ft.runner import FTResult, run_with_recovery
from repro.mpi import COMET

#: Tags the harness job exposes; schedules may plant deaths at these.
CHAOS_TAGS = ("start", "after_shuffle", "after_reduce",
              "ckpt:shuffle:precommit")

CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                  input_chunk_size=512)
TEXT = b"oak elm ash fir oak elm oak yew ash oak pine fir cedar yew " * 40
INPUT_PATH = "input/chaos_words.txt"


def _wc_map(ctx, chunk: bytes) -> None:
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def _wc_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def chaos_wordcount(env, ckpt, faults):
    """Two-phase checkpointed WordCount used as the chaos target."""
    mimir = Mimir(env, CFG)
    faults.check("start", env.comm.rank)

    if ckpt.has("shuffle"):
        kvs = ckpt.load_kvc("shuffle", CFG.layout, CFG.page_size)
    else:
        kvs = mimir.map_text_file(INPUT_PATH, _wc_map)
        ckpt.save_kvc("shuffle", kvs)
    faults.check("after_shuffle", env.comm.rank)

    out = mimir.partial_reduce(kvs, _wc_combine)
    faults.check("after_reduce", env.comm.rank)
    counts = tuple(sorted((k, unpack_u64(v)) for k, v in out.records()))
    out.free()
    return counts


def make_wordcount_cluster(nprocs: int = 4,
                           storage: str | None = None) -> Cluster:
    """A fresh cluster with the harness input staged (one per run -
    chaos mutates storage state, so runs must not share a substrate).

    ``storage`` picks the backend (see :mod:`repro.storage`); the sweep
    must converge to bit-identical output on every one of them.
    """
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None,
                      storage=storage)
    cluster.pfs.store(INPUT_PATH, TEXT)
    return cluster


def _canonical(returns: list) -> bytes:
    """Byte-exact fingerprint of the per-rank outputs."""
    return pickle.dumps(returns)


@dataclass
class ChaosRunRecord:
    """Outcome of one seeded schedule."""

    seed: int
    ft: FTResult
    plan: ChaosPlan
    identical: bool
    problems: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.identical and not self.problems


@dataclass
class ChaosSweepResult:
    baseline_elapsed: float
    records: list[ChaosRunRecord]

    @property
    def all_ok(self) -> bool:
        return all(record.ok for record in self.records)

    def overhead(self, record: ChaosRunRecord) -> float:
        """Recovery-time overhead of one run vs. the clean baseline."""
        return record.ft.total_elapsed / self.baseline_elapsed - 1.0


def verify_accounting(ft: FTResult, plan: ChaosPlan) -> list[str]:
    """Check the failure log against the plan's injected-fault record.

    Exact equality is impossible in general - two ranks failing in the
    same attempt surface as one launcher-level failure, and a corrupted
    checkpoint that is never re-read is never *observed* - so the
    invariants are directional: nothing in the log without an injected
    cause, and every fatal fault family that fired shows up.
    """
    problems: list[str] = []
    injected = plan.counts()
    log = ft.log_counts()
    if len(ft.failures) != ft.restarts:
        problems.append(
            f"{ft.restarts} restarts but {len(ft.failures)} failures logged")
    for kind in ("rank-death", "torn-write"):
        if log.get(kind, 0) > injected.get(kind, 0):
            problems.append(
                f"log has {log.get(kind, 0)} {kind} restarts but only "
                f"{injected.get(kind, 0)} were injected")
    transient_seen = log.get("retry", 0) + log.get("transient-io", 0)
    if transient_seen > injected.get("transient-io", 0):
        problems.append(
            f"log shows {transient_seen} transient events but only "
            f"{injected.get('transient-io', 0)} were injected")
    # A torn/corrupt file can be re-detected on every later attempt
    # until a recompute survives long enough to overwrite it, so the
    # detection count is unbounded - but a detection with no injected
    # corrupting cause at all would be a validator bug.
    detected = log.get("ckpt-invalid", 0)
    possible = injected.get("corruption", 0) + injected.get("torn-write", 0)
    if detected and not possible:
        problems.append(
            f"{detected} invalid-checkpoint detections with no "
            "corrupting fault injected")
    fatal_injected = sum(injected.get(k, 0)
                         for k in ("rank-death", "torn-write"))
    if ft.restarts > fatal_injected + injected.get("transient-io", 0):
        problems.append(
            f"{ft.restarts} restarts exceed every injected fatal cause")
    return problems


def run_chaos_sweep(nseeds: int = 20, *, nprocs: int = 4,
                    intensity: float = 1.0, max_restarts: int = 12,
                    storage: str | None = None,
                    verbose: bool = False) -> ChaosSweepResult:
    """Sweep ``nseeds`` seeded schedules; compare against a clean run."""
    baseline = run_with_recovery(make_wordcount_cluster(nprocs, storage),
                                 chaos_wordcount, job_id="chaos-baseline")
    expected = _canonical(baseline.result.returns)

    records: list[ChaosRunRecord] = []
    for seed in range(nseeds):
        plan = ChaosPlan.random(seed, nprocs, tags=CHAOS_TAGS,
                                intensity=intensity)
        ft = run_with_recovery(make_wordcount_cluster(nprocs, storage),
                               chaos_wordcount, faults=plan,
                               job_id="chaos", max_restarts=max_restarts)
        record = ChaosRunRecord(
            seed=seed, ft=ft, plan=plan,
            identical=_canonical(ft.result.returns) == expected,
            problems=verify_accounting(ft, plan))
        records.append(record)
        if verbose:
            injected = plan.counts()
            status = "ok" if record.ok else "FAIL"
            print(f"  seed {seed:>3}: {status:<4} attempts={ft.attempts} "
                  f"elapsed={ft.total_elapsed:8.3f}s "
                  f"injected={injected or '{}'}")
            for problem in record.problems:
                print(f"           problem: {problem}")
    return ChaosSweepResult(baseline.total_elapsed, records)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="seeded chaos sweep over checkpointed WordCount")
    parser.add_argument("--seeds", type=int, default=20,
                        help="number of seeded schedules (default 20)")
    parser.add_argument("--procs", type=int, default=4)
    parser.add_argument("--intensity", type=float, default=1.0)
    from repro.storage import BACKENDS

    parser.add_argument("--storage", choices=BACKENDS, default=None,
                        help="storage backend to sweep on "
                             "(default: REPRO_STORAGE_BACKEND or pfs)")
    args = parser.parse_args(argv)

    print(f"chaos sweep: {args.seeds} schedules x {args.procs} ranks "
          f"(intensity {args.intensity:g}, "
          f"storage {args.storage or 'default'})")
    sweep = run_chaos_sweep(args.seeds, nprocs=args.procs,
                            intensity=args.intensity,
                            storage=args.storage, verbose=True)
    faulty = [r for r in sweep.records if r.plan.counts()]
    print(f"baseline elapsed : {sweep.baseline_elapsed:.3f}s")
    print(f"schedules with faults: {len(faulty)}/{len(sweep.records)}")
    if not sweep.all_ok:
        bad = [r.seed for r in sweep.records if not r.ok]
        print(f"FAILED seeds: {bad}")
        return 1
    print("all schedules converged to bit-identical output")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
