"""Restart-on-failure driver.

``run_with_recovery`` runs a job on a cluster; when a rank dies with
:class:`SimulatedRankFailure`, the whole allocation is torn down (as an
MPI launcher would) and the job is resubmitted against the same PFS -
so checkpoints written by completed phases survive and the restarted
job skips them.  Total virtual time accumulates across attempts,
making the cost of a failure (and the value of checkpointing) directly
measurable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import Cluster, ClusterResult, RankEnv
from repro.ft.checkpoint import CheckpointManager
from repro.ft.faults import FaultPlan, SimulatedRankFailure
from repro.mpi.errors import RankFailedError

#: Job signature: ``fn(env, ckpt, faults) -> value``.
FTJob = Callable[[RankEnv, CheckpointManager, FaultPlan], Any]


@dataclass
class FTResult:
    """Outcome of a possibly-restarted job."""

    result: ClusterResult
    attempts: int
    total_elapsed: float
    failures: list[str] = field(default_factory=list)

    @property
    def restarts(self) -> int:
        return self.attempts - 1


def run_with_recovery(cluster: Cluster, job: FTJob, *,
                      faults: FaultPlan | None = None,
                      job_id: str = "job",
                      max_restarts: int = 8) -> FTResult:
    """Run ``job`` to completion, restarting on injected failures."""
    plan = faults or FaultPlan()
    total_elapsed = 0.0
    failures: list[str] = []

    def rank_fn(env: RankEnv) -> Any:
        return job(env, CheckpointManager(env, job_id), plan)

    for attempt in range(1, max_restarts + 2):
        try:
            result = cluster.run(rank_fn)
        except RankFailedError as failure:
            if not isinstance(failure.original, SimulatedRankFailure):
                raise
            # Virtual time burnt by the failed attempt still counts.
            lost_clocks = getattr(failure, "clocks", None) or [0.0]
            total_elapsed += max(lost_clocks)
            failures.append(str(failure.original))
            if attempt > max_restarts:
                raise
            continue
        total_elapsed += result.elapsed
        return FTResult(result, attempt, total_elapsed, failures)

    raise AssertionError("unreachable")
