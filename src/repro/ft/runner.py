"""Restart-on-failure driver with failure classification.

``run_with_recovery`` runs a job on a cluster; when a rank dies, the
whole allocation is torn down (as an MPI launcher would) and the job
is resubmitted against the same PFS - so checkpoints written by
completed phases survive and the restarted job skips them.  Total
virtual time accumulates across attempts, making the cost of a failure
(and the value of checkpointing) directly measurable.

Failures are *classified* (transient I/O, rank death, torn write, OOM,
unknown) and each class has its own restart cap: a flaky file system
earns more retries than an out-of-memory condition that will simply
recur, and an unrecognised exception is a bug that must propagate, not
be retried into oblivion.  Every failure, absorbed retry, and detected
bad checkpoint lands in :attr:`FTResult.failure_log`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import Cluster, ClusterResult, RankEnv
from repro.ft.checkpoint import CheckpointManager
from repro.ft.faults import (
    FaultPlan,
    SimulatedRankFailure,
    TornWriteFailure,
)
from repro.io.errors import RetriesExhaustedError, TransientIOError
from repro.memory.tracker import MemoryLimitExceeded
from repro.mpi.errors import RankFailedError

#: Job signature: ``fn(env, ckpt, faults) -> value``.
FTJob = Callable[[RankEnv, CheckpointManager, Any], Any]

#: Distinguishes runs for checkpoint stamping; never reset, so a stale
#: checkpoint from an earlier launch can never satisfy a new nonce.
_RUN_SEQ = itertools.count(1)


@dataclass
class FailureRecord:
    """One event in a fault-tolerant run's history.

    ``kind`` is one of the restart classes (``rank-death``,
    ``torn-write``, ``transient-io``, ``oom``, ``unknown``) for
    attempt-ending failures, or an absorbed event: ``retry`` (a
    transient error the backoff wrapper survived), ``ckpt-invalid`` /
    ``ckpt-stale`` (a bad checkpoint detected and recomputed).
    ``attempt`` is 0 for absorbed events recorded inside a rank.
    """

    attempt: int
    rank: int | None
    kind: str
    message: str
    lost_elapsed: float = 0.0


def classify_failure(exc: BaseException) -> str:
    """Map a rank's fatal exception to a restart class.

    An exception may carry its own class via a ``failure_class``
    attribute - how membership departures (``membership-leave``) and
    straggler evictions (``straggler-evict``) distinguish themselves
    from crashes without this module importing the elastic layer.
    """
    own = getattr(exc, "failure_class", None)
    if own is not None:
        return own
    if isinstance(exc, TornWriteFailure):
        return "torn-write"
    if isinstance(exc, SimulatedRankFailure):
        return "rank-death"
    if isinstance(exc, (TransientIOError, RetriesExhaustedError)):
        return "transient-io"
    if isinstance(exc, MemoryLimitExceeded):
        return "oom"
    return "unknown"


def default_restart_caps(max_restarts: int) -> dict[str, int]:
    """Per-class restart budgets.

    Injected faults (death, torn writes) and flaky I/O are worth the
    full budget; OOM gets one retry (a restart that restores smaller
    checkpointed state can fit where the original run did not); an
    unknown exception is a real bug and is never retried.
    """
    return {
        "rank-death": max_restarts,
        "torn-write": max_restarts,
        "transient-io": max_restarts,
        # Membership departures and straggler evictions are benign
        # under the elastic driver (which converts them into gang
        # shrinks before they reach the caps); under the plain restart
        # driver they behave like recoverable rank deaths.
        "membership-leave": max_restarts,
        "straggler-evict": max_restarts,
        "oom": min(1, max_restarts),
        "unknown": 0,
    }


@dataclass
class FTResult:
    """Outcome of a possibly-restarted job."""

    result: ClusterResult
    attempts: int
    total_elapsed: float
    failures: list[str] = field(default_factory=list)
    failure_log: list[FailureRecord] = field(default_factory=list)

    @property
    def restarts(self) -> int:
        return self.attempts - 1

    def log_counts(self) -> dict[str, int]:
        """Failure-log tally by kind."""
        tally: dict[str, int] = {}
        for record in self.failure_log:
            tally[record.kind] = tally.get(record.kind, 0) + 1
        return tally


def run_with_recovery(cluster: Cluster, job: FTJob, *,
                      faults: Any = None,
                      job_id: str = "job",
                      max_restarts: int = 8,
                      restart_caps: dict[str, int] | None = None,
                      nonce: str | None = None) -> FTResult:
    """Run ``job`` to completion, restarting on classified failures.

    ``faults`` may be a :class:`FaultPlan` or a
    :class:`~repro.ft.injection.ChaosPlan`; a chaos plan is also wired
    into the cluster (PFS hooks + straggler clocks) for the duration of
    the call.  ``nonce`` defaults to a fresh per-call stamp derived
    from the cluster configuration, so checkpoints left by a previous
    run that happens to reuse ``job_id`` are detected as stale and
    recomputed instead of silently restored; pass an explicit nonce to
    opt into cross-run checkpoint reuse.
    """
    plan = faults if faults is not None else FaultPlan()
    if nonce is None:
        nonce = f"{job_id}/{cluster.signature()}/run{next(_RUN_SEQ)}"
    caps = dict(default_restart_caps(max_restarts))
    if restart_caps:
        caps.update(restart_caps)

    previous_chaos = cluster.chaos
    if hasattr(plan, "on_write"):  # a ChaosPlan, duck-typed
        cluster.chaos = plan

    total_elapsed = 0.0
    failures: list[str] = []
    failure_log: list[FailureRecord] = []
    restarts_by_class: dict[str, int] = {}

    def rank_fn(env: RankEnv) -> Any:
        ckpt = CheckpointManager(env, job_id, nonce=nonce, faults=plan,
                                 failure_log=failure_log)
        return job(env, ckpt, plan)

    try:
        for attempt in itertools.count(1):
            try:
                result = cluster.run(rank_fn)
            except RankFailedError as failure:
                kind = classify_failure(failure.original)
                # Virtual time burnt by the failed attempt still counts.
                lost_clocks = getattr(failure, "clocks", None) or [0.0]
                lost = max(lost_clocks)
                total_elapsed += lost
                failures.append(str(failure.original))
                failure_log.append(FailureRecord(
                    attempt, failure.rank, kind,
                    str(failure.original), lost))
                restarts_by_class[kind] = restarts_by_class.get(kind, 0) + 1
                if (restarts_by_class[kind] > caps.get(kind, 0)
                        or attempt > max_restarts):
                    raise
                cluster.metrics.shard(-1).inc("ft.restarts")
                continue
            total_elapsed += result.elapsed
            return FTResult(result, attempt, total_elapsed, failures,
                            failure_log)
        raise AssertionError("unreachable")
    finally:
        cluster.chaos = previous_chaos
        cluster.pfs.chaos = previous_chaos
