"""Phase-level checkpoints on the parallel file system.

A checkpoint of a phase is the concatenated encoded records of each
rank's output KVC, written to ``ckpt/<job>/<phase>.<rank>``, plus a
per-rank completion marker written *after* a barrier - so a marker's
existence proves every rank's data reached the PFS.  Loading a
checkpoint replays the bytes into a fresh KVC (charging PFS reads),
exactly what a restarted rank would do.

Checkpoints are **never trusted blindly**.  Every file (data and
marker) is length-framed with a format-version header, stamped with
the run's *nonce*, and CRC32-checksummed::

    b"RCKP" | version u16 | nonce_len u16 | nonce | payload_len u64
           | crc32 u32 | payload

A torn write (crash mid-write), a flipped bit, or a stale file left by
a previous run with a reused job id all fail validation; ``has()``
then reports the phase incomplete and the job transparently recomputes
it instead of silently replaying bad bytes.  Detections are reported
through the attached failure log.  All PFS traffic goes through
:func:`~repro.io.errors.retrying`, so transient I/O hiccups cost
virtual backoff time instead of killing the rank.
"""

from __future__ import annotations

import pickle
import struct
import zlib

from repro.cluster import RankEnv
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout
from repro.io.errors import retrying

#: On-disk format: magic, version, and the fixed header tails.
CKPT_MAGIC = b"RCKP"
CKPT_VERSION = 1
_HEAD = struct.Struct("<HH")   # version, nonce length
_TAIL = struct.Struct("<QI")   # payload length, crc32


class CheckpointError(RuntimeError):
    """Base class for checkpoint validation failures."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed integrity validation (torn/corrupt)."""


class CheckpointStaleError(CheckpointError):
    """A structurally valid checkpoint stamped by a *different* run."""


class CheckpointNotFoundError(CheckpointError, KeyError):
    """No completed, valid checkpoint exists for the requested phase."""

    def __init__(self, phase: str):
        self.phase = phase
        msg = f"no completed checkpoint for phase {phase!r}"
        self._msg = msg
        super().__init__(msg)

    def __str__(self) -> str:
        return self._msg


def frame(payload: bytes, nonce: str) -> bytes:
    """Wrap ``payload`` in the checksummed checkpoint envelope."""
    encoded = nonce.encode()
    return (CKPT_MAGIC + _HEAD.pack(CKPT_VERSION, len(encoded)) + encoded
            + _TAIL.pack(len(payload), zlib.crc32(payload)) + payload)


def _marker_nparts(payload: bytes) -> int:
    """Partition count a completion marker declares (``b"ok:<n>"``).

    The declared gang size is what lets :meth:`CheckpointManager.
    partition_count` tell a *complete* ``k``-rank checkpoint apart
    from a *partial* ``n``-rank one (``n > k``) whose save died after
    ``k`` marker writes - the two leave identical valid-partition
    prefixes otherwise.  Raises :class:`CheckpointCorruptError` for
    any other payload.
    """
    head, _sep, count = payload.partition(b":")
    if head != b"ok" or not count.isdigit():
        raise CheckpointCorruptError(f"marker payload {payload!r}")
    return int(count)


def unframe(blob: bytes, nonce: str) -> bytes:
    """Validate the envelope and return the payload.

    Raises :class:`CheckpointCorruptError` on any structural or
    checksum failure and :class:`CheckpointStaleError` when the frame
    was stamped by a different run (reused job id).
    """
    head_len = len(CKPT_MAGIC) + _HEAD.size
    if len(blob) < head_len:
        raise CheckpointCorruptError(
            f"truncated header ({len(blob)} bytes)")
    if blob[:len(CKPT_MAGIC)] != CKPT_MAGIC:
        raise CheckpointCorruptError(
            f"bad magic {blob[:len(CKPT_MAGIC)]!r}")
    version, nonce_len = _HEAD.unpack_from(blob, len(CKPT_MAGIC))
    if version != CKPT_VERSION:
        raise CheckpointCorruptError(
            f"unsupported format version {version}")
    body = head_len + nonce_len
    if len(blob) < body + _TAIL.size:
        raise CheckpointCorruptError("truncated frame")
    stamped = blob[head_len:body].decode(errors="replace")
    payload_len, crc = _TAIL.unpack_from(blob, body)
    payload = blob[body + _TAIL.size:]
    if len(payload) != payload_len:
        raise CheckpointCorruptError(
            f"payload length {len(payload)} != framed {payload_len} "
            "(torn write)")
    if zlib.crc32(payload) != crc:
        raise CheckpointCorruptError("payload CRC mismatch (corruption)")
    if stamped != nonce:
        raise CheckpointStaleError(
            f"checkpoint stamped by run {stamped!r}, expected {nonce!r}")
    return payload


class CheckpointManager:
    """One rank's view of a job's checkpoint directory.

    ``nonce`` identifies the run (cluster configuration + launch) that
    owns these checkpoints; it defaults to ``job_id`` for standalone
    use.  ``faults`` is an optional injection plan consulted at the
    commit point between data and marker writes, and ``failure_log``
    collects retry/validation events for :class:`repro.ft.runner.
    FTResult`.
    """

    def __init__(self, env: RankEnv, job_id: str, *,
                 nonce: str | None = None,
                 faults=None,
                 failure_log: list | None = None):
        self.env = env
        self.job_id = job_id
        self.nonce = nonce if nonce is not None else job_id
        self.faults = faults
        self.failure_log = failure_log if failure_log is not None else []
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------- paths

    def _data_path(self, phase: str, part: int | None = None) -> str:
        part = self.env.comm.rank if part is None else part
        return f"ckpt/{self.job_id}/{phase}.{part}"

    def _marker_path(self, phase: str, part: int | None = None) -> str:
        part = self.env.comm.rank if part is None else part
        return f"ckpt/{self.job_id}/{phase}.done.{part}"

    # ---------------------------------------------------------- plumbing

    def _report(self, kind: str, message: str) -> None:
        # Imported lazily: runner imports this module.
        from repro.ft.runner import FailureRecord

        if kind in ("ckpt-invalid", "ckpt-stale"):
            self.env.metrics.inc("ft.checkpoint.invalid")
        self.failure_log.append(
            FailureRecord(attempt=0, rank=self.env.comm.rank,
                          kind=kind, message=message))

    def _retrying_write(self, path: str, payload: bytes) -> None:
        comm = self.env.comm

        def on_retry(attempt: int, exc) -> None:
            self._report("retry", f"write {path!r} attempt {attempt}: {exc}")

        retrying(comm, lambda: self.env.pfs.write(comm, path, payload),
                 on_retry=on_retry)

    def _retrying_read(self, path: str) -> bytes:
        comm = self.env.comm

        def on_retry(attempt: int, exc) -> None:
            self._report("retry", f"read {path!r} attempt {attempt}: {exc}")

        return retrying(comm, lambda: self.env.pfs.read(comm, path),
                        on_retry=on_retry)

    # ----------------------------------------------------------- queries

    def _valid_local(self, phase: str, part: int | None = None,
                     nparts: int | None = None) -> bool:
        """Partition ``part``'s data + marker exist and pass validation.

        ``part`` defaults to this rank's own partition.  ``nparts``
        requires the marker to *declare* exactly that many partitions
        (see :func:`_marker_nparts`); a mismatch means the marker is a
        stale leftover from a save at a different gang size, so the
        partition is rejected.  Inspection is cost-free (``fetch``):
        deciding whether to restore is a metadata scan; the charged
        read happens in ``load_*``.  Invalid files are *reported*,
        never trusted.
        """
        pfs = self.env.pfs
        marker = self._marker_path(phase, part)
        data = self._data_path(phase, part)
        if not (pfs.exists(marker) and pfs.exists(data)):
            return False
        for path, is_marker in ((marker, True), (data, False)):
            try:
                payload = unframe(pfs.fetch(path), self.nonce)
                if is_marker:
                    declared = _marker_nparts(payload)
                    if nparts is not None and declared != nparts:
                        self._report(
                            "ckpt-geometry",
                            f"{path!r}: declares {declared} partitions, "
                            f"expected {nparts}")
                        return False
            except CheckpointStaleError as exc:
                self._report("ckpt-stale", f"{path!r}: {exc}")
                return False
            except CheckpointError as exc:
                self._report("ckpt-invalid", f"{path!r}: {exc}")
                return False
        return True

    def has(self, phase: str) -> bool:
        """Whether this phase completed on *every* rank (collective call).

        A failure can interleave with marker writes so that only some
        ranks' markers reached the PFS - or a marker can exist over a
        torn/corrupt/stale data file.  Deciding completion with an
        agreement (logical AND over local *validation*, not mere
        existence) guarantees every rank takes the same restart path; a
        partial or invalid checkpoint is simply recomputed and
        overwritten.
        """
        return self.env.comm.all_true(
            self._valid_local(phase, nparts=self.env.comm.size))

    # ----------------------------------------------- membership rebalance

    def partition_count(self, phase: str) -> int:
        """How many partitions a completed checkpoint was written with.

        A checkpoint written by a gang of ``n`` ranks leaves valid
        data + marker pairs for partitions ``0..n-1``, every marker
        declaring ``n``.  Partition 0's marker names the geometry;
        validating all ``n`` declared partitions against it (pure
        metadata scans against the shared PFS, so every rank computes
        the same answer without communicating) recovers ``n`` even
        after the gang size changed - the discovery step of shard
        re-balancing on membership change.  Returns 0 when the phase
        never completed: a missing partition, or a marker declaring a
        different geometry (a save that died between its data and
        marker barriers leaves the previous gang size's markers over
        partitions ``0..k``, which must *not* pass for a complete
        ``k+1``-rank checkpoint), invalidates the whole phase.
        """
        pfs = self.env.pfs
        marker0 = self._marker_path(phase, 0)
        if not pfs.exists(marker0):
            return 0
        try:
            declared = _marker_nparts(unframe(pfs.fetch(marker0),
                                              self.nonce))
        except CheckpointError as exc:
            self._report("ckpt-invalid", f"{marker0!r}: {exc}")
            return 0
        if declared <= 0:
            return 0
        if all(self._valid_local(phase, part, nparts=declared)
               for part in range(declared)):
            return declared
        return 0

    def read_partition(self, phase: str, part: int) -> bytes:
        """Validated payload of one partition, regardless of owner rank.

        The restore side of re-balancing: after a membership change,
        each surviving rank reads a contiguous block of the *old*
        partitions (charged PFS reads, transient errors retried) and
        re-shuffles their records to the new gang.
        """
        blob = self._retrying_read(self._data_path(phase, part))
        self.bytes_read += len(blob)
        return unframe(blob, self.nonce)

    # -------------------------------------------------------------- save

    def _save(self, phase: str, payload: bytes) -> None:
        framed = frame(payload, self.nonce)
        self._retrying_write(self._data_path(phase), framed)
        self.bytes_written += len(framed)
        self.env.comm.barrier()
        # The commit point: data is durable everywhere, markers are
        # not yet written.  A crash here must leave ``has()`` false.
        if self.faults is not None:
            self.faults.check(f"ckpt:{phase}:precommit", self.env.comm.rank)
        self._retrying_write(
            self._marker_path(phase),
            frame(b"ok:%d" % self.env.comm.size, self.nonce))
        self.env.comm.barrier()
        self.env.metrics.inc("ft.checkpoint.saves")

    def save_kvc(self, phase: str, kvc: KVContainer) -> None:
        """Persist a phase's KVC output; collective (all ranks call).

        Two-phase commit: markers are written only after every rank's
        data is durable, and the trailing barrier means that once
        ``save_kvc`` returns *anywhere*, every marker is on the PFS -
        a later failure cannot leave a half-committed checkpoint.
        """
        self._save(phase, b"".join(bytes(page.view) for page in kvc.pages))

    def save_state(self, phase: str, state: object) -> None:
        """Persist small picklable control state (e.g. loop counters)."""
        self._save(phase, pickle.dumps(state))

    # -------------------------------------------------------------- load

    def _load(self, phase: str) -> bytes:
        if not self.has(phase):
            raise CheckpointNotFoundError(phase)
        blob = self._retrying_read(self._data_path(phase))
        self.bytes_read += len(blob)
        self.env.metrics.inc("ft.checkpoint.restores")
        return unframe(blob, self.nonce)

    def load_kvc(self, phase: str, layout: KVLayout | None = None,
                 page_size: int = 64 * 1024,
                 tag: str = "kv_restored") -> KVContainer:
        """Rebuild this rank's KVC from a completed checkpoint."""
        data = self._load(phase)
        kvc = KVContainer(self.env.tracker, layout, page_size, tag=tag)
        kvc.extend_encoded(data)
        return kvc

    def load_state(self, phase: str) -> object:
        return pickle.loads(self._load(phase))

    # ------------------------------------------------------------- purge

    def clear(self) -> None:
        """Drop every checkpoint of this job; collective (all ranks call).

        Rank 0 alone deletes after a barrier, so post-success cleanup
        cannot race another rank still listing or reading the
        directory; the trailing barrier keeps survivors from recreating
        files mid-sweep.
        """
        comm = self.env.comm
        comm.barrier()
        if comm.rank == 0:
            for path in self.env.pfs.listdir(f"ckpt/{self.job_id}/"):
                self.env.pfs.delete(path)
        comm.barrier()
