"""Phase-level checkpoints on the parallel file system.

A checkpoint of a phase is the concatenated encoded records of each
rank's output KVC, written to ``ckpt/<job>/<phase>.<rank>``, plus a
per-rank completion marker written *after* a barrier - so a marker's
existence proves every rank's data reached the PFS.  Loading a
checkpoint replays the bytes into a fresh KVC (charging PFS reads),
exactly what a restarted rank would do.
"""

from __future__ import annotations

import pickle

from repro.cluster import RankEnv
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout


class CheckpointManager:
    """One rank's view of a job's checkpoint directory."""

    def __init__(self, env: RankEnv, job_id: str):
        self.env = env
        self.job_id = job_id
        self.bytes_written = 0
        self.bytes_read = 0

    # ------------------------------------------------------------- paths

    def _data_path(self, phase: str) -> str:
        return f"ckpt/{self.job_id}/{phase}.{self.env.comm.rank}"

    def _marker_path(self, phase: str) -> str:
        return f"ckpt/{self.job_id}/{phase}.done.{self.env.comm.rank}"

    # ----------------------------------------------------------- queries

    def has(self, phase: str) -> bool:
        """Whether this phase completed on *every* rank (collective call).

        A failure can interleave with marker writes so that only some
        ranks' markers reached the PFS; deciding completion with an
        agreement (logical AND across ranks) guarantees every rank
        takes the same restart path.  A partially complete checkpoint
        is simply recomputed and overwritten.
        """
        local = self.env.pfs.exists(self._marker_path(phase))
        return self.env.comm.all_true(local)

    # -------------------------------------------------------------- save

    def save_kvc(self, phase: str, kvc: KVContainer) -> None:
        """Persist a phase's KVC output; collective (all ranks call).

        Two-phase commit: markers are written only after every rank's
        data is durable, and the trailing barrier means that once
        ``save_kvc`` returns *anywhere*, every marker is on the PFS -
        a later failure cannot leave a half-committed checkpoint.
        """
        payload = b"".join(bytes(page.view) for page in kvc.pages)
        self.env.pfs.write(self.env.comm, self._data_path(phase), payload)
        self.bytes_written += len(payload)
        self.env.comm.barrier()
        self.env.pfs.write(self.env.comm, self._marker_path(phase), b"ok")
        self.env.comm.barrier()

    def save_state(self, phase: str, state: object) -> None:
        """Persist small picklable control state (e.g. loop counters)."""
        payload = pickle.dumps(state)
        self.env.pfs.write(self.env.comm, self._data_path(phase), payload)
        self.bytes_written += len(payload)
        self.env.comm.barrier()
        self.env.pfs.write(self.env.comm, self._marker_path(phase), b"ok")
        self.env.comm.barrier()

    # -------------------------------------------------------------- load

    def load_kvc(self, phase: str, layout: KVLayout | None = None,
                 page_size: int = 64 * 1024,
                 tag: str = "kv_restored") -> KVContainer:
        """Rebuild this rank's KVC from a completed checkpoint."""
        if not self.has(phase):
            raise KeyError(f"no completed checkpoint for phase {phase!r}")
        data = self.env.pfs.read(self.env.comm, self._data_path(phase))
        self.bytes_read += len(data)
        kvc = KVContainer(self.env.tracker, layout, page_size, tag=tag)
        kvc.extend_encoded(data)
        return kvc

    def load_state(self, phase: str) -> object:
        if not self.has(phase):
            raise KeyError(f"no completed checkpoint for phase {phase!r}")
        data = self.env.pfs.read(self.env.comm, self._data_path(phase))
        self.bytes_read += len(data)
        return pickle.loads(data)

    # ------------------------------------------------------------- purge

    def clear(self) -> None:
        """Drop every checkpoint of this job (post-success cleanup)."""
        for path in self.env.pfs.listdir(f"ckpt/{self.job_id}/"):
            self.env.pfs.delete(path)
