"""Reactive fault handling: stragglers, speculation, elastic membership.

Checkpoint/restart (:mod:`repro.ft.runner`) treats every fault as
fatal: tear the gang down, resubmit, replay from the last checkpoint.
This module adds the *reactive* layer the paper's target machines
(Mira, Comet) actually need at scale, where the common failure is not
a crash but a slow rank, and where re-running the whole gang to shed
one bad host is unaffordable.  Four mechanisms, one control loop:

- **Straggler detection** (:class:`StragglerMonitor`): per-phase
  progress comparison.  Every rank's busy time for a phase is
  allgathered and compared against the median; ranks beyond a
  configurable slowdown threshold are flagged (``ft.straggler.
  flagged``).
- **Speculative re-execution** (:func:`speculative_map`): the map
  phase runs as a task pool; tasks still owned by a flagged rank past
  the detection point are re-launched on the healthiest ranks.  First
  result wins, the loser is killed, and lineage-derived task keys plus
  CRC agreement make duplicates safe to discard.
- **Dynamic membership** (:func:`run_elastic` +
  :meth:`~repro.cluster.Cluster.resize`): a rank death or scheduled
  leave is *promoted* from a fatal restart to a gang shrink; joins
  grow the gang.  KV partitions checkpointed by the old gang are
  re-balanced onto the new one (:func:`restore_rebalanced`), and a
  partition lost with its rank is recomputed from lineage.
- **Scaling policy** (:class:`ScalingPolicy`): grows/shrinks the gang
  from scheduler queue depth and observed memory residency - the
  sensor half comes from :mod:`repro.obs`, the actuator half is
  :meth:`Cluster.resize` (see docs/architecture.md, "The elasticity
  control loop").

How speculation stays honest inside a virtual-time simulator: both
attempts of a duplicated task *physically execute* (and must produce
CRC-identical bytes), while their completion times feed a
deterministic discrete-event schedule that every rank computes
identically from allgathered durations.  Each rank then replaces its
physically accumulated clock with its scheduled completion time
(:meth:`SimComm.sync_time`), so the phase's makespan is exactly what
first-result-wins semantics would yield - a straggler stops being
charged at the point its last attempt is killed.

This module must not import :mod:`repro.sched` (the scheduler imports
it lazily), keeping the dependency arrow one-way.
"""

from __future__ import annotations

import itertools
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Sequence

from repro.cluster import Cluster, RankEnv
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout
from repro.core.shuffle import default_partitioner
from repro.ft.checkpoint import CheckpointManager
from repro.ft.faults import FaultPlan, SimulatedRankFailure
from repro.ft.runner import (
    FailureRecord,
    FTResult,
    classify_failure,
    default_restart_caps,
)
from repro.io.errors import retrying
from repro.io.splits import split_range, split_text
from repro.mpi.errors import RankFailedError

#: Failure kinds :func:`run_elastic` converts into gang shrinks
#: instead of same-size restarts (when policy and budget allow).
_SHRINKABLE = ("rank-death", "membership-leave", "straggler-evict")


# --------------------------------------------------------------- policy


@dataclass(frozen=True)
class ElasticPolicy:
    """Knobs of the reactive layer; immutable and validated.

    ``straggler_threshold`` is the slowdown multiple over the median
    at which a rank is flagged; ``backup_overhead`` models the cost of
    re-reading a duplicated task's input split on the backup host.
    ``splits_per_rank`` sets task-pool granularity - more tasks mean
    earlier per-task detection and finer re-balancing, at more
    scheduling overhead (the paper's usual tradeoff).
    """

    straggler_threshold: float = 2.0
    min_detect_seconds: float = 0.0
    speculate: bool = True
    backup_overhead: float = 0.05
    evict_stragglers: bool = True
    allow_leave: bool = True
    allow_join: bool = True
    max_membership_changes: int = 4
    min_ranks: int = 1
    max_ranks: int = 64
    splits_per_rank: int = 4

    def __post_init__(self):
        if self.straggler_threshold <= 1.0:
            raise ValueError(
                f"straggler_threshold must be > 1 (a threshold at or "
                f"below the median flags healthy ranks), got "
                f"{self.straggler_threshold}")
        if self.min_detect_seconds < 0:
            raise ValueError(
                f"min_detect_seconds must be >= 0, "
                f"got {self.min_detect_seconds}")
        if self.backup_overhead < 0:
            raise ValueError(
                f"backup_overhead must be >= 0, got {self.backup_overhead}")
        if self.max_membership_changes < 0:
            raise ValueError(
                f"max_membership_changes must be >= 0, "
                f"got {self.max_membership_changes}")
        if self.min_ranks < 1:
            raise ValueError(f"min_ranks must be >= 1, got {self.min_ranks}")
        if self.max_ranks < self.min_ranks:
            raise ValueError(
                f"max_ranks {self.max_ranks} < min_ranks {self.min_ranks}")
        if self.splits_per_rank < 1:
            raise ValueError(
                f"splits_per_rank must be >= 1, got {self.splits_per_rank}")


# -------------------------------------------------------------- sensing


class StragglerMonitor:
    """Flags ranks whose phase progress lags the gang median.

    The sensor half of the control loop: durations come either from a
    live allgather of per-rank busy times (``flag``) or from the
    metrics registry's per-rank ``core.phase.seconds`` summaries
    (``flag_from_metrics``) - the same signal, one in-band and one
    out-of-band.
    """

    def __init__(self, threshold: float = 2.0, min_gap: float = 0.0):
        if threshold <= 1.0:
            raise ValueError(
                f"threshold must be > 1, got {threshold}")
        if min_gap < 0:
            raise ValueError(f"min_gap must be >= 0, got {min_gap}")
        self.threshold = threshold
        self.min_gap = min_gap

    @staticmethod
    def _median(values: Sequence[float]) -> float:
        ordered = sorted(values)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def flag(self, durations: "dict[int, float] | Sequence[float]",
             ) -> list[int]:
        """Ranks whose duration exceeds ``threshold`` x median.

        ``min_gap`` suppresses flags when the absolute lag is noise
        (phases measured in microseconds).  A non-positive median means
        the phase did no measurable work anywhere - nothing to flag.
        """
        if isinstance(durations, dict):
            items = sorted(durations.items())
        else:
            items = list(enumerate(durations))
        if not items:
            return []
        median = self._median([d for _, d in items])
        if median <= 0.0:
            return []
        return [rank for rank, d in items
                if d > self.threshold * median
                and (d - median) >= self.min_gap]

    def flag_from_metrics(self, registry,
                          name: str = "core.phase.seconds") -> list[int]:
        """Flag from the observability registry's per-rank summaries.

        ``registry.by_rank`` returns summary dicts per shard; the
        cluster-wide shard (rank -1) is excluded - it never ran a
        phase.
        """
        totals = {}
        for rank, summary in registry.by_rank(name).items():
            if rank < 0:
                continue
            totals[rank] = float(summary.get("total", 0.0)) \
                if isinstance(summary, dict) else float(summary)
        return self.flag(totals)


# --------------------------------------------------- speculative tasks


@dataclass
class TaskAttempt:
    """One duplicated task's race, resolved by the event schedule."""

    task: int
    key: str
    primary_rank: int
    primary_end: float
    backup_rank: int
    backup_end: float | None   # None: backup cancelled before starting
    winner: str                # "primary" | "backup"


@dataclass
class SpeculationReport:
    """What one :func:`speculative_map` phase observed and decided."""

    stage_key: str
    nranks: int
    ntasks: int
    busy: list[float]
    flagged: list[int]
    detect_at: float = 0.0
    launched: int = 0
    won: int = 0
    discarded: int = 0
    makespan_unmitigated: float = 0.0
    makespan: float = 0.0
    attempts: list[TaskAttempt] = field(default_factory=list)


class _TaskEmit:
    """MapContext-compatible sink collecting one task's records."""

    __slots__ = ("records", "nemitted")

    def __init__(self):
        self.records: list[tuple[bytes, bytes]] = []
        self.nemitted = 0

    def emit(self, key: bytes, value: bytes) -> None:
        self.records.append((key, value))
        self.nemitted += 1


def speculative_map(env: RankEnv, path: str,
                    map_fn: Callable[[Any, bytes], None], *,
                    config=None,
                    policy: ElasticPolicy | None = None,
                    stage_key: str = "map",
                    combine_fn: Callable[[bytes, bytes, bytes], bytes]
                    | None = None,
                    partitioner: Callable[[bytes, int], int] | None = None,
                    layout: KVLayout | None = None,
                    out_tag: str | None = None,
                    ctx: Any = None,
                    splits_per_rank: int | None = None) -> KVContainer:
    """Task-pool map over a text file with speculative re-execution.

    The file is cut into ``nranks * splits_per_rank`` word-aligned
    tasks; rank ``r`` primarily owns tasks ``r, r+size, ...``.  Every
    rank runs its primaries physically, then the gang allgathers
    per-task durations and output CRCs.  If a rank's busy time exceeds
    the policy threshold over the median it is flagged; its tasks not
    yet done at the detection point (``threshold`` x median *task*
    duration - per-task granularity is what bounds the damage to a
    fraction of the phase) are re-executed on the least-loaded healthy
    ranks.  A replicated discrete-event schedule decides each race:
    first result wins, the losing attempt is killed and discarded
    (``ft.speculation.*`` metrics), and each rank's clock is replaced
    by its scheduled completion time.  The winning attempt's bytes
    feed the shuffle; since duplicates must agree CRC-for-CRC, output
    is bit-identical to the unmitigated run.

    Task keys ``{stage_key}/t{task}`` derive from the stage's lineage
    key, so attempts of the same logical task are identifiable across
    hosts and retries.  Returns the shuffled KVC (this rank's
    partition), exactly like ``Mimir.map_text_file``.
    """
    comm = env.comm
    policy = policy or ElasticPolicy()
    part_fn = partitioner or default_partitioner
    layout = layout or (config.layout if config is not None else KVLayout())
    page_size = config.page_size if config is not None else 64 * 1024
    out_of_core = bool(config is not None and config.out_of_core)
    splits = splits_per_rank or policy.splits_per_rank
    size = comm.size
    ntasks = size * splits
    threshold = policy.straggler_threshold
    metrics = env.metrics

    comm.barrier()
    origin = max(comm.allgather(comm.clock.time))
    comm.sync_time(origin)

    # Metadata-only fetch for split geometry; the charged read happens
    # per task below, so a re-executed task pays its input again.
    data = env.pfs.fetch(path)

    failure_log = getattr(ctx, "failure_log", None)

    def on_retry(attempt: int, exc) -> None:
        if failure_log is not None:
            from repro.ft.runner import FailureRecord
            failure_log.append(FailureRecord(
                attempt=0, rank=comm.rank, kind="retry",
                message=f"task read attempt {attempt}: {exc}"))

    def run_task(task: int) -> tuple[int, bytes, float]:
        started = comm.clock.time
        lo, hi = split_text(data, task, ntasks)
        chunk = retrying(
            comm, lambda: env.pfs.read(comm, path, lo, hi - lo),
            on_retry=on_retry) if hi > lo else b""
        sink = _TaskEmit()
        map_fn(sink, chunk)
        records = sink.records
        if combine_fn is not None and records:
            merged: dict[bytes, bytes] = {}
            for key, value in records:
                held = merged.get(key)
                merged[key] = value if held is None \
                    else combine_fn(key, held, value)
            records = sorted(merged.items())
        encoded = b"".join(layout.encode(k, v) for k, v in records)
        env.charge_compute(len(encoded))
        return sink.nemitted, encoded, comm.clock.time - started

    primaries = list(range(comm.rank, ntasks, size))
    prim_out: dict[int, bytes] = {}
    emitted = 0
    local_report: list[tuple[int, float, int]] = []
    for task in primaries:
        nemitted, encoded, duration = run_task(task)
        emitted += nemitted
        prim_out[task] = encoded
        local_report.append((task, duration, zlib.crc32(encoded)))

    # Progress exchange: every rank learns every task's duration and
    # output fingerprint, so detection and scheduling are replicated.
    gathered = comm.allgather(local_report)
    task_dur: dict[int, float] = {}
    task_crc: dict[int, int] = {}
    busy = [0.0] * size
    for rank, report_part in enumerate(gathered):
        for task, duration, crc in report_part:
            task_dur[task] = duration
            task_crc[task] = crc
            busy[rank] += duration

    monitor = StragglerMonitor(threshold, policy.min_detect_seconds)
    flagged = monitor.flag(busy)
    if len(flagged) >= size:
        flagged = []          # everyone "slow" means nobody is
    report = SpeculationReport(stage_key=stage_key, nranks=size,
                               ntasks=ntasks, busy=list(busy),
                               flagged=list(flagged),
                               makespan_unmitigated=max(busy, default=0.0),
                               makespan=max(busy, default=0.0))
    if comm.rank in flagged:
        metrics.inc("ft.straggler.flagged")

    owner = {task: task % size for task in range(ntasks)}
    finish = list(busy)
    backup_out: dict[int, bytes] = {}
    backup_hosts: dict[int, int] = {}

    if flagged and policy.speculate and size > 1:
        # Detection happens at per-*task* granularity: after
        # threshold x median task durations a healthy observer knows a
        # task is late.  This is what keeps the bound at a fraction of
        # the phase instead of a multiple of it.
        detect_at = max(threshold * monitor._median(list(task_dur.values())),
                        policy.min_detect_seconds)
        report.detect_at = detect_at
        healthy = sorted((r for r in range(size) if r not in flagged),
                         key=lambda r: (busy[r], r))

        # Which tasks are still unfinished at the detection point?
        # Each flagged rank runs its primaries serially in task order.
        prim_done: dict[int, float] = {}
        needs_backup: list[int] = []
        for slow in flagged:
            acc = 0.0
            for task in range(slow, ntasks, size):
                acc += task_dur[task]
                prim_done[task] = acc
                if acc > detect_at:
                    needs_backup.append(task)
        needs_backup.sort()
        assignment = {task: healthy[i % len(healthy)]
                      for i, task in enumerate(needs_backup)}

        # Physically re-execute assigned backups (duplicate charge on
        # the backup host's real clock; rescheduled below).
        my_backups: list[tuple[int, float, int]] = []
        for task in needs_backup:
            if assignment[task] != comm.rank:
                continue
            _, encoded, duration = run_task(task)
            backup_out[task] = encoded
            my_backups.append((task, duration, zlib.crc32(encoded)))
        backup_gathered = comm.allgather(my_backups)
        backup_dur: dict[int, float] = {}
        for report_part in backup_gathered:
            for task, duration, crc in report_part:
                if crc != task_crc[task]:
                    raise RuntimeError(
                        f"speculative duplicate of task "
                        f"{stage_key}/t{task} diverged from its primary "
                        f"(crc {crc:#010x} != {task_crc[task]:#010x}); "
                        "map function is not deterministic")
                backup_dur[task] = duration

        # Replicated discrete-event schedule: every rank computes the
        # same winners from the same allgathered durations.
        host_free = {r: busy[r] for r in healthy}
        winner_end: dict[int, float] = {}
        for task in needs_backup:
            host = assignment[task]
            start_b = max(detect_at, host_free[host])
            if prim_done[task] <= start_b:
                # Primary finished before the backup could launch:
                # the duplicate is cancelled unstarted, nothing to kill.
                winner_end[task] = prim_done[task]
                report.attempts.append(TaskAttempt(
                    task, f"{stage_key}/t{task}", task % size,
                    prim_done[task], host, None, "primary"))
                continue
            end_b = start_b + backup_dur[task] * (1.0 + policy.backup_overhead)
            host_free[host] = end_b
            report.launched += 1
            if comm.rank == host:
                metrics.inc("ft.speculation.launched")
            backup_won = end_b < prim_done[task]
            winner_end[task] = min(end_b, prim_done[task])
            report.attempts.append(TaskAttempt(
                task, f"{stage_key}/t{task}", task % size, prim_done[task],
                host, end_b, "backup" if backup_won else "primary"))
            if backup_won:
                owner[task] = host
                backup_hosts[task] = host
                report.won += 1
                report.discarded += 1
                if comm.rank == host:
                    metrics.inc("ft.speculation.won")
                if comm.rank == task % size:
                    # The straggler's attempt is killed at the
                    # backup's completion; its bytes are dropped.
                    metrics.inc("ft.speculation.discarded")
            else:
                report.discarded += 1
                if comm.rank == host:
                    # The backup lost the race; its bytes are dropped.
                    metrics.inc("ft.speculation.discarded")

        for rank in healthy:
            finish[rank] = host_free[rank]
        for slow in flagged:
            # A straggler is done when its last surviving attempt is:
            # either it finished the task itself, or the task's backup
            # won and the straggler's attempt was killed at that point.
            ends = [winner_end.get(task, prim_done[task])
                    for task in range(slow, ntasks, size)]
            finish[slow] = max(ends, default=busy[slow])
        report.makespan = max(finish, default=0.0)

    # Clock replacement: the physically accumulated time (including
    # duplicate work and straggler slowdown already charged) becomes
    # the scheduled completion time.
    comm.sync_time(origin + finish[comm.rank])

    # Shuffle the *winning* attempts' bytes.  The sender of a task's
    # records is its final owner; record order within a destination is
    # (source rank, task) - stable and replicated, though it differs
    # from the unmitigated order, which is why harnesses compare
    # *sorted* output.
    sends = [bytearray() for _ in range(size)]
    for task in sorted(owner):
        if owner[task] != comm.rank:
            continue
        encoded = backup_out[task] if task in backup_hosts else prim_out[task]
        for key, value in layout.iter_records(encoded):
            sends[part_fn(key, size)] += layout.encode(key, value)
    received = comm.alltoallv(sends)

    out = KVContainer(env.tracker, layout, page_size,
                      tag=out_tag or f"kv_{stage_key}",
                      spill_env=env if out_of_core else None)
    for buf in received:
        out.extend_encoded(buf)

    metrics.inc("core.map.records", emitted)
    metrics.inc("core.map.kv_bytes", out.nbytes)
    metrics.inc("core.map.rounds")
    metrics.observe("core.phase.seconds", comm.clock.time - origin)
    if ctx is not None:
        ctx.record(report, env)
    return out


# ----------------------------------------------------------- membership


class StragglerEvicted(SimulatedRankFailure):
    """A flagged rank voluntarily leaves so the gang can shrink.

    Raised at a job's eviction point by :meth:`ElasticContext.
    maybe_evict`; :func:`run_elastic` promotes it to a membership
    change (the plain restart driver retries it like a death).
    """

    failure_class = "straggler-evict"

    def __init__(self, tag: str, rank: int):
        super().__init__(tag, rank)
        self.args = (f"straggler rank {rank} evicted at {tag!r}",)


def restore_rebalanced(env: RankEnv, ckpt: CheckpointManager, phase: str, *,
                       layout: KVLayout | None = None,
                       page_size: int = 64 * 1024,
                       partitioner: Callable[[bytes, int], int] | None = None,
                       tag: str = "kv_rebalanced") -> KVContainer | None:
    """Load a phase checkpoint across a membership change, or ``None``.

    The shard re-balancing step: a checkpoint written by ``n`` ranks
    is discovered (:meth:`CheckpointManager.partition_count` - free
    metadata scans, so every rank agrees without communicating), each
    surviving rank reads a contiguous block of the old partitions, and
    records are re-shuffled to their new homes by the same partitioner
    the job uses.  When the gang size is unchanged this degrades to a
    plain per-rank restore.  Returns ``None`` when the phase never
    completed (including when a partition died with its rank before
    the markers committed) - the caller recomputes from lineage.
    """
    comm = env.comm
    layout = layout or KVLayout()
    part_fn = partitioner or default_partitioner
    old_n = ckpt.partition_count(phase)
    agreed = comm.allreduce(old_n, min)
    if agreed == 0:
        return None
    if agreed == comm.size:
        return ckpt.load_kvc(phase, layout, page_size, tag=tag)

    lo, hi = split_range(agreed, comm.rank, comm.size)
    sends = [bytearray() for _ in range(comm.size)]
    moved = 0
    for part in range(lo, hi):
        payload = ckpt.read_partition(phase, part)
        for key, value in layout.iter_records(payload):
            record = layout.encode(key, value)
            sends[part_fn(key, comm.size)] += record
            moved += len(record)
    env.charge_compute(moved)
    received = comm.alltoallv(sends)
    out = KVContainer(env.tracker, layout, page_size, tag=tag)
    for buf in received:
        out.extend_encoded(buf)
    env.metrics.inc("ft.checkpoint.restores")
    return out


@dataclass
class MembershipChange:
    """One gang-size transition in an elastic run's history."""

    attempt: int
    kind: str          # "leave" | "join" | "evict" | "death"
    rank: int | None
    nprocs: int        # gang size *after* the change
    at: float          # virtual time the triggering event carried
    cause: str = ""


@dataclass
class ElasticResult(FTResult):
    """Outcome of an elastic run: an FTResult plus membership history."""

    membership_log: list[MembershipChange] = field(default_factory=list)
    speculation: list[SpeculationReport] = field(default_factory=list)
    final_nprocs: int = 0

    @property
    def membership_changes(self) -> int:
        return len(self.membership_log)


class ElasticContext:
    """Per-run handle a job uses to talk to the elastic driver.

    Bundles the fault plan (probe points), the policy, and the
    speculation reports; shared across attempts so history survives
    restarts.  Jobs call :meth:`probe` where chaos-wrapped jobs call
    ``faults.check``, and may call :meth:`maybe_evict` after a phase
    whose report flagged a straggler.
    """

    def __init__(self, policy: ElasticPolicy, faults: Any):
        self.policy = policy
        self.faults = faults
        self.reports: list[SpeculationReport] = []
        self.last_report: SpeculationReport | None = None
        #: Eviction budget, decremented by :func:`run_elastic` as
        #: membership changes accumulate.
        self.membership_left = policy.max_membership_changes
        self.min_ranks = policy.min_ranks
        #: Absorbed-event sink shared with the driver's failure log, so
        #: transient map-read retries are classified like checkpoint
        #: retries.
        self.failure_log: list[FailureRecord] = []

    def probe(self, env: RankEnv, tag: str) -> None:
        """A job checkpoint/phase boundary: faults may fire here."""
        self.faults.check(tag, env.comm.rank)
        if hasattr(self.faults, "membership_check"):
            self.faults.membership_check(env.comm, tag)

    def record(self, report: SpeculationReport, env: RankEnv) -> None:
        """Collect a phase's speculation report (rank 0 appends)."""
        self.last_report = report
        if env.comm.rank == 0:
            self.reports.append(report)

    def maybe_evict(self, env: RankEnv, tag: str) -> None:
        """Turn a persistent straggler into a membership departure.

        If the last phase flagged stragglers and policy + budget allow
        shrinking, the lowest flagged rank raises
        :class:`StragglerEvicted`; the driver shrinks the gang and the
        retry runs without the slow host.  Speculation already bounded
        the *current* phase; eviction keeps the slowness from taxing
        every future phase.
        """
        report = self.last_report
        if report is None or not report.flagged:
            return
        if not (self.policy.evict_stragglers and self.policy.allow_leave):
            return
        if self.membership_left <= 0:
            return
        if env.comm.size - 1 < self.min_ranks:
            return
        victim = min(report.flagged)
        if env.comm.rank == victim:
            raise StragglerEvicted(tag, victim)


def run_elastic(cluster: Cluster, job: Callable[..., Any], *,
                policy: ElasticPolicy | None = None,
                faults: Any = None,
                job_id: str = "job",
                max_restarts: int = 8,
                restart_caps: dict[str, int] | None = None,
                nonce: str | None = None) -> ElasticResult:
    """Run ``job(env, ckpt, ctx)`` under the elastic membership driver.

    Like :func:`~repro.ft.runner.run_with_recovery`, with death
    *promoted*: a rank death, scheduled leave, or straggler eviction
    shrinks the gang (``Cluster.resize``) instead of burning restart
    budget, as long as the policy allows leaves, the membership budget
    is not spent, and the gang stays at or above ``policy.min_ranks``.
    Scheduled joins from the fault plan's membership schedule grow the
    gang at launch boundaries.  Checkpoints survive membership changes
    because the nonce is fixed for the whole run (not per gang size) -
    :func:`restore_rebalanced` does the re-sharding.
    """
    policy = policy or ElasticPolicy()
    plan = faults if faults is not None else FaultPlan()
    ctx = ElasticContext(policy, plan)
    if nonce is None:
        from repro.ft.runner import _RUN_SEQ
        nonce = f"{job_id}/elastic/run{next(_RUN_SEQ)}"
    caps = dict(default_restart_caps(max_restarts))
    if restart_caps:
        caps.update(restart_caps)

    previous_chaos = cluster.chaos
    if hasattr(plan, "on_write"):
        cluster.chaos = plan

    total_elapsed = 0.0
    failures: list[str] = []
    failure_log: list[FailureRecord] = ctx.failure_log
    membership_log: list[MembershipChange] = []
    restarts_by_class: dict[str, int] = {}
    last_clock = 0.0

    def changes_left() -> int:
        return policy.max_membership_changes - len(membership_log)

    def shrink(attempt: int, kind: str, rank: int | None, at: float,
               cause: str) -> None:
        cluster.resize(cluster.nprocs - 1)
        if rank is not None and hasattr(plan, "remove_rank"):
            plan.remove_rank(rank)
        membership_log.append(MembershipChange(
            attempt, kind, rank, cluster.nprocs, at, cause))
        ctx.membership_left = changes_left()
        cluster.metrics.shard(-1).inc("ft.membership.changes")

    def rank_fn(env: RankEnv) -> Any:
        ckpt = CheckpointManager(env, job_id, nonce=nonce, faults=plan,
                                 failure_log=failure_log)
        return job(env, ckpt, ctx)

    try:
        for attempt in itertools.count(1):
            # Launch-boundary membership sweep: joins grow the gang;
            # leaves whose rank never reached a probe shrink it here.
            if hasattr(plan, "membership_due"):
                for event in plan.membership_due(last_clock,
                                                nranks=cluster.nprocs):
                    if event.kind == "join":
                        if (policy.allow_join and changes_left() > 0
                                and cluster.nprocs < policy.max_ranks):
                            cluster.resize(cluster.nprocs + 1)
                            membership_log.append(MembershipChange(
                                attempt, "join", None, cluster.nprocs,
                                event.at, "scheduled join"))
                            ctx.membership_left = changes_left()
                            cluster.metrics.shard(-1).inc(
                                "ft.membership.changes")
                    elif (policy.allow_leave and changes_left() > 0
                            and cluster.nprocs > policy.min_ranks):
                        shrink(attempt, "leave", event.rank, event.at,
                               "scheduled leave (launch boundary)")
            try:
                result = cluster.run(rank_fn)
            except RankFailedError as failure:
                kind = classify_failure(failure.original)
                lost_clocks = getattr(failure, "clocks", None) or [0.0]
                lost = max(lost_clocks)
                last_clock = max(last_clock, lost)
                total_elapsed += lost
                failures.append(str(failure.original))
                failure_log.append(FailureRecord(
                    attempt, failure.rank, kind,
                    str(failure.original), lost))
                promotable = (kind in _SHRINKABLE and policy.allow_leave
                              and changes_left() > 0
                              and cluster.nprocs > policy.min_ranks)
                if promotable:
                    change_kind = {"rank-death": "death",
                                   "membership-leave": "leave",
                                   "straggler-evict": "evict"}[kind]
                    at = getattr(failure.original, "at", last_clock)
                    shrink(attempt, change_kind, failure.rank, at,
                           str(failure.original))
                    continue
                restarts_by_class[kind] = restarts_by_class.get(kind, 0) + 1
                if (restarts_by_class[kind] > caps.get(kind, 0)
                        or attempt > max_restarts + len(membership_log)):
                    raise
                cluster.metrics.shard(-1).inc("ft.restarts")
                continue
            total_elapsed += result.elapsed
            return ElasticResult(result, attempt, total_elapsed, failures,
                                 failure_log,
                                 membership_log=membership_log,
                                 speculation=list(ctx.reports),
                                 final_nprocs=cluster.nprocs)
        raise AssertionError("unreachable")
    finally:
        cluster.chaos = previous_chaos
        cluster.pfs.chaos = previous_chaos


# ----------------------------------------------------- scheduler bridge


class ElasticStageHooks:
    """Wires the reactive layer into a :class:`~repro.sched.executor.
    PlanRunner`.

    Passed as ``runner(plan, elastic=...)``: map stages over text
    inputs run through :func:`speculative_map` (task keys derive from
    the stage's lineage key), and every other executed stage's
    duration feeds the straggler monitor via an allgather
    (:meth:`observe_stage`).  Kept duck-typed on the scheduler side so
    :mod:`repro.sched` never imports this module at import time.
    """

    def __init__(self, policy: ElasticPolicy | None = None):
        self.policy = policy or ElasticPolicy()
        self.monitor = StragglerMonitor(self.policy.straggler_threshold,
                                        self.policy.min_detect_seconds)
        self.reports: list[SpeculationReport] = []
        self.last_report: SpeculationReport | None = None
        #: Flagged ranks by stage name, from :meth:`observe_stage`.
        self.flags: dict[str, list[int]] = {}

    def map_text(self, env: RankEnv, path: str, stage, config) -> KVContainer:
        """Run a text-input map stage speculatively."""
        params = stage.params
        return speculative_map(
            env, path, stage.fn, config=config, policy=self.policy,
            stage_key=stage.key, combine_fn=params.get("combine_fn"),
            partitioner=params.get("partitioner"),
            layout=params.get("layout"), out_tag=f"kv_{stage.name}",
            ctx=self)

    def record(self, report: SpeculationReport, env: RankEnv) -> None:
        self.last_report = report
        if env.comm.rank == 0:
            self.reports.append(report)

    def observe_stage(self, env: RankEnv, stage, seconds: float) -> list[int]:
        """Progress-monitor a non-speculative stage (collective call)."""
        durations = env.comm.allgather(seconds)
        flagged = self.monitor.flag(durations)
        if len(flagged) >= env.comm.size:
            flagged = []
        if flagged:
            self.flags[stage.name] = flagged
            if env.comm.rank in flagged:
                env.metrics.inc("ft.straggler.flagged")
        return flagged


# -------------------------------------------------------------- scaling


@dataclass(frozen=True)
class ScalingPolicy:
    """Grows/shrinks the gang from queue depth and memory residency.

    The autoscaler half of the control loop, consumed by the dataflow
    scheduler: ``decide`` maps the sensors (ready-queue depth from the
    scheduler, peak memory residency from the trackers) to a target
    gang size.  Residency dominates - an almost-full memory budget
    grows the gang even when the queue is short, and shrinking is
    refused until residency is comfortably low, so scale-downs never
    cause the OOM they are supposed to be irrelevant to.
    """

    min_ranks: int = 1
    max_ranks: int = 64
    #: Target ready-queue jobs per rank; deeper queues grow the gang.
    jobs_per_rank: float = 1.0
    grow_residency: float = 0.80
    shrink_residency: float = 0.30
    step: int = 1

    def __post_init__(self):
        if self.min_ranks < 1:
            raise ValueError(f"min_ranks must be >= 1, got {self.min_ranks}")
        if self.max_ranks < self.min_ranks:
            raise ValueError(
                f"max_ranks {self.max_ranks} < min_ranks {self.min_ranks}")
        if self.jobs_per_rank <= 0:
            raise ValueError(
                f"jobs_per_rank must be positive, got {self.jobs_per_rank}")
        if not 0.0 <= self.shrink_residency <= self.grow_residency <= 1.0:
            raise ValueError(
                f"need 0 <= shrink_residency <= grow_residency <= 1, got "
                f"{self.shrink_residency} / {self.grow_residency}")
        if self.step < 1:
            raise ValueError(f"step must be >= 1, got {self.step}")

    def decide(self, *, queue_depth: int, residency: float,
               nprocs: int) -> int:
        """Target gang size for the next scheduling round."""
        wanted = -(-queue_depth // max(self.jobs_per_rank, 1e-9)) \
            if queue_depth else 0
        wanted = int(wanted)
        target = nprocs
        if residency >= self.grow_residency or wanted > nprocs:
            target = nprocs + self.step
        elif wanted < nprocs and residency <= self.shrink_residency:
            target = nprocs - self.step
        return max(self.min_ranks, min(self.max_ranks, target))


# -------------------------------------------------------------- harness
#
# The elastic analog of :mod:`repro.ft.chaos`: a checkpointed
# WordCount whose map runs through :func:`speculative_map`, used by
# tests and ``benchmarks/bench_straggler_mitigation.py``.  The map
# combines locally, so shuffle/checkpoint/reduce traffic is tiny
# relative to map I/O - the regime where speculation's bound is
# visible instead of drowned by fixed costs.

ELASTIC_TAGS = ("start", "after_shuffle", "after_reduce",
                "ckpt:shuffle:precommit")
ELASTIC_CFG = None  # assigned below; MimirConfig import kept local
ELASTIC_TEXT = (b"oak elm ash fir oak elm oak yew ash oak pine fir "
                b"cedar yew larch teak ") * 7200
ELASTIC_INPUT = "input/elastic_words.txt"


def _elastic_cfg():
    global ELASTIC_CFG
    if ELASTIC_CFG is None:
        from repro.core import MimirConfig
        ELASTIC_CFG = MimirConfig(page_size=2048, comm_buffer_size=2048,
                                  input_chunk_size=512)
    return ELASTIC_CFG


def _wc_map(ctx, chunk: bytes) -> None:
    from repro.core import pack_u64
    one = pack_u64(1)
    for word in chunk.split():
        ctx.emit(word, one)


def _wc_combine(key: bytes, a: bytes, b: bytes) -> bytes:
    from repro.core import pack_u64, unpack_u64
    return pack_u64(unpack_u64(a) + unpack_u64(b))


def make_elastic_cluster(nprocs: int = 4) -> Cluster:
    """A fresh cluster with the harness input staged (one per run)."""
    from repro.mpi import COMET
    cluster = Cluster(COMET, nprocs=nprocs, memory_limit=None)
    cluster.pfs.store(ELASTIC_INPUT, ELASTIC_TEXT)
    return cluster


def elastic_wordcount(env: RankEnv, ckpt: CheckpointManager,
                      ctx: ElasticContext):
    """Checkpointed speculative WordCount; the elastic chaos target.

    Returns this rank's sorted ``(word, count)`` share; compare runs
    with :func:`global_counts` - membership changes re-partition keys,
    so only the merged multiset is invariant.
    """
    from repro.core import Mimir, unpack_u64
    cfg = _elastic_cfg()
    ctx.probe(env, "start")

    kvs = restore_rebalanced(env, ckpt, "shuffle", layout=cfg.layout,
                             page_size=cfg.page_size)
    if kvs is None:
        kvs = speculative_map(env, ELASTIC_INPUT, _wc_map, config=cfg,
                              policy=ctx.policy, stage_key="map",
                              combine_fn=_wc_combine, ctx=ctx)
        ckpt.save_kvc("shuffle", kvs)
        ctx.probe(env, "after_shuffle")
        ctx.maybe_evict(env, "post-map")

    out = Mimir(env, cfg).partial_reduce(kvs, _wc_combine)
    ctx.probe(env, "after_reduce")
    counts = tuple(sorted((k, unpack_u64(v)) for k, v in out.records()))
    out.free()
    return counts


def sweep_wordcount(env: RankEnv, ckpt: CheckpointManager,
                    ctx: ElasticContext):
    """The straggler-sweep target: speculative map + reduce, no
    checkpoint.

    Pure-straggler schedules never restart, so a checkpoint would be
    dead weight on COMET's penalized writes; dropping it keeps the job
    map-dominated, the regime the speculation bound is stated for.
    """
    from repro.core import Mimir, unpack_u64
    cfg = _elastic_cfg()
    ctx.probe(env, "start")
    kvs = speculative_map(env, ELASTIC_INPUT, _wc_map, config=cfg,
                          policy=ctx.policy, stage_key="map",
                          combine_fn=_wc_combine, ctx=ctx)
    out = Mimir(env, cfg).partial_reduce(kvs, _wc_combine)
    ctx.probe(env, "after_reduce")
    counts = tuple(sorted((k, unpack_u64(v)) for k, v in out.records()))
    out.free()
    return counts


def global_counts(returns: list) -> tuple:
    """Gang-size-independent fingerprint of the per-rank outputs."""
    merged: dict[bytes, int] = {}
    for part in returns:
        for key, count in part or ():
            merged[key] = merged.get(key, 0) + count
    return tuple(sorted(merged.items()))


def straggler_plan(seed: int, nprocs: int, *,
                   factor_range: tuple[float, float] = (4.0, 8.0)):
    """A seeded one-straggler schedule (rank and factor drawn from
    ``seed``)."""
    import random

    from repro.ft.injection import ChaosPlan
    rng = random.Random(seed)
    rank = rng.randrange(nprocs)
    factor = round(rng.uniform(*factor_range), 2)
    return ChaosPlan(seed, stragglers={rank: factor})
