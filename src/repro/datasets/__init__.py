"""Synthetic dataset generators for the paper's four workload inputs.

- ``words``: uniform random text (the paper's "Uniform" WordCount
  dataset) and Zipf-skewed variable-length text (standing in for the
  PUMA Wikipedia dump, whose defining property for the evaluation is
  heterogeneity of word frequency and length).
- ``points``: 3-D points, Normal(0.5, 0.5) per axis clipped to the unit
  cube (the octree-clustering input described in Section IV-A).
- ``graph500``: Kronecker (R-MAT) edge lists with average degree 32,
  the Graph500 BFS input.

All generators are deterministic given a seed and vectorised with
NumPy.
"""

from repro.datasets.graph500 import EDGE_RECORD_SIZE, edges_to_bytes, kronecker_edges
from repro.datasets.points import POINT_RECORD_SIZE, normal_points, points_to_bytes
from repro.datasets.words import uniform_text, zipf_text

__all__ = [
    "EDGE_RECORD_SIZE",
    "POINT_RECORD_SIZE",
    "edges_to_bytes",
    "kronecker_edges",
    "normal_points",
    "points_to_bytes",
    "uniform_text",
    "zipf_text",
]
