"""Graph500 Kronecker (R-MAT) edge-list generator.

Follows the Graph500 reference generator: ``2**scale`` vertices, edges
placed by recursively descending a 2x2 probability matrix
(A, B, C, D) = (0.57, 0.19, 0.19, 0.05), then vertex labels and edge
order are randomly permuted.  The paper uses an average degree of 32
(edges/vertices), i.e. edgefactor 32, giving the scale-free degree
distribution BFS is benchmarked on.
"""

from __future__ import annotations

import numpy as np

#: Bytes per serialised edge: two little-endian uint64 endpoints.
EDGE_RECORD_SIZE = 16

_DTYPE = np.dtype("<u8")


def kronecker_edges(scale: int, edgefactor: int = 32, seed: int = 0, *,
                    a: float = 0.57, b: float = 0.19,
                    c: float = 0.19) -> np.ndarray:
    """Generate an ``(m, 2)`` uint64 edge list, m = edgefactor * 2**scale.

    Self-loops and duplicate edges are possible, exactly as in the
    reference generator; BFS treats the graph as undirected.
    """
    if scale < 0:
        raise ValueError(f"scale must be non-negative, got {scale}")
    if edgefactor <= 0:
        raise ValueError(f"edgefactor must be positive, got {edgefactor}")
    d = 1.0 - (a + b + c)
    if d < 0:
        raise ValueError("probabilities a+b+c must not exceed 1")
    nverts = 1 << scale
    nedges = edgefactor * nverts
    rng = np.random.default_rng(seed)

    src = np.zeros(nedges, dtype=_DTYPE)
    dst = np.zeros(nedges, dtype=_DTYPE)
    ab = a + b
    a_norm = a / ab if ab else 0.5
    c_norm = c / (c + d) if (c + d) else 0.5
    for bit in range(scale):
        # Which quadrant of the recursive matrix this bit falls in.
        ii = rng.random(nedges) > ab                      # row bit
        jj_prob = np.where(ii, c_norm, a_norm)
        jj = rng.random(nedges) > jj_prob                 # column bit
        src |= ii.astype(_DTYPE) << bit
        dst |= jj.astype(_DTYPE) << bit

    # Permute vertex labels and edge order (Graph500 post-processing).
    perm = rng.permutation(nverts).astype(_DTYPE)
    src, dst = perm[src], perm[dst]
    order = rng.permutation(nedges)
    return np.stack([src[order], dst[order]], axis=1)


def edges_to_bytes(edges: np.ndarray) -> bytes:
    """Serialise an ``(m, 2)`` uint64 edge list to the binary format."""
    arr = np.ascontiguousarray(edges, dtype=_DTYPE)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"expected an (m, 2) array, got shape {arr.shape}")
    return arr.tobytes()


def bytes_to_edges(data: bytes) -> np.ndarray:
    """Inverse of :func:`edges_to_bytes`."""
    if len(data) % EDGE_RECORD_SIZE:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of "
            f"{EDGE_RECORD_SIZE}")
    return np.frombuffer(data, dtype=_DTYPE).reshape(-1, 2)
