"""Synthetic text corpora for WordCount.

``uniform_text`` draws fixed-length words uniformly from a vocabulary -
balanced keys, the paper's well-behaved case.  ``zipf_text`` draws
variable-length words from a Zipf distribution - a few words dominate
and word lengths vary, reproducing the load imbalance and high
compressibility that make the paper's Wikipedia runs hard on MR-MPI.
"""

from __future__ import annotations

import numpy as np

_ALPHABET = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)


def _make_vocabulary(rng: np.random.Generator, nwords: int,
                     lengths: np.ndarray) -> list[bytes]:
    """Distinct random words with the given per-word lengths."""
    vocab: list[bytes] = []
    seen: set[bytes] = set()
    for length in lengths:
        for _ in range(100):
            letters = rng.integers(0, len(_ALPHABET), size=int(length))
            word = _ALPHABET[letters].tobytes()
            if word not in seen:
                seen.add(word)
                vocab.append(word)
                break
        else:  # pragma: no cover - 100 collisions is practically impossible
            raise RuntimeError("could not generate a distinct word")
    return vocab


def _render(vocab: list[bytes], indices: np.ndarray,
            total_bytes: int) -> bytes:
    """Concatenate sampled words (space separated), cut at a boundary."""
    width = max(len(w) for w in vocab) + 1
    table = np.zeros((len(vocab), width), dtype=np.uint8)
    for i, word in enumerate(vocab):
        row = word + b" "
        table[i, : len(row)] = np.frombuffer(row, dtype=np.uint8)
    data = table[indices].reshape(-1).tobytes()
    # Fixed-width rows pad with NULs after the trailing space; squeezing
    # them out restores plain space-separated text.
    data = data.replace(b"\0", b"")
    if len(data) <= total_bytes:
        return data
    cut = data.rfind(b" ", 0, total_bytes + 1)
    return data[: cut + 1] if cut > 0 else data[:total_bytes]


def uniform_text(total_bytes: int, vocab_size: int = 4096,
                 word_len: int = 6, seed: int = 0) -> bytes:
    """Uniform random text of roughly ``total_bytes`` bytes."""
    if total_bytes <= 0:
        return b""
    if vocab_size <= 0 or word_len <= 0:
        raise ValueError("vocab_size and word_len must be positive")
    rng = np.random.default_rng(seed)
    vocab = _make_vocabulary(
        rng, vocab_size, np.full(vocab_size, word_len, dtype=np.int64))
    nwords = total_bytes // (word_len + 1) + 1
    indices = rng.integers(0, vocab_size, size=nwords)
    return _render(vocab, indices, total_bytes)


def zipf_text(total_bytes: int, vocab_size: int = 8192, s: float = 0.95,
              min_len: int = 3, max_len: int = 16, seed: int = 0) -> bytes:
    """Zipf-skewed text: heterogeneous word frequencies and lengths.

    Rank-``r`` word probability is proportional to ``1 / r**s``; the
    most frequent words are short (as in natural language), the tail is
    long and varied.  The default exponent puts the top word at ~6 % of
    all occurrences, matching English-text corpora like the paper's
    Wikipedia dump.
    """
    if total_bytes <= 0:
        return b""
    if vocab_size <= 0:
        raise ValueError("vocab_size must be positive")
    if not 0 < min_len <= max_len:
        raise ValueError("need 0 < min_len <= max_len")
    rng = np.random.default_rng(seed)
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks ** (-s)
    probs /= probs.sum()
    # Frequent words short, rare words longer (log-like growth).
    lengths = np.clip(
        min_len + np.log2(ranks).astype(np.int64) // 2 +
        rng.integers(0, 3, size=vocab_size),
        min_len, max_len)
    vocab = _make_vocabulary(rng, vocab_size, lengths)
    mean_len = float(np.dot(probs, lengths + 1))
    nwords = int(total_bytes / mean_len) + 1
    indices = rng.choice(vocab_size, size=nwords, p=probs)
    return _render(vocab, indices, total_bytes)
