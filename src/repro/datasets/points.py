"""3-D point clouds for octree clustering.

The paper's OC dataset: ligand-metadata points whose positions follow
a normal distribution with 0.5 standard deviation; the clustering
searches for octants denser than 1 % of the total points.  We generate
exactly that distribution in the unit cube (clipped), serialised as
float32 triples.
"""

from __future__ import annotations

import numpy as np

#: Bytes per serialised point: three little-endian float32 coordinates.
POINT_RECORD_SIZE = 12

_DTYPE = np.dtype("<f4")


def normal_points(npoints: int, sigma: float = 0.5, mean: float = 0.5,
                  seed: int = 0) -> np.ndarray:
    """``(npoints, 3)`` float32 coordinates, Normal(mean, sigma), clipped
    to ``[0, 1)``."""
    if npoints < 0:
        raise ValueError(f"npoints must be non-negative, got {npoints}")
    rng = np.random.default_rng(seed)
    pts = rng.normal(mean, sigma, size=(npoints, 3)).astype(_DTYPE)
    # Clip after the float32 conversion: a float64 value just below 1.0
    # would otherwise round up to exactly 1.0.
    top = np.nextafter(np.float32(1.0), np.float32(0.0))
    np.clip(pts, np.float32(0.0), top, out=pts)
    return pts


def points_to_bytes(points: np.ndarray) -> bytes:
    """Serialise an ``(n, 3)`` array to the on-PFS binary format."""
    arr = np.ascontiguousarray(points, dtype=_DTYPE)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"expected an (n, 3) array, got shape {arr.shape}")
    return arr.tobytes()


def bytes_to_points(data: bytes) -> np.ndarray:
    """Inverse of :func:`points_to_bytes`."""
    if len(data) % POINT_RECORD_SIZE:
        raise ValueError(
            f"byte length {len(data)} is not a multiple of "
            f"{POINT_RECORD_SIZE}")
    return np.frombuffer(data, dtype=_DTYPE).reshape(-1, 3)
