"""Simulated globally shared parallel file system.

Files are named byte blobs visible to every rank.  Accesses made
through a communicator charge virtual time using the platform's
:class:`~repro.mpi.costmodel.PFSModel`; ``store``/``fetch`` are
zero-cost staging hooks for test and benchmark setup (the equivalent
of data already resident before the timed job starts is *not* free -
input reads go through :meth:`read` - but generating the dataset is).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any

from repro.io.errors import PFSFileNotFoundError
from repro.mpi.comm import SimComm
from repro.mpi.costmodel import PFSModel


@dataclass
class FileStats:
    """Aggregate traffic counters for one file system."""

    bytes_read: int = 0
    bytes_written: int = 0
    reads: int = 0
    writes: int = 0
    by_prefix: dict[str, int] = field(default_factory=dict)

    def _charge(self, path: str, nbytes: int) -> None:
        prefix = path.split("/", 1)[0] if "/" in path else path
        self.by_prefix[prefix] = self.by_prefix.get(prefix, 0) + nbytes


class ParallelFileSystem:
    """Thread-safe shared blob store with an I/O cost model.

    ``sharers`` models bandwidth contention: the ranks of one node
    share the node's PFS pipe, so each rank sees ``bandwidth /
    sharers``.  This contention is what makes I/O spillover from a
    fully populated node as catastrophic as the paper's Figure 1.
    """

    def __init__(self, model: PFSModel | None = None, sharers: int = 1):
        if sharers <= 0:
            raise ValueError(f"sharers must be positive, got {sharers}")
        self.model = model or PFSModel(latency=0.0, bandwidth=float("inf"))
        self.sharers = sharers
        self._files: dict[str, bytearray] = {}
        self._lock = threading.Lock()
        self.stats = FileStats()
        #: Optional fault injector (see :class:`repro.ft.injection.
        #: ChaosPlan`); duck-typed to keep this substrate dependency-free.
        self.chaos: Any = None
        #: Optional :class:`repro.obs.registry.MetricsRegistry` (duck-
        #: typed) installed by the cluster harness; costed accesses are
        #: then charged to the calling rank's metric shard.
        self.metrics: Any = None

    def _shard(self, comm: SimComm):
        """The calling rank's metric shard, or ``None`` untracked."""
        if self.metrics is None:
            return None
        return self.metrics.shard(comm.rank)

    def _require(self, path: str) -> bytearray:
        """Look up ``path`` or raise a descriptive not-found error.

        Must be called with ``self._lock`` held.
        """
        try:
            return self._files[path]
        except KeyError:
            near = [p for p in self._files
                    if p.rsplit("/", 1)[0] == path.rsplit("/", 1)[0]]
            hint = f"{len(near)} sibling file(s) under the same directory" \
                if near else "no files under that directory"
            raise PFSFileNotFoundError(path, hint) from None

    def _cost(self, nbytes: int, write: bool = False) -> float:
        bw = self.model.effective_write_bandwidth if write else \
            self.model.effective_bandwidth
        return self.model.latency + nbytes * self.sharers / bw

    # -------------------------------------------------------- cost-free staging

    def store(self, path: str, data: bytes | bytearray) -> None:
        """Place a file without charging time (dataset staging)."""
        with self._lock:
            self._files[path] = bytearray(data)

    def fetch(self, path: str) -> bytes:
        """Read a file without charging time (result inspection)."""
        with self._lock:
            return bytes(self._require(path))

    def exists(self, path: str) -> bool:
        with self._lock:
            return path in self._files

    def size(self, path: str) -> int:
        with self._lock:
            return len(self._require(path))

    def listdir(self, prefix: str = "") -> list[str]:
        with self._lock:
            return sorted(p for p in self._files if p.startswith(prefix))

    def delete(self, path: str) -> None:
        with self._lock:
            self._files.pop(path, None)

    # ------------------------------------------------------------ costed I/O

    def read(self, comm: SimComm, path: str, offset: int = 0,
             size: int | None = None) -> bytes:
        """Read ``size`` bytes at ``offset``, charging the caller's clock."""
        if self.chaos is not None:
            self.chaos.on_access(comm, "read", path)
        with self._lock:
            blob = self._require(path)
            end = len(blob) if size is None else min(offset + size, len(blob))
            data = bytes(blob[offset:end])
            self.stats.bytes_read += len(data)
            self.stats.reads += 1
            self.stats._charge(path, len(data))
        shard = self._shard(comm)
        if shard is not None:
            shard.inc("io.pfs.reads")
            shard.inc("io.pfs.bytes_read", len(data))
        comm.advance(self._cost(len(data)))
        return data

    def write(self, comm: SimComm, path: str, data: bytes | bytearray) -> None:
        """Replace ``path`` with ``data``, charging the caller's clock.

        Under chaos injection the write may fail transiently *before*
        taking effect, land corrupted, or land torn (a prefix is stored
        and the rank dies) - the failure modes checksummed checkpoints
        exist to catch.
        """
        raise_after: BaseException | None = None
        if self.chaos is not None:
            data, raise_after = self.chaos.on_write(comm, path, bytes(data))
        with self._lock:
            self._files[path] = bytearray(data)
            self.stats.bytes_written += len(data)
            self.stats.writes += 1
            self.stats._charge(path, len(data))
        shard = self._shard(comm)
        if shard is not None:
            shard.inc("io.pfs.writes")
            shard.inc("io.pfs.bytes_written", len(data))
        comm.advance(self._cost(len(data), write=True))
        if raise_after is not None:
            raise raise_after

    def write_at(self, comm: SimComm, path: str, offset: int,
                 data: bytes | bytearray) -> None:
        """Positional write (MPI-IO style): ranks fill disjoint regions.

        The file grows as needed; unwritten gaps read as zero bytes.
        """
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        if self.chaos is not None:
            self.chaos.on_access(comm, "write_at", path)
        with self._lock:
            blob = self._files.setdefault(path, bytearray())
            end = offset + len(data)
            if len(blob) < end:
                blob.extend(b"\0" * (end - len(blob)))
            blob[offset:end] = data
            self.stats.bytes_written += len(data)
            self.stats.writes += 1
            self.stats._charge(path, len(data))
        shard = self._shard(comm)
        if shard is not None:
            shard.inc("io.pfs.writes")
            shard.inc("io.pfs.bytes_written", len(data))
        comm.advance(self._cost(len(data), write=True))

    def append(self, comm: SimComm, path: str, data: bytes | bytearray) -> int:
        """Append ``data``; returns the offset it was written at."""
        if self.chaos is not None:
            self.chaos.on_access(comm, "append", path)
        with self._lock:
            blob = self._files.setdefault(path, bytearray())
            offset = len(blob)
            blob.extend(data)
            self.stats.bytes_written += len(data)
            self.stats.writes += 1
            self.stats._charge(path, len(data))
        shard = self._shard(comm)
        if shard is not None:
            shard.inc("io.pfs.writes")
            shard.inc("io.pfs.bytes_written", len(data))
        comm.advance(self._cost(len(data), write=True))
        return offset

    # ------------------------------------------------------------- reporting

    @property
    def spilled_bytes(self) -> int:
        """Bytes written under the ``spill`` prefix (out-of-core traffic)."""
        return self.stats.by_prefix.get("spill", 0)
