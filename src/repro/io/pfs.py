"""Simulated globally shared parallel file system.

Files are named byte blobs visible to every rank.  Accesses made
through a communicator charge virtual time using the platform's
:class:`~repro.mpi.costmodel.PFSModel`; ``store``/``fetch`` are
zero-cost staging hooks for test and benchmark setup (the equivalent
of data already resident before the timed job starts is *not* free -
input reads go through :meth:`read` - but generating the dataset is).

Since the storage refactor the PFS is one implementation of the
:class:`~repro.storage.base.StorageBackend` protocol - the *reference*
implementation, whose cost math, stats accounting, chaos-hook call
order, and metric names (the historical ``io.pfs.*`` namespace) are
bit-identical to the pre-protocol behaviour.  Checkpoints, spill
streams, the stage cache, and the serve journal all program against
the protocol, so they run unchanged on the alternate backends in
:mod:`repro.storage`.
"""

from __future__ import annotations

import threading

from repro.mpi.costmodel import PFSModel
from repro.storage.base import FileStats, StorageBackend

__all__ = ["FileStats", "ParallelFileSystem"]


class ParallelFileSystem(StorageBackend):
    """Thread-safe shared blob store with an I/O cost model.

    ``sharers`` models bandwidth contention: the ranks of one node
    share the node's PFS pipe, so each rank sees ``bandwidth /
    sharers``.  This contention is what makes I/O spillover from a
    fully populated node as catastrophic as the paper's Figure 1.
    """

    name = "pfs"

    METRIC_READS = "io.pfs.reads"
    METRIC_WRITES = "io.pfs.writes"
    METRIC_BYTES_READ = "io.pfs.bytes_read"
    METRIC_BYTES_WRITTEN = "io.pfs.bytes_written"

    def __init__(self, model: PFSModel | None = None, sharers: int = 1):
        if sharers <= 0:
            raise ValueError(f"sharers must be positive, got {sharers}")
        super().__init__(model)
        self.sharers = sharers
        self._files: dict[str, bytearray] = {}
        self._lock = threading.Lock()

    # --------------------------------------------------- blob primitives

    def _bucket(self, path: str) -> tuple[threading.Lock, dict]:
        return self._lock, self._files

    def _snapshot_keys(self) -> list[str]:
        with self._lock:
            return list(self._files)

    def _cost(self, path: str, nbytes: int, write: bool = False) -> float:
        bw = self.model.effective_write_bandwidth if write else \
            self.model.effective_bandwidth
        return self.model.latency + nbytes * self.sharers / bw
