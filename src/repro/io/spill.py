"""Out-of-core spill streams on a storage backend.

When a framework's in-memory page fills, the page contents are written
to a per-rank spill stream and later read back one chunk at a time.
Chunk boundaries are preserved so that record encodings (which never
straddle a page) can be decoded chunk-by-chunk on the way back in.

Spill streams program against the :class:`~repro.storage.base.
StorageBackend` protocol (``append``/``read``/``delete``), so they run
unchanged on any backend - the shared PFS, the sharded KV store, or
the external-sort backend's node-local namespace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.mpi.comm import SimComm
from repro.storage.base import StorageBackend

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.codec import Codec


class SpillWriter:
    """Appends page-sized chunks to ``spill/<name>.<rank>``.

    With a :mod:`~repro.core.codec` attached, each chunk is framed on
    the way out and transparently decoded by the reader, so on-PFS
    bytes (``total_bytes``, what the spill costs to write and read
    back) shrink by the compression ratio while callers keep seeing
    the original page payloads.
    """

    def __init__(self, pfs: StorageBackend, comm: SimComm, name: str,
                 *, codec: "Codec | None" = None):
        self.pfs = pfs
        self.comm = comm
        self.path = f"spill/{name}.{comm.rank}"
        self.chunks: list[tuple[int, int]] = []  # (offset, length)
        self.total_bytes = 0
        self.codec = codec

    def write_chunk(self, data: bytes | bytearray | memoryview) -> None:
        """Spill one chunk (typically a full page) to the PFS."""
        payload = bytes(data)
        if not payload:
            return
        if self.codec is not None:
            payload = self.codec.encode_frame(payload)
        self._append(payload)

    def write_encoded(self, frame: bytes) -> None:
        """Spill a chunk that is already codec-framed (a frozen page)."""
        if frame:
            self._append(frame)

    def _append(self, payload: bytes) -> None:
        offset = self.pfs.append(self.comm, self.path, payload)
        self.chunks.append((offset, len(payload)))
        self.total_bytes += len(payload)

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    def reader(self) -> "SpillReader":
        return SpillReader(self.pfs, self.comm, self.path, list(self.chunks),
                           codec=self.codec)

    def discard(self) -> None:
        """Remove the spill file (job teardown)."""
        self.pfs.delete(self.path)
        self.chunks.clear()


class SpillReader:
    """Reads chunks back in write order, charging PFS read costs."""

    def __init__(self, pfs: StorageBackend, comm: SimComm, path: str,
                 chunks: list[tuple[int, int]], *,
                 codec: "Codec | None" = None):
        self.pfs = pfs
        self.comm = comm
        self.path = path
        self.chunks = chunks
        self.codec = codec
        self._next = 0

    def __iter__(self) -> "SpillReader":
        return self

    def __next__(self) -> bytes:
        if self._next >= len(self.chunks):
            raise StopIteration
        offset, length = self.chunks[self._next]
        data = self.pfs.read(self.comm, self.path, offset, length)
        if self.codec is not None:
            data = self.codec.decode_frame(data)
        # Advance only after the read succeeds: a transient fault
        # surfaced to a retry wrapper must re-read this chunk, not
        # silently skip it.
        self._next += 1
        return data

    @property
    def remaining(self) -> int:
        return len(self.chunks) - self._next
