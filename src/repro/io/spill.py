"""Out-of-core spill streams on the parallel file system.

When a framework's in-memory page fills, the page contents are written
to a per-rank spill stream and later read back one chunk at a time.
Chunk boundaries are preserved so that record encodings (which never
straddle a page) can be decoded chunk-by-chunk on the way back in.
"""

from __future__ import annotations

from repro.io.pfs import ParallelFileSystem
from repro.mpi.comm import SimComm


class SpillWriter:
    """Appends page-sized chunks to ``spill/<name>.<rank>``."""

    def __init__(self, pfs: ParallelFileSystem, comm: SimComm, name: str):
        self.pfs = pfs
        self.comm = comm
        self.path = f"spill/{name}.{comm.rank}"
        self.chunks: list[tuple[int, int]] = []  # (offset, length)
        self.total_bytes = 0

    def write_chunk(self, data: bytes | bytearray | memoryview) -> None:
        """Spill one chunk (typically a full page) to the PFS."""
        payload = bytes(data)
        if not payload:
            return
        offset = self.pfs.append(self.comm, self.path, payload)
        self.chunks.append((offset, len(payload)))
        self.total_bytes += len(payload)

    @property
    def nchunks(self) -> int:
        return len(self.chunks)

    def reader(self) -> "SpillReader":
        return SpillReader(self.pfs, self.comm, self.path, list(self.chunks))

    def discard(self) -> None:
        """Remove the spill file (job teardown)."""
        self.pfs.delete(self.path)
        self.chunks.clear()


class SpillReader:
    """Reads chunks back in write order, charging PFS read costs."""

    def __init__(self, pfs: ParallelFileSystem, comm: SimComm, path: str,
                 chunks: list[tuple[int, int]]):
        self.pfs = pfs
        self.comm = comm
        self.path = path
        self.chunks = chunks
        self._next = 0

    def __iter__(self) -> "SpillReader":
        return self

    def __next__(self) -> bytes:
        if self._next >= len(self.chunks):
            raise StopIteration
        offset, length = self.chunks[self._next]
        self._next += 1
        return self.pfs.read(self.comm, self.path, offset, length)

    @property
    def remaining(self) -> int:
        return len(self.chunks) - self._next
