"""I/O substrate: simulated parallel file system, spill files, input splits.

Large supercomputers have no node-local disk; everything - input data
and any out-of-core spill - goes through a shared parallel file system
(Lustre on Comet, GPFS behind I/O forwarding on Mira).  This package
simulates that: a :class:`ParallelFileSystem` holds named blobs shared
by all ranks and charges virtual time for every access, which is what
makes MR-MPI's I/O spillover as catastrophically expensive here as in
the paper's Figure 1.
"""

from repro.io.errors import (
    PFSError,
    PFSFileNotFoundError,
    RetriesExhaustedError,
    TransientIOError,
    retrying,
)
from repro.io.pfs import FileStats, ParallelFileSystem
from repro.io.spill import SpillReader, SpillWriter
from repro.io.splits import split_blocks, split_range, split_text

__all__ = [
    "FileStats",
    "PFSError",
    "PFSFileNotFoundError",
    "ParallelFileSystem",
    "RetriesExhaustedError",
    "TransientIOError",
    "retrying",
    "SpillReader",
    "SpillWriter",
    "split_blocks",
    "split_range",
    "split_text",
]
