"""Chunked input readers shared by both MapReduce frameworks.

Each generator yields this rank's share of a PFS file in bounded
chunks, charging PFS read costs as it goes.  Text chunks never split a
word; binary chunks are always whole records.  Multi-file variants
accept a directory prefix or an explicit path list and assign *whole
files* round-robin to ranks - the standard layout for jobs whose input
is a directory of part files.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.cluster import RankEnv
from repro.io.splits import split_blocks, split_text

_WHITESPACE = b" \t\n\r\x0b\x0c"


def resolve_paths(env: RankEnv, paths: str | Sequence[str]) -> list[str]:
    """Expand a directory prefix (trailing ``/``) or pass a list through."""
    if isinstance(paths, str):
        if paths.endswith("/"):
            resolved = env.pfs.listdir(paths)
            if not resolved:
                raise FileNotFoundError(f"no files under {paths!r}")
            return resolved
        return [paths]
    resolved = list(paths)
    if not resolved:
        raise ValueError("empty input path list")
    return resolved


def rank_files(env: RankEnv, paths: str | Sequence[str]) -> list[str]:
    """This rank's whole-file share of a multi-file input (round-robin)."""
    resolved = resolve_paths(env, paths)
    comm = env.comm
    return resolved[comm.rank :: comm.size]


def iter_text_chunks_multi(env: RankEnv, paths: str | Sequence[str],
                           chunk_size: int) -> Iterator[bytes]:
    """Word-safe chunks of this rank's whole-file share.

    With fewer files than ranks, each remaining file is instead
    byte-split across all ranks (degenerating to
    :func:`iter_text_chunks` semantics for the single-file case).
    """
    resolved = resolve_paths(env, paths)
    if len(resolved) >= env.comm.size:
        for path in rank_files(env, resolved):
            yield from _iter_whole_text(env, path, chunk_size)
    else:
        for path in resolved:
            yield from iter_text_chunks(env, path, chunk_size)


def iter_binary_chunks_multi(env: RankEnv, paths: str | Sequence[str],
                             record_size: int,
                             chunk_size: int) -> Iterator[bytes]:
    """Whole-record chunks of this rank's multi-file share."""
    resolved = resolve_paths(env, paths)
    if len(resolved) >= env.comm.size:
        for path in rank_files(env, resolved):
            total = env.pfs.size(path)
            if total % record_size:
                raise ValueError(
                    f"{path!r}: size {total} is not a multiple of "
                    f"record size {record_size}")
            step = max(record_size,
                       (chunk_size // record_size) * record_size)
            pos = 0
            while pos < total:
                want = min(step, total - pos)
                yield env.pfs.read(env.comm, path, pos, want)
                pos += want
    else:
        for path in resolved:
            yield from iter_binary_chunks(env, path, record_size, chunk_size)


def _iter_whole_text(env: RankEnv, path: str,
                     chunk_size: int) -> Iterator[bytes]:
    """One whole text file in word-safe chunks (no rank splitting)."""
    total = env.pfs.size(path)
    pos = 0
    carry = b""
    while pos < total:
        want = min(chunk_size, total - pos)
        block = env.pfs.read(env.comm, path, pos, want)
        pos += len(block)
        chunk = carry + block
        if pos < total:
            cut = len(chunk)
            while cut > 0 and chunk[cut - 1] not in _WHITESPACE:
                cut -= 1
            carry = chunk[cut:]
            chunk = chunk[:cut]
        else:
            carry = b""
        if chunk:
            yield chunk
    if carry:
        yield carry


def iter_text_chunks(env: RankEnv, path: str,
                     chunk_size: int) -> Iterator[bytes]:
    """This rank's word-aligned span of a text file, in word-safe chunks."""
    comm = env.comm
    data = env.pfs.fetch(path)  # boundary discovery only (not charged)
    start, end = split_text(data, comm.rank, comm.size)
    pos = start
    carry = b""
    while pos < end:
        want = min(chunk_size, end - pos)
        block = env.pfs.read(comm, path, pos, want)
        pos += len(block)
        chunk = carry + block
        if pos < end:
            cut = len(chunk)
            while cut > 0 and chunk[cut - 1] not in _WHITESPACE:
                cut -= 1
            carry = chunk[cut:]
            chunk = chunk[:cut]
        else:
            carry = b""
        if chunk:
            yield chunk
    if carry:
        yield carry


def iter_binary_chunks(env: RankEnv, path: str, record_size: int,
                       chunk_size: int) -> Iterator[bytes]:
    """This rank's block-aligned span of a binary file, whole records."""
    comm = env.comm
    total = env.pfs.size(path)
    start, end = split_blocks(total, record_size, comm.rank, comm.size)
    step = max(record_size, (chunk_size // record_size) * record_size)
    pos = start
    while pos < end:
        want = min(step, end - pos)
        yield env.pfs.read(comm, path, pos, want)
        pos += want
