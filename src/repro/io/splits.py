"""Partitioning input data across ranks.

Mirrors what MapReduce-over-MPI libraries do at job start: each rank
claims a contiguous byte range of the input file, adjusted so records
(whitespace-separated words, fixed-size binary blocks, or index ranges)
never straddle a split boundary.
"""

from __future__ import annotations

_WHITESPACE = b" \t\n\r\x0b\x0c"


def split_range(total: int, rank: int, size: int) -> tuple[int, int]:
    """Contiguous ``[start, end)`` share of ``total`` items for ``rank``.

    Remainder items go to the lowest ranks, so shares differ by at most
    one and every item is covered exactly once.
    """
    if size <= 0:
        raise ValueError(f"size must be positive, got {size}")
    if not 0 <= rank < size:
        raise ValueError(f"rank {rank} out of range for size {size}")
    if total < 0:
        raise ValueError(f"total must be non-negative, got {total}")
    base, extra = divmod(total, size)
    start = rank * base + min(rank, extra)
    end = start + base + (1 if rank < extra else 0)
    return start, end


def split_text(data: bytes, rank: int, size: int) -> tuple[int, int]:
    """Byte range of ``data`` for ``rank``, snapped to word boundaries.

    Each rank starts just after the first whitespace at-or-after its
    nominal offset (rank 0 starts at 0) and ends where the next rank
    starts, so every word belongs to exactly one rank.
    """
    start, _ = split_range(len(data), rank, size)
    _, nominal_end = split_range(len(data), rank, size)

    def snap(pos: int) -> int:
        if pos == 0 or pos >= len(data):
            return min(pos, len(data))
        # Advance to the next whitespace, then past it.
        while pos < len(data) and data[pos] not in _WHITESPACE:
            pos += 1
        return min(pos + 1, len(data)) if pos < len(data) else len(data)

    snapped_start = snap(start)
    snapped_end = snap(nominal_end)
    if snapped_end < snapped_start:
        snapped_end = snapped_start
    return snapped_start, snapped_end


def split_blocks(total_bytes: int, block_size: int, rank: int,
                 size: int) -> tuple[int, int]:
    """Byte range covering whole fixed-size records.

    ``total_bytes`` must be a multiple of ``block_size``; the returned
    range is block-aligned on both ends.
    """
    if block_size <= 0:
        raise ValueError(f"block_size must be positive, got {block_size}")
    if total_bytes % block_size:
        raise ValueError(
            f"total_bytes {total_bytes} is not a multiple of block size "
            f"{block_size}")
    nblocks = total_bytes // block_size
    first, last = split_range(nblocks, rank, size)
    return first * block_size, last * block_size
