"""Errors raised by the simulated parallel file system, plus retry glue.

The paper's target machines (Comet/Lustre, Mira/GPFS behind I/O
forwarding) fail in more ways than "a node died": metadata servers
time out, OSTs drop requests under load, and a client sees a transient
``EIO`` that succeeds on the next attempt.  This module gives those
conditions first-class types so callers can tell a *retryable* hiccup
(:class:`TransientIOError`) from a permanent one
(:class:`PFSFileNotFoundError`), and provides :func:`retrying` - a
bounded exponential-backoff wrapper whose waiting is charged to the
calling rank's *virtual* clock, so retried I/O shows up in ``elapsed``
exactly like it would on a wall clock.
"""

from __future__ import annotations

from typing import Any, Callable, TypeVar

T = TypeVar("T")

#: Default retry policy for PFS operations (see :func:`retrying`).
DEFAULT_RETRY_ATTEMPTS = 4
DEFAULT_RETRY_BASE_DELAY = 1e-3
DEFAULT_RETRY_FACTOR = 2.0


class PFSError(RuntimeError):
    """Base class for simulated parallel-file-system failures."""


class PFSFileNotFoundError(PFSError, KeyError):
    """A named path does not exist on the PFS.

    Subclasses :class:`KeyError` so legacy ``except KeyError`` handlers
    (and tests) keep working, but carries the path and a readable
    message instead of surfacing a bare mapping error from deep inside
    a rank thread.
    """

    def __init__(self, path: str, hint: str = ""):
        self.path = path
        msg = f"no such file on the PFS: {path!r}"
        if hint:
            msg = f"{msg} ({hint})"
        # KeyError repr()s its lone arg; RuntimeError str()s it.  Store
        # the message once and override __str__ for both bases.
        self._msg = msg
        super().__init__(msg)

    def __str__(self) -> str:
        return self._msg


class TransientIOError(PFSError):
    """A retryable PFS failure (timeout, dropped request, EIO).

    Raised by the chaos-injection layer before the operation takes
    effect: a transient error never partially applies a write.
    """

    def __init__(self, op: str, path: str, rank: int | None = None):
        self.op = op
        self.path = path
        self.rank = rank
        who = f" on rank {rank}" if rank is not None else ""
        super().__init__(f"transient PFS error during {op}({path!r}){who}")


class RetriesExhaustedError(PFSError):
    """A transient error persisted past the bounded retry budget.

    Deliberately *not* a :class:`TransientIOError` subclass: an
    exhausted budget must escalate (to a classified job restart), never
    be swallowed by an outer retry loop.
    """

    def __init__(self, attempts: int, last: TransientIOError):
        self.attempts = attempts
        self.last = last
        super().__init__(
            f"PFS operation failed after {attempts} attempts: {last}")


def retrying(comm: Any, fn: Callable[[], T], *,
             attempts: int = DEFAULT_RETRY_ATTEMPTS,
             base_delay: float = DEFAULT_RETRY_BASE_DELAY,
             factor: float = DEFAULT_RETRY_FACTOR,
             on_retry: Callable[[int, TransientIOError], None] | None = None,
             ) -> T:
    """Call ``fn()`` retrying :class:`TransientIOError` with backoff.

    The backoff delay (``base_delay * factor**k`` before attempt
    ``k+2``) is charged to ``comm``'s virtual clock, so a fault-heavy
    run is visibly slower than a clean one.  ``on_retry(attempt, exc)``
    fires for every *absorbed* error - the final, budget-exhausting
    error is not reported there; it escalates as
    :class:`RetriesExhaustedError` instead.
    """
    if attempts < 1:
        raise ValueError(f"attempts must be >= 1, got {attempts}")
    delay = base_delay
    for attempt in range(1, attempts + 1):
        try:
            return fn()
        except TransientIOError as exc:
            if attempt == attempts:
                raise RetriesExhaustedError(attempts, exc) from exc
            shard = getattr(comm, "metrics", None)
            if shard is not None:
                shard.inc("io.pfs.retries")
            if on_retry is not None:
                on_retry(attempt, exc)
            comm.advance(delay)
            delay *= factor
    raise AssertionError("unreachable")
