"""Declarative dataflow plans over the Mimir driver.

A :class:`Plan` composes MapReduce stages into a DAG without running
anything: ``plan.read_binary(...).map(fn).reduce(rfn)`` builds three
:class:`Stage` nodes linked by :class:`Dataset` handles.  A
:class:`~repro.sched.executor.PlanRunner` later lowers each stage onto
the existing :class:`~repro.core.job.Mimir` driver for one rank.

The point of the indirection is that a stage has an *identity* - a
stable key derived from its operation, parameters, and lineage - which
is what lets the intermediate cache recognise "this is the same
adjacency list the previous job built" and what names stage-granular
checkpoints.  ``Dataset.cache()`` and ``Dataset.checkpoint()`` are
plan-time annotations; the runner and the scheduler decide what they
cost.
"""

from __future__ import annotations

import hashlib
import itertools
from typing import Any, Callable, Iterable

from repro.core.config import MimirConfig
from repro.core.records import KVLayout

#: Stage operations a plan may contain.  ``read_text`` / ``read_binary``
#: / ``source`` / ``source_stream`` are leaf inputs; the rest take KV
#: parents.
STAGE_OPS = ("read_text", "read_binary", "source", "source_stream", "map",
             "reduce", "partial_reduce", "sort_local", "join")


def _describe(value: Any) -> str:
    """A stable, hashable description of one stage parameter.

    Callables hash by qualified name (the code a user edits renames or
    moves; two lambdas defined at the same spot in one process collide,
    which is why iterative plans add a per-iteration *salt* instead of
    relying on closure contents).
    """
    if callable(value):
        return (f"{getattr(value, '__module__', '?')}."
                f"{getattr(value, '__qualname__', repr(value))}")
    if isinstance(value, KVLayout):
        return f"KVLayout({value.key_len},{value.val_len})"
    return repr(value)


class Stage:
    """One node of a plan DAG."""

    def __init__(self, plan: "Plan", sid: int, op: str,
                 parents: tuple["Stage", ...], *,
                 name: str | None = None,
                 fn: Callable | None = None,
                 salt: str = "",
                 **params: Any):
        if op not in STAGE_OPS:
            raise ValueError(f"unknown stage op {op!r}")
        self.plan = plan
        self.sid = sid
        self.op = op
        self.parents = parents
        self.name = name or f"{op}{sid}"
        self.fn = fn
        self.salt = salt
        self.params = params
        self.cached = False
        self.checkpointed = False
        self._key: str | None = None

    @property
    def key(self) -> str:
        """Stable identity: operation + parameters + lineage (+ salt).

        Used as the cache key and the checkpoint phase name, so two
        plans (or two submissions of one plan) that build the same
        stage from the same inputs share materialized results.
        """
        if self._key is not None:
            return self._key
        digest = hashlib.sha1()
        digest.update(self.op.encode())
        digest.update(self.name.encode())
        digest.update(self.salt.encode())
        digest.update(_describe(self.fn).encode())
        for param in sorted(self.params):
            digest.update(
                f"{param}={_describe(self.params[param])}".encode())
        for parent in self.parents:
            digest.update(parent.key.encode())
        self._key = f"{self.name}-{digest.hexdigest()[:12]}"
        return self._key

    def lineage(self) -> list["Stage"]:
        """This stage and every ancestor, dependency-ordered."""
        seen: dict[int, Stage] = {}

        def visit(stage: Stage) -> None:
            if stage.sid in seen:
                return
            for parent in stage.parents:
                visit(parent)
            seen[stage.sid] = stage

        visit(self)
        return list(seen.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rents = ",".join(str(p.sid) for p in self.parents)
        return f"Stage({self.sid}:{self.op}:{self.name} <- [{rents}])"


class Dataset:
    """Handle to one stage's (future) output; the fluent plan API."""

    def __init__(self, plan: "Plan", stage: Stage):
        self.plan = plan
        self.stage = stage

    # --------------------------------------------------------- transforms

    def map(self, fn: Callable, *, combine_fn: Callable | None = None,
            partitioner: Callable | None = None,
            layout: KVLayout | None = None,
            name: str | None = None, salt: str | None = None) -> "Dataset":
        """Map this dataset's records through the shuffle."""
        return self.plan._derive(
            "map", (self.stage,), fn=fn, name=name, salt=salt,
            combine_fn=combine_fn, partitioner=partitioner, layout=layout)

    def reduce(self, fn: Callable, *, out_layout: KVLayout | None = None,
               name: str | None = None,
               salt: str | None = None) -> "Dataset":
        """Group by key (implicit convert) and reduce each group."""
        return self.plan._derive("reduce", (self.stage,), fn=fn, name=name,
                                 salt=salt, out_layout=out_layout)

    def partial_reduce(self, fn: Callable, *,
                       out_layout: KVLayout | None = None,
                       name: str | None = None,
                       salt: str | None = None) -> "Dataset":
        """Streaming reduce for commutative/associative folds."""
        return self.plan._derive("partial_reduce", (self.stage,), fn=fn,
                                 name=name, salt=salt, out_layout=out_layout)

    def sort_local(self, *, by_value: bool = False,
                   key_fn: Callable | None = None,
                   name: str | None = None,
                   salt: str | None = None) -> "Dataset":
        """Rank-local sort (``key_fn(key, value)`` overrides the order)."""
        return self.plan._derive("sort_local", (self.stage,), name=name,
                                 salt=salt, by_value=by_value, key_fn=key_fn)

    def join(self, other: "Dataset", fn: Callable, *,
             partitioner: Callable | None = None,
             out_layout: KVLayout | None = None,
             name: str | None = None, salt: str | None = None) -> "Dataset":
        """Co-group two datasets by key.

        ``fn(ctx, key, left_values, right_values)`` is called once per
        key present on either side.
        """
        if other.plan is not self.plan:
            raise ValueError("cannot join datasets from different plans")
        return self.plan._derive(
            "join", (self.stage, other.stage), fn=fn, name=name, salt=salt,
            partitioner=partitioner, out_layout=out_layout)

    # -------------------------------------------------------- annotations

    def cache(self) -> "Dataset":
        """Keep this stage's output for reuse across runs of the plan."""
        self.stage.cached = True
        return self

    def checkpoint(self) -> "Dataset":
        """Persist this stage's output so recovery restarts after it."""
        self.stage.checkpointed = True
        return self

    @property
    def key(self) -> str:
        return self.stage.key

    @property
    def name(self) -> str:
        return self.stage.name


class Plan:
    """A named DAG of MapReduce stages awaiting a runner.

    ``salt`` (usually set per iteration by :meth:`~repro.sched.
    executor.PlanRunner.iterate`) is mixed into the identity of every
    stage *created while it is set*, so per-iteration stages of a loop
    get fresh keys while loop-invariant stages built up front keep
    theirs.
    """

    _ids = itertools.count(1)

    def __init__(self, name: str, config: MimirConfig | None = None):
        self.name = name
        self.config = config or MimirConfig()
        self.stages: list[Stage] = []
        self.salt = ""

    # ------------------------------------------------------------ sources

    def read_text(self, path: str, *, name: str | None = None) -> Dataset:
        """A PFS text file, split word-aligned across ranks at run time."""
        return self._derive("read_text", (), name=name, path=path)

    def read_binary(self, path: str, record_size: int, *,
                    name: str | None = None) -> Dataset:
        """A PFS binary file of fixed-size records."""
        return self._derive("read_binary", (), name=name, path=path,
                            record_size=record_size)

    def source(self, items: "Iterable[Any] | Callable[[], Iterable[Any]]",
               *, name: str | None = None,
               salt: str | None = None) -> Dataset:
        """An in-memory iterable (the in-situ input path).

        Pass a zero-argument callable to defer materialisation to run
        time (iterative frontiers); note the *identity* of a source is
        its name + salt, not its contents.
        """
        return self._derive("source", (), name=name, salt=salt, items=items)

    def source_stream(self, stream: Any, index: int, *,
                      name: str | None = None) -> Dataset:
        """One micro-batch of a named stream (see :mod:`repro.stream`).

        Identity is the stream's *name* plus the batch *index* - never
        the records - so the stages derived from micro-batch ``i`` keep
        the same lineage keys on every later window that includes batch
        ``i``.  That is the key discipline behind incremental
        recompute: unchanged batches hit the
        :class:`~repro.sched.cache.StageCache` and only the newest
        batch's stages execute.
        """
        return self._derive("source_stream", (),
                            name=name or f"{stream.name}.b{index}",
                            salt=f"{stream.name}@{index}",
                            stream=stream, index=index)

    # ----------------------------------------------------------- plumbing

    def _derive(self, op: str, parents: tuple[Stage, ...], *,
                fn: Callable | None = None, name: str | None = None,
                salt: str | None = None, **params: Any) -> Dataset:
        stage = Stage(self, next(self._ids), op, parents, name=name, fn=fn,
                      salt=self.salt if salt is None else salt, **params)
        self.stages.append(stage)
        return Dataset(self, stage)

    def describe(self) -> str:
        """Human-readable DAG listing (tests and the CLI demo)."""
        lines = [f"plan {self.name!r}: {len(self.stages)} stage(s)"]
        for stage in self.stages:
            rents = ", ".join(p.name for p in stage.parents) or "-"
            marks = "".join(m for flag, m in ((stage.cached, " [cached]"),
                                              (stage.checkpointed,
                                               " [ckpt]")) if flag)
            lines.append(f"  {stage.name:<20} {stage.op:<14} "
                         f"<- {rents}{marks}")
        return "\n".join(lines)
