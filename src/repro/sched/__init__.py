"""repro.sched: dataflow DAG plans and multi-job scheduling.

The subsystem layers three pieces over the single-job Mimir driver:

- :mod:`repro.sched.plan` - a declarative :class:`Plan`/:class:`Dataset`
  API that composes read/map/reduce/partial_reduce/join/sort stages
  into a DAG with stable stage identities.
- :mod:`repro.sched.executor` - :class:`PlanRunner`, which lowers each
  stage onto :class:`~repro.core.job.Mimir`, reuses cached stage
  outputs, restores stage-granular checkpoints, and recomputes evicted
  intermediates from lineage.
- :mod:`repro.sched.scheduler` - :class:`Scheduler`, a submission
  queue with priorities and memory-aware admission control that
  gang-schedules batches of jobs whose combined declared footprints
  fit the per-rank budget; oversized jobs run degraded (out-of-core)
  or wait instead of OOMing.

``python -m repro.sched`` runs a self-contained demo.
"""

from repro.sched.cache import CacheEntry, CacheStats, StageCache
from repro.sched.executor import PlanRunner
from repro.sched.plan import Dataset, Plan, Stage
from repro.sched.scheduler import (
    FootprintEstimator,
    JobContext,
    JobOutcome,
    SchedJob,
    Scheduler,
    SchedulerReport,
)

__all__ = [
    "CacheEntry",
    "CacheStats",
    "Dataset",
    "FootprintEstimator",
    "JobContext",
    "JobOutcome",
    "Plan",
    "PlanRunner",
    "SchedJob",
    "Scheduler",
    "SchedulerReport",
    "Stage",
    "StageCache",
]
