"""Rank-local cache of materialized stage outputs.

One :class:`StageCache` lives on each rank of the scheduler's
allocation and outlives individual jobs (its containers are charged to
the rank's persistent tracker, see ``Cluster.run(trackers=...)``).
Entries are keyed by :attr:`~repro.sched.plan.Stage.key`, so a second
job - or a second iteration - that builds the same stage from the same
lineage gets the container back instead of recomputing it.

Under memory pressure (:meth:`ensure_room`) the least-recently-used
unpinned entries are *spilled* through the normal costed I/O path of
the cluster's storage backend and transparently reloaded on the next
hit - spilling and reloading are rank-local, so one rank may serve an
entry from memory while another reads it back from storage without any
collective coordination.  A *hard* :meth:`drop` discards an entry
entirely; the runner then recomputes it from lineage, which involves
collectives, so drops must be performed on every rank together.

Eviction and reload speak the :class:`~repro.storage.base.
StorageBackend` protocol only: transient faults are absorbed by
:func:`~repro.io.errors.retrying` (an eviction under chaos retries
instead of killing the launch), and the spill path is deleted before
eviction writes to it - a recompute after a :meth:`drop` that left a
stale spill file behind (e.g. a drop issued before the cache was
attached to an environment) must not append behind the stale bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.cluster import RankEnv
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout
from repro.io.errors import retrying


@dataclass
class CacheEntry:
    """One cached stage output on one rank."""

    key: str
    name: str
    job: str
    kvc: KVContainer | None
    layout: KVLayout
    page_size: int
    tag: str
    tick: int = 0
    nbytes: int = 0
    #: Storage location + chunk table when evicted from memory.
    spill_path: str | None = None
    spill_chunks: list[tuple[int, int]] = field(default_factory=list)

    @property
    def resident(self) -> bool:
        return self.kvc is not None


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    reloads: int = 0
    drops: int = 0


class StageCache:
    """LRU cache of stage-output KV containers for one rank."""

    def __init__(self, rank: int):
        self.rank = rank
        self.entries: dict[str, CacheEntry] = {}
        self.env: RankEnv | None = None
        #: Event sink installed by the scheduler for the current launch:
        #: ``on_event(kind, label, **data)``.
        self.on_event: Callable[..., None] | None = None
        self.stats = CacheStats()
        self._tick = 0

    # ------------------------------------------------------------ wiring

    def attach(self, env: RankEnv) -> None:
        """Bind to the rank environment of the current launch."""
        if env.comm.rank != self.rank:
            raise ValueError(
                f"cache for rank {self.rank} attached to rank "
                f"{env.comm.rank}")
        self.env = env

    def _emit(self, kind: str, label: str, **data: Any) -> None:
        if self.on_event is not None:
            self.on_event(kind, label, **data)

    def _metric(self, name: str) -> None:
        # Only countable once attached; standalone unit-test caches
        # (no env) fall back to ``stats`` alone.
        if self.env is not None:
            self.env.metrics.inc(name)

    def _touch(self, entry: CacheEntry) -> None:
        self._tick += 1
        entry.tick = self._tick

    # ----------------------------------------------------------- queries

    def has(self, key: str) -> bool:
        """Whether this rank holds ``key`` (resident or spilled).

        Rank-local; runners must agree collectively (``all_true``)
        before acting on the answer, because a recompute on miss runs
        collectives that a hit would skip.
        """
        return key in self.entries

    @property
    def resident_bytes(self) -> int:
        return sum(e.kvc.memory_bytes for e in self.entries.values()
                   if e.kvc is not None)

    # ------------------------------------------------------------ access

    def put(self, key: str, kvc: KVContainer, *, name: str,
            job: str) -> None:
        """Adopt a materialized container (cache takes ownership)."""
        entry = CacheEntry(key=key, name=name, job=job, kvc=kvc,
                           layout=kvc.layout,
                           page_size=kvc.pool.page_size, tag=kvc.tag,
                           nbytes=kvc.nbytes)
        self._touch(entry)
        self.entries[key] = entry

    def get(self, key: str) -> KVContainer:
        """The cached container, reloading a spilled entry from storage."""
        entry = self.entries.get(key)
        if entry is None:
            self.stats.misses += 1
            raise KeyError(key)
        self._touch(entry)
        if entry.kvc is None:
            self._reload(entry)
        self.stats.hits += 1
        self._metric("sched.cache.hits")
        return entry.kvc

    # ---------------------------------------------------------- eviction

    def _spill_path(self, entry: CacheEntry) -> str:
        return f"spill/cache_{entry.key}.{self.rank}"

    def _evict(self, entry: CacheEntry) -> int:
        """Write one resident entry's pages to storage and free them.

        The spill path is deterministic (stage key + rank), so a stale
        file from an earlier incarnation of the same key - dropped
        while spilled with no environment attached, or abandoned by a
        killed launch - may still exist.  It is deleted first; the
        chunk table must describe exactly the bytes written *now*, and
        appending behind stale bytes would leak them forever.
        """
        env = self.env
        assert env is not None and entry.kvc is not None
        path = self._spill_path(entry)
        env.pfs.delete(path)
        chunks: list[tuple[int, int]] = []
        for page in entry.kvc.pages:
            payload = bytes(page.view)
            if not payload:
                continue
            offset = retrying(
                env.comm, lambda: env.pfs.append(env.comm, path, payload))
            chunks.append((offset, len(payload)))
        freed = entry.kvc.memory_bytes
        entry.kvc.free()
        entry.kvc = None
        entry.spill_path = path
        entry.spill_chunks = chunks
        self.stats.evictions += 1
        self._metric("sched.cache.evictions")
        self._emit("evict", f"{entry.name}:spilled", job=entry.job,
                   key=entry.key, nbytes=entry.nbytes)
        return freed

    def _reload(self, entry: CacheEntry) -> None:
        """Stream a spilled entry back into a fresh container."""
        env = self.env
        assert env is not None and entry.spill_path is not None
        kvc = KVContainer(env.tracker, entry.layout, entry.page_size,
                          tag=entry.tag)
        for offset, length in entry.spill_chunks:
            chunk = retrying(
                env.comm,
                lambda: env.pfs.read(env.comm, entry.spill_path,
                                     offset, length))
            kvc.extend_encoded(chunk)
        env.pfs.delete(entry.spill_path)
        entry.kvc = kvc
        entry.spill_path = None
        entry.spill_chunks = []
        self.stats.reloads += 1
        self._metric("sched.cache.reloads")

    def ensure_room(self, nbytes: int) -> int:
        """Spill LRU entries until ``nbytes`` more would fit the budget.

        Pinned entries (a stage is reading them right now) and entries
        whose container already spills internally are skipped.  Returns
        the bytes freed; rank-local, so no collective coordination.
        """
        env = self.env
        if env is None or env.tracker.limit is None:
            return 0
        freed = 0
        victims = sorted((e for e in self.entries.values()
                          if e.kvc is not None and not e.kvc.pins
                          and not e.kvc.spilled),
                         key=lambda e: e.tick)
        for entry in victims:
            if env.tracker.would_fit(nbytes):
                break
            freed += self._evict(entry)
        return freed

    def drop(self, key: str) -> None:
        """Discard an entry entirely (lineage recompute on next use).

        Collective by convention: every rank must drop together, since
        the recompute the next access triggers runs collectives.
        """
        entry = self.entries.pop(key, None)
        if entry is None:
            return
        if entry.kvc is not None:
            # An abandoned launch (OOM abort) can leave stale pins; a
            # hard drop discards the entry regardless.
            entry.kvc.pins = 0
            entry.kvc.free()
        elif entry.spill_path is not None and self.env is not None:
            self.env.pfs.delete(entry.spill_path)
        self.stats.drops += 1
        self._emit("evict", f"{entry.name}:dropped", job=entry.job,
                   key=entry.key, nbytes=entry.nbytes)

    def clear(self) -> None:
        """Drop everything (scheduler OOM recovery / teardown)."""
        for key in list(self.entries):
            self.drop(key)
