"""Lowering a :class:`~repro.sched.plan.Plan` onto the Mimir driver.

A :class:`PlanRunner` executes one rank's share of a plan.  Stages
materialize on demand (:meth:`materialize` walks the DAG), and three
cross-cutting services hook in by stage key:

- the **intermediate cache** (:class:`~repro.sched.cache.StageCache`):
  a ``cache()``-annotated stage consults it first and adopts its
  output into it afterwards.  Hit/miss decisions are agreed
  collectively (``all_true``) because a recompute runs collectives a
  hit would skip - a rank-divergent decision would deadlock the job.
- **stage-granular checkpoints** (:class:`~repro.ft.checkpoint.
  CheckpointManager`): a ``checkpoint()``-annotated stage saves its
  output under its stage key, so a restarted attempt (see
  :func:`repro.ft.runner.run_with_recovery`) reloads completed stages
  and re-executes only from the failed one.
- the **trace** receives a ``stage-done`` event per executed stage,
  stamped with the scheduler's cumulative clock offset.

Cached inputs are *pinned* while a downstream stage reads them, so a
concurrent cache eviction can never free pages under a live iterator,
and they are read non-destructively (``consume=False``) so the next
consumer still finds them intact.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.cluster import RankEnv
from repro.core.job import Mimir
from repro.core.kvcontainer import KVContainer
from repro.core.records import KVLayout
from repro.sched.plan import Dataset, Plan, Stage


class PlanRunner:
    """Executes a plan's stages on one rank."""

    def __init__(self, env: RankEnv, plan: Plan, *,
                 cache=None, profile=None, trace=None, checkpoint=None,
                 elastic=None, job: str | None = None,
                 trace_offset: float = 0.0):
        self.env = env
        self.plan = plan
        self.cache = cache
        self.checkpoint = checkpoint
        self.trace = trace
        self.trace_offset = trace_offset
        #: Optional reactive-fault hooks (duck-typed; see
        #: :class:`repro.ft.elastic.ElasticStageHooks`): text-input map
        #: stages run speculatively, and every other executed stage's
        #: duration feeds the straggler monitor.
        self.elastic = elastic
        self.job = job or plan.name
        self.mimir = Mimir(env, plan.config, profile=profile, trace=trace)
        self._speculated: set[str] = set()
        #: Times each stage *name* actually executed (restores and
        #: cache hits do not count) - the observable that recompute
        #: and stage-skip tests assert on.
        self.stage_counts: dict[str, int] = {}
        if cache is not None and cache.env is not env:
            cache.attach(env)

    # -------------------------------------------------------- materialize

    def materialize(self, ds: "Dataset | Stage") -> KVContainer:
        """The stage's output container, by whatever path is cheapest.

        Cache hit beats checkpoint restore beats execution; a cached
        stage that has to execute (or restore) is adopted into the
        cache on the way out.
        """
        stage = ds.stage if isinstance(ds, Dataset) else ds
        key = stage.key
        comm = self.env.comm
        use_cache = stage.cached and self.cache is not None
        if use_cache:
            if comm.all_true(self.cache.has(key)):
                return self.cache.get(key)
            # Some rank lost its copy: every rank drops and recomputes
            # together, keeping the collective schedule in lockstep.
            self.env.metrics.inc("sched.cache.misses")
            self.cache.drop(key)
        kvc = None
        if self.checkpoint is not None and stage.checkpointed \
                and self.checkpoint.has(key):
            kvc = self.checkpoint.load_kvc(
                key, self._layout_of(stage), self.plan.config.page_size,
                tag=f"kv_{stage.name}")
        if kvc is None:
            kvc = self._execute(stage)
            if self.checkpoint is not None and stage.checkpointed:
                self.checkpoint.save_kvc(key, kvc)
        if use_cache:
            self.cache.put(key, kvc, name=stage.name, job=self.job)
            return self.cache.get(key)
        return kvc

    def _layout_of(self, stage: Stage) -> KVLayout:
        """The record layout a stage's output was written with."""
        if stage.op == "map":
            return stage.params.get("layout") or self.plan.config.layout
        if stage.op in ("reduce", "partial_reduce", "join"):
            return stage.params.get("out_layout") or KVLayout()
        if stage.op == "sort_local":
            return self._layout_of(stage.parents[0])
        raise ValueError(f"leaf stage {stage.name!r} has no KV output")

    # ----------------------------------------------------------- execute

    def _input(self, parent: Stage) -> tuple[KVContainer, bool]:
        """Materialized parent + whether it must be preserved."""
        kvc = self.materialize(parent)
        preserved = parent.cached and self.cache is not None
        return kvc, preserved

    def _execute(self, stage: Stage) -> KVContainer:
        runner = getattr(self, f"_run_{stage.op}", None)
        if runner is None:
            raise ValueError(
                f"stage {stage.name!r}: op {stage.op!r} cannot be "
                "materialized directly (feed it to a map)")
        started = self.env.comm.clock.time
        out = runner(stage)
        self.stage_counts[stage.name] = \
            self.stage_counts.get(stage.name, 0) + 1
        self.env.metrics.inc("sched.stages.executed")
        if self.elastic is not None and stage.key not in self._speculated:
            # Collective: every rank executes the same stage schedule,
            # so the progress allgather cannot diverge.  Speculative
            # maps already monitored (and re-scheduled) themselves.
            self.elastic.observe_stage(
                self.env, stage, self.env.comm.clock.time - started)
        if self.trace is not None:
            self.trace.emit_abs(
                self.trace_offset + self.env.comm.clock.time,
                self.env.comm.rank, "stage-done",
                f"{self.job}:{stage.name}", job=self.job,
                stage=stage.name, key=stage.key)
        return out

    def _run_map(self, stage: Stage) -> KVContainer:
        parent = stage.parents[0]
        params = stage.params
        common = dict(combine_fn=params.get("combine_fn"),
                      partitioner=params.get("partitioner"),
                      layout=params.get("layout"),
                      out_tag=f"kv_{stage.name}")
        if parent.op == "read_text":
            if self.elastic is not None:
                self._speculated.add(stage.key)
                return self.elastic.map_text(
                    self.env, parent.params["path"], stage,
                    self.plan.config)
            return self.mimir.map_text_file(parent.params["path"], stage.fn,
                                            **common)
        if parent.op == "read_binary":
            return self.mimir.map_binary_file(
                parent.params["path"], parent.params["record_size"],
                stage.fn, **common)
        if parent.op == "source":
            items = parent.params["items"]
            if callable(items):
                items = items()
            return self.mimir.map_items(items, stage.fn, **common)
        if parent.op == "source_stream":
            batch = parent.params["stream"].batch(parent.params["index"])
            self.env.metrics.inc("stream.batches.ingested")
            self.env.metrics.inc("stream.records.ingested",
                                 len(batch.records))
            return self.mimir.map_items(batch.payloads(), stage.fn,
                                        **common)
        kvc, preserved = self._input(parent)
        if preserved:
            kvc.pin()
        try:
            return self.mimir.map_kvs(kvc, stage.fn, **common,
                                      consume=not preserved)
        finally:
            if preserved:
                kvc.unpin()

    def _kv_parent(self, stage: Stage) -> tuple[KVContainer, bool]:
        parent = stage.parents[0]
        if parent.op in ("read_text", "read_binary", "source",
                         "source_stream"):
            raise ValueError(
                f"stage {stage.name!r} ({stage.op}) needs a KV parent; "
                f"{parent.name!r} is a raw input - map it first")
        return self._input(parent)

    def _run_reduce(self, stage: Stage) -> KVContainer:
        kvc, preserved = self._kv_parent(stage)
        if preserved:
            kvc.pin()
        try:
            return self.mimir.reduce(
                kvc, stage.fn, out_layout=stage.params.get("out_layout"),
                out_tag=f"kv_{stage.name}", consume=not preserved)
        finally:
            if preserved:
                kvc.unpin()

    def _run_partial_reduce(self, stage: Stage) -> KVContainer:
        kvc, preserved = self._kv_parent(stage)
        if preserved:
            kvc.pin()
        try:
            return self.mimir.partial_reduce(
                kvc, stage.fn, out_layout=stage.params.get("out_layout"),
                out_tag=f"kv_{stage.name}", consume=not preserved)
        finally:
            if preserved:
                kvc.unpin()

    def _run_sort_local(self, stage: Stage) -> KVContainer:
        kvc, preserved = self._kv_parent(stage)
        if preserved:
            kvc.pin()
        try:
            return self.mimir.sort_local(
                kvc, by_value=stage.params.get("by_value", False),
                key_fn=stage.params.get("key_fn"),
                out_tag=f"kv_{stage.name}", consume=not preserved)
        finally:
            if preserved:
                kvc.unpin()

    def _run_join(self, stage: Stage) -> KVContainer:
        """Co-group: tag each side, shuffle by key, split in the reduce."""
        sides = []
        for tag, parent in zip((b"L", b"R"), stage.parents):
            kvc, preserved = self._input(parent)
            sides.append((tag, kvc, preserved))
            if preserved:
                kvc.pin()
        try:
            def feed(ctx, side):
                tag, kvc, preserved = side
                records = kvc.records() if preserved else kvc.consume()
                for key, value in records:
                    ctx.emit(key, tag + value)

            union = self.mimir.map_items(
                sides, feed, partitioner=stage.params.get("partitioner"),
                layout=KVLayout(), out_tag=f"kv_{stage.name}_union")
        finally:
            for _tag, kvc, preserved in sides:
                if preserved:
                    kvc.unpin()

        join_fn = stage.fn

        def split(ctx, key, values):
            lvals = [v[1:] for v in values if v[:1] == b"L"]
            rvals = [v[1:] for v in values if v[:1] == b"R"]
            join_fn(ctx, key, lvals, rvals)

        return self.mimir.reduce(
            union, split, out_layout=stage.params.get("out_layout"),
            out_tag=f"kv_{stage.name}")

    # ------------------------------------------------------------ results

    def stream(self, ds: Dataset) -> Iterator[tuple[bytes, bytes]]:
        """This rank's records of a dataset; frees transient outputs."""
        stage = ds.stage
        kvc = self.materialize(ds)
        if stage.cached and self.cache is not None:
            kvc.pin()
            try:
                yield from kvc.records()
            finally:
                kvc.unpin()
        else:
            try:
                yield from kvc.records()
            finally:
                kvc.free()

    def collect(self, ds: Dataset) -> list[tuple[bytes, bytes]]:
        return list(self.stream(ds))

    # ---------------------------------------------------------- iteration

    def iterate(self, state: Any,
                body: Callable[["PlanRunner", int, Any], Any], *,
                until: Callable[[Any], bool] | None = None,
                max_iters: int = 50) -> tuple[Any, int]:
        """Run ``body(runner, i, state)`` until ``until(state)`` holds.

        Each pass salts the plan, so stages *created inside the body*
        get per-iteration identities (fresh cache/checkpoint keys)
        while stages built before the loop keep theirs and hit the
        cache every pass.  ``until`` must be deterministic from
        ``state`` (it is evaluated on every rank).
        """
        base_salt = self.plan.salt
        iterations = 0
        for i in range(max_iters):
            self.plan.salt = f"{base_salt}#i{i}"
            try:
                state = body(self, i, state)
            finally:
                self.plan.salt = base_salt
            iterations = i + 1
            if until is not None and until(state):
                break
        return state, iterations
