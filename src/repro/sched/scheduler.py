"""Multi-job scheduler with memory-aware admission control.

Jobs are submitted with a priority and (optionally) a declared
per-rank memory footprint; the scheduler gang-schedules batches of
jobs onto the cluster's ranks in *rounds*.  A round admits jobs - in
priority order - only while the sum of their footprints fits the
per-rank memory budget (minus a safety reserve); the rest wait in the
queue.  A job whose footprint alone exceeds the budget is admitted
*degraded* (out-of-core spill enabled) if it allows it, instead of
being allowed to OOM the rank.

Admission is enforced, not advisory: when a round carries several
jobs, each job's footprint is **reserved** against the rank's
persistent :class:`~repro.memory.tracker.MemoryTracker` for the
round's duration (a job's reservation converts into its working
budget just before it runs).  A job that blows through its estimate
OOMs the launch; the scheduler absorbs that (``allow_oom``), doubles
the offending batch's estimates, resets the poisoned trackers and
caches, and requeues - so a misdeclared job costs a retry, never a
crashed schedule.

Footprints not declared up front are *learned*: the estimator seeds
from input size and refines from each completed job's observed peak
(the :class:`~repro.core.metrics.PhaseProfile` signals feed the same
number), so the second submission of a workload is admitted on real
data.

One :class:`~repro.sched.cache.StageCache` per rank survives across
rounds (the trackers are reused via ``Cluster.run(trackers=...)``), so
a later job reuses containers an earlier job cached.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.cluster import Cluster, RankEnv
from repro.core.config import MimirConfig
from repro.memory.limits import format_size, parse_size
from repro.memory.tracker import MemoryTracker
from repro.sched.cache import StageCache
from repro.sched.executor import PlanRunner
from repro.sched.plan import Plan


@dataclass
class SchedJob:
    """One submitted job: ``fn(env, ctx)`` runs on every rank."""

    name: str
    fn: Callable[[RankEnv, "JobContext"], Any]
    priority: int = 0
    #: Declared per-rank peak footprint ("32K", bytes, or None to let
    #: the estimator guess).
    footprint: int | str | None = None
    #: Total input bytes (seeds the estimate when no footprint given).
    input_bytes: int = 0
    #: May this job run with out-of-core spill when it cannot fit?
    degradable: bool = True
    config: MimirConfig | None = None
    #: Estimator key shared by repeated submissions of one workload
    #: (service jobs get unique names, so without this every
    #: resubmission would re-learn its footprint from scratch).
    workload: str | None = None
    #: Owning tenant; ignored by the scheduler itself, consumed by
    #: external admission filters (see :mod:`repro.serve.tenants`).
    tenant: str | None = None


@dataclass
class JobContext:
    """Per-rank handle a running job receives next to its ``env``."""

    env: RankEnv
    name: str
    config: MimirConfig
    cache: StageCache
    trace: Any = None
    #: Cumulative scheduler time at this round's launch; add the
    #: rank's clock to place an event on the global timeline.
    time_base: float = 0.0
    degraded: bool = False

    def runner(self, plan: Plan, *, profile=None,
               checkpoint=None, elastic=None) -> PlanRunner:
        """A :class:`PlanRunner` wired into the scheduler's services."""
        return PlanRunner(self.env, plan, cache=self.cache,
                          profile=profile, trace=self.trace,
                          checkpoint=checkpoint, elastic=elastic,
                          job=self.name, trace_offset=self.time_base)


class FootprintEstimator:
    """Per-rank footprint estimates: declared, learned, or seeded."""

    #: Safety factor over a learned peak (workloads vary run to run).
    HEADROOM = 1.25
    #: Expansion of input bytes into working set (shuffle + grouping).
    EXPANSION = 3.0

    def __init__(self, nprocs: int):
        self.nprocs = nprocs
        self.observed: dict[str, int] = {}

    @staticmethod
    def key(job: SchedJob) -> str:
        """Learning key: the declared workload, falling back to the name."""
        return job.workload or job.name

    def estimate(self, job: SchedJob, config: MimirConfig) -> int:
        observed = self.observed.get(self.key(job))
        if job.footprint is not None:
            declared = parse_size(job.footprint)
            if observed is not None and observed > declared:
                # The declaration was disproven (a measured peak - or
                # an OOMed round - above it): trust the evidence.
                return int(observed * self.HEADROOM)
            return declared
        if observed is not None:
            return int(observed * self.HEADROOM)
        fixed = 2 * config.comm_buffer_size + 4 * config.page_size
        return fixed + int(job.input_bytes / self.nprocs * self.EXPANSION)

    def observe(self, name: str, peak: int) -> None:
        """Refine from a completed run's observed per-rank peak."""
        self.observed[name] = max(peak, self.observed.get(name, 0))


@dataclass
class JobOutcome:
    """Final record of one submitted job."""

    name: str
    returns: list[Any] | None = None
    round: int = 0
    queued_rounds: int = 0
    peak_bytes: int = 0
    estimate: int = 0
    degraded: bool = False
    failed: bool = False
    error: str | None = None

    @property
    def completed(self) -> bool:
        return not self.failed and self.returns is not None


@dataclass
class SchedulerReport:
    """Outcome of one :meth:`Scheduler.run` drain."""

    outcomes: list[JobOutcome] = field(default_factory=list)
    rounds: int = 0
    total_elapsed: float = 0.0
    ooms: int = 0

    def outcome(self, name: str) -> JobOutcome:
        for outcome in self.outcomes:
            if outcome.name == name:
                return outcome
        raise KeyError(name)

    def render_log(self) -> str:
        lines = [f"{self.rounds} round(s), {self.total_elapsed:.3f}s "
                 f"virtual, {self.ooms} oom(s)"]
        for o in self.outcomes:
            state = "FAILED" if o.failed else \
                ("degraded" if o.degraded else "ok")
            lines.append(
                f"  {o.name:<16} round {o.round} "
                f"(queued {o.queued_rounds}) est "
                f"{format_size(o.estimate)} peak "
                f"{format_size(o.peak_bytes)} [{state}]")
        return "\n".join(lines)


@dataclass
class _Queued:
    job: SchedJob
    seq: int
    config: MimirConfig
    estimate: int = 0
    queued_rounds: int = 0
    oom_retries: int = 0
    degraded: bool = False


class Scheduler:
    """Admission-controlled multi-job queue over one cluster."""

    def __init__(self, cluster: Cluster, *, reserve: float = 0.1,
                 trace=None, max_oom_retries: int = 1, scaling=None):
        if not 0 <= reserve < 1:
            raise ValueError(f"reserve must be in [0, 1), got {reserve}")
        self.cluster = cluster
        self.reserve = reserve
        self.trace = trace
        self.max_oom_retries = max_oom_retries
        #: Optional autoscaler (duck-typed; see
        #: :class:`repro.ft.elastic.ScalingPolicy`): consulted between
        #: rounds with the queue depth and observed memory residency,
        #: and actuated through :meth:`Cluster.resize`.
        self.scaling = scaling
        self.scale_events: list[tuple[int, int]] = []
        self.estimator = FootprintEstimator(cluster.nprocs)
        self.trackers = self._fresh_trackers()
        self.caches = [StageCache(rank) for rank in range(cluster.nprocs)]
        self._queue: list[_Queued] = []
        self._seq = 0
        #: Cumulative virtual time across every round run so far.
        self.clock = 0.0
        self.ooms = 0
        #: Cumulative admission rounds across every drain.
        self.rounds_run = 0
        #: Jobs admitted by the most recent round (0 when an external
        #: admission filter vetoed the whole queue).
        self.last_admitted = 0
        #: External admission veto: ``fn(job, admitted_batch) -> bool``.
        #: Consulted per candidate while a round's batch is built; a
        #: ``False`` keeps the job queued for a later round.  This is
        #: the serving layer's per-tenant concurrency hook.
        self.admission_filter: "Callable[[SchedJob, list[SchedJob]], bool] | None" = None  # noqa: E501
        #: External priority override: ``fn(job, queued_rounds) ->
        #: float`` replaces ``job.priority`` in admission ordering -
        #: fair-share aging lives here, not in the scheduler.
        self.priority_fn: "Callable[[SchedJob, int], float] | None" = None
        #: Called with (admitted jobs, round number) after admission,
        #: before launch - the journaling point for a serving front
        #: end: every job in the batch is about to run.
        self.on_admit: "Callable[[list[SchedJob], int], None] | None" = None

    def _fresh_trackers(self) -> list[MemoryTracker]:
        limit = self.cluster.memory_limit_per_rank
        return [MemoryTracker(limit) for _ in range(self.cluster.nprocs)]

    def _emit(self, kind: str, label: str, *, at: float | None = None,
              **data: Any) -> None:
        if self.trace is not None:
            self.trace.emit_abs(self.clock if at is None else at, -1,
                                kind, label, **data)

    # ------------------------------------------------------------- submit

    def submit(self, job: "SchedJob | Callable", *, name: str | None = None,
               **kwargs: Any) -> SchedJob:
        """Queue a job (a :class:`SchedJob`, or ``fn`` plus fields)."""
        if not isinstance(job, SchedJob):
            job = SchedJob(name=name or getattr(job, "__name__", "job"),
                           fn=job, **kwargs)
        self._seq += 1
        config = job.config or MimirConfig()
        self._queue.append(_Queued(job, self._seq, config))
        self._emit("submit", job.name, job=job.name,
                   priority=job.priority)
        return job

    def cancel(self, name: str) -> SchedJob | None:
        """Withdraw a still-queued job; returns it, or ``None``.

        Only jobs waiting for admission can be cancelled: a launched
        batch runs to completion (gang semantics - aborting one rank's
        job mid-round would kill the whole launch).  The serving layer
        therefore exposes cancellation as best-effort.
        """
        for queued in self._queue:
            if queued.job.name == name:
                self._queue.remove(queued)
                self._emit("cancel", name, job=name)
                return queued.job
        return None

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    def queued_names(self) -> list[str]:
        return [q.job.name for q in self._queue]

    # ---------------------------------------------------------- admission

    @property
    def _budget(self) -> int | None:
        limit = self.cluster.memory_limit_per_rank
        if limit is None:
            return None
        return int(limit * (1.0 - self.reserve))

    def _admit(self, round_no: int) -> list[_Queued]:
        """Pick this round's batch; emit queue events for the rest.

        Highest priority first (submission order breaks ties); jobs
        are admitted while their summed footprints fit what is left of
        the budget after persistent (cache) residency.  An oversized
        head-of-queue job is never starved: it gets a round to itself,
        degraded to out-of-core if its estimate exceeds even an empty
        budget and it allows that.

        An installed :attr:`admission_filter` can veto candidates for
        this round (per-tenant concurrency caps); vetoed jobs stay
        queued.  When the filter rejects every queued job the round
        admits nothing - callers running a drain loop must treat an
        empty batch as "wait", not "retry immediately".
        """
        def effective_priority(q: _Queued) -> float:
            if self.priority_fn is not None:
                return self.priority_fn(q.job, q.queued_rounds)
            return q.job.priority

        ordered = sorted(self._queue,
                         key=lambda q: (-effective_priority(q), q.seq))
        budget = self._budget
        for queued in ordered:
            queued.estimate = self.estimator.estimate(queued.job,
                                                      queued.config)
            queued.degraded = False
        if self.admission_filter is not None:
            batch_jobs: list[SchedJob] = []
            eligible = []
            for queued in ordered:
                if self.admission_filter(queued.job, batch_jobs):
                    eligible.append(queued)
                    batch_jobs.append(queued.job)
        else:
            eligible = ordered
        if budget is None:
            admitted = eligible
        else:
            resident = max((t.current - cache.resident_bytes
                            for t, cache in zip(self.trackers, self.caches)),
                           default=0)
            available = budget - resident
            admitted = []
            committed = 0
            for queued in eligible:
                if committed + queued.estimate <= available:
                    admitted.append(queued)
                    committed += queued.estimate
            if not admitted and eligible:
                head = eligible[0]
                if head.estimate > available and head.job.degradable \
                        and head.estimate > budget:
                    head.degraded = True
                    head.config = replace(head.config, out_of_core=True)
                admitted = [head]
        metrics = self.cluster.metrics.shard(-1)
        for queued in ordered:
            if queued in admitted:
                metrics.inc("sched.admissions")
                self._emit("admit", queued.job.name, job=queued.job.name,
                           round=round_no, est=queued.estimate,
                           degraded=queued.degraded)
            else:
                queued.queued_rounds += 1
                metrics.inc("sched.queued")
                self._emit("queue", queued.job.name, job=queued.job.name,
                           round=round_no)
        return admitted

    # ------------------------------------------------------------- launch

    def _launch(self, batch: list[_Queued]):
        """Run one admitted batch in a single cluster launch."""
        base = self.clock
        trace = self.trace
        reservations = [(q.job.name, q.estimate) for q in batch] \
            if len(batch) > 1 else []

        def batch_fn(env: RankEnv):
            cache = self.caches[env.comm.rank]
            cache.attach(env)
            if trace is not None:
                def on_event(kind, label, **data):
                    trace.emit_abs(base + env.comm.clock.time,
                                   env.comm.rank, kind, label, **data)
                cache.on_event = on_event
            # Gang reservation: every admitted job's footprint is held
            # for the round, so combined over-admission fails here,
            # not in the middle of some unlucky job's shuffle.
            for name, estimate in reservations:
                cache.ensure_room(estimate)
                env.tracker.allocate(estimate, f"reserved:{name}")
            results: dict[str, tuple[Any, int, float]] = {}
            for queued in batch:
                env.comm.barrier()
                if reservations:
                    env.tracker.free(queued.estimate,
                                     f"reserved:{queued.job.name}")
                else:
                    cache.ensure_room(queued.estimate)
                env.tracker.reset_peak()
                start = env.tracker.current
                ctx = JobContext(env=env, name=queued.job.name,
                                 config=queued.config, cache=cache,
                                 trace=trace, time_base=base,
                                 degraded=queued.degraded)
                value = queued.job.fn(env, ctx)
                results[queued.job.name] = (
                    value, env.tracker.peak - start, env.comm.clock.time)
            cache.on_event = None
            return results

        return self.cluster.run(batch_fn, allow_oom=True,
                                trackers=self.trackers)

    # ---------------------------------------------------------------- run

    def run_round(self) -> list[JobOutcome]:
        """Run one admission round; the incremental flavour of :meth:`run`.

        Returns the outcomes of jobs that reached a terminal state this
        round (completed, or failed past the OOM retry cap).  An OOM
        round that merely requeued its batch - or a round in which the
        admission filter vetoed every candidate (:attr:`last_admitted`
        is 0) - returns an empty list.  This is the serving daemon's
        tick: the queue persists between calls, so new jobs can be
        submitted while earlier rounds drain.
        """
        self.last_admitted = 0
        if not self._queue:
            return []
        self.rounds_run += 1
        round_no = self.rounds_run
        self._apply_scaling(round_no)
        batch = self._admit(round_no)
        self.last_admitted = len(batch)
        if not batch:
            return []
        if self.on_admit is not None:
            self.on_admit([q.job for q in batch], round_no)
        result = self._launch(batch)
        if result.ran_out_of_memory:
            return self._handle_oom(batch, result, round_no)
        self.clock += result.elapsed
        outcomes: list[JobOutcome] = []
        for queued in batch:
            self._queue.remove(queued)
            per_rank = [r[queued.job.name] for r in result.returns]
            peak = max(p for _v, p, _t in per_rank)
            done_at = self.clock - result.elapsed + \
                max(t for _v, _p, t in per_rank)
            self.estimator.observe(self.estimator.key(queued.job), peak)
            self._emit("stage-done", f"{queued.job.name}:complete",
                       at=done_at, job=queued.job.name,
                       round=round_no)
            outcomes.append(JobOutcome(
                name=queued.job.name,
                returns=[v for v, _p, _t in per_rank],
                round=round_no,
                queued_rounds=queued.queued_rounds,
                peak_bytes=peak, estimate=queued.estimate,
                degraded=queued.degraded))
        return outcomes

    def run(self) -> SchedulerReport:
        """Drain the queue; returns one outcome per submitted job."""
        report = SchedulerReport(ooms=0)
        start_rounds, start_ooms = self.rounds_run, self.ooms
        while self._queue:
            report.outcomes.extend(self.run_round())
            if self.last_admitted == 0 and self._queue:
                raise RuntimeError(
                    "admission filter vetoed every queued job; a full "
                    "drain cannot make progress")
        report.rounds = self.rounds_run - start_rounds
        report.total_elapsed = self.clock
        report.ooms = self.ooms - start_ooms
        return report

    def _apply_scaling(self, round_no: int) -> None:
        """Consult the autoscaler and resize the gang between rounds.

        Rounds are the scheduler's launch boundaries - the only points
        a gang-scheduled allocation can legally change size.  Sensors:
        ready-queue depth, and the worst rank's memory residency
        (current bytes over the per-rank limit).  A resize rebuilds the
        per-rank trackers and stage caches: cached containers live in
        rank-indexed memory, so they die with the old gang shape -
        checkpoints (on the shared PFS) are what survives, exactly as
        in the membership-change recovery path.
        """
        if self.scaling is None or not self._queue:
            return
        limit = self.cluster.memory_limit_per_rank
        residency = 0.0
        if limit:
            residency = max((t.current / limit for t in self.trackers),
                            default=0.0)
        target = self.scaling.decide(queue_depth=len(self._queue),
                                     residency=residency,
                                     nprocs=self.cluster.nprocs)
        if target == self.cluster.nprocs:
            return
        self.cluster.resize(target)
        self.estimator.nprocs = target
        self.trackers = self._fresh_trackers()
        self.caches = [StageCache(rank) for rank in range(target)]
        self.scale_events.append((round_no, target))
        self.cluster.metrics.shard(-1).inc("ft.membership.changes")
        self._emit("scale", f"gang->{target}", round=round_no,
                   nprocs=target, residency=round(residency, 4))

    def _handle_oom(self, batch: list[_Queued], result,
                    round_no: int) -> list[JobOutcome]:
        """Absorb a blown estimate: reset state, bump, requeue.

        Returns terminal outcomes for jobs that exhausted their OOM
        retry budget; the rest stay queued with doubled estimates.
        """
        self.ooms += 1
        self.cluster.metrics.shard(-1).inc("sched.ooms")
        blame = result.oom.tag if result.oom is not None else "?"
        outcomes: list[JobOutcome] = []
        for queued in batch:
            self._emit("oom", queued.job.name, job=queued.job.name,
                       oom_rank=result.oom_rank, tag=blame)
            queued.oom_retries += 1
            # The whole batch shares the blame (the launch dies before
            # per-job attribution): raise every estimate to at least
            # what the rank actually held when it blew, so the next
            # admission runs these jobs in solo rounds and the real
            # offender OOMs alone.
            blown = (result.oom.current + result.oom.requested) \
                if result.oom is not None else 0
            key = self.estimator.key(queued.job)
            bumped = max(queued.estimate * 2, blown,
                         self.estimator.observed.get(key, 0))
            self.estimator.observe(key, bumped)
            if queued.oom_retries > self.max_oom_retries:
                self._queue.remove(queued)
                outcomes.append(JobOutcome(
                    name=queued.job.name, round=round_no,
                    queued_rounds=queued.queued_rounds,
                    estimate=queued.estimate, degraded=queued.degraded,
                    failed=True,
                    error=f"out of memory on rank {result.oom_rank}: "
                          f"{result.oom}"))
        # Aborted ranks never freed their allocations: the trackers'
        # accounting (and any half-built cache entry) is unusable.
        for cache in self.caches:
            cache.clear()
        self.trackers = self._fresh_trackers()
        return outcomes
