"""``python -m repro.sched``: run the multi-job scheduler demo."""

from __future__ import annotations

import sys

from repro.sched.demo import run_demo

if __name__ == "__main__":
    sys.exit(run_demo(sys.argv[1:] or None))
