"""Self-contained scheduler demo (``python -m repro.sched``).

Builds a small simulated cluster, stages synthetic inputs, submits a
mix of jobs - WordCount, an iterative PageRank whose adjacency list is
cached, and optionally k-means / BFS / an in-situ analysis - and
drains the queue, printing the admission log and the per-job timeline
lanes.  The same adapters back the ``repro pipeline`` CLI subcommand.
"""

from __future__ import annotations

from repro.cluster import Cluster
from repro.datasets.graph500 import edges_to_bytes, kronecker_edges
from repro.datasets.points import normal_points, points_to_bytes
from repro.datasets.words import uniform_text
from repro.mpi.platforms import PLATFORMS
from repro.sched.scheduler import SchedJob, Scheduler
from repro.tools.timeline import render_job_lanes
from repro.tools.trace import Trace

#: Demo job names mapped to builders; see :func:`make_job`.
DEMO_APPS = ("wordcount", "pagerank", "kmeans", "bfs", "insitu")


def stage_inputs(cluster: Cluster, *, text_bytes: int = 1 << 15,
                 graph_scale: int = 7, npoints: int = 1 << 10,
                 seed: int = 0) -> dict[str, str]:
    """Place the demo datasets on the cluster's PFS (cost-free)."""
    cluster.pfs.store("demo/words.txt", uniform_text(text_bytes, seed=seed))
    cluster.pfs.store("demo/graph.bin", edges_to_bytes(
        kronecker_edges(graph_scale, edgefactor=8, seed=seed)))
    cluster.pfs.store("demo/points.bin", points_to_bytes(
        normal_points(npoints, seed=seed)))
    return {"wordcount": "demo/words.txt", "pagerank": "demo/graph.bin",
            "bfs": "demo/graph.bin", "kmeans": "demo/points.bin",
            "insitu": ""}


def make_job(app: str, paths: dict[str, str], *,
             priority: int = 0, footprint=None,
             iterations: int = 5) -> SchedJob:
    """A :class:`SchedJob` adapter for one demo application."""
    if app == "wordcount":
        from repro.apps.wordcount import wordcount_plan

        def run_wc(env, ctx):
            result = wordcount_plan(env, paths["wordcount"], ctx=ctx,
                                    hint=True, partial=True)
            return result.unique_words
        fn = run_wc
    elif app == "pagerank":
        from repro.apps.pagerank import pagerank_plan

        def run_pr(env, ctx):
            result = pagerank_plan(env, paths["pagerank"], ctx=ctx,
                                   hint=True, iterations=iterations)
            return result.iterations
        fn = run_pr
    elif app == "kmeans":
        from repro.apps.kmeans import kmeans_plan

        def run_km(env, ctx):
            result = kmeans_plan(env, paths["kmeans"], 4, ctx=ctx,
                                 max_iterations=iterations)
            return result.iterations
        fn = run_km
    elif app == "bfs":
        from repro.apps.bfs import bfs_plan

        def run_bfs(env, ctx):
            result = bfs_plan(env, paths["bfs"], ctx=ctx)
            return result.levels
        fn = run_bfs
    elif app == "insitu":
        from repro.insitu.pipeline import InSituAnalytics
        from repro.insitu.simulation import ParticleSimulation

        def run_insitu(env, ctx):
            sim = ParticleSimulation(env, 512, seed=1)
            analytics = InSituAnalytics(env, sim, use_plan=True,
                                        cache=ctx.cache, trace=ctx.trace)
            dense = 0
            for _step in range(3):
                dense += len(analytics.analyse_step().dense_octants)
            return dense
        fn = run_insitu
    else:
        raise ValueError(f"unknown demo app {app!r}; "
                         f"pick from {DEMO_APPS}")
    return SchedJob(name=app, fn=fn, priority=priority,
                    footprint=footprint)


def run_demo(apps: "list[str] | None" = None, *, nprocs: int = 4,
             platform: str = "comet",
             memory_limit: "int | str | None" = "512K",
             verbose: bool = True) -> int:
    """Submit ``apps`` (default WordCount + PageRank) and drain them."""
    apps = list(apps) if apps else ["wordcount", "pagerank"]
    cluster = Cluster(PLATFORMS[platform], nprocs,
                      memory_limit=memory_limit)
    paths = stage_inputs(cluster)
    trace = Trace()
    scheduler = Scheduler(cluster, trace=trace)
    for i, app in enumerate(apps):
        scheduler.submit(make_job(app, paths, priority=len(apps) - i))
    report = scheduler.run()
    if verbose:
        print(report.render_log())
        print()
        print(render_job_lanes(trace))
    return 0 if all(o.completed for o in report.outcomes) else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(run_demo())
