"""Command-line interface: run workloads and inspect platforms.

Examples::

    python -m repro platforms
    python -m repro run wc_uniform --size 4G --framework mimir --hint --pr
    python -m repro run bfs --size 2^22 --platform mira --cps
    python -m repro compare wc_wiki --size 2G
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import BenchScale, ExperimentSpec, Series, run_spec
from repro.bench.runner import APPS
from repro.bench.tables import render_memory_time_table
from repro.memory.limits import format_size, parse_size
from repro.mpi.platforms import PLATFORMS


def _parse_size_arg(scale: BenchScale, app: str, text: str) -> int:
    """Accept "4G" byte sizes for WC and "2^22" counts for OC/BFS."""
    if text.startswith("2^"):
        return scale.count(1 << int(text[2:]))
    if app in ("wc_uniform", "wc_wiki"):
        return scale.size(text)
    return scale.count(int(text))


def _spec_from_args(args, scale: BenchScale, config_name: str,
                    framework: str, *, hint=False, pr=False, cps=False,
                    mrmpi_page: int | None = None) -> ExperimentSpec:
    platform = scale.platform(PLATFORMS[args.platform])
    return ExperimentSpec(
        label=args.size, config_name=config_name, platform=platform,
        nprocs=args.nprocs or platform.procs_per_node,
        app=args.app, framework=framework,
        size=_parse_size_arg(scale, args.app, args.size),
        mrmpi_page=mrmpi_page, hint=hint, partial=pr, compress=cps,
        seed=args.seed)


def cmd_platforms(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    print(f"benchmark scale: {scale.describe()}\n")
    for name, platform in PLATFORMS.items():
        p = scale.platform(platform)
        print(f"{name}:")
        print(f"  procs/node     : {p.procs_per_node}")
        print(f"  node memory    : {format_size(p.node_memory)}")
        print(f"  default page   : {format_size(p.default_page_size)}")
        print(f"  max MR-MPI page: {format_size(p.max_page_size)}")
        print(f"  network        : {p.network.bandwidth:.3g} B/s/link, "
              f"{p.network.latency:.3g} s latency")
        print(f"  PFS            : {p.pfs.effective_bandwidth:.3g} B/s read, "
              f"write penalty {p.pfs.write_penalty:g}x")
        print()
    return 0


def _print_record(record, nprocs: int) -> None:
    if record.oom:
        print("result       : OUT OF MEMORY")
        return
    spill = " (spilled to PFS)" if record.spilled else ""
    print(f"peak memory  : {format_size(record.peak_bytes)} across "
          f"{nprocs} ranks")
    print(f"virtual time : {record.elapsed:.3f}s{spill}")


def cmd_run(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    opts = []
    if args.hint:
        opts.append("hint")
    if args.pr:
        opts.append("pr")
    if args.cps:
        opts.append("cps")
    if getattr(args, "ooc", False):
        opts.append("ooc")
    name = f"{args.framework}" + (f" ({';'.join(opts)})" if opts else "")
    page = None
    if args.framework == "mrmpi":
        platform = scale.platform(PLATFORMS[args.platform])
        page = max(1, parse_size(args.page) >> scale.total_shift) \
            if args.page else platform.default_page_size
    spec = _spec_from_args(args, scale, name, args.framework,
                           hint=args.hint, pr=args.pr, cps=args.cps,
                           mrmpi_page=page)
    if getattr(args, "ooc", False):
        from dataclasses import replace

        spec = replace(spec, out_of_core=True)
    print(f"running {args.app} ({args.size}) with {name} on "
          f"{args.platform}...")
    record = run_spec(spec)
    _print_record(record, spec.nprocs)
    return 1 if record.oom else 0


def cmd_pipeline(args) -> int:
    from repro.sched.demo import run_demo

    return run_demo(args.apps or None, nprocs=args.nprocs,
                    platform=args.platform, memory_limit=args.memory)


def cmd_report(args) -> int:
    from repro.obs.chrome import validate_chrome_trace, write_chrome_trace
    from repro.obs.report import (
        load_trace_report,
        run_pipeline_report,
        run_wordcount_report,
    )

    if args.from_trace:
        try:
            report = load_trace_report(args.from_trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.from_trace}: {exc}")
            return 1
    elif args.app == "pipeline":
        report = run_pipeline_report(nprocs=args.nprocs,
                                     platform=args.platform,
                                     memory_limit=args.memory)
    else:
        report = run_wordcount_report(nprocs=args.nprocs,
                                      platform=args.platform)
    print(report.render())
    if args.trace_out:
        data = write_chrome_trace(report.trace, args.trace_out)
        validate_chrome_trace(data)
        print(f"\nwrote Perfetto trace: {args.trace_out} "
              f"({len(data['traceEvents'])} events) - open it at "
              "https://ui.perfetto.dev")
    return 0


def cmd_compare(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    platform = scale.platform(PLATFORMS[args.platform])
    series = Series(f"{args.app} ({args.size}) on {args.platform}")
    configs = [
        ("Mimir", "mimir", {}, None),
        ("Mimir (hint;pr;cps)", "mimir",
         {"hint": True, "pr": True, "cps": True}, None),
        ("MR-MPI (64M)", "mrmpi", {}, platform.default_page_size),
        ("MR-MPI (max page)", "mrmpi", {}, platform.max_page_size),
    ]
    for name, framework, opts, page in configs:
        series.add(run_spec(_spec_from_args(
            args, scale, name, framework, mrmpi_page=page, **opts)))
    print(render_memory_time_table(series))
    return 0


def cmd_serve(args) -> int:
    import time

    from repro.cluster import Cluster
    from repro.serve.daemon import ServeConfig, ServeDaemon
    from repro.serve.tenants import TenantManager, TenantQuota

    platform = PLATFORMS[args.platform]
    cluster = Cluster(platform, nprocs=args.nprocs,
                      memory_limit=args.memory, storage=args.storage)
    if args.stage_demo:
        from repro.sched.demo import stage_inputs

        stage_inputs(cluster)
    quotas = {}
    for spec in args.quota or []:
        try:
            tenant, bounds = spec.split("=", 1)
            queued, concurrent = bounds.split(":", 1)
            quotas[tenant] = TenantQuota(max_queued=int(queued),
                                         max_concurrent=int(concurrent))
        except ValueError:
            print(f"error: bad --quota {spec!r} "
                  f"(want tenant=max_queued:max_concurrent)")
            return 2
    scaling = None
    if args.autoscale:
        from repro.ft.elastic import ScalingPolicy

        scaling = ScalingPolicy(max_ranks=args.autoscale_max)
    daemon = ServeDaemon(
        cluster,
        tenants=TenantManager(quotas, aging_rate=args.aging_rate),
        config=ServeConfig(lease_ttl=args.lease_ttl),
        scaling=scaling)
    interrupted = daemon.recover()
    if interrupted:
        print(f"recovered {len(interrupted)} interrupted job(s): "
              f"{', '.join(interrupted)}")
    port = daemon.start(host=args.host, port=args.port)
    print(f"repro serve: listening on http://{args.host}:{port} "
          f"({args.platform}, {cluster.nprocs} ranks, "
          f"{cluster.pfs.name} storage); Ctrl-C to stop")
    try:
        deadline = time.monotonic() + args.duration if args.duration \
            else None
        while not daemon.crashed:
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.2)
    except KeyboardInterrupt:
        print("\nstopping...")
    daemon.stop()
    if daemon.crashed:
        print(f"daemon crashed: {daemon.crash_error}")
        return 1
    return 0


def _serve_client(args):
    from repro.serve.api import ServeClient

    return ServeClient(args.url, tenant=args.tenant)


def _print_json(doc) -> None:
    import json

    print(json.dumps(doc, indent=2, sort_keys=True))


def cmd_put(args) -> int:
    with open(args.file, "rb") as fh:
        data = fh.read()
    _print_json(_serve_client(args).put_input(args.name, data))
    return 0


def cmd_submit(args) -> int:
    params = {}
    for item in args.param or []:
        if "=" not in item:
            print(f"error: bad --param {item!r} (want key=value)")
            return 2
        key, value = item.split("=", 1)
        try:
            params[key] = int(value)
        except ValueError:
            params[key] = value
    client = _serve_client(args)
    doc = client.submit(args.app, args.input, params=params,
                        priority=args.priority, footprint=args.footprint)
    if args.wait:
        doc = client.wait(doc["job_id"], timeout=args.timeout)
    _print_json(doc)
    return 0 if doc.get("state") in (None, "queued", "done") else 1


def cmd_status(args) -> int:
    client = _serve_client(args)
    if args.job_id:
        _print_json(client.status(args.job_id))
    else:
        _print_json(client.jobs())
    return 0


def cmd_cancel(args) -> int:
    _print_json(_serve_client(args).cancel(args.job_id))
    return 0


def cmd_logs(args) -> int:
    client = _serve_client(args)
    if args.follow:
        for line in client.follow_log(args.job_id, offset=args.offset,
                                      timeout=args.timeout):
            print(line, flush=True)
        return 0
    if args.offset:
        doc = client.job_log_since(args.job_id, args.offset)
        for line in doc["lines"]:
            print(line)
        print(f"# state={doc['state']} next_offset={doc['next_offset']}",
              file=sys.stderr)
        return 0
    sys.stdout.write(client.job_log(args.job_id))
    return 0


def cmd_fetch(args) -> int:
    client = _serve_client(args)
    data = client.job_log(args.job_id).encode() if args.log \
        else client.output(args.job_id)
    if args.output:
        with open(args.output, "wb") as fh:
            fh.write(data)
        print(f"wrote {len(data)} bytes to {args.output}")
    else:
        sys.stdout.write(data.decode(errors="replace"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mimir (IPDPS 2017) reproduction - simulated "
                    "MapReduce-over-MPI workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    p_plat = sub.add_parser("platforms", help="describe simulated platforms")
    p_plat.add_argument("--shift", type=int, default=3,
                        help="extra benchmark shrink exponent")
    p_plat.set_defaults(fn=cmd_platforms)

    def common(p):
        p.add_argument("app", choices=APPS)
        p.add_argument("--size", default="1G",
                       help='dataset size: "4G" bytes or "2^22" count')
        p.add_argument("--platform", choices=sorted(PLATFORMS),
                       default="comet")
        p.add_argument("--nprocs", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shift", type=int, default=3)

    p_run = sub.add_parser("run", help="run one workload configuration")
    common(p_run)
    p_run.add_argument("--framework", choices=["mimir", "mrmpi"],
                       default="mimir")
    p_run.add_argument("--hint", action="store_true",
                       help="enable the KV-hint optimization")
    p_run.add_argument("--pr", action="store_true",
                       help="enable partial reduction")
    p_run.add_argument("--cps", action="store_true",
                       help="enable KV compression")
    p_run.add_argument("--ooc", action="store_true",
                       help="enable out-of-core KV containers (extension)")
    p_run.add_argument("--page", default=None,
                       help='MR-MPI page size in paper units (e.g. "512M")')
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare",
                           help="compare frameworks on one workload")
    common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_pipe = sub.add_parser(
        "pipeline",
        help="run a multi-job dataflow pipeline through the scheduler")
    p_pipe.add_argument(
        "apps", nargs="*",
        help="jobs to submit (wordcount pagerank kmeans bfs insitu); "
             "default: wordcount pagerank")
    p_pipe.add_argument("--platform", choices=sorted(PLATFORMS),
                        default="comet")
    p_pipe.add_argument("--nprocs", type=int, default=4)
    p_pipe.add_argument("--memory", default="512K",
                        help='per-rank memory budget (e.g. "512K")')
    p_pipe.set_defaults(fn=cmd_pipeline)

    p_rep = sub.add_parser(
        "report",
        help="run a job with full observability and render the report")
    p_rep.add_argument(
        "app", nargs="?", choices=["wordcount", "pipeline"],
        default="wordcount",
        help="what to profile: the WordCount benchmark or the "
             "multi-job scheduler demo (default: wordcount)")
    p_rep.add_argument("--platform", choices=sorted(PLATFORMS),
                       default="comet")
    p_rep.add_argument("--nprocs", type=int, default=4)
    p_rep.add_argument("--memory", default="512K",
                       help='per-rank budget for the pipeline report')
    p_rep.add_argument("--trace-out", default=None, metavar="FILE",
                       help="also write Chrome/Perfetto trace_event "
                            "JSON for ui.perfetto.dev")
    p_rep.add_argument("--from-trace", default=None, metavar="FILE",
                       help="skip running: rebuild the report from a "
                            "Trace.to_json() file")
    p_rep.set_defaults(fn=cmd_report)

    p_srv = sub.add_parser(
        "serve",
        help="run the multi-tenant job service daemon (HTTP/JSON API)")
    p_srv.add_argument("--platform", choices=sorted(PLATFORMS),
                       default="comet")
    p_srv.add_argument("--nprocs", type=int, default=4)
    p_srv.add_argument("--memory", default="auto",
                       help='per-rank memory budget (e.g. "512K")')
    p_srv.add_argument("--storage", choices=("pfs", "kv", "extsort"),
                       default=None,
                       help="storage backend for the service substrate "
                            "(default: REPRO_STORAGE_BACKEND or pfs; "
                            "see docs/storage.md)")
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=0,
                       help="listen port (0 = ephemeral, printed)")
    p_srv.add_argument("--lease-ttl", type=float, default=60.0,
                       help="result lease TTL in seconds")
    p_srv.add_argument("--aging-rate", type=float, default=1.0,
                       help="fair-share priority gain per queued round")
    p_srv.add_argument("--quota", action="append", metavar="T=Q:C",
                       help="per-tenant quota tenant=max_queued:"
                            "max_concurrent (repeatable)")
    p_srv.add_argument("--stage-demo", action="store_true",
                       help="stage the demo datasets on the PFS at boot")
    p_srv.add_argument("--autoscale", action="store_true",
                       help="let a ScalingPolicy resize the gang "
                            "between rounds")
    p_srv.add_argument("--autoscale-max", type=int, default=16,
                       help="autoscaler rank ceiling (with --autoscale)")
    p_srv.add_argument("--duration", type=float, default=None,
                       help="exit after N seconds (CI smoke)")
    p_srv.set_defaults(fn=cmd_serve)

    def client_common(p):
        p.add_argument("--url", default="http://127.0.0.1:8123",
                       help="service base URL")
        p.add_argument("--tenant", default="default",
                       help="tenant identity (X-Tenant header)")

    p_put = sub.add_parser("put", help="stage an input file on the service")
    client_common(p_put)
    p_put.add_argument("name", help="input name (referenced by submit)")
    p_put.add_argument("file", help="local file to upload")
    p_put.set_defaults(fn=cmd_put)

    p_sub = sub.add_parser("submit", help="submit a job to the service")
    client_common(p_sub)
    p_sub.add_argument("app", help="catalog app (wordcount pagerank "
                                   "kmeans bfs stream_wordcount)")
    p_sub.add_argument("input", help="staged input name or shared PFS path")
    p_sub.add_argument("--param", action="append", metavar="K=V",
                       help="app parameter (repeatable)")
    p_sub.add_argument("--priority", type=int, default=0)
    p_sub.add_argument("--footprint", default=None,
                       help='declared per-rank footprint (e.g. "64K")')
    p_sub.add_argument("--wait", action="store_true",
                       help="poll until the job reaches a terminal state")
    p_sub.add_argument("--timeout", type=float, default=120.0,
                       help="--wait timeout in seconds")
    p_sub.set_defaults(fn=cmd_submit)

    p_st = sub.add_parser("status", help="job status (or list all jobs)")
    client_common(p_st)
    p_st.add_argument("job_id", nargs="?", default=None)
    p_st.set_defaults(fn=cmd_status)

    p_cx = sub.add_parser("cancel", help="cancel a queued job")
    client_common(p_cx)
    p_cx.add_argument("job_id")
    p_cx.set_defaults(fn=cmd_cancel)

    p_lg = sub.add_parser(
        "logs", help="fetch (or follow) a job's service-side log")
    client_common(p_lg)
    p_lg.add_argument("job_id")
    p_lg.add_argument("-f", "--follow", action="store_true",
                      help="poll ?offset=N and stream new lines until "
                           "the job is terminal")
    p_lg.add_argument("--offset", type=int, default=0,
                      help="start the cursor at line N")
    p_lg.add_argument("--timeout", type=float, default=120.0,
                      help="--follow timeout in seconds")
    p_lg.set_defaults(fn=cmd_logs)

    p_ft = sub.add_parser("fetch", help="fetch a job's output artifact")
    client_common(p_ft)
    p_ft.add_argument("job_id")
    p_ft.add_argument("-o", "--output", default=None, metavar="FILE",
                      help="write to FILE instead of stdout")
    p_ft.add_argument("--log", action="store_true",
                      help="fetch the service-side job log instead")
    p_ft.set_defaults(fn=cmd_fetch)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except Exception as exc:
        # Client commands surface service errors as structured JSON
        # (the 429 quota body, 409 conflicts, ...), not tracebacks.
        from repro.serve.api import ServeAPIError

        if isinstance(exc, ServeAPIError):
            _print_json(dict(exc.body, status=exc.status))
            return 1
        raise


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
