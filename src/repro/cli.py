"""Command-line interface: run workloads and inspect platforms.

Examples::

    python -m repro platforms
    python -m repro run wc_uniform --size 4G --framework mimir --hint --pr
    python -m repro run bfs --size 2^22 --platform mira --cps
    python -m repro compare wc_wiki --size 2G
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import BenchScale, ExperimentSpec, Series, run_spec
from repro.bench.runner import APPS
from repro.bench.tables import render_memory_time_table
from repro.memory.limits import format_size, parse_size
from repro.mpi.platforms import PLATFORMS


def _parse_size_arg(scale: BenchScale, app: str, text: str) -> int:
    """Accept "4G" byte sizes for WC and "2^22" counts for OC/BFS."""
    if text.startswith("2^"):
        return scale.count(1 << int(text[2:]))
    if app in ("wc_uniform", "wc_wiki"):
        return scale.size(text)
    return scale.count(int(text))


def _spec_from_args(args, scale: BenchScale, config_name: str,
                    framework: str, *, hint=False, pr=False, cps=False,
                    mrmpi_page: int | None = None) -> ExperimentSpec:
    platform = scale.platform(PLATFORMS[args.platform])
    return ExperimentSpec(
        label=args.size, config_name=config_name, platform=platform,
        nprocs=args.nprocs or platform.procs_per_node,
        app=args.app, framework=framework,
        size=_parse_size_arg(scale, args.app, args.size),
        mrmpi_page=mrmpi_page, hint=hint, partial=pr, compress=cps,
        seed=args.seed)


def cmd_platforms(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    print(f"benchmark scale: {scale.describe()}\n")
    for name, platform in PLATFORMS.items():
        p = scale.platform(platform)
        print(f"{name}:")
        print(f"  procs/node     : {p.procs_per_node}")
        print(f"  node memory    : {format_size(p.node_memory)}")
        print(f"  default page   : {format_size(p.default_page_size)}")
        print(f"  max MR-MPI page: {format_size(p.max_page_size)}")
        print(f"  network        : {p.network.bandwidth:.3g} B/s/link, "
              f"{p.network.latency:.3g} s latency")
        print(f"  PFS            : {p.pfs.effective_bandwidth:.3g} B/s read, "
              f"write penalty {p.pfs.write_penalty:g}x")
        print()
    return 0


def _print_record(record, nprocs: int) -> None:
    if record.oom:
        print("result       : OUT OF MEMORY")
        return
    spill = " (spilled to PFS)" if record.spilled else ""
    print(f"peak memory  : {format_size(record.peak_bytes)} across "
          f"{nprocs} ranks")
    print(f"virtual time : {record.elapsed:.3f}s{spill}")


def cmd_run(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    opts = []
    if args.hint:
        opts.append("hint")
    if args.pr:
        opts.append("pr")
    if args.cps:
        opts.append("cps")
    if getattr(args, "ooc", False):
        opts.append("ooc")
    name = f"{args.framework}" + (f" ({';'.join(opts)})" if opts else "")
    page = None
    if args.framework == "mrmpi":
        platform = scale.platform(PLATFORMS[args.platform])
        page = max(1, parse_size(args.page) >> scale.total_shift) \
            if args.page else platform.default_page_size
    spec = _spec_from_args(args, scale, name, args.framework,
                           hint=args.hint, pr=args.pr, cps=args.cps,
                           mrmpi_page=page)
    if getattr(args, "ooc", False):
        from dataclasses import replace

        spec = replace(spec, out_of_core=True)
    print(f"running {args.app} ({args.size}) with {name} on "
          f"{args.platform}...")
    record = run_spec(spec)
    _print_record(record, spec.nprocs)
    return 1 if record.oom else 0


def cmd_pipeline(args) -> int:
    from repro.sched.demo import run_demo

    return run_demo(args.apps or None, nprocs=args.nprocs,
                    platform=args.platform, memory_limit=args.memory)


def cmd_report(args) -> int:
    from repro.obs.chrome import validate_chrome_trace, write_chrome_trace
    from repro.obs.report import (
        load_trace_report,
        run_pipeline_report,
        run_wordcount_report,
    )

    if args.from_trace:
        try:
            report = load_trace_report(args.from_trace)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load {args.from_trace}: {exc}")
            return 1
    elif args.app == "pipeline":
        report = run_pipeline_report(nprocs=args.nprocs,
                                     platform=args.platform,
                                     memory_limit=args.memory)
    else:
        report = run_wordcount_report(nprocs=args.nprocs,
                                      platform=args.platform)
    print(report.render())
    if args.trace_out:
        data = write_chrome_trace(report.trace, args.trace_out)
        validate_chrome_trace(data)
        print(f"\nwrote Perfetto trace: {args.trace_out} "
              f"({len(data['traceEvents'])} events) - open it at "
              "https://ui.perfetto.dev")
    return 0


def cmd_compare(args) -> int:
    scale = BenchScale(extra_shift=args.shift)
    platform = scale.platform(PLATFORMS[args.platform])
    series = Series(f"{args.app} ({args.size}) on {args.platform}")
    configs = [
        ("Mimir", "mimir", {}, None),
        ("Mimir (hint;pr;cps)", "mimir",
         {"hint": True, "pr": True, "cps": True}, None),
        ("MR-MPI (64M)", "mrmpi", {}, platform.default_page_size),
        ("MR-MPI (max page)", "mrmpi", {}, platform.max_page_size),
    ]
    for name, framework, opts, page in configs:
        series.add(run_spec(_spec_from_args(
            args, scale, name, framework, mrmpi_page=page, **opts)))
    print(render_memory_time_table(series))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Mimir (IPDPS 2017) reproduction - simulated "
                    "MapReduce-over-MPI workloads")
    sub = parser.add_subparsers(dest="command", required=True)

    p_plat = sub.add_parser("platforms", help="describe simulated platforms")
    p_plat.add_argument("--shift", type=int, default=3,
                        help="extra benchmark shrink exponent")
    p_plat.set_defaults(fn=cmd_platforms)

    def common(p):
        p.add_argument("app", choices=APPS)
        p.add_argument("--size", default="1G",
                       help='dataset size: "4G" bytes or "2^22" count')
        p.add_argument("--platform", choices=sorted(PLATFORMS),
                       default="comet")
        p.add_argument("--nprocs", type=int, default=None)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--shift", type=int, default=3)

    p_run = sub.add_parser("run", help="run one workload configuration")
    common(p_run)
    p_run.add_argument("--framework", choices=["mimir", "mrmpi"],
                       default="mimir")
    p_run.add_argument("--hint", action="store_true",
                       help="enable the KV-hint optimization")
    p_run.add_argument("--pr", action="store_true",
                       help="enable partial reduction")
    p_run.add_argument("--cps", action="store_true",
                       help="enable KV compression")
    p_run.add_argument("--ooc", action="store_true",
                       help="enable out-of-core KV containers (extension)")
    p_run.add_argument("--page", default=None,
                       help='MR-MPI page size in paper units (e.g. "512M")')
    p_run.set_defaults(fn=cmd_run)

    p_cmp = sub.add_parser("compare",
                           help="compare frameworks on one workload")
    common(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_pipe = sub.add_parser(
        "pipeline",
        help="run a multi-job dataflow pipeline through the scheduler")
    p_pipe.add_argument(
        "apps", nargs="*",
        help="jobs to submit (wordcount pagerank kmeans bfs insitu); "
             "default: wordcount pagerank")
    p_pipe.add_argument("--platform", choices=sorted(PLATFORMS),
                        default="comet")
    p_pipe.add_argument("--nprocs", type=int, default=4)
    p_pipe.add_argument("--memory", default="512K",
                        help='per-rank memory budget (e.g. "512K")')
    p_pipe.set_defaults(fn=cmd_pipeline)

    p_rep = sub.add_parser(
        "report",
        help="run a job with full observability and render the report")
    p_rep.add_argument(
        "app", nargs="?", choices=["wordcount", "pipeline"],
        default="wordcount",
        help="what to profile: the WordCount benchmark or the "
             "multi-job scheduler demo (default: wordcount)")
    p_rep.add_argument("--platform", choices=sorted(PLATFORMS),
                       default="comet")
    p_rep.add_argument("--nprocs", type=int, default=4)
    p_rep.add_argument("--memory", default="512K",
                       help='per-rank budget for the pipeline report')
    p_rep.add_argument("--trace-out", default=None, metavar="FILE",
                       help="also write Chrome/Perfetto trace_event "
                            "JSON for ui.perfetto.dev")
    p_rep.add_argument("--from-trace", default=None, metavar="FILE",
                       help="skip running: rebuild the report from a "
                            "Trace.to_json() file")
    p_rep.set_defaults(fn=cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
