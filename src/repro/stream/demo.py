"""Seeded inputs and end-to-end drivers for the streaming demos.

Each ``demo_*`` function runs one scenario on a fresh simulated
cluster, runs the full-batch twin over the same total input, and
returns a summary dict whose ``identical`` field is the bit-compare of
the two rendered outputs - the CLI, the docs example, the benchmark,
and the tests all go through these entry points.
"""

from __future__ import annotations

import random
from typing import Any

from repro.cluster import Cluster
from repro.core import MimirConfig
from repro.datasets.graph500 import kronecker_edges
from repro.mpi import COMET
from repro.sched import StageCache
from repro.stream.runner import StreamRunner
from repro.stream.scenarios import (
    IncrementalPageRank,
    SessionizeClicks,
    StreamWordCount,
    pagerank_reference,
    sessionize_reference,
    wordcount_reference,
)
from repro.stream.source import MicroBatch, StreamRecord, StreamSource
from repro.stream.windows import GrowingWindows, TumblingWindows

#: Driver configuration every demo shares (small pages: the inputs are
#: tiny and the point is stage structure, not throughput).
DEMO_CONFIG = MimirConfig(page_size=4096, comm_buffer_size=4096,
                          input_chunk_size=1024)


# ------------------------------------------------------------- sources

def make_doc_stream(*, nbatches: int = 6, docs_per_batch: int = 4,
                    words_per_doc: int = 12, vocab: int = 40,
                    interval: float = 10.0, seed: int = 0) -> StreamSource:
    """A trickle of documents; event time = arrival time."""
    rng = random.Random(seed)
    pool = [f"w{i:03d}".encode() for i in range(vocab)]
    index = 0
    batches = []
    for _ in range(nbatches):
        docs = []
        for _ in range(docs_per_batch):
            doc = b" ".join(rng.choice(pool)
                            for _ in range(words_per_doc))
            docs.append((index, doc))
            index += 1
        batches.append(docs)
    return StreamSource.from_payload_batches("docs", batches,
                                             interval=interval)


def make_edge_stream(*, scale: int = 6, edgefactor: int = 6,
                     nbatches: int = 8, interval: float = 10.0,
                     seed: int = 0) -> StreamSource:
    """A Kronecker edge list arriving as ``nbatches`` insertion deltas."""
    edges = kronecker_edges(scale, edgefactor=edgefactor, seed=seed)
    pairs = [(int(u), int(v)) for u, v in edges.tolist()]
    per = max(1, len(pairs) // nbatches)
    batches = []
    index = 0
    for i in range(nbatches):
        chunk = pairs[i * per:(i + 1) * per] if i < nbatches - 1 \
            else pairs[(nbatches - 1) * per:]
        delta = []
        for edge in chunk:
            delta.append((index, edge))
            index += 1
        batches.append(delta)
    return StreamSource.from_payload_batches("edges", batches,
                                             interval=interval)


def make_click_stream(*, nusers: int = 6, nbatches: int = 6,
                      clicks_per_batch: int = 10, interval: float = 30.0,
                      late_every: int = 7, seed: int = 0) -> StreamSource:
    """Clickstream with genuinely late events.

    Most clicks carry an event time inside their batch's arrival
    interval; every ``late_every``-th click is stamped one to two
    intervals in the past, landing behind the watermark once earlier
    windows have closed.
    """
    rng = random.Random(seed)
    users = [f"user{i}".encode() for i in range(nusers)]
    index = 0
    batches = []
    for i in range(nbatches):
        arrival = i * interval
        records = []
        for j in range(clicks_per_batch):
            offset = rng.uniform(0.0, interval * 0.95)
            if i >= 2 and late_every and (index + 1) % late_every == 0:
                offset -= interval * rng.uniform(1.0, 2.0)
            event_ms = max(0, int((arrival + offset) * 1000))
            payload = (index, (rng.choice(users), event_ms,
                               rng.randrange(50)))
            records.append(StreamRecord(event_ms / 1000.0, payload))
            index += 1
        batches.append(MicroBatch(i, arrival, tuple(records)))
    return StreamSource("clicks", batches)


# -------------------------------------------------------------- drivers

def _job_summary(result, runner: StreamRunner) -> dict[str, Any]:
    cache = runner.runner.cache
    return {
        "final": result.final,
        "windows": result.windows,
        "timeline": result.timeline,
        "closed": result.closed,
        "resumed": result.resumed,
        "recomputed": result.recomputed,
        "late": result.late_records,
        "truncated": result.truncated,
        "stages": runner.stages_executed(),
        "cache_hits": cache.stats.hits if cache is not None else 0,
        "cache_misses": cache.stats.misses if cache is not None else 0,
    }


def run_scenario(env, scenario_cls, stream, windows, *, caches=None,
                 checkpoint_job: str | None = None,
                 nonce: str | None = None, probe=None,
                 lateness: float = 0.0,
                 stop_after_windows: int | None = None, pace: bool = True,
                 trace=None, **scenario_kwargs) -> dict[str, Any]:
    """One rank's streaming run; returns the per-rank summary dict.

    ``checkpoint_job`` wires a :class:`~repro.ft.checkpoint.
    CheckpointManager` under that job id (pass the same id + ``nonce``
    again to resume a killed stream).
    """
    scenario = scenario_cls(env, config=DEMO_CONFIG, **scenario_kwargs)
    cache = caches[env.comm.rank] if caches is not None else None
    checkpoint = None
    if checkpoint_job is not None:
        from repro.ft.checkpoint import CheckpointManager
        checkpoint = CheckpointManager(env, checkpoint_job, nonce=nonce)
    runner = StreamRunner(env, scenario, stream, windows,
                          lateness=lateness, cache=cache, trace=trace,
                          checkpoint=checkpoint, probe=probe, pace=pace)
    result = runner.run(stop_after_windows=stop_after_windows)
    return _job_summary(result, runner)


def _fresh_cluster(nprocs: int) -> Cluster:
    return Cluster(COMET, nprocs=nprocs, memory_limit=None)


def demo_wordcount(*, nprocs: int = 3, seed: int = 0,
                   window: float = 20.0, trace=None) -> dict[str, Any]:
    """Live wordcount over a document trickle, tumbling windows."""
    stream = make_doc_stream(seed=seed)
    cluster = _fresh_cluster(nprocs)
    caches = [StageCache(rank) for rank in range(nprocs)]
    res = cluster.run(lambda env: run_scenario(
        env, StreamWordCount, stream, TumblingWindows(window),
        caches=caches, trace=trace))
    runs = res.returns
    refs = cluster.run(lambda env: wordcount_reference(
        env, stream, DEMO_CONFIG)).returns
    streamed = StreamWordCount.render([r["final"] for r in runs])
    batch = StreamWordCount.render(refs)
    return {
        "scenario": "wordcount",
        "identical": streamed == batch,
        "output": streamed,
        "runs": runs,
        "virtual_time": res.elapsed,
        "metrics": cluster.metrics.totals(),
    }


def demo_pagerank(*, nprocs: int = 3, seed: int = 0, nbatches: int = 8,
                  iterations: int = 2, trace=None) -> dict[str, Any]:
    """Incremental PageRank under edge insertions, growing windows.

    Runs the stream twice - with the stage cache (incremental) and
    without (full recompute per update) - plus the one-shot batch
    reference, and reports the per-update speedup the cache buys.
    """
    interval = 10.0
    stream = make_edge_stream(seed=seed, nbatches=nbatches,
                              interval=interval)
    windows = GrowingWindows(interval)

    cluster = _fresh_cluster(nprocs)
    caches = [StageCache(rank) for rank in range(nprocs)]
    inc_res = cluster.run(lambda env: run_scenario(
        env, IncrementalPageRank, stream, windows, caches=caches,
        pace=False, trace=trace, iterations=iterations))
    inc, inc_time = inc_res.returns, inc_res.elapsed

    full_cluster = _fresh_cluster(nprocs)
    full_res = full_cluster.run(lambda env: run_scenario(
        env, IncrementalPageRank, stream, windows, caches=None,
        pace=False, iterations=iterations))
    full, full_time = full_res.returns, full_res.elapsed

    ref_cluster = _fresh_cluster(nprocs)
    refs = ref_cluster.run(lambda env: pagerank_reference(
        env, stream, iterations=iterations, config=DEMO_CONFIG)).returns

    streamed = IncrementalPageRank.render([r["final"] for r in inc])
    batch = IncrementalPageRank.render(refs)
    # Per-update cost: virtual time between the last two window closes
    # (update 0 has no prior close; later updates are the steady state).
    def last_update(runs):
        timeline = runs[0]["timeline"]
        return timeline[-1][2] - timeline[-2][2] if len(timeline) > 1 \
            else timeline[-1][2]

    speedup = last_update(full) / last_update(inc)
    return {
        "scenario": "pagerank",
        "identical": streamed == batch,
        "full_identical": IncrementalPageRank.render(
            [r["final"] for r in full]) == batch,
        "output": streamed,
        "runs": inc,
        "stages_incremental": sum(r["stages"] for r in inc),
        "stages_full": sum(r["stages"] for r in full),
        "cache_hits": sum(r["cache_hits"] for r in inc),
        "time_incremental": inc_time,
        "time_full": full_time,
        "update_speedup": speedup,
        "metrics": cluster.metrics.totals(),
    }


def demo_sessionize(*, nprocs: int = 3, seed: int = 0,
                    window: float = 30.0, lateness: float = 5.0,
                    trace=None) -> dict[str, Any]:
    """Clickstream sessionization with late arrivals and repairs."""
    stream = make_click_stream(seed=seed, interval=window)
    cluster = _fresh_cluster(nprocs)
    caches = [StageCache(rank) for rank in range(nprocs)]
    res = cluster.run(lambda env: run_scenario(
        env, SessionizeClicks, stream, TumblingWindows(window),
        caches=caches, lateness=lateness, trace=trace))
    runs = res.returns
    refs = cluster.run(lambda env: sessionize_reference(
        env, stream, config=DEMO_CONFIG)).returns
    streamed = SessionizeClicks.render([r["final"] for r in runs])
    batch = SessionizeClicks.render(refs)
    return {
        "scenario": "sessionize",
        "identical": streamed == batch,
        "output": streamed,
        "runs": runs,
        "late": runs[0]["late"],
        "recomputed": runs[0]["recomputed"],
        "virtual_time": res.elapsed,
        "metrics": cluster.metrics.totals(),
    }


DEMOS = {
    "wordcount": demo_wordcount,
    "pagerank": demo_pagerank,
    "sessionize": demo_sessionize,
}
