"""``python -m repro.stream``: run the streaming demo scenarios."""

from __future__ import annotations

import argparse
import sys

from repro.stream.demo import DEMOS


def render_summary(summary: dict) -> str:
    lines = [f"== stream demo: {summary['scenario']} =="]
    run = summary["runs"][0]
    lines.append(f"windows closed: {run['closed']}  "
                 f"late records: {run['late']}  "
                 f"repaired: {run['recomputed']}")
    for wid, end, clock in run["timeline"]:
        lines.append(f"  window {wid} [end {end:.1f}s] closed at "
                     f"t={clock:.2f}s")
    if "update_speedup" in summary:
        lines.append(
            f"stages: incremental={summary['stages_incremental']} "
            f"full={summary['stages_full']}  "
            f"cache hits: {summary['cache_hits']}")
        lines.append(f"per-update speedup (full/incremental): "
                     f"{summary['update_speedup']:.2f}x")
    verdict = "bit-identical" if summary["identical"] else "MISMATCH"
    lines.append(f"vs full-batch recompute: {verdict}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.stream",
        description="Streaming & incremental MapReduce demos")
    parser.add_argument("scenario", nargs="*", metavar="scenario",
                        help=f"which demo(s) to run: "
                             f"{', '.join([*DEMOS, 'all'])} (default: all)")
    parser.add_argument("--nprocs", type=int, default=3)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    for name in args.scenario:
        if name not in DEMOS and name != "all":
            parser.error(f"unknown scenario {name!r} "
                         f"(choose from {', '.join([*DEMOS, 'all'])})")
    wanted = args.scenario or ["all"]
    names = list(DEMOS) if "all" in wanted else wanted
    ok = True
    for name in names:
        summary = DEMOS[name](nprocs=args.nprocs, seed=args.seed)
        print(render_summary(summary))
        print()
        ok = ok and summary["identical"]
    if not ok:
        print("FAILED: a streamed result diverged from its batch twin",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
