"""Micro-batch stream sources: seeded, replayable input schedules.

A :class:`StreamSource` is a *named* sequence of :class:`MicroBatch`es,
each carrying records stamped with an **event time** and scheduled to
**arrive** at a virtual instant.  Two properties make it the streaming
input of the Plan DAG:

- **Identity by position, not contents.**  A plan references one batch
  via :meth:`Plan.source_stream(stream, index) <repro.sched.plan.Plan.
  source_stream>`; the derived stage keys hash the stream *name* and
  the batch *index*, so re-ingesting the same schedule (a replay after
  a crash, or the next window of a live run) reuses the exact lineage
  keys - which is what lets unchanged micro-batches hit the
  :class:`~repro.sched.cache.StageCache`.
- **Replayability.**  The schedule is either seeded up front (demo
  scenarios, tests) or appended to via :meth:`push` (the in-situ
  client); either way :meth:`batch` answers for any already-ingested
  index, so a resumed stream can rebuild what it needs.

Event time and arrival time are decoupled on purpose: a record may
*arrive* in batch 7 with an event time that belongs to a window the
watermark already closed - the late-data path the runner must handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class StreamRecord:
    """One stream element: an event-time stamp plus an opaque payload."""

    time: float
    payload: Any


@dataclass(frozen=True)
class MicroBatch:
    """One bounded slice of the stream, arriving at a virtual instant."""

    index: int
    arrival: float
    records: tuple[StreamRecord, ...]

    def payloads(self) -> list[Any]:
        return [r.payload for r in self.records]

    @property
    def max_time(self) -> float:
        """Largest event time in the batch (``-inf`` when empty)."""
        return max((r.time for r in self.records), default=float("-inf"))


class StreamSource:
    """A named, replayable schedule of micro-batches.

    The ``repr`` is intentionally just the name: it participates in
    stage-parameter hashing (:func:`repro.sched.plan._describe`), and a
    stream's identity must not change as batches are appended.
    """

    def __init__(self, name: str,
                 batches: Iterable[MicroBatch] = ()):
        self.name = name
        self._batches: list[MicroBatch] = list(batches)
        for i, batch in enumerate(self._batches):
            if batch.index != i:
                raise ValueError(f"batch {i} carries index {batch.index}")

    def __repr__(self) -> str:
        return f"StreamSource({self.name!r})"

    def __len__(self) -> int:
        return len(self._batches)

    def batch(self, index: int) -> MicroBatch:
        return self._batches[index]

    def schedule(self) -> tuple[MicroBatch, ...]:
        """The full batch sequence (replayed by a resuming runner)."""
        return tuple(self._batches)

    def push(self, payloads: Sequence[Any], *, arrival: float,
             times: Sequence[float] | None = None) -> MicroBatch:
        """Append one micro-batch (live producers, e.g. in-situ steps).

        ``times`` defaults every record's event time to the arrival
        instant.
        """
        if times is None:
            times = [arrival] * len(payloads)
        if len(times) != len(payloads):
            raise ValueError("times and payloads must align")
        batch = MicroBatch(len(self._batches), arrival,
                           tuple(StreamRecord(t, p)
                                 for t, p in zip(times, payloads)))
        self._batches.append(batch)
        return batch

    def records(self, *, through: int | None = None) -> list[StreamRecord]:
        """Every record of batches ``0..through`` (default: all).

        This is the "same total input" a full-batch recompute runs
        over when validating a streaming result.
        """
        last = len(self._batches) - 1 if through is None else through
        out: list[StreamRecord] = []
        for batch in self._batches[:last + 1]:
            out.extend(batch.records)
        return out

    @classmethod
    def from_payload_batches(cls, name: str,
                             payload_batches: Iterable[Sequence[Any]], *,
                             interval: float = 1.0,
                             start: float = 0.0) -> "StreamSource":
        """Seed a source from plain payload lists, one batch per entry.

        Batch ``i`` arrives at ``start + i * interval`` and its records
        take the arrival instant as their event time.
        """
        batches = []
        for i, payloads in enumerate(payload_batches):
            arrival = start + i * interval
            batches.append(MicroBatch(i, arrival,
                                      tuple(StreamRecord(arrival, p)
                                            for p in payloads)))
        return cls(name, batches)
