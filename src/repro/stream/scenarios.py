"""The three demo streaming scenarios, each with a full-batch twin.

Every scenario is a duck-typed :class:`~repro.stream.runner.
StreamRunner` client plus a ``*_reference`` function that computes the
same answer over the same total input in one conventional batch pass.
The acceptance bar is *bit identity*: ``render()`` over the streamed
finals and over the batch references must produce identical bytes.

Sharding note: ``source_stream`` lowers onto ``map_items``, which
iterates every payload on every rank, so each record payload carries a
global index and the per-rank map closures emit only the records they
own (``index % nprocs == rank``) - the same closure-sharding pattern
``pagerank_plan`` uses for its per-iteration contribution map.  Stream
and reference paths share one sharding rule (and, for PageRank, one
iteration-loop helper), which is what makes their float folds
bitwise identical.
"""

from __future__ import annotations

import struct

import numpy as np

from repro.apps.bfs import vertex_partitioner
from repro.apps.pagerank import (
    PR_HINT_LAYOUT,
    _F64,
    pr_combine,
    unpack_f64,
)
from repro.apps.wordcount import WC_HINT_LAYOUT, wc_combine
from repro.cluster import RankEnv
from repro.core import (
    Mimir,
    MimirConfig,
    pack_u64,
    unpack_u64,
)
from repro.core.records import KVLayout
from repro.sched.executor import PlanRunner
from repro.sched.plan import Plan
from repro.stream.source import StreamSource

_ONE = pack_u64(1)
_CLICK = struct.Struct("<qq")  # (event ms, page id)


# ---------------------------------------------------------------------
# live wordcount over a document trickle
# ---------------------------------------------------------------------

class StreamWordCount:
    """Tumbling-window word counts; payloads are ``(index, doc_bytes)``.

    Per-batch counts are one cached ``map -> partial_reduce`` chain;
    a window folds the cached per-batch aggregates together through
    the *seeded* partial reduce (the incremental-window hook).  A
    batch straddling the window boundary cannot reuse its aggregate -
    its in-window records are refiltered through a window-scoped
    source stage instead.
    """

    def __init__(self, env: RankEnv, config: MimirConfig | None = None):
        self.env = env
        self.config = config or MimirConfig().with_layout(WC_HINT_LAYOUT)
        self.name = "wordcount"
        self.rank = env.comm.rank
        self.nprocs = env.comm.size

    def _shard_map(self, ctx, item) -> None:
        index, doc = item
        if index % self.nprocs == self.rank:
            for word in doc.split():
                ctx.emit(word, _ONE)

    def batch_stage(self, plan: Plan, stream: StreamSource, index: int):
        return (plan.source_stream(stream, index)
                .map(self._shard_map, name="wc-shard")
                .partial_reduce(wc_combine, out_layout=self.config.layout,
                                name="wc-batch-counts")
                .cache())

    def window_result(self, runner, window, batches) -> dict[bytes, int]:
        mimir = runner.runner.mimir
        agg = None
        for batch in batches:
            whole = all(window.contains(r.time) for r in batch.records)
            if whole:
                kvc = runner.materialize(batch.index)
                kvc.pin()
                try:
                    agg = mimir.partial_reduce(
                        kvc, wc_combine, out_layout=self.config.layout,
                        consume=False, seed=agg)
                finally:
                    kvc.unpin()
            else:
                # Straddler: only this window's slice of the batch.
                payloads = [r.payload for r in batch.records
                            if window.contains(r.time)]
                sliced = (runner.plan
                          .source(lambda items=payloads: items,
                                  name=f"wc-straddle-b{batch.index}")
                          .map(self._shard_map, name="wc-straddle-map"))
                kvc = runner.runner.materialize(sliced)
                agg = mimir.partial_reduce(
                    kvc, wc_combine, out_layout=self.config.layout,
                    seed=agg)
        if agg is None:
            return {}
        return {key: unpack_u64(value) for key, value in agg.consume()}

    def merge(self, results: dict[int, dict[bytes, int]]) -> dict[bytes, int]:
        totals: dict[bytes, int] = {}
        for wid in sorted(results):
            for word, count in results[wid].items():
                totals[word] = totals.get(word, 0) + count
        return totals

    @staticmethod
    def render(finals: list[dict[bytes, int]]) -> bytes:
        merged: dict[bytes, int] = {}
        for counts in finals:
            for word, count in counts.items():
                merged[word] = merged.get(word, 0) + count
        lines = [b"%s\t%d" % (w, merged[w]) for w in sorted(merged)]
        return b"\n".join(lines) + b"\n"


def wordcount_reference(env: RankEnv, stream: StreamSource,
                        config: MimirConfig | None = None) -> dict[bytes, int]:
    """Full-batch twin: count every record of the stream in one pass."""
    scenario = StreamWordCount(env, config)
    mimir = Mimir(env, scenario.config)
    kvs = mimir.map_items([r.payload for r in stream.records()],
                          scenario._shard_map)
    out = mimir.partial_reduce(kvs, wc_combine,
                               out_layout=scenario.config.layout)
    return {key: unpack_u64(value) for key, value in out.consume()}


# ---------------------------------------------------------------------
# incremental PageRank under edge insertions
# ---------------------------------------------------------------------

def _emit_frag_vertices(pctx, key: bytes, value: bytes) -> None:
    """Every vertex an adjacency fragment mentions, keyed for dedup."""
    pctx.emit(key, b"")
    for target in np.frombuffer(value, dtype="<u8").tolist():
        pctx.emit(pack_u64(target), b"")


def _first(key: bytes, a: bytes, b: bytes) -> bytes:
    return a


def _dedup_targets(rctx, key: bytes, values: list[bytes]) -> None:
    targets = sorted({unpack_u64(v) for v in values})
    rctx.emit(key, b"".join(pack_u64(t) for t in targets))


def _pr_loop(env: RankEnv, prunner: PlanRunner,
             adjacency: dict[int, list[int]], vertices: list[int], *,
             damping: float, iterations: int) -> dict[int, float]:
    """The shared PageRank power loop (stream and batch twins).

    ``adjacency`` holds this rank's sources with *sorted* target
    lists and ``vertices`` this rank's sorted owned universe, so the
    contribution emission order - and therefore every float fold -
    is identical no matter how the adjacency was accumulated.
    """
    comm = env.comm
    nvertices = comm.allsum(len(vertices))
    if nvertices == 0:
        return {}
    sources = sorted(adjacency)

    def body(r, _i, scores):
        dangling = comm.allsum(sum(score for v, score in scores.items()
                                   if v not in adjacency))

        def contrib(pctx, _item, _scores=scores):
            for v in sources:
                targets = adjacency[v]
                if targets:
                    share = _F64.pack(_scores[v] / len(targets))
                    for t in targets:
                        pctx.emit(pack_u64(t), share)

        summed = (r.plan.source([None], name="pr-tick")
                  .map(contrib, partitioner=vertex_partitioner,
                       layout=PR_HINT_LAYOUT, name="pr-contrib")
                  .partial_reduce(pr_combine, out_layout=PR_HINT_LAYOUT,
                                  name="pr-scores"))
        base = (1.0 - damping) / nvertices + \
            damping * dangling / nvertices
        new_scores = {v: base for v in vertices}
        for key, value in r.stream(summed):
            new_scores[unpack_u64(key)] = base + damping * unpack_f64(value)
        return new_scores

    initial = {v: 1.0 / nvertices for v in vertices}
    scores, _ = prunner.iterate(initial, body, max_iters=iterations)
    return scores


class IncrementalPageRank:
    """Growing-window PageRank; payloads are ``(index, (u, v))`` edges.

    Each micro-batch is an edge *delta*.  Its adjacency fragment and
    vertex set are cached per batch; closing window ``w`` unions the
    fragments of deltas ``0..w`` rank-locally (old deltas are cache
    hits - only the newest delta's shuffle executes) and re-runs the
    rank iterations over the combined graph.
    """

    def __init__(self, env: RankEnv, *, damping: float = 0.85,
                 iterations: int = 2,
                 config: MimirConfig | None = None):
        self.env = env
        self.config = config or MimirConfig()
        self.name = "pagerank"
        self.damping = damping
        self.iterations = iterations
        self.rank = env.comm.rank
        self.nprocs = env.comm.size
        self._verts = {}

    def _shard_edges(self, ctx, item) -> None:
        index, (u, v) = item
        if index % self.nprocs == self.rank:
            ctx.emit(pack_u64(u), pack_u64(v))

    def batch_stage(self, plan: Plan, stream: StreamSource, index: int):
        frag = (plan.source_stream(stream, index)
                .map(self._shard_edges, partitioner=vertex_partitioner,
                     name="pr-edges")
                .reduce(_dedup_targets, out_layout=KVLayout(),
                        name="pr-frag")
                .cache())
        self._verts[index] = (frag
                              .map(_emit_frag_vertices,
                                   partitioner=vertex_partitioner,
                                   combine_fn=_first, name="pr-verts")
                              .cache())
        return frag

    def _combined(self, runner, batches):
        """Union the cached per-delta fragments and vertex sets."""
        adjacency: dict[int, set[int]] = {}
        owned: set[int] = set()
        for batch in batches:
            frag = runner.materialize(batch.index)
            frag.pin()
            try:
                for key, value in frag.records():
                    adjacency.setdefault(unpack_u64(key), set()).update(
                        np.frombuffer(value, dtype="<u8").tolist())
            finally:
                frag.unpin()
            verts = runner.runner.materialize(self._verts[batch.index])
            verts.pin()
            try:
                owned.update(unpack_u64(k) for k, _ in verts.records())
            finally:
                verts.unpin()
        return ({v: sorted(t) for v, t in adjacency.items()},
                sorted(owned))

    def window_result(self, runner, window, batches) -> dict[int, float]:
        adjacency, vertices = self._combined(runner, batches)
        return _pr_loop(self.env, runner.runner, adjacency, vertices,
                        damping=self.damping, iterations=self.iterations)

    def merge(self, results: dict[int, dict[int, float]]) -> dict[int, float]:
        """The stream's answer is the scores after the last delta."""
        return results[max(results)] if results else {}

    @staticmethod
    def render(finals: list[dict[int, float]]) -> bytes:
        merged: dict[int, float] = {}
        for scores in finals:
            merged.update(scores)
        lines = [b"%d\t%s" % (v, repr(merged[v]).encode())
                 for v in sorted(merged)]
        return b"\n".join(lines) + b"\n"


def pagerank_reference(env: RankEnv, stream: StreamSource, *,
                       damping: float = 0.85, iterations: int = 2,
                       config: MimirConfig | None = None) -> dict[int, float]:
    """Full-batch twin: one fragment over all edges, same power loop."""
    scenario = IncrementalPageRank(env, damping=damping,
                                   iterations=iterations, config=config)
    plan = Plan("pagerank-batch", scenario.config)
    prunner = PlanRunner(env, plan)
    items = [r.payload for r in stream.records()]
    frag = (plan.source(items, name="pr-batch-edges")
            .map(scenario._shard_edges, partitioner=vertex_partitioner,
                 name="pr-edges")
            .reduce(_dedup_targets, out_layout=KVLayout(), name="pr-frag"))
    adjacency: dict[int, list[int]] = {}
    for key, value in prunner.stream(frag):
        adjacency[unpack_u64(key)] = \
            np.frombuffer(value, dtype="<u8").tolist()
    verts = (plan.source(items, name="pr-batch-verts-src")
             .map(scenario._shard_edges, partitioner=vertex_partitioner,
                  name="pr-edges-for-verts")
             .reduce(_dedup_targets, out_layout=KVLayout(),
                     name="pr-frag-for-verts")
             .map(_emit_frag_vertices, partitioner=vertex_partitioner,
                  combine_fn=_first, name="pr-verts"))
    vertices = sorted({unpack_u64(k) for k, _ in prunner.stream(verts)})
    return _pr_loop(env, prunner, adjacency, vertices,
                    damping=damping, iterations=iterations)


# ---------------------------------------------------------------------
# clickstream sessionization
# ---------------------------------------------------------------------

class SessionizeClicks:
    """Event-time sessionization; payloads are
    ``(index, (user_bytes, event_ms, page_id))``.

    Per-batch stages shuffle clicks to their user's owner rank with
    the event time carried *in the value*, so a window (or a late-
    data repair) filters the cached batch containers by event time
    without re-shuffling.  Sessions are cut rank-locally at gaps
    longer than ``gap_ms`` once windows merge.
    """

    def __init__(self, env: RankEnv, *, gap_ms: int = 30_000,
                 config: MimirConfig | None = None):
        self.env = env
        self.config = config or MimirConfig()
        self.name = "sessionize"
        self.gap_ms = gap_ms
        self.rank = env.comm.rank
        self.nprocs = env.comm.size

    def _shard_clicks(self, ctx, item) -> None:
        index, (user, event_ms, page) = item
        if index % self.nprocs == self.rank:
            ctx.emit(user, _CLICK.pack(event_ms, page))

    def batch_stage(self, plan: Plan, stream: StreamSource, index: int):
        return (plan.source_stream(stream, index)
                .map(self._shard_clicks, name="clicks-shard")
                .cache())

    def window_result(self, runner, window, batches):
        events: dict[bytes, list[tuple[int, int]]] = {}
        lo = int(window.start * 1000)
        hi = int(window.end * 1000)
        for batch in batches:
            kvc = runner.materialize(batch.index)
            kvc.pin()
            try:
                for user, value in kvc.records():
                    event_ms, page = _CLICK.unpack(value)
                    if lo <= event_ms < hi:
                        events.setdefault(user, []).append((event_ms, page))
            finally:
                kvc.unpin()
        return {user: sorted(clicks) for user, clicks in events.items()}

    def _sessionize(self, clicks: list[tuple[int, int]]):
        sessions = []
        start = prev = clicks[0][0]
        count = 0
        for event_ms, _page in clicks:
            if event_ms - prev > self.gap_ms:
                sessions.append((start, prev, count))
                start = event_ms
                count = 0
            prev = event_ms
            count += 1
        sessions.append((start, prev, count))
        return sessions

    def merge(self, results: dict[int, dict]) -> dict:
        """Windows partition event time: concatenating their per-user
        sorted click lists in window order yields each user's full
        sorted history, which then session-splits at the gap."""
        history: dict[bytes, list[tuple[int, int]]] = {}
        for wid in sorted(results):
            for user, clicks in results[wid].items():
                history.setdefault(user, []).extend(clicks)
        return {user: self._sessionize(clicks)
                for user, clicks in history.items()}

    @staticmethod
    def render(finals: list[dict]) -> bytes:
        merged: dict[bytes, list] = {}
        for sessions in finals:
            merged.update(sessions)
        lines = []
        for user in sorted(merged):
            for start, end, count in merged[user]:
                lines.append(b"%s\t%d\t%d\t%d" % (user, start, end, count))
        return b"\n".join(lines) + b"\n"


def sessionize_reference(env: RankEnv, stream: StreamSource, *,
                         gap_ms: int = 30_000,
                         config: MimirConfig | None = None) -> dict:
    """Full-batch twin: shuffle all clicks, sort, session-split once."""
    scenario = SessionizeClicks(env, gap_ms=gap_ms, config=config)
    mimir = Mimir(env, scenario.config)
    kvs = mimir.map_items([r.payload for r in stream.records()],
                          scenario._shard_clicks)
    history: dict[bytes, list[tuple[int, int]]] = {}
    for user, value in kvs.consume():
        history[user] = history.get(user, [])
        history[user].append(_CLICK.unpack(value))
    return {user: scenario._sessionize(sorted(clicks))
            for user, clicks in history.items()}
